"""Legacy setup shim: the build environment ships an older setuptools
without PEP 660 editable-install support, so `pip install -e .` goes
through this file.  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
