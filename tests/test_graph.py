"""Task DAG structure: tasks, edges, ordering, validation, analyses."""

import pytest

from repro.graph.analyze import (
    average_parallelism,
    critical_path_length,
    max_width,
    parallelism_profile,
)
from repro.graph.dag import TaskDAG
from repro.graph.task import DataHandle, Task


def mk_task(kernel="COPY", reads=(), writes=(), shape=None, seq=0):
    shape = shape or {"rows": 10, "width": 1}
    return Task(-1, kernel, tuple(reads), tuple(writes), shape, {}, 0, seq)


def chain_dag(n=5):
    dag = TaskDAG()
    prev = None
    for _ in range(n):
        tid = dag.add_task(mk_task())
        if prev is not None:
            dag.add_edge(prev, tid)
        prev = tid
    return dag


def diamond_dag():
    dag = TaskDAG()
    a = dag.add_task(mk_task())
    b = dag.add_task(mk_task())
    c = dag.add_task(mk_task())
    d = dag.add_task(mk_task())
    dag.add_edge(a, b)
    dag.add_edge(a, c)
    dag.add_edge(b, d)
    dag.add_edge(c, d)
    return dag


def test_handles_equality_ignores_nbytes():
    assert DataHandle("x", 1, 100) == DataHandle("x", 1, 999)
    assert DataHandle("x", 1) != DataHandle("x", 2)
    assert str(DataHandle("x", 3)) == "x[3]"
    assert str(DataHandle("g")) == "g"


def test_task_touched_dedup():
    h = DataHandle("y", 0, 8)
    t = mk_task(reads=(h, DataHandle("x", 0, 8)), writes=(h,))
    assert len(t.touched()) == 2


def test_add_edge_validation():
    dag = chain_dag(2)
    with pytest.raises(IndexError):
        dag.add_edge(0, 99)
    n = dag.n_edges
    dag.add_edge(0, 1)  # duplicate ignored
    dag.add_edge(1, 1)  # self edge ignored
    assert dag.n_edges == n


def test_topo_order_chain():
    dag = chain_dag(6)
    assert dag.topo_order() == list(range(6))


def test_topo_order_detects_cycle():
    dag = chain_dag(3)
    dag.add_edge(2, 0)
    with pytest.raises(ValueError, match="cycle"):
        dag.topo_order()


def test_check_schedule():
    dag = diamond_dag()
    dag.check_schedule([0, 1, 2, 3])
    dag.check_schedule([0, 2, 1, 3])
    with pytest.raises(ValueError, match="violated"):
        dag.check_schedule([1, 0, 2, 3])
    with pytest.raises(ValueError, match="covers"):
        dag.check_schedule([0, 1])
    with pytest.raises(ValueError, match="twice"):
        dag.check_schedule([0, 0, 1, 2])


def test_critical_path_and_levels():
    dag = diamond_dag()
    assert dag.critical_path() == 3  # a → b → d
    assert dag.levels() == [0, 1, 1, 2]
    assert critical_path_length(dag) == 3
    assert parallelism_profile(dag) == [1, 2, 1]
    assert max_width(dag) == 2
    assert average_parallelism(dag) == pytest.approx(4 / 3)


def test_weighted_critical_path():
    dag = chain_dag(4)
    assert dag.critical_path(weight=lambda t: 2.0) == 8.0


def test_sources_and_degrees():
    dag = diamond_dag()
    assert dag.sources() == [0]
    assert dag.in_degrees() == [0, 1, 1, 2]


def test_by_kernel_census():
    dag = TaskDAG()
    dag.add_task(mk_task("COPY"))
    dag.add_task(mk_task("COPY"))
    dag.add_task(mk_task("ADD", shape={"rows": 5, "width": 1}))
    assert dag.by_kernel() == {"COPY": 2, "ADD": 1}
    assert "TaskDAG(3 tasks" in repr(dag)


def test_empty_dag():
    dag = TaskDAG()
    assert dag.topo_order() == []
    assert dag.critical_path() == 0.0
    assert parallelism_profile(dag) == []
    assert max_width(dag) == 0
