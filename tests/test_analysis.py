"""Analysis helpers: metrics, tables, gantt text, experiment driver."""

import numpy as np
import pytest

from repro.analysis import (
    compare_versions,
    normalized_miss_table,
    render_bars,
    render_flow,
    render_table,
    speedup_table,
)
from repro.analysis.experiment import run_cell, run_version
from repro.machine.perf import PerfCounters
from repro.sim.engine import RunResult
from repro.sim.flowgraph import FlowGraph


def fake_result(t, misses=(100, 50, 20)):
    c = PerfCounters()
    c.record_task("SPMM", t, misses, 0.0, t / 2, t / 2)
    return RunResult("broadwell", "x", t, [t], c, FlowGraph(), 28, 1)


def test_comparison_requires_baseline():
    with pytest.raises(ValueError, match="libcsr"):
        compare_versions("m", "lanczos", "broadwell",
                         {"hpx": fake_result(1.0)})


def test_speedup_and_miss_reduction():
    c = compare_versions("m", "lanczos", "broadwell", {
        "libcsr": fake_result(2.0, (100, 100, 100)),
        "hpx": fake_result(1.0, (50, 25, 100)),
    })
    assert c.speedup("hpx") == pytest.approx(2.0)
    assert c.miss_reduction("hpx", 1) == pytest.approx(2.0)
    assert c.miss_reduction("hpx", 2) == pytest.approx(4.0)
    assert c.miss_reduction("hpx", 3) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        c.miss_reduction("hpx", 4)


def test_tables_from_comparisons():
    c = compare_versions("m", "lanczos", "broadwell", {
        "libcsr": fake_result(2.0),
        "hpx": fake_result(1.0),
    })
    st = speedup_table([c])
    assert st["m"]["hpx"] == pytest.approx(2.0)
    mt = normalized_miss_table([c], level=1)
    assert "hpx" in mt["m"]


def test_render_table_alignment():
    text = render_table({"row1": {"a": 1.5, "b": 2.0},
                         "row2": {"a": 3.0}})
    lines = text.splitlines()
    assert "row1" in lines[2] and "1.50" in lines[2]
    assert lines[3].rstrip().endswith("-")  # missing value placeholder


def test_render_bars():
    text = render_bars({"x": 1.0, "y": 2.0}, width=10)
    assert text.count("#") == 15  # 5 + 10
    assert "(empty)" == render_bars({})


def test_render_flow_smoke():
    r = run_version("broadwell", "inline1", "lanczos", "deepsparse",
                    block_count=32, iterations=1)
    text = render_flow(r, width=40, max_cores=4)
    assert "deepsparse on broadwell" in text
    assert "kernel overlap fraction" in text
    assert "SPMV" in text


def test_run_cell_includes_baseline():
    c = run_cell("broadwell", "inline1", "lanczos", block_count=32,
                 iterations=1, versions=["hpx"])
    assert set(c.results) == {"libcsr", "hpx"}
    assert c.speedup("hpx") > 0


def test_run_version_unknowns():
    with pytest.raises(ValueError, match="unknown version"):
        run_version("broadwell", "inline1", "lanczos", "tbb")
    with pytest.raises(ValueError, match="unknown solver"):
        run_version("broadwell", "inline1", "jacobi", "hpx")
