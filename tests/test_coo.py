"""COO format: construction, canonicalization, reference kernels."""

import numpy as np
import pytest

from repro.matrices.coo import COOMatrix


def test_empty_matrix():
    a = COOMatrix.empty((5, 7))
    assert a.nnz == 0
    assert a.to_dense().shape == (5, 7)
    assert not a.to_dense().any()


def test_from_dense_roundtrip(rng):
    d = rng.standard_normal((9, 13))
    d[d < 0.5] = 0.0
    a = COOMatrix.from_dense(d)
    np.testing.assert_array_equal(a.to_dense(), d)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError, match="identical shapes"):
        COOMatrix((3, 3), [0, 1], [0], [1.0])


def test_index_out_of_range_rejected():
    with pytest.raises(ValueError, match="row index"):
        COOMatrix((3, 3), [5], [0], [1.0])
    with pytest.raises(ValueError, match="col index"):
        COOMatrix((3, 3), [0], [4], [1.0])


def test_canonical_sorts_and_merges():
    a = COOMatrix((4, 4), [2, 0, 2, 0], [1, 3, 1, 3], [1.0, 2.0, 3.0, -2.0])
    c = a.canonical()
    # duplicates summed: (2,1)=4, (0,3)=0 (explicit zero kept)
    assert c.nnz == 2
    assert list(c.rows) == [0, 2]
    assert list(c.cols) == [3, 1]
    np.testing.assert_allclose(c.vals, [0.0, 4.0])


def test_canonical_idempotent(small_sym_coo):
    c = small_sym_coo.canonical()
    assert c.canonical() is c


def test_canonical_preserves_dense(rng):
    rows = rng.integers(0, 20, 100)
    cols = rng.integers(0, 20, 100)
    vals = rng.standard_normal(100)
    a = COOMatrix((20, 20), rows, cols, vals)
    np.testing.assert_allclose(a.to_dense(), a.canonical().to_dense())


def test_transpose_dense_agreement(small_sym_coo):
    a = small_sym_coo
    np.testing.assert_allclose(a.transpose().to_dense(), a.to_dense().T)


def test_spmv_matches_dense(small_sym_coo, rng):
    x = rng.standard_normal(small_sym_coo.shape[1])
    np.testing.assert_allclose(
        small_sym_coo.spmv(x), small_sym_coo.to_dense() @ x
    )


def test_row_nnz_totals(small_sym_coo):
    rn = small_sym_coo.canonical().row_nnz()
    assert rn.sum() == small_sym_coo.canonical().nnz
    assert rn.shape == (small_sym_coo.shape[0],)
