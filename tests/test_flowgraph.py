"""Flow graph reductions: envelopes, overlap, utilization, Gantt text."""

import pytest

from repro.sim.flowgraph import FlowGraph


def make_flow(records):
    f = FlowGraph()
    for tid, kernel, core, s, e, it in records:
        f.record(tid, kernel, core, s, e, it)
    return f


def test_empty_flow():
    f = FlowGraph()
    assert f.makespan == 0.0
    assert f.kernel_overlap_fraction() == 0.0
    assert f.utilization(4) == 0.0
    assert "(empty" in f.to_gantt()


def test_envelopes():
    f = make_flow([
        (0, "SPMM", 0, 0.0, 1.0, 0),
        (1, "SPMM", 1, 0.5, 2.0, 0),
        (2, "XY", 0, 1.0, 3.0, 0),
    ])
    env = f.kernel_envelopes()
    assert env["SPMM"] == (0.0, 2.0)
    assert env["XY"] == (1.0, 3.0)
    assert f.makespan == 3.0


def test_overlap_fraction_phased_vs_pipelined():
    phased = make_flow([
        (0, "A", 0, 0.0, 1.0, 0),
        (1, "B", 0, 1.0, 2.0, 0),
    ])
    assert phased.kernel_overlap_fraction() == 0.0
    pipelined = make_flow([
        (0, "A", 0, 0.0, 2.0, 0),
        (1, "B", 1, 0.0, 2.0, 0),
    ])
    assert pipelined.kernel_overlap_fraction() == pytest.approx(0.5)


def test_core_busy_and_utilization():
    f = make_flow([
        (0, "A", 0, 0.0, 2.0, 0),
        (1, "A", 1, 0.0, 1.0, 0),
    ])
    busy = f.core_busy_time()
    assert busy == {0: 2.0, 1: 1.0}
    assert f.utilization(2) == pytest.approx(3.0 / 4.0)


def test_iteration_spans():
    f = make_flow([
        (0, "A", 0, 0.0, 1.0, 0),
        (1, "A", 0, 1.0, 2.5, 1),
    ])
    spans = f.iteration_spans()
    assert spans[0] == (0.0, 1.0)
    assert spans[1] == (1.0, 2.5)


def test_gantt_renders_all_cores_and_legend():
    f = make_flow([
        (0, "SPMM", 0, 0.0, 1.0, 0),
        (1, "XY", 3, 1.0, 2.0, 0),
    ])
    text = f.to_gantt(width=40)
    assert "A=SPMM" in text and "B=XY" in text
    assert "core   0" in text and "core   3" in text
    assert "A" in text.splitlines()[1]
