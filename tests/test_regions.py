"""Regent-style regions/privileges (Listing 3 semantics on threads)."""

import numpy as np
import pytest

from repro.runtime.regions import Partition, Region, RegionRuntime, task


def test_region_partition_geometry():
    r = Region(np.zeros(10), "v")
    p = r.partition(3)
    assert len(p) == 3
    assert [s.interval for s in p] == [(0, 4), (4, 8), (8, 10)]
    assert all(s.root == r.root for s in p)


def test_partition_views_share_memory():
    r = Region(np.zeros(8), "v")
    p = r.partition(2)
    p[0].data[:] = 5.0
    assert (r.data[:4] == 5.0).all()


def test_task_decorator_validates_privileges():
    with pytest.raises(ValueError, match="invalid privilege"):
        @task(x="banana")
        def f(x):  # pragma: no cover
            pass


def test_launch_requires_task():
    rt = RegionRuntime()
    with pytest.raises(TypeError, match="not a task"):
        rt.launch(lambda r: None, Region(np.zeros(2)))


def test_dependence_raw():
    @task(r="write")
    def produce(r):
        r.data[:] = 1.0

    @task(r="read")
    def consume(r):
        pass

    rt = RegionRuntime()
    reg = Region(np.zeros(4))
    a = rt.launch(produce, reg)
    b = rt.launch(consume, reg)
    assert (a, b) in rt.dependence_edges


def test_read_read_commutes():
    @task(r="read")
    def reader(r):
        pass

    rt = RegionRuntime()
    reg = Region(np.zeros(4))
    rt.launch(reader, reg)
    rt.launch(reader, reg)
    assert rt.dependence_edges == []


def test_reduce_reduce_commutes_but_conflicts_with_read():
    @task(r="reduce")
    def reducer(r):
        r.data += 1.0

    @task(r="read")
    def reader(r):
        pass

    rt = RegionRuntime()
    reg = Region(np.zeros(4))
    a = rt.launch(reducer, reg)
    b = rt.launch(reducer, reg)
    c = rt.launch(reader, reg)
    assert (a, b) not in rt.dependence_edges
    assert (a, c) in rt.dependence_edges and (b, c) in rt.dependence_edges


def test_disjoint_subregions_parallel():
    @task(r="write")
    def w(r):
        r.data[:] = 1.0

    rt = RegionRuntime()
    reg = Region(np.zeros(10))
    p = reg.partition(2)
    rt.launch(w, p[0])
    rt.launch(w, p[1])
    assert rt.dependence_edges == []  # disjoint rows don't interfere


def test_index_launch_rejects_interference():
    @task(r="write")
    def w(r):
        pass

    rt = RegionRuntime()
    reg = Region(np.zeros(10))
    with pytest.raises(ValueError, match="interfere"):
        rt.index_launch(2, w, lambda i: (reg,))  # same whole region twice


def test_index_launch_accepts_disjoint():
    @task(r="write")
    def w(r):
        r.data[:] = 2.0

    rt = RegionRuntime()
    reg = Region(np.zeros(12))
    p = reg.partition(4)
    lids = rt.index_launch(4, w, lambda i: (p[i],))
    assert len(lids) == 4
    rt.execute()
    assert (reg.data == 2.0).all()


@pytest.mark.parametrize("n_threads", [None, 4])
def test_listing3_spmm_pipeline(n_threads):
    """Listing 3 end-to-end: SpMM + dgemm + dgemmT via privileges."""
    from repro.matrices.csb import CSBMatrix
    from repro.matrices.generators import banded_fem

    csb = CSBMatrix.from_coo(banded_fem(120, 6, seed=5), 30)
    np_ = csb.nbr
    rng = np.random.default_rng(1)
    n = 3
    X = Region(rng.standard_normal((120, n)), "X")
    Y = Region(np.zeros((120, n)), "Y")
    Q = Region(np.zeros((120, n)), "Q")
    Z = rng.standard_normal((n, n))
    P_parts = [np.zeros((n, n)) for _ in range(np_)]
    Xp, Yp, Qp = X.partition(np_), Y.partition(np_), Q.partition(np_)

    @task(rX="read", rY="read_write")
    def spmm(rX, rY, i, j):
        csb.block_spmm(i, j, rX.data, rY.data)

    @task(rY="read", rQ="write")
    def f_dgemm(rY, rQ):
        np.matmul(rY.data, Z, out=rQ.data)

    @task(rY="read", rQ="read")
    def f_dgemm_t(rY, rQ, i):
        P_parts[i][:] = rY.data.T @ rQ.data

    rt = RegionRuntime()
    for i in range(np_):
        for j in range(np_):
            if csb.block_nnz(i, j) > 0:
                rt.launch(spmm, Xp[j], Yp[i], i, j)
    rt.index_launch(np_, f_dgemm, lambda i: (Yp[i], Qp[i]))
    rt.index_launch(np_, f_dgemm_t, lambda i: (Yp[i], Qp[i], i))
    rt.execute(n_threads=n_threads)

    Yref = csb.spmm(X.data)
    np.testing.assert_allclose(Y.data, Yref, atol=1e-12)
    np.testing.assert_allclose(Q.data, Yref @ Z, atol=1e-12)
    np.testing.assert_allclose(sum(P_parts), Yref.T @ (Yref @ Z), atol=1e-10)


def test_parallel_execution_respects_order():
    """A chain of read-write increments must serialize on threads."""
    @task(r="read_write")
    def inc(r):
        v = r.data[0]
        r.data[0] = v + 1

    rt = RegionRuntime()
    reg = Region(np.zeros(1))
    for _ in range(50):
        rt.launch(inc, reg)
    rt.execute(n_threads=8)
    assert reg.data[0] == 50
