"""Block-size buckets, rule of thumb, and performance profiles (§5.4)."""

import pytest

from repro.tuning import (
    BLOCK_COUNT_BUCKETS,
    PerformanceProfile,
    block_size_for_count,
    bucket_of_count,
    candidate_block_sizes,
    performance_profiles,
    recommend_block_count,
    sweep_block_sizes,
)


def test_buckets_cover_8_to_511_disjointly():
    covered = []
    for lo, hi in BLOCK_COUNT_BUCKETS:
        covered.extend(range(lo, hi + 1))
    assert covered == list(range(8, 512))


@pytest.mark.parametrize("count,expected", [
    (8, (8, 15)), (15, (8, 15)), (64, (64, 127)), (511, (256, 511)),
])
def test_bucket_of_count(count, expected):
    assert bucket_of_count(count) == expected


@pytest.mark.parametrize("bad", [7, 512, 0])
def test_bucket_out_of_range(bad):
    with pytest.raises(ValueError, match="8-511"):
        bucket_of_count(bad)


def test_block_size_for_count_roundtrip():
    n = 1_000_000
    for count in (8, 32, 128, 511):
        bs = block_size_for_count(n, count)
        achieved = -(-n // bs)
        assert abs(achieved - count) <= 1


def test_block_size_invalid():
    with pytest.raises(ValueError):
        block_size_for_count(100, 0)


def test_candidate_block_sizes_one_per_bucket():
    cands = candidate_block_sizes(10_000_000)
    assert set(cands) == set(BLOCK_COUNT_BUCKETS)
    # larger counts ⇒ smaller blocks
    sizes = [cands[b] for b in BLOCK_COUNT_BUCKETS]
    assert sizes == sorted(sizes, reverse=True)


def test_candidates_drop_degenerate_for_tiny_matrices():
    cands = candidate_block_sizes(100)
    assert (256, 511) not in cands


def test_rule_of_thumb_matches_paper():
    assert recommend_block_count("deepsparse", "broadwell") == (32, 63)
    assert recommend_block_count("deepsparse", "epyc") == (64, 127)
    assert recommend_block_count("hpx", "broadwell") == (64, 127)
    assert recommend_block_count("regent", "epyc") == (16, 31)
    with pytest.raises(KeyError):
        recommend_block_count("tbb", "broadwell")


def test_sweep_calls_runner_per_bucket():
    seen = []

    def run_at(bs):
        seen.append(bs)
        return float(bs)

    out = sweep_block_sizes(10_000_000, run_at)
    assert len(out) == len(BLOCK_COUNT_BUCKETS)
    assert len(seen) == len(out)


# ----------------------------------------------------------------------
def test_profile_value_and_area():
    p = PerformanceProfile((32, 63), ratios=[1.0, 1.1, 2.0])
    assert p.value_at(1.0) == pytest.approx(1 / 3)
    assert p.value_at(1.15) == pytest.approx(2 / 3)
    assert p.value_at(2.0) == 1.0
    assert 0 < p.area() <= 1.0


def test_performance_profiles_ranking():
    # bucket A always best; bucket B always 1.5× slower
    times = {
        "m1": {(32, 63): 1.0, (64, 127): 1.5},
        "m2": {(32, 63): 2.0, (64, 127): 3.0},
    }
    profs = performance_profiles(times)
    assert profs[(32, 63)].value_at(1.0) == 1.0
    assert profs[(64, 127)].value_at(1.0) == 0.0
    assert profs[(32, 63)].area() > profs[(64, 127)].area()


def test_profiles_reject_nonpositive():
    with pytest.raises(ValueError):
        performance_profiles({"m": {(8, 15): 0.0}})


def test_empty_profile():
    p = PerformanceProfile((8, 15))
    assert p.value_at(2.0) == 0.0
