"""End-to-end equivalence: task DAG execution ≡ eager solver numerics.

This is the validation that makes the DAGs trustworthy programs: the
TDGG-expanded graph, executed serially (any legal order) or on real
threads, must reproduce the eager engine's numbers — eigenvalues
exactly, iterates up to the orthogonal-transform freedom of the
Rayleigh–Ritz step.
"""

import numpy as np
import pytest

from repro.kernels import orthonormalize
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem
from repro.runtime import ThreadedRuntime, build_solver_dag, execute_dag_serial
from repro.solvers import EagerEngine, Workspace, lanczos_trace, lobpcg_trace
from repro.solvers.lanczos import lanczos_iteration, lanczos_operands
from repro.solvers.lobpcg import lobpcg_iteration, lobpcg_operands


@pytest.fixture(scope="module")
def csb():
    return CSBMatrix.from_coo(banded_fem(240, 8, seed=12), 40)


def _subspace_projector(X):
    Q = orthonormalize(X)
    return Q @ Q.T


class TestLOBPCGEquivalence:
    n = 4

    def setup_workspaces(self, csb, seed=3):
        rng = np.random.default_rng(seed)
        X0 = orthonormalize(rng.standard_normal((csb.shape[0], self.n)))
        chunked, small = lobpcg_operands(self.n)
        ws_e = Workspace(csb, chunked, small)
        ws_e.full("Psi")[:] = X0
        ws_d = Workspace(csb, chunked, small)
        ws_d.full("Psi")[:] = X0
        return ws_e, ws_d

    def test_serial_dag_matches_eager(self, csb):
        ws_e, ws_d = self.setup_workspaces(csb)
        lobpcg_iteration(EagerEngine(ws_e), self.n)
        calls, chunked, small = lobpcg_trace(csb, n=self.n)
        dag = build_solver_dag(csb, calls, chunked, small)
        execute_dag_serial(dag, ws_d)
        # Gram blocks and eigenvalues agree to rounding
        np.testing.assert_allclose(ws_e.full("gA_PP"), ws_d.full("gA_PP"),
                                   atol=1e-10)
        np.testing.assert_allclose(ws_e.full("evals"), ws_d.full("evals"),
                                   atol=1e-9)
        # iterates agree as subspaces (RR rotation freedom)
        np.testing.assert_allclose(
            _subspace_projector(ws_e.full("Psi")),
            _subspace_projector(ws_d.full("Psi")),
            atol=1e-6,
        )

    def test_threaded_dag_matches_eager(self, csb):
        ws_e, ws_d = self.setup_workspaces(csb, seed=8)
        lobpcg_iteration(EagerEngine(ws_e), self.n)
        calls, chunked, small = lobpcg_trace(csb, n=self.n)
        dag = build_solver_dag(csb, calls, chunked, small)
        ThreadedRuntime(n_workers=4).execute(dag, ws_d)
        np.testing.assert_allclose(ws_e.full("evals"), ws_d.full("evals"),
                                   atol=1e-9)
        np.testing.assert_allclose(
            _subspace_projector(ws_e.full("Psi")),
            _subspace_projector(ws_d.full("Psi")),
            atol=1e-6,
        )

    def test_multi_iteration_dag_converges(self, csb):
        """80 barriered DAG repetitions converge to the true spectrum
        (no orthonormalization rescue between iterations)."""
        _, ws = self.setup_workspaces(csb)
        calls, chunked, small = lobpcg_trace(csb, n=self.n)
        dag = build_solver_dag(csb, calls, chunked, small)
        for _ in range(80):
            execute_dag_serial(dag, ws)
        got = np.sort(ws.full("evals")[:, 0])
        ref = np.linalg.eigvalsh(csb.to_dense())[:self.n]
        np.testing.assert_allclose(got, ref, rtol=1e-5)

    def test_reduction_mode_same_numerics(self, csb):
        """Fig. 7's two SpMM decompositions compute identical results."""
        from repro.graph.builder import BuildOptions

        ws_e, ws_d = self.setup_workspaces(csb, seed=5)
        calls, chunked, small = lobpcg_trace(csb, n=self.n)
        dag_dep = build_solver_dag(csb, calls, chunked, small,
                                   options=BuildOptions())
        dag_red = build_solver_dag(
            csb, calls, chunked, small,
            options=BuildOptions(spmm_mode="reduction"))
        execute_dag_serial(dag_dep, ws_e)
        execute_dag_serial(dag_red, ws_d)
        np.testing.assert_allclose(ws_e.full("HPsi"), ws_d.full("HPsi"),
                                   atol=1e-10)
        np.testing.assert_allclose(ws_e.full("evals"), ws_d.full("evals"),
                                   atol=1e-9)


class TestLanczosEquivalence:
    k = 12

    def test_serial_dag_matches_eager(self, csb):
        rng = np.random.default_rng(4)
        b = rng.standard_normal((csb.shape[0], 1))
        b /= np.linalg.norm(b)
        chunked, small = lanczos_operands(self.k)
        ws_e = Workspace(csb, chunked, small)
        ws_d = Workspace(csb, chunked, small)
        for ws in (ws_e, ws_d):
            ws.full("q")[:] = b
            ws.full("Qb")[:, 0:1] = b
        calls, chunked, small = lanczos_trace(csb, k=self.k)
        dag = build_solver_dag(csb, calls, chunked, small)
        # the traced iteration writes basis column k//2; run the same
        # single step both ways
        lanczos_iteration(EagerEngine(ws_e), self.k // 2)
        execute_dag_serial(dag, ws_d)
        np.testing.assert_allclose(ws_e.scalar("alpha"),
                                   ws_d.scalar("alpha"), atol=1e-12)
        np.testing.assert_allclose(ws_e.scalar("beta"),
                                   ws_d.scalar("beta"), atol=1e-12)
        np.testing.assert_allclose(ws_e.full("q"), ws_d.full("q"),
                                   atol=1e-10)

    def test_threaded_lanczos_step(self, csb):
        rng = np.random.default_rng(6)
        b = rng.standard_normal((csb.shape[0], 1))
        b /= np.linalg.norm(b)
        calls, chunked, small = lanczos_trace(csb, k=self.k)
        dag = build_solver_dag(csb, calls, chunked, small)
        ws_s = Workspace(csb, chunked, small)
        ws_t = Workspace(csb, chunked, small)
        for ws in (ws_s, ws_t):
            ws.full("q")[:] = b
            ws.full("Qb")[:, 0:1] = b
        execute_dag_serial(dag, ws_s)
        ThreadedRuntime(n_workers=3).execute(dag, ws_t)
        np.testing.assert_allclose(ws_s.full("z"), ws_t.full("z"),
                                   atol=1e-10)


def test_arbitrary_legal_order_is_equivalent(csb):
    """Reversed-priority topological order gives the same numerics —
    the correctness claim of Fig. 3's discussion."""
    import heapq

    n = 3
    rng = np.random.default_rng(11)
    X0 = orthonormalize(rng.standard_normal((csb.shape[0], n)))
    calls, chunked, small = lobpcg_trace(csb, n=n)
    dag = build_solver_dag(csb, calls, chunked, small)

    # max-id-first topological order (very different from default)
    indeg = dag.in_degrees()
    heap = [-t for t, d in enumerate(indeg) if d == 0]
    heapq.heapify(heap)
    order = []
    while heap:
        u = -heapq.heappop(heap)
        order.append(u)
        for v in dag.succ[u]:
            indeg[v] -= 1
            if indeg[v] == 0:
                heapq.heappush(heap, -v)

    ws_a = Workspace(csb, chunked, small)
    ws_b = Workspace(csb, chunked, small)
    ws_a.full("Psi")[:] = X0
    ws_b.full("Psi")[:] = X0
    execute_dag_serial(dag, ws_a)
    execute_dag_serial(dag, ws_b, order=order)
    np.testing.assert_allclose(ws_a.full("evals"), ws_b.full("evals"),
                               atol=1e-9)
    np.testing.assert_allclose(ws_a.full("R"), ws_b.full("R"), atol=1e-9)
