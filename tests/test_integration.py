"""Cross-module integration: the full pipeline at small scale.

Each test exercises a complete path — suite matrix → CSB tiling →
solver trace → TDGG → runtime execution — and checks an end-to-end
paper claim at test scale.
"""

import numpy as np
import pytest

from repro.analysis.experiment import run_cell, run_version
from repro.graph.analyze import average_parallelism, max_width
from repro.matrices import CSBMatrix, load_matrix
from repro.runtime import build_solver_dag
from repro.solvers import lanczos_trace, lobpcg_trace


def test_full_pipeline_shapes_broadwell():
    """AMT ≥ libcsr on a KKT LOBPCG cell; libcsb carries the CSB L2 win."""
    c = run_cell("broadwell", "nlpkkt160", "lobpcg", block_count=48,
                 iterations=2)
    assert c.speedup("deepsparse") > 1.0
    assert c.speedup("hpx") > 1.0
    # Regent trails the other two AMTs
    assert c.speedup("regent") <= max(c.speedup("deepsparse"),
                                      c.speedup("hpx"))


def test_task_census_matches_paper_structure():
    """Task counts per iteration land in the paper's reported range
    ("from 56 to 6,570,446 per iteration" across block sizes)."""
    A = CSBMatrix.from_coo(load_matrix("nlpkkt160", scale=8192), 64)
    calls, chunked, small = lobpcg_trace(A, n=8)
    dag = build_solver_dag(A, calls, chunked, small)
    assert 56 <= len(dag) <= 6_570_446
    # LOBPCG exposes parallelism well beyond its critical path
    assert average_parallelism(dag) > 4
    assert max_width(dag) >= A.nbr


def test_degree_of_parallelism_scales_with_block_count():
    """§3: maximum SpMM concurrency equals output-vector block count."""
    coo = load_matrix("inline1", scale=8192)
    widths = []
    for bs in (256, 128, 64):
        A = CSBMatrix.from_coo(coo, bs)
        calls, chunked, small = lanczos_trace(A, k=10)
        dag = build_solver_dag(A, calls, chunked, small)
        widths.append(max_width(dag))
    assert widths[0] < widths[1] < widths[2]


def test_lanczos_lobpcg_critical_path_ordering():
    """LOBPCG's critical path is much longer than Lanczos's (§4:
    5 vs 29 at function-call level)."""
    from repro.graph.analyze import critical_path_length

    A = CSBMatrix.from_coo(load_matrix("inline1", scale=8192), 128)
    lan, c1, s1 = lanczos_trace(A, k=10)
    lob, c2, s2 = lobpcg_trace(A, n=4)
    cp_lan = critical_path_length(build_solver_dag(A, lan, c1, s1))
    cp_lob = critical_path_length(build_solver_dag(A, lob, c2, s2))
    assert cp_lob > cp_lan


def test_same_dag_all_runtimes_same_misses_structure():
    """The four policies execute identical task sets: flop totals and
    task censuses agree; only timing and placement differ."""
    from repro.analysis.experiment import _trace
    from repro.machine import broadwell
    from repro.runtime import (BSPRuntime, DeepSparseRuntime, HPXRuntime,
                               RegentRuntime)
    from repro.matrices.suite import SUITE
    from repro.tuning.blocksize import block_size_for_count

    bs = block_size_for_count(SUITE["Queen4147"].paper_rows, 32)
    cen, calls, chunked, small = _trace("Queen4147", bs, "lanczos", 20)
    mach = broadwell()
    results = [
        rt.run(cen, calls, chunked, small, iterations=1)
        for rt in (BSPRuntime(mach, "libcsb"), DeepSparseRuntime(mach),
                   HPXRuntime(mach), RegentRuntime(mach))
    ]
    kernels = [r.counters.kernel_tasks for r in results]
    assert all(k == kernels[0] for k in kernels)
    totals = [r.counters.compute_time for r in results]
    assert max(totals) - min(totals) < 1e-9


def test_block_size_tradeoff_exists():
    """§5.4: some intermediate block count beats both extremes."""
    times = {}
    for bc in (8, 64, 480):
        r = run_version("broadwell", "Queen4147", "lobpcg", "deepsparse",
                        block_count=bc, iterations=1)
        times[bc] = r.time_per_iteration
    assert times[64] < times[8]       # too coarse: idle cores
    assert times[64] <= times[480] * 1.3  # fine side stays close


def test_scaled_matrix_and_census_same_family_behaviour():
    """The scaled double and full-scale census agree qualitatively:
    banded matrices leave most blocks empty, web graphs don't."""
    from repro.matrices.census import census_for
    from repro.matrices.suite import SUITE

    fem_s = CSBMatrix.from_coo(load_matrix("Flan_1565", scale=16384), None
                               or 32)
    web_s = CSBMatrix.from_coo(load_matrix("twitter7", scale=16384), 160)
    fem_c = census_for(SUITE["Flan_1565"],
                       -(-SUITE["Flan_1565"].paper_rows // 32))
    web_c = census_for(SUITE["twitter7"],
                       -(-SUITE["twitter7"].paper_rows // 32))

    def empty_frac(m):
        return m.n_empty_blocks() / (m.nbr * m.nbc)

    assert empty_frac(fem_s) > 0.5 and empty_frac(fem_c) > 0.5
    assert empty_frac(web_s) < 0.5 and empty_frac(web_c) < 0.5
