"""Golden traces: the observability layer's event stream is frozen.

``tests/fixtures/golden_traces.json`` pins, for every solver version
on one small evaluation cell, the shape of the trace produced by
:class:`repro.trace.Tracer`: event counts per kind, the set of worker
lanes, the number of replay-synthesized task events, the engaged
steady-state iteration, the per-level miss totals carried in task
args, and the exact makespan.  Any change to what the engines emit —
an extra event, a dropped lane, a perturbed timestamp — fails loudly
here before it silently corrupts a Chrome trace someone is staring at
in Perfetto.

The live assertions below additionally check properties the fixture
cannot freeze by value: miss args summing exactly to the engine's
:class:`~repro.machine.perf.PerfCounters`, per-event timestamp sanity,
and lane assignments staying inside the machine's core count.

If a change *intends* to alter the stream (new event kind, different
sampling cadence), regenerate the fixture in the same commit; see the
note at the bottom of this file.
"""

from __future__ import annotations

import json
import os
from collections import Counter

import pytest

from repro.analysis.experiment import run_version
from repro.trace import InMemorySink, Tracer

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "golden_traces.json")

#: One small cell, all five versions.  iterations=4 arms the
#: steady-state fast path, so the fixture also freezes how many task
#: events each version replays from the tape (synthesized=True).
CELL = dict(machine="broadwell", matrix="inline1", solver="lanczos",
            block_count=16, iterations=4)
VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")

with open(FIXTURE, "r", encoding="utf-8") as _f:
    _GOLDEN = json.load(_f)

assert set(_GOLDEN) == set(VERSIONS), "fixture must cover all versions"


def _traced(version):
    tracer = Tracer(InMemorySink())
    res = run_version(CELL["machine"], CELL["matrix"], CELL["solver"],
                      version, block_count=CELL["block_count"],
                      iterations=CELL["iterations"], tracer=tracer)
    return res, tracer


def _profile(res, tracer) -> dict:
    """The frozen shape of one trace (exact floats, like the engine
    equivalence fixture)."""
    events = tracer.events
    tasks = [e for e in events if e.kind == "task"]
    return {
        "event_counts": dict(sorted(Counter(e.kind
                                            for e in events).items())),
        "n_tasks": len(tasks),
        "n_synthesized": sum(1 for t in tasks if t.synthesized),
        "lanes": sorted({t.core for t in tasks}),
        "steady_state_at": res.steady_state_at,
        "miss_sums": [sum(t.l1 for t in tasks),
                      sum(t.l2 for t in tasks),
                      sum(t.l3 for t in tasks)],
        "makespan": max(t.end for t in tasks),
    }


@pytest.mark.parametrize("version", VERSIONS)
def test_trace_shape_matches_golden(version):
    res, tracer = _traced(version)
    got = _profile(res, tracer)
    expected = _GOLDEN[version]
    for field, exp in expected.items():
        assert got[field] == exp, (
            f"{version}: trace {field} drifted\n  expected {exp!r}\n"
            f"  got      {got[field]!r}\nEither revert the change or "
            f"regenerate tests/fixtures/golden_traces.json."
        )


@pytest.mark.parametrize("version", VERSIONS)
def test_task_miss_args_sum_to_engine_counters(version):
    """Per-task miss attribution must account for *every* miss.

    Replay-synthesized task events carry the same charge decomposition
    as the honestly simulated iteration they replay, so the totals hold
    with the fast path engaged too.
    """
    res, tracer = _traced(version)
    tasks = [e for e in tracer.events if e.kind == "task"]
    assert sum(t.l1 for t in tasks) == res.counters.l1_misses
    assert sum(t.l2 for t in tasks) == res.counters.l2_misses
    assert sum(t.l3 for t in tasks) == res.counters.l3_misses
    assert len(tasks) == res.counters.tasks_executed
    assert sum(t.end - t.start for t in tasks) == \
        pytest.approx(res.counters.busy_time, rel=0, abs=1e-9)


@pytest.mark.parametrize("version", VERSIONS)
def test_timestamps_and_lanes_are_sane(version):
    res, tracer = _traced(version)
    events = tracer.events
    tasks = [e for e in events if e.kind == "task"]
    barriers = [e for e in events if e.kind == "barrier"]
    assert len(barriers) == CELL["iterations"]
    # Barriers partition the run: one per iteration, strictly ordered,
    # each closing after its compute span ends.
    for i, b in enumerate(barriers):
        assert b.iteration == i
        assert b.start <= b.compute_end <= b.end
    for a, b in zip(barriers, barriers[1:]):
        assert a.end <= b.start
    # Task events: non-negative spans on valid lanes, inside the run.
    for t in tasks:
        assert 0.0 <= t.start <= t.end
        assert 0 <= t.core < res.n_cores
        assert 0 <= t.iteration < CELL["iterations"]
    # Every lane the engine reports as used appears in the trace.
    assert {t.core for t in tasks} == set(_GOLDEN[version]["lanes"])


@pytest.mark.parametrize("version", VERSIONS)
def test_machine_samples_cover_every_iteration(version):
    _, tracer = _traced(version)
    events = tracer.events
    for kind in ("cache", "burst"):
        its = sorted({e.iteration for e in events if e.kind == kind})
        assert its == list(range(CELL["iterations"])), (
            f"{version}: {kind} samples missing iterations"
        )
    # Three cache levels sampled per iteration.
    per_it = Counter(e.iteration for e in events if e.kind == "cache")
    assert set(per_it.values()) == {3}


# Fixture regeneration (only together with an intentional change to
# the event stream):
#
#   PYTHONPATH=src:. python - <<'EOF'
#   import json
#   from tests.test_trace_golden import (FIXTURE, VERSIONS, _traced,
#                                        _profile)
#   out = {}
#   for v in VERSIONS:
#       res, tracer = _traced(v)
#       out[v] = _profile(res, tracer)
#   json.dump(out, open(FIXTURE, "w"), indent=1, sort_keys=True)
#   EOF
