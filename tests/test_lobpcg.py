"""LOBPCG solver: eager correctness against dense references."""

import numpy as np
import pytest

from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem, random_symmetric
from repro.solvers import lobpcg, lobpcg_trace


@pytest.fixture(scope="module")
def spd():
    return CSBMatrix.from_coo(banded_fem(300, 8, seed=7), 60)


def test_smallest_eigenvalues_converge(spd):
    res = lobpcg(spd, n=4, maxiter=120, tol=1e-8)
    ref = np.linalg.eigvalsh(spd.to_dense())[:4]
    np.testing.assert_allclose(res.eigenvalues, ref, rtol=1e-5)


def test_eigenvectors_residual(spd):
    res = lobpcg(spd, n=3, maxiter=120, tol=1e-8)
    d = spd.to_dense()
    for k in range(3):
        v = res.eigenvectors[:, k]
        lam = res.eigenvalues[k]
        assert np.linalg.norm(d @ v - lam * v) < 1e-3 * max(1, abs(lam))


def test_history_tracks_progress(spd):
    res = lobpcg(spd, n=2, maxiter=40, tol=1e-9)
    assert len(res.history) == res.iterations
    assert res.history.reduction() < 0.1  # residual dropped >10×
    assert res.history.mostly_monotone()


def test_block_width_one(spd):
    res = lobpcg(spd, n=1, maxiter=150, tol=1e-8)
    ref = np.linalg.eigvalsh(spd.to_dense())[0]
    assert res.eigenvalues[0] == pytest.approx(ref, rel=1e-4)


def test_invalid_width(spd):
    with pytest.raises(ValueError, match="positive"):
        lobpcg(spd, n=0)


def test_deterministic(spd):
    a = lobpcg(spd, n=2, maxiter=10, seed=9)
    b = lobpcg(spd, n=2, maxiter=10, seed=9)
    np.testing.assert_array_equal(a.eigenvalues, b.eigenvalues)


def test_different_matrix_class():
    m = CSBMatrix.from_coo(random_symmetric(200, 10, seed=1), 40)
    res = lobpcg(m, n=3, maxiter=120, tol=1e-8)
    ref = np.linalg.eigvalsh(m.to_dense())[:3]
    np.testing.assert_allclose(res.eigenvalues, ref, rtol=1e-4)


def test_trace_structure(spd):
    calls, chunked, small = lobpcg_trace(spd, n=8)
    ops = [c.op for c in calls]
    assert ops.count("SPMM") == 3          # HΨ, HR, HQ
    assert ops.count("XTY") == 13          # M + 12 Gram blocks
    assert ops.count("XY") == 4
    assert "SMALL" in ops
    assert chunked["Psi"] == 8
    assert small["gA_PQ"] == (8, 8)


def test_trace_has_convergence_check(spd):
    calls, _, _ = lobpcg_trace(spd, n=4)
    small_ops = [c.meta_dict.get("op") for c in calls if c.op == "SMALL"]
    assert "CONV_CHECK" in small_ops
    assert "LOBPCG_RR" in small_ops
