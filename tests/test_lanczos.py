"""Lanczos solver: eager correctness and trace structure."""

import numpy as np
import pytest

from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem, random_symmetric
from repro.solvers import lanczos, lanczos_trace
from repro.solvers.lanczos import tridiagonal_eigenvalues


@pytest.fixture(scope="module")
def spd():
    return CSBMatrix.from_coo(random_symmetric(250, 8, seed=3), 50)


def test_extreme_eigenvalue_converges(spd):
    res = lanczos(spd, k=40)
    ref = np.linalg.eigvalsh(spd.to_dense())
    assert res.extreme("largest") == pytest.approx(ref[-1], rel=1e-8)


def test_smallest_eigenvalue_converges(spd):
    res = lanczos(spd, k=80)
    ref = np.linalg.eigvalsh(spd.to_dense())
    assert res.extreme("smallest") == pytest.approx(ref[0], rel=1e-5)


def test_basis_orthonormal(spd):
    res = lanczos(spd, k=25)
    Q = res.basis[:, :res.iterations]
    np.testing.assert_allclose(Q.T @ Q, np.eye(res.iterations), atol=1e-8)


def test_ritz_values_interlace(spd):
    """All Ritz values lie within the spectrum's range."""
    res = lanczos(spd, k=30)
    ref = np.linalg.eigvalsh(spd.to_dense())
    assert res.eigenvalues[0] >= ref[0] - 1e-8
    assert res.eigenvalues[-1] <= ref[-1] + 1e-8


def test_deterministic(spd):
    a = lanczos(spd, k=15, seed=5)
    b = lanczos(spd, k=15, seed=5)
    np.testing.assert_array_equal(a.alphas, b.alphas)


def test_k_validation(spd):
    with pytest.raises(ValueError, match="at least 2"):
        lanczos(spd, k=1)


def test_extreme_validation(spd):
    res = lanczos(spd, k=10)
    with pytest.raises(ValueError):
        res.extreme("median")


def test_tridiagonal_eigenvalues_known():
    # T = [[2,1],[1,2]] has eigenvalues 1 and 3
    np.testing.assert_allclose(
        tridiagonal_eigenvalues([2.0, 2.0], [1.0]), [1.0, 3.0]
    )


def test_trace_structure(spd):
    calls, chunked, small = lanczos_trace(spd, k=20)
    ops = [c.op for c in calls]
    assert ops == ["SPMM", "DOT", "XTY", "XY", "SUB", "XTY", "XY", "SUB",
                   "DOT", "SCALE", "COPY", "COPY", "SMALL"]
    assert chunked["Qb"] == 20
    assert small["T"] == (20, 2)


def test_trace_fixed_across_iterations(spd):
    """The per-iteration trace shape is iteration-invariant (§3.1)."""
    c1, _, _ = lanczos_trace(spd, k=20)
    c2, _, _ = lanczos_trace(spd, k=20)
    assert [c.op for c in c1] == [c.op for c in c2]
    assert [c.reads for c in c1] == [c.reads for c in c2]


def test_invariant_subspace_early_stop():
    """On (a multiple of) the identity the Krylov space is 1-D."""
    from repro.matrices.coo import COOMatrix

    eye = COOMatrix((50, 50), np.arange(50), np.arange(50), np.full(50, 4.0))
    csb = CSBMatrix.from_coo(eye, 10)
    res = lanczos(csb, k=10)
    assert res.iterations == 1
    assert res.eigenvalues[0] == pytest.approx(4.0)
