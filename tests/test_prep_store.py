"""Behavior suite for the cross-cell prep store (repro.bench.prep).

Covers the durability contract (atomic writes, quarantine-on-corruption
reads, salt orphaning, gc), the per-process deserialization memo, the
environment knobs, and the end-to-end guarantee that matters most: a
``run_version`` served from a loaded artifact is bit-identical to one
built from scratch.
"""

import os
import pickle

import numpy as np
import pytest

import repro.analysis.experiment as experiment
from repro.bench.prep import (
    PREP_FORMAT,
    PREP_SALT,
    PrepStore,
    default_prep_store,
)
from repro.bench.runner import Cell, ExperimentRunner
from repro.bench.cache import ResultCache


CONFIG = {"kind": "prep", "machine": "broadwell", "matrix": "inline1",
          "solver": "lobpcg", "width": 8}


def _artifact(tag="a"):
    return {"tag": tag, "arr": np.arange(16, dtype=np.int64)}


def _clear_experiment_memos():
    experiment._census.cache_clear()
    experiment._trace.cache_clear()
    experiment._dag.cache_clear()
    experiment._prepped_dag.cache_clear()
    experiment._census_loaded.clear()


@pytest.fixture
def store(tmp_path):
    return PrepStore(root=str(tmp_path / "prep"), enabled=True)


# ----------------------------------------------------------------------
# Core round-trip + layout
# ----------------------------------------------------------------------

def test_put_get_roundtrip(store):
    assert store.get(CONFIG) is None
    store.put(CONFIG, _artifact())
    assert CONFIG in store
    got = store.get(CONFIG)
    assert got["tag"] == "a"
    assert np.array_equal(got["arr"], np.arange(16))
    st = store.stats()
    assert st["writes"] == 1 and st["hits"] == 1 and st["misses"] == 1


def test_content_addressed_layout(store):
    key = store.key(CONFIG)
    assert store.key(dict(CONFIG)) == key  # deterministic
    assert store.key({**CONFIG, "width": 9}) != key
    store.put(CONFIG, _artifact())
    path = store.path_for(key)
    assert os.path.exists(path)
    assert os.path.basename(os.path.dirname(path)) == key[:2]
    assert path.endswith(key + ".prep")


def test_disabled_store_is_inert(tmp_path):
    store = PrepStore(root=str(tmp_path / "prep"), enabled=False)
    store.put(CONFIG, _artifact())
    assert store.get(CONFIG) is None
    assert CONFIG not in store
    assert not os.path.exists(store.root)


# ----------------------------------------------------------------------
# Corruption → quarantine round-trips
# ----------------------------------------------------------------------

def _flip_payload_byte(path):
    with open(path, "r+b") as f:
        f.readline()                    # skip the JSON header line
        pos = f.tell()
        byte = f.read(1)
        f.seek(pos)
        f.write(bytes([byte[0] ^ 0xFF]))


def test_corrupt_payload_quarantined_then_recovers(store):
    store.put(CONFIG, _artifact())
    path = store.path_for(store.key(CONFIG))
    _flip_payload_byte(path)
    assert store.get(CONFIG) is None       # checksum mismatch -> miss
    assert store.quarantined == 1
    assert not os.path.exists(path)
    assert os.listdir(store.quarantine_dir()) == [os.path.basename(path)]
    # The store recovers: a rewrite serves cleanly again.
    store.put(CONFIG, _artifact("fresh"))
    assert store.get(CONFIG)["tag"] == "fresh"


def test_truncated_file_quarantined(store):
    store.put(CONFIG, _artifact())
    path = store.path_for(store.key(CONFIG))
    size = os.path.getsize(path)
    with open(path, "r+b") as f:
        f.truncate(size - 7)
    assert store.get(CONFIG) is None
    assert store.quarantined == 1
    assert not os.path.exists(path)


def test_garbage_header_quarantined(store):
    store.put(CONFIG, _artifact())
    path = store.path_for(store.key(CONFIG))
    with open(path, "wb") as f:
        f.write(b"not json at all\njunk")
    assert store.get(CONFIG) is None
    assert store.quarantined == 1


def test_wrong_salt_quarantined(store, tmp_path):
    """An artifact written under another salt must never be served."""
    other = PrepStore(root=str(tmp_path / "prep"), enabled=True,
                      salt="cost-v999/prep-v999")
    other.put(CONFIG, _artifact("stale"))
    # Plant the foreign file where the current-salt store would look.
    src = other.path_for(other.key(CONFIG))
    dst = store.path_for(store.key(CONFIG))
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    os.replace(src, dst)
    assert store.get(CONFIG) is None
    assert store.quarantined == 1


# ----------------------------------------------------------------------
# Deserialization memo
# ----------------------------------------------------------------------

def test_memo_serves_same_object_after_stat(store):
    store.put(CONFIG, _artifact())
    first = store.get(CONFIG)
    second = store.get(CONFIG)
    assert second is first                 # memo hit, no re-unpickle
    assert store.hits == 2


def test_memo_invalidated_by_rewrite(store):
    store.put(CONFIG, _artifact("v1"))
    assert store.get(CONFIG)["tag"] == "v1"
    store.put(CONFIG, _artifact("v2"))     # put drops the memo entry
    assert store.get(CONFIG)["tag"] == "v2"


def test_memo_does_not_mask_tampering(store):
    store.put(CONFIG, _artifact())
    store.get(CONFIG)                      # memoized
    path = store.path_for(store.key(CONFIG))
    _flip_payload_byte(path)               # changes mtime -> stat differs
    assert store.get(CONFIG) is None       # re-read, quarantined
    assert store.quarantined == 1
    # And the memo entry is gone too: a fresh file is re-read cleanly.
    store.put(CONFIG, _artifact("clean"))
    assert store.get(CONFIG)["tag"] == "clean"


# ----------------------------------------------------------------------
# gc
# ----------------------------------------------------------------------

def test_gc_drops_stale_tmp_and_corrupt_keeps_live(store, tmp_path):
    store.put(CONFIG, _artifact())
    live_path = store.path_for(store.key(CONFIG))
    # Stale-salt entry.
    other = PrepStore(root=store.root, enabled=True, salt="old-salt")
    other.put({**CONFIG, "width": 99}, _artifact("old"))
    # Leftover tempfile + quarantined junk.
    tmp_file = os.path.join(os.path.dirname(live_path), "leftover.tmp")
    with open(tmp_file, "wb") as f:
        f.write(b"junk")
    os.makedirs(store.quarantine_dir(), exist_ok=True)
    with open(os.path.join(store.quarantine_dir(), "bad.prep"), "wb") as f:
        f.write(b"junk")
    removed = store.gc()
    assert removed == {"stale": 1, "tmp": 1, "corrupt": 1}
    assert os.path.exists(live_path)
    assert store.get(CONFIG) is not None


def test_clear_removes_everything(store):
    store.put(CONFIG, _artifact())
    store.put({**CONFIG, "width": 9}, _artifact())
    assert store.clear() == 2
    assert store.get(CONFIG) is None


def test_entries_lists_headers_and_survives_damage(store):
    store.put(CONFIG, _artifact())
    bad = os.path.join(store.root, "zz", "broken.prep")
    os.makedirs(os.path.dirname(bad), exist_ok=True)
    with open(bad, "wb") as f:
        f.write(b"\xff\xfe not a header")
    entries = store.entries()
    assert len(entries) == 2
    good = [e for e in entries if "error" not in e]
    assert len(good) == 1
    assert good[0]["format"] == PREP_FORMAT
    assert good[0]["salt"] == PREP_SALT
    assert good[0]["config"]["matrix"] == "inline1"


# ----------------------------------------------------------------------
# Environment knobs
# ----------------------------------------------------------------------

def test_default_store_tracks_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "a"))
    monkeypatch.delenv("REPRO_NO_PREP", raising=False)
    s1 = default_prep_store()
    assert s1.root == str(tmp_path / "a") and s1.enabled
    assert default_prep_store() is s1       # unchanged env -> same instance
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "b"))
    s2 = default_prep_store()
    assert s2 is not s1 and s2.root == str(tmp_path / "b")
    monkeypatch.setenv("REPRO_NO_PREP", "1")
    assert not default_prep_store().enabled


# ----------------------------------------------------------------------
# Integration with the experiment driver and runner
# ----------------------------------------------------------------------

def test_run_version_loaded_vs_built_bit_identical(tmp_path, monkeypatch):
    """A run served from a loaded artifact == one built from scratch."""
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "prep"))
    monkeypatch.delenv("REPRO_NO_PREP", raising=False)
    _clear_experiment_memos()
    store = default_prep_store()
    built = experiment.run_version(
        "broadwell", "inline1", "lobpcg", "deepsparse",
        block_count=16, iterations=2,
    ).summary().to_dict()
    assert store.writes >= 1
    _clear_experiment_memos()               # force the store path
    loaded = experiment.run_version(
        "broadwell", "inline1", "lobpcg", "deepsparse",
        block_count=16, iterations=2,
    ).summary().to_dict()
    assert store.hits >= 1
    assert loaded == built


def test_no_prep_env_falls_back_to_in_process_build(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "prep"))
    monkeypatch.setenv("REPRO_NO_PREP", "1")
    _clear_experiment_memos()
    res = experiment.run_version(
        "broadwell", "inline1", "lobpcg", "deepsparse",
        block_count=16, iterations=1,
    )
    assert res.summary().total_time > 0
    assert not os.path.exists(str(tmp_path / "prep"))


def test_prebuild_prep_writes_shareable_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "prep"))
    monkeypatch.delenv("REPRO_NO_PREP", raising=False)
    _clear_experiment_memos()
    store = default_prep_store()
    pc = experiment.prebuild_prep(
        "broadwell", "inline1", "lobpcg", "deepsparse", block_count=16)
    assert pc in store
    art = store.get(pc)
    assert art["dag"]._soa is not None      # ships frozen
    assert len(pickle.dumps(art)) > 0
    # Repeat prebuild is absorbed by the in-process memo: no rewrite.
    writes = store.writes
    experiment.prebuild_prep(
        "broadwell", "inline1", "lobpcg", "deepsparse", block_count=16)
    assert store.writes == writes


def test_runner_prebuilds_before_fanout(tmp_path, monkeypatch):
    """The runner's pre-fan-out hook builds each artifact in the parent."""
    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "prep"))
    monkeypatch.delenv("REPRO_NO_PREP", raising=False)
    _clear_experiment_memos()
    store = default_prep_store()
    runner = ExperimentRunner(cache=ResultCache(enabled=False), jobs=2)
    cells = [
        Cell("broadwell", "inline1", "lobpcg", "deepsparse",
             block_count=16, iterations=1, seed=s)
        for s in (0, 1)
    ]
    configs = {f"k{i}": c.config() for i, c in enumerate(cells)}
    runner._prebuild_prep(list(configs), configs)
    # Both cells share one prep subkey -> exactly one artifact written.
    assert store.writes == 1
    assert len(store.entries()) == 1


# ----------------------------------------------------------------------
# Concurrency: atomic publish + quarantine under racing readers
# ----------------------------------------------------------------------
def test_parallel_writers_same_key_one_valid_artifact(tmp_path):
    """Threads racing ``put`` on one key leave exactly one loadable
    artifact and no stray temp files; concurrent readers never observe
    a torn payload or spuriously quarantine a clean write."""
    import threading

    root = str(tmp_path / "prep")
    tags = [f"w{i}" for i in range(8)]
    barrier = threading.Barrier(12)
    failures = []
    stop = threading.Event()

    def writer(tag):
        store = PrepStore(root=root, enabled=True)
        barrier.wait()
        for _ in range(25):
            store.put(CONFIG, _artifact(tag))

    def reader():
        store = PrepStore(root=root, enabled=True)
        barrier.wait()
        while not stop.is_set():
            try:
                got = store.get(CONFIG)
            except Exception as e:  # pragma: no cover - the bug case
                failures.append(f"reader raised {type(e).__name__}: {e}")
                return
            if got is not None:
                if got["tag"] not in tags:
                    failures.append(f"torn artifact: {got['tag']!r}")
                    return
                if not np.array_equal(got["arr"], np.arange(16)):
                    failures.append("torn payload array")
                    return
        if store.quarantined:
            failures.append(f"reader quarantined {store.quarantined} "
                            f"artifacts during clean writes")

    crew = ([threading.Thread(target=writer, args=(t,)) for t in tags]
            + [threading.Thread(target=reader) for _ in range(4)])
    for t in crew:
        t.start()
    for t in crew[:8]:
        t.join()
    stop.set()
    for t in crew[8:]:
        t.join()
    assert not failures, failures

    check = PrepStore(root=root, enabled=True)
    subdir = os.path.dirname(check.path_for(check.key(CONFIG)))
    artifacts = [n for n in os.listdir(subdir) if n.endswith(".prep")]
    leftovers = [n for n in os.listdir(subdir) if n.endswith(".tmp")]
    assert len(artifacts) == 1
    assert not leftovers, f"unpublished temp files left: {leftovers}"
    final = check.get(CONFIG)
    assert final is not None and final["tag"] in tags
    assert check.quarantined == 0


def test_concurrent_readers_during_quarantine_never_torn(tmp_path):
    """Readers racing over a corrupt artifact each get a clean miss
    (or a valid re-published artifact) while one of them moves the
    evidence to ``corrupt/`` — nobody crashes, nobody loads garbage,
    and the shared per-process memo never resurrects the bad bytes."""
    import threading

    root = str(tmp_path / "prep")
    seed = PrepStore(root=root, enabled=True)
    seed.put(CONFIG, _artifact("good"))
    _flip_payload_byte(seed.path_for(seed.key(CONFIG)))

    barrier = threading.Barrier(9)
    first_read = threading.Event()
    failures = []
    lock = threading.Lock()
    shared = PrepStore(root=root, enabled=True)  # one memo, many threads

    def reader():
        barrier.wait()
        for _ in range(50):
            try:
                got = shared.get(CONFIG)
            except Exception as e:  # pragma: no cover - the bug case
                with lock:
                    failures.append(f"raised {type(e).__name__}: {e}")
                return
            finally:
                first_read.set()
            if got is not None:
                if got["tag"] != "good" or not np.array_equal(
                        got["arr"], np.arange(16)):
                    with lock:
                        failures.append("torn artifact observed")
                    return

    def rewriter():
        # Held until a reader has faced the corrupt bytes, so the
        # quarantine path is exercised every run — the readers still
        # race each other over it, and then race these republishes.
        store = PrepStore(root=root, enabled=True)
        barrier.wait()
        first_read.wait()
        for _ in range(25):
            store.put(CONFIG, _artifact("good"))

    crew = ([threading.Thread(target=reader) for _ in range(8)]
            + [threading.Thread(target=rewriter)])
    for t in crew:
        t.start()
    for t in crew:
        t.join()
    assert not failures, failures
    final = PrepStore(root=root, enabled=True)
    got = final.get(CONFIG)
    assert got is not None and got["tag"] == "good"
    assert final.quarantined == 0
    # The corrupt original was preserved for post-mortem, not lost.
    qdir = seed.quarantine_dir()
    assert os.path.isdir(qdir) and len(os.listdir(qdir)) >= 1
