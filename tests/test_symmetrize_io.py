"""Symmetrization rules (Table 1 preprocessing) and Matrix Market I/O."""

import io

import numpy as np
import pytest

from repro.matrices.coo import COOMatrix
from repro.matrices.io import (
    load_npz,
    read_matrix_market,
    save_npz,
    write_matrix_market,
)
from repro.matrices.symmetrize import (
    fill_binary_random,
    is_symmetric,
    symmetrize_lower,
)


def test_symmetrize_lower_formula(rng):
    """A_new = L + Lᵀ − D exactly."""
    d = rng.standard_normal((12, 12))
    a = COOMatrix.from_dense(d)
    s = symmetrize_lower(a).to_dense()
    L = np.tril(d)
    expected = L + L.T - np.diag(np.diag(d))
    np.testing.assert_allclose(s, expected, atol=1e-14)


def test_symmetrize_produces_symmetric(rng):
    d = rng.standard_normal((20, 20))
    s = symmetrize_lower(COOMatrix.from_dense(d))
    assert is_symmetric(s)


def test_symmetrize_requires_square():
    with pytest.raises(ValueError, match="square"):
        symmetrize_lower(COOMatrix.empty((3, 4)))


def test_is_symmetric_detects_asymmetry():
    a = COOMatrix((3, 3), [0, 1], [1, 2], [1.0, 2.0])
    assert not is_symmetric(a)
    assert not is_symmetric(COOMatrix.empty((2, 3)))


def test_is_symmetric_value_mismatch():
    a = COOMatrix((2, 2), [0, 1], [1, 0], [1.0, 2.0])
    assert not is_symmetric(a)
    assert is_symmetric(a, tol=1.5)


def test_fill_binary_random_preserves_symmetry():
    n = 30
    rows = [0, 1, 1, 5, 5, 9]
    cols = [1, 0, 5, 1, 9, 5]
    a = COOMatrix((n, n), rows, cols, np.ones(6))
    f = fill_binary_random(a, seed=3)
    assert is_symmetric(f)
    d = f.to_dense()
    assert d[0, 1] == d[1, 0] != 0
    assert (d[d != 0] > 0.1).all()  # bounded away from zero


def test_fill_binary_random_deterministic():
    a = COOMatrix((5, 5), [0, 1], [1, 0], [1.0, 1.0])
    f1 = fill_binary_random(a, seed=7)
    f2 = fill_binary_random(a, seed=7)
    np.testing.assert_array_equal(f1.vals, f2.vals)
    f3 = fill_binary_random(a, seed=8)
    assert not np.array_equal(f1.vals, f3.vals)


# ----------------------------------------------------------------------
def test_matrix_market_roundtrip(small_sym_coo):
    buf = io.StringIO()
    write_matrix_market(buf, small_sym_coo)
    buf.seek(0)
    back = read_matrix_market(buf)
    np.testing.assert_allclose(back.to_dense(), small_sym_coo.to_dense())


def test_matrix_market_symmetric_roundtrip(small_sym_coo):
    buf = io.StringIO()
    write_matrix_market(buf, small_sym_coo, symmetric=True)
    buf.seek(0)
    text = buf.getvalue()
    assert "symmetric" in text.splitlines()[0]
    back = read_matrix_market(io.StringIO(text))
    np.testing.assert_allclose(back.to_dense(), small_sym_coo.to_dense())


def test_matrix_market_pattern():
    mm = "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n3 3\n"
    a = read_matrix_market(io.StringIO(mm))
    assert a.nnz == 2
    assert a.to_dense()[0, 1] == 1.0 and a.to_dense()[2, 2] == 1.0


def test_matrix_market_bad_banner():
    with pytest.raises(ValueError, match="banner"):
        read_matrix_market(io.StringIO("garbage\n1 1 0\n"))


def test_matrix_market_wrong_count():
    mm = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n"
    with pytest.raises(ValueError, match="expected 3"):
        read_matrix_market(io.StringIO(mm))


def test_npz_roundtrip(tmp_path, small_sym_coo):
    p = tmp_path / "m.npz"
    save_npz(p, small_sym_coo)
    back = load_npz(p)
    assert back.shape == small_sym_coo.shape
    np.testing.assert_array_equal(back.rows, small_sym_coo.rows)
    np.testing.assert_array_equal(back.vals, small_sym_coo.vals)
