"""Correctness of the content-addressed on-disk result cache."""

from __future__ import annotations

import json
import os
import subprocess
import sys

from repro.analysis.experiment import run_version
from repro.bench.cache import (
    CACHE_SALT,
    ResultCache,
    cache_key,
    default_cache,
)
from repro.bench.runner import Cell

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

CONFIG = Cell(machine="broadwell", matrix="inline1", solver="lanczos",
              version="deepsparse", block_count=16,
              iterations=1).config()


def _summary():
    return run_version("broadwell", "inline1", "lanczos", "deepsparse",
                       block_count=16, iterations=1).summary()


# ----------------------------------------------------------------------
# keying
# ----------------------------------------------------------------------
def test_key_is_deterministic_and_order_insensitive():
    k1 = cache_key(CONFIG)
    k2 = cache_key(dict(reversed(list(CONFIG.items()))))
    assert k1 == k2
    assert len(k1) == 64  # sha256 hex


def test_key_is_stable_across_processes():
    """No PYTHONHASHSEED / id() leakage into the content address."""
    code = (
        "import json, sys; from repro.bench.cache import cache_key; "
        "print(cache_key(json.loads(sys.argv[1])))"
    )
    out = subprocess.run(
        [sys.executable, "-c", code, json.dumps(CONFIG)],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": SRC, "PYTHONHASHSEED": "12345"},
    )
    assert out.stdout.strip() == cache_key(CONFIG)


def test_key_depends_on_config_and_salt():
    other = dict(CONFIG, block_count=32)
    assert cache_key(other) != cache_key(CONFIG)
    assert cache_key(CONFIG, salt="cost-v999") != cache_key(CONFIG)


def test_libcsr_block_count_is_normalized_out_of_the_key():
    a = Cell(machine="broadwell", matrix="inline1", solver="lanczos",
             version="libcsr", block_count=16).config()
    b = Cell(machine="broadwell", matrix="inline1", solver="lanczos",
             version="libcsr", block_count=480).config()
    assert cache_key(a) == cache_key(b)


# ----------------------------------------------------------------------
# store behaviour
# ----------------------------------------------------------------------
def test_miss_then_hit_round_trips_bit_exactly(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    assert cache.get(CONFIG) is None
    summary = _summary()
    cache.put(CONFIG, summary)
    assert CONFIG in cache
    back = cache.get(CONFIG)
    assert back == summary
    assert back.total_time == summary.total_time
    assert back.counters.kernel_time == summary.counters.kernel_time
    assert cache.stats()["hits"] == 1
    assert cache.stats()["writes"] == 1


def test_salt_bump_invalidates_old_entries(tmp_path):
    old = ResultCache(root=str(tmp_path), salt=CACHE_SALT)
    old.put(CONFIG, _summary())
    bumped = ResultCache(root=str(tmp_path), salt="cost-v999/entry-v1")
    assert bumped.get(CONFIG) is None  # old entry no longer addressed
    assert old.get(CONFIG) is not None  # ...but still there for old code


def test_disabled_cache_never_reads_or_writes(tmp_path, monkeypatch):
    primed = ResultCache(root=str(tmp_path))
    primed.put(CONFIG, _summary())
    # Explicit disable: the existing entry must not be served.
    off = ResultCache(root=str(tmp_path), enabled=False)
    assert off.get(CONFIG) is None
    off.put(CONFIG, _summary())
    assert off.stats()["writes"] == 0
    # Environment disable takes effect at construction.
    monkeypatch.setenv("REPRO_NO_CACHE", "1")
    env_off = ResultCache(root=str(tmp_path))
    assert not env_off.enabled
    assert env_off.get(CONFIG) is None


def test_env_root_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
    cache = ResultCache()
    assert cache.root == str(tmp_path / "alt")


def test_corrupted_entry_is_a_miss_and_is_removed(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    cache.put(CONFIG, _summary())
    path = cache.path_for(cache.key(CONFIG))

    # Truncated JSON.
    with open(path, "w", encoding="utf-8") as f:
        f.write('{"format": 1, "summary": {"mach')
    assert cache.get(CONFIG) is None
    assert not os.path.exists(path)

    # Valid JSON, wrong schema version.
    cache.put(CONFIG, _summary())
    with open(path, "r", encoding="utf-8") as f:
        entry = json.load(f)
    entry["format"] = 999
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entry, f)
    assert cache.get(CONFIG) is None
    assert not os.path.exists(path)

    # After the corruption was dropped, a fresh put works again.
    cache.put(CONFIG, _summary())
    assert cache.get(CONFIG) is not None


def test_corrupt_entries_are_quarantined_for_post_mortem(tmp_path):
    """A bad entry is moved to <root>/corrupt/, not destroyed: a miss
    for the experiment, evidence for the operator."""
    cache = ResultCache(root=str(tmp_path))
    cache.put(CONFIG, _summary())
    key = cache.key(CONFIG)
    path = cache.path_for(key)
    with open(path, "w", encoding="utf-8") as f:
        f.write("{ definitely not json")
    assert cache.get(CONFIG) is None
    assert cache.quarantined == 1
    assert cache.stats()["quarantined"] == 1
    qpath = os.path.join(cache.quarantine_dir(), key + ".json")
    assert os.path.exists(qpath)
    with open(qpath, "r", encoding="utf-8") as f:
        assert f.read() == "{ definitely not json"
    # clear() leaves the quarantine alone (it's not addressable data).
    cache.put(CONFIG, _summary())
    cache.clear()
    assert os.path.exists(qpath)


def test_checksum_mismatch_is_caught_and_quarantined(tmp_path):
    """Silent payload corruption that still parses as JSON — a flipped
    float, a truncated-then-repaired entry — must not be served."""
    cache = ResultCache(root=str(tmp_path))
    cache.put(CONFIG, _summary())
    path = cache.path_for(cache.key(CONFIG))
    with open(path, "r", encoding="utf-8") as f:
        entry = json.load(f)
    entry["summary"]["total_time"] = 123456.789  # tampered payload
    with open(path, "w", encoding="utf-8") as f:
        json.dump(entry, f)
    assert cache.get(CONFIG) is None
    assert cache.quarantined == 1
    assert not os.path.exists(path)
    # A fresh put round-trips again.
    summary = _summary()
    cache.put(CONFIG, summary)
    assert cache.get(CONFIG) == summary


def test_clear_removes_entries(tmp_path):
    cache = ResultCache(root=str(tmp_path))
    cache.put(CONFIG, _summary())
    cache.put(dict(CONFIG, iterations=2), _summary())
    assert cache.clear() == 2
    assert cache.get(CONFIG) is None


def test_default_cache_is_process_wide_singleton():
    assert default_cache() is default_cache()


# ----------------------------------------------------------------------
# Concurrency: atomic publish + quarantine under racing readers
# ----------------------------------------------------------------------
def test_parallel_writers_same_key_yield_one_valid_entry(tmp_path):
    """Writers racing on one key must leave exactly one intact entry.

    Each thread publishes a *distinguishable* (but valid) summary for
    the same config while readers hammer the key; every read observes
    either a miss or one complete writer's entry — never a torn file,
    never a quarantine.
    """
    import dataclasses
    import threading

    base = _summary()
    variants = [dataclasses.replace(base, total_time=float(i + 1))
                for i in range(8)]
    barrier = threading.Barrier(12)
    failures = []
    stop = threading.Event()
    allowed = {v.total_time for v in variants}

    def writer(summary):
        cache = ResultCache(root=str(tmp_path))
        barrier.wait()
        for _ in range(25):
            cache.put(CONFIG, summary)

    def reader():
        cache = ResultCache(root=str(tmp_path))
        barrier.wait()
        while not stop.is_set():
            try:
                got = cache.get(CONFIG)
            except Exception as e:  # pragma: no cover - the bug case
                failures.append(f"reader raised {type(e).__name__}: {e}")
                return
            if got is not None and got.total_time not in allowed:
                failures.append(f"torn read: {got.total_time!r}")
                return
        if cache.quarantined:
            failures.append(f"reader quarantined {cache.quarantined} "
                            f"entries during clean writes")

    crew = ([threading.Thread(target=writer, args=(v,))
             for v in variants]
            + [threading.Thread(target=reader) for _ in range(4)])
    for t in crew:
        t.start()
    for t in crew[:8]:
        t.join()
    stop.set()
    for t in crew[8:]:
        t.join()
    assert not failures, failures

    # Exactly one entry on disk, fully valid, from one of the writers.
    check = ResultCache(root=str(tmp_path))
    subdir = os.path.dirname(check.path_for(check.key(CONFIG)))
    entries = [n for n in os.listdir(subdir) if n.endswith(".json")]
    leftovers = [n for n in os.listdir(subdir) if n.endswith(".tmp")]
    assert len(entries) == 1
    assert not leftovers, f"unpublished temp files left: {leftovers}"
    final = check.get(CONFIG)
    assert final is not None and final.total_time in allowed
    assert check.quarantined == 0


def test_concurrent_readers_during_quarantine_never_torn(tmp_path):
    """Readers racing each other over a corrupt entry all see a clean
    miss (or a valid re-published entry) — the quarantine itself must
    not expose a half-moved or half-written file to anyone."""
    import threading

    seed = ResultCache(root=str(tmp_path))
    summary = _summary()
    seed.put(CONFIG, summary)
    path = seed.path_for(seed.key(CONFIG))
    with open(path, "r+", encoding="utf-8") as f:
        f.seek(10)
        f.write("XXXX")              # still JSON-openable, bad checksum

    barrier = threading.Barrier(9)
    failures = []
    observed = []
    lock = threading.Lock()

    def reader():
        cache = ResultCache(root=str(tmp_path))
        barrier.wait()
        for _ in range(50):
            try:
                got = cache.get(CONFIG)
            except Exception as e:  # pragma: no cover - the bug case
                with lock:
                    failures.append(f"raised {type(e).__name__}: {e}")
                return
            if got is not None and got != summary:
                with lock:
                    failures.append("torn entry observed")
                return
            with lock:
                observed.append(got is not None)

    def rewriter():
        cache = ResultCache(root=str(tmp_path))
        barrier.wait()
        for _ in range(25):
            cache.put(CONFIG, summary)

    crew = ([threading.Thread(target=reader) for _ in range(8)]
            + [threading.Thread(target=rewriter)])
    for t in crew:
        t.start()
    for t in crew:
        t.join()
    assert not failures, failures
    # The rewriter won in the end: the entry is valid again.
    final = ResultCache(root=str(tmp_path))
    assert final.get(CONFIG) == summary
    assert final.quarantined == 0
