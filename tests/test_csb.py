"""CSB format: blocking geometry, block census, tile kernels."""

import numpy as np
import pytest

from repro.matrices.coo import COOMatrix
from repro.matrices.csb import CSBMatrix


def test_roundtrip_dense(small_sym_coo):
    csb = CSBMatrix.from_coo(small_sym_coo, 32)
    np.testing.assert_allclose(csb.to_dense(), small_sym_coo.to_dense())


@pytest.mark.parametrize("b", [1, 7, 32, 200, 500])
def test_block_geometry(small_sym_coo, b):
    csb = CSBMatrix.from_coo(small_sym_coo, b)
    assert csb.nbr == -(-200 // b)
    assert csb.nbc == -(-200 // b)
    # bounds tile the row range exactly
    ends = [csb.row_block_bounds(i) for i in range(csb.nbr)]
    assert ends[0][0] == 0 and ends[-1][1] == 200
    for (s1, e1), (s2, _e2) in zip(ends, ends[1:]):
        assert e1 == s2


def test_block_nnz_grid_totals(small_csb, small_sym_coo):
    grid = small_csb.block_nnz_grid()
    assert grid.sum() == small_sym_coo.canonical().nnz
    assert grid.shape == (small_csb.nbr, small_csb.nbc)


def test_nonempty_blocks_match_grid(small_csb):
    grid = small_csb.block_nnz_grid()
    nz = set(small_csb.nonempty_blocks())
    for i in range(small_csb.nbr):
        for j in range(small_csb.nbc):
            assert ((i, j) in nz) == (grid[i, j] > 0)
    assert small_csb.n_empty_blocks() == (grid == 0).sum()


def test_block_view_local_coords(small_csb):
    i, j = small_csb.nonempty_blocks()[0]
    blk = small_csb.block(i, j)
    assert blk.nnz == small_csb.block_nnz(i, j)
    b = small_csb.block_size
    assert blk.rows.max() < b and blk.cols.max() < b
    assert blk.rows.min() >= 0 and blk.cols.min() >= 0


def test_block_out_of_range(small_csb):
    with pytest.raises(IndexError):
        small_csb.block(small_csb.nbr, 0)


def test_blkptr_nonempty_test_matches_listing3(small_csb):
    # the paper's test: blkptrs[i*np+j] < blkptrs[i*np+j+1]
    bp = small_csb.blk_ptr
    nbc = small_csb.nbc
    for i, j in small_csb.nonempty_blocks():
        assert bp[i * nbc + j] < bp[i * nbc + j + 1]


def test_spmv_matches_csr(small_csb, small_csr, rng):
    x = rng.standard_normal(small_csb.shape[1])
    np.testing.assert_allclose(small_csb.spmv(x), small_csr.spmv(x),
                               atol=1e-12)


def test_spmm_matches_csr(small_csb, small_csr, rng):
    X = rng.standard_normal((small_csb.shape[1], 4))
    np.testing.assert_allclose(small_csb.spmm(X), small_csr.spmm(X),
                               atol=1e-12)


def test_block_spmm_accumulates(small_csb, rng):
    """block_spmm adds into Y (the dependency-chained accumulate)."""
    i, j = small_csb.nonempty_blocks()[0]
    rs, re = small_csb.row_block_bounds(i)
    cs, ce = small_csb.col_block_bounds(j)
    X = rng.standard_normal((ce - cs, 3))
    Y = rng.standard_normal((re - rs, 3))
    expected = Y + small_csb.to_dense()[rs:re, cs:ce] @ X
    small_csb.block_spmm(i, j, X, Y)
    np.testing.assert_allclose(Y, expected, atol=1e-12)


def test_ragged_tail_block():
    coo = COOMatrix((10, 10), [9], [9], [3.0])
    csb = CSBMatrix.from_coo(coo, 4)  # 3 block rows, tail of 2
    assert csb.row_block_bounds(2) == (8, 10)
    assert csb.block_nnz(2, 2) == 1
    np.testing.assert_allclose(csb.spmv(np.ones(10))[9], 3.0)


def test_invalid_block_size(small_sym_coo):
    with pytest.raises(ValueError, match="positive"):
        CSBMatrix.from_coo(small_sym_coo, 0)
