"""Unit tests for the observability layer itself (:mod:`repro.trace`).

Golden/property tests pin what the *engines* emit; this module tests
the package's own machinery: the event vocabulary and its dict/JSON
round-trip, both sinks, the Chrome trace-event export, the metrics
fold, and the trace-backed renderers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.experiment import run_version
from repro.analysis.gantt import render_gantt, render_trace
from repro.trace import (
    BarrierEvent,
    CacheSampleEvent,
    InMemorySink,
    JSONLSink,
    MissBurstEvent,
    NumaSampleEvent,
    PollEvent,
    QueueDepthEvent,
    StealEvent,
    TaskEvent,
    Tracer,
    event_from_dict,
    event_to_dict,
    metrics_from_events,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
)

_ALL_EVENTS = [
    TaskEvent(3, "SPMV", 5, 0.1, 0.2, 1, 0.01, 0.05, 0.04, 10, 4, 2),
    TaskEvent(4, "DOT", 0, 0.2, 0.3, 1, 0.0, 0.1, 0.0, 0, 0, 0, True),
    BarrierEvent(0, 0.0, 0.9, 1.0),
    BarrierEvent(1, 1.0, 1.9, 2.0, True),
    QueueDepthEvent(0.15, 7),
    StealEvent(0.2, 3, 9, 42),
    PollEvent(0.25, 2),
    CacheSampleEvent(0, 0.9, "L2", 1024.0, 2048.0),
    MissBurstEvent(0, 0.9, "L3", 5, 12, 60),
    NumaSampleEvent(0, 0.9, (10, 20)),
]


def _run_traced(version="deepsparse", iterations=4, sink=None):
    tracer = Tracer(sink if sink is not None else InMemorySink())
    res = run_version("broadwell", "inline1", "lanczos", version,
                      block_count=16, iterations=iterations,
                      tracer=tracer)
    return res, tracer


# ---------------------------------------------------------------- events
@pytest.mark.parametrize("ev", _ALL_EVENTS, ids=lambda e: e.kind)
def test_event_dict_round_trip(ev):
    d = event_to_dict(ev)
    assert d["kind"] == ev.kind
    back = event_from_dict(json.loads(json.dumps(d)))
    assert back == ev
    assert type(back) is type(ev)


def test_event_from_dict_rejects_unknown_kind():
    with pytest.raises(KeyError):
        event_from_dict({"kind": "nope"})


def test_task_event_synthesized_defaults_false():
    ev = TaskEvent(0, "XY", 0, 0.0, 1.0, 0, 0.0, 1.0, 0.0, 0, 0, 0)
    assert ev.synthesized is False


# ----------------------------------------------------------------- sinks
def test_jsonl_sink_round_trips_a_real_run(tmp_path):
    path = str(tmp_path / "events.jsonl")
    mem_res, mem_tracer = _run_traced()
    with JSONLSink(path) as sink:
        jl_res, jl_tracer = _run_traced(sink=sink)
        n = sink.n_events
    assert jl_res.total_time == mem_res.total_time
    reloaded = list(read_jsonl(path))
    assert len(reloaded) == n == len(mem_tracer.events)
    assert reloaded == mem_tracer.events
    # Streaming sinks retain nothing: .events must refuse, not lie.
    with pytest.raises(TypeError):
        jl_tracer.events


def test_jsonl_sink_borrowed_file_not_closed(tmp_path):
    path = tmp_path / "ev.jsonl"
    with open(path, "w", encoding="utf-8") as f:
        sink = JSONLSink(f)
        sink.emit(_ALL_EVENTS[0])
        sink.close()
        assert not f.closed  # borrowed handle stays open
    assert list(read_jsonl(str(path))) == [_ALL_EVENTS[0]]


def test_jsonl_sink_writes_part_file_until_closed(tmp_path):
    """Owned mode streams to <path>.part and publishes atomically on
    close, so a reader never sees a half-written trace at `path`."""
    path = str(tmp_path / "events.jsonl")
    sink = JSONLSink(path)
    sink.emit(_ALL_EVENTS[0])
    assert os.path.exists(path + ".part")
    assert not os.path.exists(path)
    sink.close()
    assert os.path.exists(path)
    assert not os.path.exists(path + ".part")
    assert list(read_jsonl(path)) == [_ALL_EVENTS[0]]
    sink.close()  # idempotent


def test_jsonl_sink_exception_leaves_no_file_behind(tmp_path):
    """Regression: a traced run that raises mid-stream must leave
    neither `path` nor a stale `.part` — a half-written trace used to
    survive and masquerade as a complete one."""
    path = str(tmp_path / "events.jsonl")
    with pytest.raises(RuntimeError, match="simulated failure"):
        with JSONLSink(path) as sink:
            sink.emit(_ALL_EVENTS[0])
            raise RuntimeError("simulated failure")
    assert not os.path.exists(path)
    assert not os.path.exists(path + ".part")


def test_jsonl_sink_abort_is_explicit_and_idempotent(tmp_path):
    path = str(tmp_path / "events.jsonl")
    sink = JSONLSink(path)
    sink.emit(_ALL_EVENTS[0])
    sink.abort()
    sink.abort()
    assert not os.path.exists(path)
    assert not os.path.exists(path + ".part")


# ---------------------------------------------------------- chrome export
def test_chrome_trace_covers_every_task_and_is_valid_json(tmp_path):
    res, tracer = _run_traced()
    doc = to_chrome_trace(tracer)
    # Valid JSON Object Format.
    blob = json.dumps(doc)
    back = json.loads(blob)
    assert set(back) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert back["displayTimeUnit"] == "ms"
    assert back["otherData"]["machine"] == "broadwell"
    evs = back["traceEvents"]
    # One "X" complete event per executed task, on the task's lane.
    tasks = [e for e in evs if e["ph"] == "X"
             and e["cat"] in ("task", "replay")
             and e["name"] != "barrier"]
    assert len(tasks) == res.counters.tasks_executed
    # Per-task miss args sum exactly to the engine's counters.
    assert sum(e["args"]["l1_misses"] for e in tasks) == \
        res.counters.l1_misses
    assert sum(e["args"]["l2_misses"] for e in tasks) == \
        res.counters.l2_misses
    assert sum(e["args"]["l3_misses"] for e in tasks) == \
        res.counters.l3_misses
    # Tile coordinates resolve through the DAG for block tasks.
    spmv = [e for e in tasks if e["name"] == "SPMV"]
    assert spmv and all("i" in e["args"] for e in spmv)
    # Replay-synthesized tasks are distinguishable.
    assert any(e["cat"] == "replay" for e in tasks)
    # Timestamps are microseconds: makespan in us matches total time.
    last = max(e["ts"] + e["dur"] for e in tasks)
    assert last == pytest.approx(
        max(r.end for r in res.flow.records) * 1e6)
    # Lane metadata: a thread_name per used core, plus the runtime lane.
    names = {e["args"]["name"] for e in evs if e["ph"] == "M"
             and e["name"] == "thread_name"}
    used = {e["tid"] for e in tasks}
    assert {f"core {c}" for c in used} <= names
    assert "runtime" in names
    # write_chrome_trace produces the same document on disk.
    path = write_chrome_trace(str(tmp_path / "t.json"), tracer)
    with open(path, "r", encoding="utf-8") as f:
        assert json.load(f) == back


def test_chrome_trace_from_reloaded_events(tmp_path):
    """Offline export: JSONL file -> events -> identical traceEvents."""
    path = str(tmp_path / "events.jsonl")
    _, mem_tracer = _run_traced()
    with JSONLSink(path) as sink:
        _run_traced(sink=sink)
    live = to_chrome_trace(mem_tracer)
    offline = to_chrome_trace(events=read_jsonl(path),
                              meta=mem_tracer.meta, dag=mem_tracer.dag)
    assert offline["traceEvents"] == live["traceEvents"]


def test_chrome_trace_requires_events():
    with pytest.raises(ValueError):
        to_chrome_trace()


# ---------------------------------------------------------------- metrics
def test_metrics_fold_on_synthetic_stream():
    events = [
        TaskEvent(0, "SPMV", 0, 0.0, 0.4, 0, 0.0, 0.4, 0.0, 5, 3, 1),
        QueueDepthEvent(0.0, 2),
        QueueDepthEvent(0.2, 4),
        StealEvent(0.3, 1, 0, 9),
        TaskEvent(1, "DOT", 1, 0.4, 0.8, 0, 0.0, 0.4, 0.0, 1, 1, 1),
        CacheSampleEvent(0, 0.8, "L3", 50.0, 100.0),
        BarrierEvent(0, 0.0, 0.8, 1.0),
        # Iteration 1: replayed, no scheduler events, no cache sample
        # (occupancy carries forward).
        TaskEvent(0, "SPMV", 0, 1.0, 1.4, 1, 0.0, 0.4, 0.0, 5, 3, 1,
                  True),
        TaskEvent(1, "DOT", 1, 1.4, 1.8, 1, 0.0, 0.4, 0.0, 1, 1, 1,
                  True),
        BarrierEvent(1, 1.0, 1.8, 2.0, True),
    ]
    table = metrics_from_events(events, n_cores=2)
    assert len(table) == 2
    r0, r1 = table.rows
    assert (r0.tasks, r0.steals, r0.queue_depth_max) == (2, 1, 4)
    assert r0.queue_depth_mean == pytest.approx(3.0)
    assert r0.l1_misses == 6 and r0.l3_misses == 2
    assert r0.busy_time == pytest.approx(0.8)
    assert r0.idle_fraction == pytest.approx(1.0 - 0.8 / (1.0 * 2))
    assert r0.cache_occupancy["L3"] == pytest.approx(0.5)
    assert not r0.synthesized
    assert r1.synthesized  # all tasks replayed + synthesized barrier
    assert r1.cache_occupancy["L3"] == pytest.approx(0.5)  # carried
    assert r1.steals == 0 and r1.queue_depth_max == 0
    # Serialisations agree on shape.
    d = table.to_dict()
    assert len(d["rows"]) == 2 and len(d["columns"]) == len(d["rows"][0])
    csv = table.to_csv()
    assert csv.splitlines()[0].startswith("iteration,")
    assert len(csv.splitlines()) == 3
    assert "yes" in table.render()


def test_metrics_rows_never_negative_on_real_run():
    _, tracer = _run_traced("regent")
    table = metrics_from_events(tracer.events, meta=tracer.meta)
    assert len(table) == 4
    for r in table:
        assert r.span > 0 and r.busy_time >= 0
        assert 0.0 <= r.idle_fraction <= 1.0
        assert r.queue_depth_max >= 0 and r.queue_depth_mean >= 0
        assert min(r.l1_misses, r.l2_misses, r.l3_misses) >= 0


# --------------------------------------------------------------- renderers
def test_render_trace_marks_replay_lowercase():
    _, tracer = _run_traced()
    text = render_trace(tracer)
    assert "deepsparse on broadwell" in text
    assert "kernel overlap fraction" in text
    assert "per-iteration metrics" in text
    gantt = render_gantt(tracer.events, width=60, max_cores=4)
    # The steady-state takeover is visible: replayed tasks render as
    # the lowercase of their honest letters.
    assert any(c.islower() for row in gantt.splitlines()[1:]
               for c in row)
    assert any(c.isupper() for row in gantt.splitlines()[1:]
               for c in row)


def test_render_gantt_empty_stream():
    assert render_gantt([]) == "(no task events)"
