"""CSR format: construction validation, kernels, conversions."""

import numpy as np
import pytest

from repro.matrices.coo import COOMatrix
from repro.matrices.csr import CSRMatrix


def test_from_coo_roundtrip(small_sym_coo):
    csr = CSRMatrix.from_coo(small_sym_coo)
    np.testing.assert_allclose(csr.to_dense(), small_sym_coo.to_dense())


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError, match="indptr"):
        CSRMatrix((2, 2), [0, 1], [0], [1.0])  # wrong length
    with pytest.raises(ValueError, match="non-decreasing"):
        CSRMatrix((2, 2), [0, -1, 1], [0], [1.0])


def test_column_out_of_range_rejected():
    with pytest.raises(ValueError, match="column index"):
        CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])


def test_spmv_matches_dense(small_csr, rng):
    x = rng.standard_normal(small_csr.shape[1])
    np.testing.assert_allclose(
        small_csr.spmv(x), small_csr.to_dense() @ x, atol=1e-12
    )


def test_spmv_out_parameter_reused(small_csr, rng):
    x = rng.standard_normal(small_csr.shape[1])
    out = np.full(small_csr.shape[0], 99.0)
    y = small_csr.spmv(x, out=out)
    assert y is out
    np.testing.assert_allclose(out, small_csr.to_dense() @ x, atol=1e-12)


def test_spmv_empty_rows():
    # rows 1 and 3 have no entries: output must be exactly zero there
    coo = COOMatrix((4, 4), [0, 2], [1, 3], [2.0, 5.0])
    csr = CSRMatrix.from_coo(coo)
    y = csr.spmv(np.ones(4))
    np.testing.assert_allclose(y, [2.0, 0.0, 5.0, 0.0])


def test_spmv_dimension_mismatch(small_csr):
    with pytest.raises(ValueError, match="dimension"):
        small_csr.spmv(np.ones(small_csr.shape[1] + 1))


def test_spmm_matches_dense(small_csr, rng):
    X = rng.standard_normal((small_csr.shape[1], 5))
    np.testing.assert_allclose(
        small_csr.spmm(X), small_csr.to_dense() @ X, atol=1e-12
    )


def test_spmm_rejects_vector(small_csr):
    with pytest.raises(ValueError, match="dimension"):
        small_csr.spmm(np.ones(small_csr.shape[1]))


def test_zero_matrix_kernels():
    csr = CSRMatrix.from_coo(COOMatrix.empty((6, 6)))
    assert csr.nnz == 0
    assert not csr.spmv(np.ones(6)).any()
    assert not csr.spmm(np.ones((6, 2))).any()


def test_transpose_matches_dense(small_csr):
    np.testing.assert_allclose(
        small_csr.transpose().to_dense(), small_csr.to_dense().T
    )


def test_diagonal(small_csr):
    np.testing.assert_allclose(
        small_csr.diagonal(), np.diag(small_csr.to_dense())
    )


def test_row_nnz_and_nbytes(small_csr):
    assert small_csr.row_nnz().sum() == small_csr.nnz
    assert small_csr.nbytes() > small_csr.nnz * 8
