"""Shared fixtures: small matrices, DAGs, and machine models.

Everything is seeded; tests must be deterministic.
"""

import numpy as np
import pytest

from repro.machine import broadwell, epyc
from repro.matrices import CSBMatrix, CSRMatrix, load_matrix
from repro.matrices.coo import COOMatrix
from repro.matrices.generators import random_symmetric


@pytest.fixture(scope="session")
def small_sym_coo():
    """A 200×200 symmetric diagonally dominant matrix."""
    return random_symmetric(200, nnz_per_row=8, seed=11)


@pytest.fixture(scope="session")
def small_csb(small_sym_coo):
    return CSBMatrix.from_coo(small_sym_coo, 32)


@pytest.fixture(scope="session")
def small_csr(small_sym_coo):
    return CSRMatrix.from_coo(small_sym_coo)


@pytest.fixture(scope="session")
def suite_matrix():
    """One scaled Table 1 matrix (fast to generate)."""
    return load_matrix("inline1", scale=16384)


@pytest.fixture(scope="session")
def suite_csb(suite_matrix):
    return CSBMatrix.from_coo(suite_matrix, 128)


@pytest.fixture(scope="session")
def bw():
    return broadwell()


@pytest.fixture(scope="session")
def ep():
    return epyc()


@pytest.fixture
def rng():
    return np.random.default_rng(42)
