"""Machine model: topology presets, cache LRU, NUMA placement, counters."""

import pytest

from repro.machine import (
    CACHE_LINE,
    CacheHierarchy,
    LRUCache,
    MemoryModel,
    PerfCounters,
    broadwell,
    epyc,
    get_machine,
)
from repro.machine.topology import MachineSpec


def test_broadwell_preset_matches_paper(bw):
    assert bw.n_cores == 28 and bw.n_sockets == 2
    assert bw.l1_size == 32 * 1024 and bw.l2_size == 256 * 1024
    assert bw.l3_size == 35 * 1024 * 1024
    assert bw.l3_group_cores == 14  # one slice per socket
    assert bw.ghz == 2.4
    assert bw.n_numa_domains == 2


def test_epyc_preset_matches_paper(ep):
    assert ep.n_cores == 128
    assert ep.l2_size == 512 * 1024
    assert ep.l3_size == 16 * 1024 * 1024
    assert ep.l3_group_cores == 4  # per CCX
    assert ep.n_numa_domains == 8  # "8 NUMA subregions, 4 per socket"
    assert ep.cores_per_domain == 16


def test_core_coordinates(ep):
    c = ep.core(17)
    assert c.socket == 0 and c.numa_domain == 1 and c.l3_group == 4
    c = ep.core(127)
    assert c.socket == 1 and c.numa_domain == 7 and c.l3_group == 31
    with pytest.raises(IndexError):
        ep.core(128)


def test_get_machine():
    assert get_machine("broadwell").name == "broadwell"
    with pytest.raises(KeyError, match="unknown machine"):
        get_machine("zen5")


def test_invalid_topology_rejected():
    with pytest.raises(ValueError):
        MachineSpec("x", 10, 3, 2, 1, 1, 1, 2, 1.0)  # cores % sockets


# ----------------------------------------------------------------------
def test_lru_basic_hit_miss():
    c = LRUCache(1000)
    assert c.access(("a", 0), 600) == 600  # cold
    assert c.access(("a", 0), 600) == 0    # hot
    assert c.access(("b", 0), 600) == 600  # evicts a partially
    assert c.used <= 1000
    # a was evicted (LRU)
    assert c.access(("a", 0), 600) == 600


def test_lru_partial_residency():
    c = LRUCache(100)
    c.access(("big", 0), 500)  # clamps to 100 resident
    assert c.resident(("big", 0)) == 100
    assert c.access(("big", 0), 500) == 400  # 100 hit, 400 miss


def test_lru_invalidate():
    c = LRUCache(100)
    c.access(("a", 0), 50)
    c.invalidate(("a", 0))
    assert ("a", 0) not in c
    assert c.used == 0
    c.invalidate(("a", 0))  # idempotent


def test_lru_rejects_bad_capacity():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_hierarchy_miss_cascade(bw):
    h = CacheHierarchy(bw)
    nbytes = 100 * CACHE_LINE
    m1, m2, m3 = h.access(0, ("x", 0), nbytes)
    assert m1 == m2 == m3 == 100  # cold everywhere
    m1, m2, m3 = h.access(0, ("x", 0), nbytes)
    assert (m1, m2, m3) == (0, 0, 0)  # hot in L1


def test_hierarchy_l2_hit_after_l1_eviction(bw):
    h = CacheHierarchy(bw)
    h.access(0, ("x", 0), 10 * CACHE_LINE)
    # stream enough to evict x from L1 (32 KB) but not L2 (256 KB)
    h.access(0, ("fill", 0), bw.l1_size)
    m1, m2, _ = h.access(0, ("x", 0), 10 * CACHE_LINE)
    assert m1 == 10 and m2 == 0


def test_write_invalidates_other_cores(bw):
    h = CacheHierarchy(bw)
    h.access(0, ("x", 0), 10 * CACHE_LINE)
    h.access(14, ("x", 0), 10 * CACHE_LINE)  # other socket caches it too
    h.access(1, ("x", 0), 10 * CACHE_LINE, write=True)
    # core 0 (same socket, other core) and core 14 (other socket) lose it
    m1, _, _ = h.access(0, ("x", 0), 10 * CACHE_LINE)
    assert m1 == 10
    m1, m2, m3 = h.access(14, ("x", 0), 10 * CACHE_LINE)
    assert m1 == 10 and m3 == 10  # other L3 group was invalidated too


def test_shared_l3_within_group(bw):
    h = CacheHierarchy(bw)
    h.access(0, ("x", 0), 100 * CACHE_LINE)
    # another core of the same socket finds it in L3
    m1, m2, m3 = h.access(5, ("x", 0), 100 * CACHE_LINE)
    assert m1 == 100 and m2 == 100 and m3 == 0


def test_flush(bw):
    h = CacheHierarchy(bw)
    h.access(0, ("x", 0), 10 * CACHE_LINE)
    h.flush()
    m1, _, m3 = h.access(0, ("x", 0), 10 * CACHE_LINE)
    assert m1 == 10 and m3 == 10


def test_sharer_maps_stay_bounded_by_residency(bw):
    """Evicted handles must be pruned from the coherence sharer maps.

    Streaming a long sequence of distinct handles through one core
    historically grew ``_sharers`` monotonically (one entry per handle
    ever touched); after pruning, a fully-evicted handle drops out, so
    the map size is bounded by what the caches can actually hold.
    (A small synthetic machine keeps the stream short.)
    """
    from repro.machine.topology import MachineSpec

    tiny = MachineSpec(
        name="tiny", n_cores=2, n_sockets=1, n_numa_domains=1,
        l1_size=4 * CACHE_LINE, l2_size=16 * CACHE_LINE,
        l3_size=64 * CACHE_LINE, l3_group_cores=2,
        ghz=1.0, flops_per_cycle=1.0,
        l2_line_cost=1e-9, l3_line_cost=3e-9, dram_line_cost=1e-8,
        numa_penalty=1.5,
    )
    h = CacheHierarchy(tiny)
    n = 4 * (tiny.l3_size // CACHE_LINE)  # far beyond total capacity
    for i in range(n):
        h.access(0, ("s", i), CACHE_LINE)
    resident = sum(len(c) for c in h.l1) + sum(len(c) for c in h.l2) \
        + sum(len(c) for c in h.l3)
    assert len(h._sharers) + len(h._l3_sharers) <= 2 * resident
    assert len(h._sharers) < n // 2
    assert len(h._l3_sharers) < n // 2
    # Pruning must not change coherence semantics: a still-resident
    # handle written elsewhere is invalidated exactly as before.
    h2 = CacheHierarchy(bw)
    h2.access(0, ("hot", 0), 10 * CACHE_LINE)
    h2.access(1, ("hot", 0), 10 * CACHE_LINE, write=True)
    m1, _, _ = h2.access(0, ("hot", 0), 10 * CACHE_LINE)
    assert m1 == 10


# ----------------------------------------------------------------------
def test_first_touch_contiguous_placement(ep):
    m = MemoryModel(ep, first_touch=True, n_parts=128)
    assert m.domain_of(("v", 0)) == 0
    assert m.domain_of(("v", 127)) == 7
    assert m.domain_of(("v", 64)) == 4
    assert m.domain_of(("g", None)) == 0  # small data on domain 0


def test_no_first_touch_single_domain(ep):
    m = MemoryModel(ep, first_touch=False, n_parts=128)
    assert all(m.domain_of(("v", i)) == 0 for i in range(0, 128, 17))


def test_remote_dram_penalty(ep):
    m = MemoryModel(ep, first_touch=True, n_parts=128)
    local = m.dram_line_cost(0, ("v", 0))      # core 0 domain 0, chunk 0
    remote = m.dram_line_cost(0, ("v", 127))   # chunk on domain 7
    assert remote == pytest.approx(local * ep.numa_penalty)


def test_place_override(ep):
    m = MemoryModel(ep, first_touch=True, n_parts=128)
    m.place(("v", 127), 0)
    assert m.domain_of(("v", 127)) == 0
    with pytest.raises(ValueError):
        m.place(("v", 0), 99)


# ----------------------------------------------------------------------
def test_perf_counters_record_and_merge():
    a = PerfCounters()
    a.record_task("SPMM", 1.0, (10, 5, 2), 0.1, 0.4, 0.5)
    a.record_task("XY", 0.5, (1, 1, 1), 0.0, 0.3, 0.2)
    assert a.misses() == (11, 6, 3)
    assert a.tasks_executed == 2
    b = PerfCounters()
    b.record_task("SPMM", 2.0, (10, 10, 10), 0.2, 1.0, 1.0)
    a.merge(b)
    assert a.l3_misses == 13
    assert a.kernel_tasks["SPMM"] == 2


def test_normalized_misses():
    base = PerfCounters()
    base.record_task("K", 1.0, (100, 50, 20), 0, 0, 0)
    mine = PerfCounters()
    mine.record_task("K", 1.0, (50, 10, 20), 0, 0, 0)
    assert mine.normalized_misses(base) == (0.5, 0.2, 1.0)
