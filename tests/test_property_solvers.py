"""Property-based tests on solver-level invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import random_symmetric
from repro.runtime import build_solver_dag, execute_dag_serial
from repro.solvers import Workspace, cg, lanczos, lobpcg_trace


@st.composite
def spd_csb(draw):
    n = draw(st.integers(40, 160))
    b = draw(st.integers(10, 80))
    seed = draw(st.integers(0, 10_000))
    nnzpr = draw(st.integers(4, 12))
    return CSBMatrix.from_coo(random_symmetric(n, nnzpr, seed=seed), b)


@given(spd_csb(), st.integers(0, 1000))
@settings(max_examples=12, deadline=None)
def test_cg_always_converges_on_spd(csb, bseed):
    """CG on a diagonally dominant SPD matrix always converges."""
    rng = np.random.default_rng(bseed)
    b = rng.standard_normal(csb.shape[0])
    res = cg(csb, b, maxiter=3 * csb.shape[0], tol=1e-10)
    assert res.converged
    x = res.x[:, 0]
    assert np.linalg.norm(csb.spmv(x) - b) <= 1e-7 * max(
        1.0, np.linalg.norm(b))


@given(spd_csb())
@settings(max_examples=10, deadline=None)
def test_lanczos_ritz_values_inside_spectrum(csb):
    k = min(20, csb.shape[0] // 2)
    if k < 3:
        return
    res = lanczos(csb, k=k)
    ref = np.linalg.eigvalsh(csb.to_dense())
    assert res.eigenvalues[0] >= ref[0] - 1e-6
    assert res.eigenvalues[-1] <= ref[-1] + 1e-6


@given(spd_csb(), st.integers(1, 4), st.integers(0, 1000))
@settings(max_examples=8, deadline=None)
def test_lobpcg_dag_preserves_orthonormality_drift(csb, n, seed):
    """Ritz values after one DAG iteration are real, finite and within
    the operator's spectral range."""
    from repro.kernels import orthonormalize
    from repro.solvers.lobpcg import lobpcg_trace

    n = min(n, max(1, csb.shape[0] // 8))
    rng = np.random.default_rng(seed)
    calls, chunked, small = lobpcg_trace(csb, n=n)
    dag = build_solver_dag(csb, calls, chunked, small)
    ws = Workspace(csb, chunked, small)
    ws.full("Psi")[:] = orthonormalize(
        rng.standard_normal((csb.shape[0], n)))
    execute_dag_serial(dag, ws)
    evals = ws.full("evals")[:, 0]
    ref = np.linalg.eigvalsh(csb.to_dense())
    assert np.isfinite(evals).all()
    assert evals.min() >= ref[0] - 1e-6
    assert evals.max() <= ref[-1] + 1e-6
