"""Property-based tests on the cache and memory models."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.machine import CACHE_LINE, CacheHierarchy, LRUCache, MemoryModel
from repro.machine.presets import broadwell, epyc


@st.composite
def access_sequences(draw):
    n_objs = draw(st.integers(1, 8))
    n_ops = draw(st.integers(1, 60))
    ops = []
    for _ in range(n_ops):
        ops.append((
            draw(st.integers(0, n_objs - 1)),            # object id
            draw(st.integers(1, 4000)),                  # bytes
            draw(st.booleans()),                         # write?
            draw(st.integers(0, 27)),                    # core
        ))
    return ops


@given(st.integers(64, 4096), access_sequences())
@settings(max_examples=40, deadline=None)
def test_lru_usage_never_exceeds_capacity(cap, ops):
    c = LRUCache(cap)
    for obj, nbytes, _w, _core in ops:
        miss = c.access(("o", obj), nbytes)
        assert 0 <= miss <= nbytes
        assert c.used <= cap


@given(access_sequences())
@settings(max_examples=30, deadline=None)
def test_hierarchy_miss_cascade_monotone(ops):
    """A level can never miss more lines than the level above it."""
    h = CacheHierarchy(broadwell())
    for obj, nbytes, write, core in ops:
        m1, m2, m3 = h.access(core, ("o", obj), nbytes, write=write)
        assert m1 >= m2 >= m3 >= 0
        assert m1 <= -(-nbytes // CACHE_LINE)


@given(access_sequences())
@settings(max_examples=25, deadline=None)
def test_second_access_never_misses_more(ops):
    """Re-touching the same object immediately can only hit better."""
    h = CacheHierarchy(broadwell())
    for obj, nbytes, write, core in ops:
        first = h.access(core, ("o", obj), nbytes, write=write)
        second = h.access(core, ("o", obj), nbytes)
        assert second[0] <= first[0] or first[0] == 0


@given(st.integers(1, 512), st.integers(1, 512))
@settings(max_examples=40, deadline=None)
def test_memory_placement_total_and_monotone(n_parts, part):
    """Contiguous first-touch: domains are monotone in the chunk index
    and all domains are used when there are enough chunks."""
    m = MemoryModel(epyc(), first_touch=True, n_parts=n_parts)
    part = min(part, n_parts - 1) if n_parts > 1 else 0
    d = m.domain_of(("v", part))
    assert 0 <= d < 8
    if part + 1 < n_parts:
        assert m.domain_of(("v", part + 1)) >= d
    if n_parts >= 8:
        assert m.domain_of(("v", 0)) == 0
        assert m.domain_of(("v", n_parts - 1)) == 7


@given(st.integers(0, 127), st.integers(0, 63))
@settings(max_examples=30, deadline=None)
def test_dram_cost_orderings(core, part):
    """local ≤ scattered ≤ no-first-touch-remote, for every core/chunk."""
    mach = epyc()
    ft = MemoryModel(mach, first_touch=True, n_parts=64)
    nft = MemoryModel(mach, first_touch=False, n_parts=64)
    key = ("v", part)
    local_cost = mach.dram_line_cost
    cost = ft.dram_line_cost(core, key)
    assert cost >= local_cost - 1e-18
    assert ft.dram_line_cost_scattered(core) >= local_cost
    # no first-touch is never cheaper than first-touch for remote cores
    if nft.is_remote(core, key):
        assert nft.dram_line_cost(core, key) >= cost
