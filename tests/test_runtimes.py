"""Runtime façades: the five solver versions produce ordered results."""

import pytest

from repro.graph.builder import BuildOptions
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem
from repro.runtime import (
    BSPRuntime,
    DeepSparseRuntime,
    HPXRuntime,
    RegentRuntime,
    libcsr_partitions,
)
from repro.solvers import lobpcg_trace


@pytest.fixture(scope="module")
def problem():
    csb = CSBMatrix.from_coo(banded_fem(600, 8, seed=6), 60)
    calls, chunked, small = lobpcg_trace(csb, n=4)
    return csb, calls, chunked, small


def test_all_runtimes_complete(bw, problem):
    csb, calls, chunked, small = problem
    for rt in [BSPRuntime(bw, "libcsb"), DeepSparseRuntime(bw),
               HPXRuntime(bw), RegentRuntime(bw)]:
        res = rt.run(csb, calls, chunked, small, iterations=1)
        assert res.counters.tasks_executed > 0
        assert res.machine == "broadwell"


def test_bsp_flavors(bw, problem):
    csb, calls, chunked, small = problem
    r = BSPRuntime(bw, "libcsr")
    assert r.options.csr_storage is True
    assert r.options.skip_empty is False
    r2 = BSPRuntime(bw, "libcsb")
    assert r2.options.csr_storage is False
    with pytest.raises(ValueError, match="flavor"):
        BSPRuntime(bw, "libfoo")


def test_libcsr_partitions(bw):
    assert libcsr_partitions(bw, 28_000) == 1000
    assert libcsr_partitions(bw, 29) == 2


def test_regent_util_split_presets(bw, ep):
    assert RegentRuntime(bw).make_scheduler().util_fraction == \
        pytest.approx(4 / 28)
    assert RegentRuntime(ep).util_fraction == pytest.approx(18 / 128)


def test_regent_fewer_workers_than_cores(bw, problem):
    csb, calls, chunked, small = problem
    res = RegentRuntime(bw).run(csb, calls, chunked, small, iterations=1)
    used_cores = {r.core for r in res.flow.records}
    assert max(used_cores) < 24  # 4 of 28 cores reserved


def test_first_touch_flag_changes_time(ep):
    """Fig. 5 at test scale: no first-touch ⇒ domain-0 saturation."""
    from repro.analysis.experiment import run_version

    on = run_version("epyc", "inline1", "lanczos", "deepsparse",
                     block_count=32, iterations=1, first_touch=True)
    off = run_version("epyc", "inline1", "lanczos", "deepsparse",
                      block_count=32, iterations=1, first_touch=False)
    assert off.time_per_iteration > on.time_per_iteration * 1.5


def test_reduction_mode_option(bw, problem):
    csb, calls, chunked, small = problem
    rt = RegentRuntime(bw, options=BuildOptions(spmm_mode="reduction"))
    dag = rt.build_dag(csb, calls, chunked, small)
    assert "SPMM_REDUCE" in dag.by_kernel()


def test_hpx_numa_flag(ep, problem):
    csb, calls, chunked, small = problem
    aware = HPXRuntime(ep, numa_aware=True).run(
        csb, calls, chunked, small, iterations=1)
    naive = HPXRuntime(ep, numa_aware=False).run(
        csb, calls, chunked, small, iterations=1)
    # NUMA-aware scheduling should not be slower (paper: ~50% gain)
    assert aware.time_per_iteration <= naive.time_per_iteration * 1.05


def test_deterministic_given_seed(bw, problem):
    csb, calls, chunked, small = problem
    a = HPXRuntime(bw, seed=5).run(csb, calls, chunked, small, iterations=1)
    b = HPXRuntime(bw, seed=5).run(csb, calls, chunked, small, iterations=1)
    assert a.total_time == b.total_time
    assert a.counters.misses() == b.counters.misses()
