"""The experiment orchestrator: dedupe, ordering, caching, parallelism,
and survival of crashing / hanging / failing workers."""

from __future__ import annotations

import os
import time

import pytest

from repro.bench.cache import ResultCache
from repro.bench.runner import (
    Cell,
    DEFAULT_BLOCK_COUNT,
    ExperimentRunner,
    REGENT_BLOCK_COUNT,
    SweepError,
    WorkerFailure,
    _pool_worker,
    expand_grid,
    stderr_tail,
)

CELLS = [
    Cell(machine="broadwell", matrix="inline1", solver="lanczos",
         version=v, block_count=16, iterations=1)
    for v in ("libcsr", "deepsparse", "hpx")
]


def _runner(tmp_path, **kw):
    return ExperimentRunner(cache=ResultCache(root=str(tmp_path)), **kw)


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------
def test_expand_grid_is_deterministic_and_rule_of_thumb_defaults():
    cells = expand_grid(machines=["broadwell"], matrices=["inline1"],
                        solvers=["lanczos"])
    assert cells == expand_grid(machines=["broadwell"],
                                matrices=["inline1"],
                                solvers=["lanczos"])
    by_version = {c.version: c for c in cells}
    assert by_version["deepsparse"].block_count == \
        DEFAULT_BLOCK_COUNT["broadwell"]
    assert by_version["regent"].block_count == \
        REGENT_BLOCK_COUNT["broadwell"]


def test_expand_grid_explicit_block_counts():
    cells = expand_grid(machines=["broadwell"], matrices=["inline1"],
                        solvers=["lanczos"], versions=["deepsparse"],
                        block_counts=[16, 32])
    assert [c.block_count for c in cells] == [16, 32]


# ----------------------------------------------------------------------
# orchestration
# ----------------------------------------------------------------------
def test_results_in_input_order_with_dedupe(tmp_path):
    runner = _runner(tmp_path)
    # Duplicates (including libcsr at a different block count, which
    # normalizes to the same key) must be simulated exactly once.
    libcsr_alias = Cell(machine="broadwell", matrix="inline1",
                        solver="lanczos", version="libcsr",
                        block_count=480, iterations=1)
    batch = [CELLS[0], CELLS[1], CELLS[0], libcsr_alias, CELLS[2]]
    results = runner.run_cells(batch)
    assert len(results) == len(batch)
    assert len(runner.report) == 3  # unique cells only
    assert results[0] is results[2]  # same key -> same object
    assert results[0] is results[3]  # normalized libcsr alias
    assert results[0].policy != results[1].policy  # bsp vs tasking


def test_second_run_is_served_from_cache(tmp_path):
    runner = _runner(tmp_path)
    first = runner.run_cells(CELLS)
    assert all(not r["cached"] for r in runner.report)
    again = _runner(tmp_path)
    second = again.run_cells(CELLS)
    assert all(r["cached"] for r in again.report)
    assert second == first  # bit-exact across the disk round trip


def test_disabled_cache_forces_cold_runs(tmp_path):
    _runner(tmp_path).run_cells(CELLS)  # prime
    cold = ExperimentRunner(cache=ResultCache(root=str(tmp_path),
                                              enabled=False))
    cold.run_cells(CELLS)
    assert all(not r["cached"] for r in cold.report)


def test_parallel_jobs_match_serial_results(tmp_path):
    serial = ExperimentRunner(
        cache=ResultCache(root=str(tmp_path / "a")), jobs=1)
    parallel = ExperimentRunner(
        cache=ResultCache(root=str(tmp_path / "b")), jobs=2)
    rs = serial.run_cells(CELLS)
    rp = parallel.run_cells(CELLS)
    assert [r.to_dict() for r in rp] == [r.to_dict() for r in rs]
    # The parallel run persisted its results too.
    warm = ExperimentRunner(cache=ResultCache(root=str(tmp_path / "b")))
    warm.run_cells(CELLS)
    assert all(r["cached"] for r in warm.report)


def test_progress_and_report(tmp_path):
    lines = []
    runner = _runner(tmp_path, progress=lines.append)
    runner.run_cells(CELLS[:2])
    assert len(lines) == 2
    assert all("[run]" in line for line in lines)
    report = runner.format_report()
    assert "2 cached" not in report
    assert "2 simulated" in report
    runner2 = _runner(tmp_path, progress=lines.append)
    runner2.run_cells(CELLS[:2])
    assert any("[cache]" in line for line in lines)


def test_jobs_env_default(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
    runner = _runner(tmp_path)
    assert runner.jobs == 3


def test_jobs_zero_autodetects_cpu_count(monkeypatch, tmp_path):
    import os

    runner = _runner(tmp_path, jobs=0)
    assert runner.jobs == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
    runner = _runner(tmp_path)
    assert runner.jobs == (os.cpu_count() or 1)
    # Negative values keep clamping to serial, as before.
    runner = _runner(tmp_path, jobs=-4)
    assert runner.jobs == 1


def test_run_grid_shorthand(tmp_path):
    runner = _runner(tmp_path)
    results = runner.run_grid(machines=["broadwell"],
                              matrices=["inline1"],
                              solvers=["lanczos"],
                              versions=["deepsparse"],
                              block_counts=[16], iterations=1)
    assert len(results) == 1
    assert results[0].machine == "broadwell"


# ----------------------------------------------------------------------
# hardened orchestration: crashes, hangs, failures, retries
# ----------------------------------------------------------------------
# Injected workers live at module level so a ProcessPoolExecutor can
# pickle them into child processes.

def _crash_hard_once(config):
    """Dies with os._exit (no exception, no cleanup — a real segfault
    analogue) on the first call, then behaves.  The marker file makes
    "first" hold across processes."""
    marker = os.environ["REPRO_TEST_CRASH_MARKER"]
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(13)
    return _pool_worker(config)


def _fail_cleanly(config):
    raise ValueError(f"injected failure for {config['version']}")


def _fail_hpx_only(config):
    if config["version"] == "hpx":
        raise ValueError("injected hpx failure")
    return _pool_worker(config)


_TRANSIENT_CALLS = {"n": 0}


def _fail_once_then_succeed(config):
    _TRANSIENT_CALLS["n"] += 1
    if _TRANSIENT_CALLS["n"] == 1:
        raise RuntimeError("transient glitch")
    return _pool_worker(config)


def _hang_forever(config):
    time.sleep(3600)


def test_pool_survives_worker_crash(tmp_path, monkeypatch):
    """A worker dying hard poisons the pool; the runner rebuilds it and
    resubmits — without burning the cells' retry budget — and the sweep
    completes with results identical to a healthy serial run."""
    monkeypatch.setenv("REPRO_TEST_CRASH_MARKER",
                       str(tmp_path / "crashed.marker"))
    crashy = ExperimentRunner(
        cache=ResultCache(root=str(tmp_path / "a")), jobs=2,
        backoff=0.0, pool_worker=_crash_hard_once)
    got = crashy.run_cells(CELLS)
    healthy = ExperimentRunner(
        cache=ResultCache(root=str(tmp_path / "b")), jobs=1)
    want = healthy.run_cells(CELLS)
    assert [r.to_dict() for r in got] == [r.to_dict() for r in want]
    assert os.path.exists(str(tmp_path / "crashed.marker"))


def test_inline_retry_recovers_transient_failure(tmp_path):
    _TRANSIENT_CALLS["n"] = 0
    runner = _runner(tmp_path, jobs=1, attempts=2, backoff=0.0,
                     pool_worker=_fail_once_then_succeed)
    results = runner.run_cells(CELLS[:1])
    assert results[0].total_time > 0
    assert _TRANSIENT_CALLS["n"] == 2  # failed once, retried once


def test_exhausted_retries_raise_sweep_error_with_table(tmp_path):
    runner = _runner(tmp_path, jobs=1, attempts=2, backoff=0.0,
                     pool_worker=_fail_cleanly)
    with pytest.raises(SweepError) as ei:
        runner.run_cells(CELLS[:2])
    err = ei.value
    assert len(err.failures) == 2
    assert all(f["attempts"] == 2 for f in err.failures)
    assert "2 cell(s) failed after retries" in str(err)
    assert CELLS[0].label() in str(err)
    assert "ValueError" in err.failures[0]["error"]


def _fail_with_chatter(config):
    """Writes diagnostics to stderr before dying, like a real cell
    whose native libraries warn on the way down."""
    import sys

    print("loading matrix shards", file=sys.stderr)
    print("shard 7 checksum mismatch", file=sys.stderr)
    raise ValueError(f"injected chatty failure for {config['version']}")


def test_pool_worker_captures_stderr_into_failure(monkeypatch):
    """The pool worker must ship the cell's stderr + traceback home —
    the parent cannot see a child process's stderr any other way."""
    import repro.bench.runner as runner_mod

    def chatty_cell(config):
        return _fail_with_chatter(config)

    monkeypatch.setattr(runner_mod, "run_cell_config", chatty_cell)
    with pytest.raises(WorkerFailure) as ei:
        _pool_worker(CELLS[0].config())
    failure = ei.value
    assert failure.error == ("ValueError: injected chatty failure "
                             "for libcsr")
    assert "loading matrix shards" in failure.stderr_tail
    assert "shard 7 checksum mismatch" in failure.stderr_tail
    assert "Traceback (most recent call last)" in failure.stderr_tail
    # The exception survives a pickle round trip (pool transport).
    import pickle

    back = pickle.loads(pickle.dumps(failure))
    assert back.error == failure.error
    assert back.stderr_tail == failure.stderr_tail


def test_stderr_tail_truncates_long_streams():
    text = "\n".join(f"line {i}" for i in range(500))
    tail = stderr_tail(text, lines=5, chars=1000)
    assert tail.splitlines() == [f"line {i}" for i in range(495, 500)]
    huge = "x" * 50_000
    assert len(stderr_tail(huge, lines=5, chars=1000)) <= 1000


@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_error_table_includes_stderr_tail(tmp_path, jobs):
    """The per-cell failure table carries the worker's stderr tail —
    inline and across a real process pool (pickled exception args)."""
    runner = _runner(tmp_path, jobs=jobs, attempts=1, backoff=0.0,
                     pool_worker=_pool_worker_chatty)
    with pytest.raises(SweepError) as ei:
        runner.run_cells(CELLS[:2])
    err = ei.value
    assert len(err.failures) == 2
    for f in err.failures:
        assert "injected chatty failure" in f["error"]
        assert "shard 7 checksum mismatch" in f["stderr"]
        assert "Traceback" in f["stderr"]
    rendered = str(err)
    assert "stderr| shard 7 checksum mismatch" in rendered
    assert rendered.count("stderr|") >= 2  # one block per failed cell


def _pool_worker_chatty(config):
    """Module-level (pool-picklable) worker: a chatty failing cell run
    through the real capture machinery."""
    import contextlib
    import io
    import traceback

    buf = io.StringIO()
    try:
        with contextlib.redirect_stderr(buf):
            _fail_with_chatter(config)
    except Exception as e:
        traceback.print_exc(file=buf)
        raise WorkerFailure(f"{type(e).__name__}: {e}",
                            stderr_tail(buf.getvalue())) from None
    raise AssertionError("unreachable")


def test_non_worker_failure_has_empty_stderr_column(tmp_path):
    """Plain exceptions (no capture machinery) still fill the table,
    with an empty stderr column rather than a crash or noise."""
    runner = _runner(tmp_path, jobs=1, attempts=1, backoff=0.0,
                     pool_worker=_fail_cleanly)
    with pytest.raises(SweepError) as ei:
        runner.run_cells(CELLS[:1])
    f = ei.value.failures[0]
    assert "ValueError" in f["error"]
    assert f["stderr"] == ""
    assert "stderr|" not in str(ei.value)


def test_partial_failure_keeps_successes_cached(tmp_path):
    """Cells that simulated fine are cached before the raise, so a
    re-run with a healthy worker only repeats the failed work."""
    sick = _runner(tmp_path, jobs=1, attempts=2, backoff=0.0,
                   pool_worker=_fail_hpx_only)
    with pytest.raises(SweepError) as ei:
        sick.run_cells(CELLS)  # libcsr, deepsparse, hpx
    assert [f["cell"] for f in ei.value.failures] == [CELLS[2].label()]
    recovered = _runner(tmp_path)
    recovered.run_cells(CELLS)
    by_cell = {r["cell"]: r["cached"] for r in recovered.report}
    assert by_cell == {CELLS[0].label(): True,
                       CELLS[1].label(): True,
                       CELLS[2].label(): False}


def test_pool_timeout_kills_wedged_workers(tmp_path):
    """A hanging worker must not hold the sweep hostage: the deadline
    expires, the processes are killed, and the cells are reported."""
    runner = _runner(tmp_path, jobs=2, timeout=0.5, attempts=1,
                     backoff=0.0, pool_worker=_hang_forever)
    t0 = time.monotonic()
    with pytest.raises(SweepError) as ei:
        runner.run_cells(CELLS[:2])
    assert time.monotonic() - t0 < 30  # nowhere near the 3600 s sleep
    assert len(ei.value.failures) == 2
    assert all("timed out" in f["error"] for f in ei.value.failures)


def test_quarantine_counter_surfaces_in_report(tmp_path):
    runner = _runner(tmp_path)
    runner.run_cells(CELLS[:1])
    # Corrupt the entry on disk, then re-run: the cache quarantines it
    # and the bench summary warns.
    path = runner.cache.path_for(runner.cache.key(CELLS[0].config()))
    with open(path, "w", encoding="utf-8") as f:
        f.write("{ not json")
    again = _runner(tmp_path)
    again.run_cells(CELLS[:1])
    assert again.cache.quarantined == 1
    report = again.format_report()
    assert "1 corrupt cache entry quarantined" in report


# ----------------------------------------------------------------------
# sweep integration
# ----------------------------------------------------------------------
def test_sweep_block_counts_routes_through_runner(tmp_path):
    from repro.tuning import sweep_block_counts

    runner = _runner(tmp_path)
    buckets = [(8, 15), (16, 31)]
    times = sweep_block_counts("broadwell", "inline1", "lanczos",
                               "deepsparse", iterations=1,
                               buckets=buckets, runner=runner)
    assert sorted(times) == sorted(buckets)
    assert all(t > 0 for t in times.values())
    # Sweep cells landed in the cache: a re-sweep is all hits.
    rerun = _runner(tmp_path)
    times2 = sweep_block_counts("broadwell", "inline1", "lanczos",
                                "deepsparse", iterations=1,
                                buckets=buckets, runner=rerun)
    assert times2 == pytest.approx(times)
    assert all(r["cached"] for r in rerun.report)
