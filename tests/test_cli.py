"""CLI: every subcommand runs and prints the expected tables."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "inline1" in out and "mawi_201512020130" in out
    assert "1,909,906,755" in out  # sk-2005 nonzeros from Table 1


def test_solve_lobpcg(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "lobpcg", "--nev", "2",
                 "--maxiter", "40"]) == 0
    out = capsys.readouterr().out
    assert "smallest eigenvalues" in out


def test_solve_lanczos(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "lanczos"]) == 0
    assert "extreme eigenvalues" in capsys.readouterr().out


def test_solve_cg(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "cg"]) == 0
    out = capsys.readouterr().out
    assert "converged: True" in out


def test_compare_command(capsys):
    assert main(["compare", "--matrix", "inline1", "--solver", "lanczos",
                 "--machine", "broadwell", "--block-count", "32",
                 "--iterations", "1"]) == 0
    out = capsys.readouterr().out
    for v in ("libcsr", "libcsb", "deepsparse", "hpx", "regent"):
        assert v in out


def _bench_trace_args(out_dir, jobs):
    return ["bench", "--machine", "broadwell", "--matrix", "inline1",
            "--solver", "lanczos", "--version", "libcsr", "deepsparse",
            "--iterations", "2", "--no-cache",
            "--trace", str(out_dir), "--jobs", str(jobs)]


def test_bench_trace_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "seq"
    assert main(_bench_trace_args(out, 1)) == 0
    table = capsys.readouterr().out
    names = sorted(p.name for p in out.iterdir())
    # one Chrome trace + one metrics CSV per grid cell
    assert sum(n.endswith(".trace.json") for n in names) == 2
    assert sum(n.endswith(".metrics.csv") for n in names) == 2
    assert any("libcsr" in n for n in names)
    assert any("deepsparse" in n for n in names)
    assert "t/iter (ms)" in table and "deepsparse" in table


def test_bench_trace_jobs_fanout_matches_sequential(tmp_path, capsys):
    """--trace with --jobs > 1 fans cells out over a process pool; the
    per-cell artifacts and the results table must be byte-identical to
    the single-process run (traces record simulated time only)."""
    seq, par = tmp_path / "seq", tmp_path / "par"
    assert main(_bench_trace_args(seq, 1)) == 0
    seq_table = capsys.readouterr().out
    assert main(_bench_trace_args(par, 2)) == 0
    par_table = capsys.readouterr().out

    seq_names = sorted(p.name for p in seq.iterdir())
    par_names = sorted(p.name for p in par.iterdir())
    assert seq_names == par_names and seq_names
    for name in seq_names:
        assert (seq / name).read_bytes() == (par / name).read_bytes(), name
    assert seq_table == par_table


def test_chaos_command_table_and_artifact(tmp_path, capsys):
    import json

    report = tmp_path / "chaos.json"
    assert main(["chaos", "--matrix", "inline1", "--solver", "lanczos",
                 "--machine", "broadwell", "--block-count", "48",
                 "--iterations", "5", "--spec", "core-loss",
                 "--seed", "0", "--version", "libcsb", "deepsparse",
                 "--json", str(report)]) == 0
    out = capsys.readouterr().out
    assert "fault plan 'core-loss' (seed 0)" in out
    for col in ("healthy ms", "faulted ms", "slowdown", "recov µs",
                "retries", "stall ms"):
        assert col in out
    assert "slowdown = faulted/healthy" in out  # column legend
    doc = json.loads(report.read_text())
    assert doc["spec"] == "core-loss" and doc["seed"] == 0
    assert set(doc["versions"]) == {"libcsb", "deepsparse"}
    for v in doc["versions"].values():
        assert v["faulted_total_time"] > 0
        assert v["fault_report"]["core_losses"]


def test_chaos_rejects_unknown_spec(capsys):
    assert main(["chaos", "--spec", "meteor-strike"]) == 2
    assert "unknown fault spec" in capsys.readouterr().err


def test_tune_command(capsys):
    assert main(["tune", "--matrix", "inline1", "--runtime", "deepsparse",
                 "--machine", "broadwell", "--solver", "lanczos"]) == 0
    out = capsys.readouterr().out
    assert "best bucket" in out
    assert "rule of thumb" in out
