"""CLI: every subcommand runs and prints the expected tables."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "inline1" in out and "mawi_201512020130" in out
    assert "1,909,906,755" in out  # sk-2005 nonzeros from Table 1


def test_solve_lobpcg(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "lobpcg", "--nev", "2",
                 "--maxiter", "40"]) == 0
    out = capsys.readouterr().out
    assert "smallest eigenvalues" in out


def test_solve_lanczos(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "lanczos"]) == 0
    assert "extreme eigenvalues" in capsys.readouterr().out


def test_solve_cg(capsys):
    assert main(["solve", "--matrix", "inline1", "--scale", "16384",
                 "--solver", "cg"]) == 0
    out = capsys.readouterr().out
    assert "converged: True" in out


def test_compare_command(capsys):
    assert main(["compare", "--matrix", "inline1", "--solver", "lanczos",
                 "--machine", "broadwell", "--block-count", "32",
                 "--iterations", "1"]) == 0
    out = capsys.readouterr().out
    for v in ("libcsr", "libcsb", "deepsparse", "hpx", "regent"):
        assert v in out


def test_tune_command(capsys):
    assert main(["tune", "--matrix", "inline1", "--runtime", "deepsparse",
                 "--machine", "broadwell", "--solver", "lanczos"]) == 0
    out = capsys.readouterr().out
    assert "best bucket" in out
    assert "rule of thumb" in out
