"""HPX-style futures/dataflow API (Listing 2 semantics on threads)."""

import threading
import time

import numpy as np
import pytest

from repro.runtime.futures import (
    Future,
    HPXPool,
    async_run,
    dataflow,
    make_ready_future,
    unwrapping,
)


def test_future_set_and_get():
    f = Future()
    assert not f.is_ready()
    f.set_result(42)
    assert f.is_ready() and f.get() == 42


def test_future_write_once():
    f = make_ready_future(1)
    with pytest.raises(RuntimeError, match="already satisfied"):
        f.set_result(2)


def test_future_exception_propagates():
    f = Future()
    f.set_exception(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        f.get()


def test_future_timeout():
    f = Future()
    with pytest.raises(TimeoutError):
        f.get(timeout=0.01)


def test_then_callback_immediate_and_deferred():
    hits = []
    f = make_ready_future(7)
    f.then(lambda fut: hits.append(fut.get()))
    assert hits == [7]
    g = Future()
    g.then(lambda fut: hits.append(fut.get()))
    g.set_result(8)
    assert hits == [7, 8]


def test_async_run():
    with HPXPool(2) as pool:
        f = async_run(pool, lambda a, b: a + b, 2, 3)
        assert f.get(timeout=5) == 5


def test_async_run_exception():
    with HPXPool(2) as pool:
        f = async_run(pool, lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            f.get(timeout=5)


def test_dataflow_waits_for_dependencies():
    with HPXPool(2) as pool:
        a = Future()
        b = Future()
        out = dataflow(pool, lambda x, y: x * y, a, b)
        assert not out.is_ready()
        a.set_result(6)
        assert not out.is_ready()
        b.set_result(7)
        assert out.get(timeout=5) == 42


def test_dataflow_mixed_args():
    with HPXPool(2) as pool:
        a = make_ready_future(10)
        out = dataflow(pool, lambda x, k: x + k, a, 5)
        assert out.get(timeout=5) == 15


def test_dataflow_vector_of_futures():
    """Listing 2 line 24: reduce fires when every partial is ready."""
    with HPXPool(4) as pool:
        partials = [Future() for _ in range(5)]
        out = dataflow(pool, lambda vals: sum(vals), partials)
        for i, p in enumerate(partials):
            p.set_result(i)
        assert out.get(timeout=5) == 10


def test_unwrapping():
    fn = unwrapping(lambda x, y: x - y)
    assert fn(make_ready_future(9), 4) == 5


def test_listing2_spmv_chain():
    """The paper's Listing 2 pattern end-to-end on a real blocked SpMV."""
    from repro.matrices.csb import CSBMatrix
    from repro.matrices.generators import banded_fem

    csb = CSBMatrix.from_coo(banded_fem(120, 6, seed=2), 30)
    np_ = csb.nbr
    rng = np.random.default_rng(0)
    x = rng.standard_normal(120)
    y = np.zeros(120)

    def spmm_task(i, j):
        rs, re = csb.row_block_bounds(i)
        cs, ce = csb.col_block_bounds(j)
        csb.block_spmv(i, j, x[cs:ce], y[rs:re])

    with HPXPool(4) as pool:
        y_ftr = [make_ready_future() for _ in range(np_)]
        for i in range(np_):
            for j in range(np_):
                if csb.block_nnz(i, j) > 0:  # skip empty blocks
                    # the future depends on itself: dependency chaining
                    y_ftr[i] = dataflow(
                        pool, lambda _prev, i=i, j=j: spmm_task(i, j),
                        y_ftr[i],
                    )
        for f in y_ftr:
            f.get(timeout=10)
    np.testing.assert_allclose(y, csb.spmv(x), atol=1e-12)
