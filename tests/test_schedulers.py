"""Scheduler policies: queue discipline, locality, Regent pipeline."""

import pytest

from repro.graph.dag import TaskDAG
from repro.graph.task import DataHandle, Task
from repro.machine.memory import MemoryModel
from repro.sim.schedulers import (
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
    Scheduler,
)


def simple_dag(n=8):
    dag = TaskDAG()
    for k in range(n):
        dag.add_task(Task(-1, "COPY", (DataHandle("x", k, 8),),
                          (DataHandle("y", k, 8),),
                          {"rows": 1, "width": 1}, {"i": k}, 0, k))
    return dag


@pytest.fixture
def memory(bw):
    return MemoryModel(bw, first_touch=True, n_parts=8)


def test_base_fifo(bw, memory):
    s = Scheduler()
    s.prepare(simple_dag(), bw, memory)
    for t in (3, 1, 2):
        s.on_ready(t, 0.0)
    assert [s.pick(0, 0.0) for _ in range(3)] == [3, 1, 2]
    assert s.pick(0, 0.0) is None
    assert not s.has_ready()


def test_deepsparse_continuation_lifo(bw, memory):
    s = DeepSparseScheduler()
    s.prepare(simple_dag(), bw, memory)
    # core 2 enabled tasks 4 then 5: LIFO pops 5 first on core 2
    s.on_ready(4, 0.0, enabler_core=2)
    s.on_ready(5, 0.0, enabler_core=2)
    assert s.pick(2, 0.0) == 5
    assert s.pick(2, 0.0) == 4


def test_deepsparse_steals_oldest(bw, memory):
    s = DeepSparseScheduler()
    s.prepare(simple_dag(), bw, memory)
    s.on_ready(1, 0.0, enabler_core=0)
    s.on_ready(2, 0.0, enabler_core=0)
    # core 7 has nothing: steals the OLDEST from core 0's deque
    assert s.pick(7, 0.0) == 1
    assert s.pick(0, 0.0) == 2


def test_deepsparse_shared_queue_for_sources(bw, memory):
    s = DeepSparseScheduler()
    s.prepare(simple_dag(), bw, memory)
    s.on_ready(3, 0.0, enabler_core=None)
    s.on_ready(6, 0.0, enabler_core=None)
    assert s.pick(5, 0.0) == 3  # FIFO in spawn order
    assert s.pick(5, 0.0) == 6


def test_deepsparse_spawn_serialization(bw, memory):
    s = DeepSparseScheduler(spawn_cost=1e-6)
    s.prepare(simple_dag(), bw, memory)
    assert s.release_time(0, 10.0) == pytest.approx(10.0 + 1e-6)
    assert s.release_time(9, 10.0) == pytest.approx(10.0 + 10e-6)


def test_hpx_numa_queues(ep):
    mem = MemoryModel(ep, first_touch=True, n_parts=8)
    s = HPXScheduler(numa_aware=True, shuffle_window=1)
    s.prepare(simple_dag(), ep, mem)
    # task k writes ("y", k); with 8 parts over 8 domains, chunk k
    # lives on domain k — a core of domain 0 prefers task 0.
    for k in range(8):
        s.on_ready(k, 0.0)
    assert s.pick(0, 0.0) == 0       # core 0 → domain 0
    assert s.pick(16, 0.0) == 1      # core 16 → domain 1
    # stealing: core 0's local queue is now empty, takes remote work
    got = s.pick(0, 0.0)
    assert got is not None and got != 0


def test_hpx_shuffle_window_deterministic(bw):
    mem = MemoryModel(bw, first_touch=True, n_parts=8)
    picks = []
    for _ in range(2):
        s = HPXScheduler(numa_aware=False, shuffle_window=4)
        s.prepare(simple_dag(), bw, mem, seed=7)
        for k in range(8):
            s.on_ready(k, 0.0)
        picks.append([s.pick(0, 0.0) for _ in range(8)])
    assert picks[0] == picks[1]  # seeded => reproducible
    assert sorted(picks[0]) == list(range(8))  # nothing lost


def test_regent_reserved_util_cores(bw, memory):
    s = RegentScheduler(util_fraction=4 / 28)
    s.prepare(simple_dag(), bw, memory)
    assert s.n_util == 4 and s.n_workers == 24
    s.on_ready(0, 0.0)
    assert s.pick(27, 0.0) is None  # util core refuses app tasks
    assert s.pick(0, 0.0) == 0


def test_regent_analysis_pipeline_rates(bw, memory):
    """Index-launched kernels pass analysis much faster than SPMM."""
    dag = TaskDAG()
    for k, kern in enumerate(["SPMM", "SPMM", "XY", "XY"]):
        shape = ({"nnz": 1, "rows": 1, "cols": 1, "width": 1}
                 if kern == "SPMM" else {"rows": 1, "w1": 1, "w2": 1})
        dag.add_task(Task(-1, kern, (), (DataHandle("y", k, 8),),
                          shape, {"i": k}, 0, k))
    s = RegentScheduler(analysis_cost=10e-6, index_launch_cost=1e-6)
    s.prepare(dag, bw, memory)
    r = [s.release_time(t, 0.0) for t in range(4)]
    assert r == sorted(r)  # pipeline is serial
    assert r[1] - r[0] == pytest.approx(10e-6)  # SPMM: full analysis
    assert r[3] - r[2] == pytest.approx(1e-6)   # XY: index launch
