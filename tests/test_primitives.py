"""Primitive engines: eager/tracing parity and trace recording."""

import numpy as np
import pytest

from repro.graph.trace import PrimitiveCall, TraceRecorder
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem
from repro.solvers.primitives import (
    EagerEngine,
    TracingEngine,
    apply_alpha_op,
)
from repro.solvers.workspace import Workspace


@pytest.fixture
def ws():
    csb = CSBMatrix.from_coo(banded_fem(90, 6, seed=2), 30)
    return Workspace(csb, {"x": 2, "y": 2, "q": 2, "d": 1},
                     {"Z": (2, 2), "P": (2, 2), "s": (1, 1)})


def test_apply_alpha_op_table():
    assert apply_alpha_op(4.0, "identity") == 4.0
    assert apply_alpha_op(4.0, "neg") == -4.0
    assert apply_alpha_op(4.0, "inv") == 0.25
    assert apply_alpha_op(4.0, "neg_inv") == -0.25
    assert apply_alpha_op(0.0, "inv") == 0.0
    with pytest.raises(ValueError):
        apply_alpha_op(1.0, "exp")


def test_eager_ops_match_numpy(ws, rng):
    e = EagerEngine(ws)
    ws.full("x")[:] = rng.standard_normal(ws.full("x").shape)
    ws.full("Z")[:] = rng.standard_normal((2, 2))
    e.spmm("x", "y")
    np.testing.assert_allclose(ws.full("y"),
                               ws.matrix.spmm(ws.full("x")), atol=1e-12)
    e.xy("y", "Z", "q")
    np.testing.assert_allclose(ws.full("q"),
                               ws.full("y") @ ws.full("Z"), atol=1e-12)
    e.xty("y", "q", "P")
    np.testing.assert_allclose(ws.full("P"),
                               ws.full("y").T @ ws.full("q"), atol=1e-12)
    before = ws.full("q").copy()
    e.xy("y", "Z", "q", accumulate=True, beta=0.5)
    np.testing.assert_allclose(
        ws.full("q"), before + 0.5 * (ws.full("y") @ ws.full("Z")),
        atol=1e-12)
    e.dot("x", "x", "s")
    assert ws.scalar("s") == pytest.approx(
        float(ws.full("x").ravel() @ ws.full("x").ravel()))
    e.dot("x", "x", "s", post="sqrt")
    assert ws.scalar("s") == pytest.approx(
        np.linalg.norm(ws.full("x")))


def test_eager_diagscale(ws, rng):
    e = EagerEngine(ws)
    ws.full("d")[:] = rng.standard_normal((ws.m, 1))
    ws.full("x")[:] = rng.standard_normal((ws.m, 2))
    e.diagscale("d", "x", "y")
    np.testing.assert_allclose(ws.full("y"),
                               ws.full("d") * ws.full("x"), atol=1e-12)


def test_tracing_engine_records_in_order(ws):
    t = TracingEngine(ws)
    t.spmm("x", "y")
    t.xy("y", "Z", "q")
    t.dot("x", "y", "s", post="sqrt")
    t.next_iteration()
    t.copy("x", "y", col=3)
    assert [c.op for c in t.calls] == ["SPMM", "XY", "DOT", "COPY"]
    assert t.calls[0].reads == ("A", "x")
    assert t.calls[2].meta_dict["post"] == "sqrt"
    assert t.calls[3].iteration == 1
    assert t.calls[3].meta_dict["col"] == 3


def test_trace_recorder_iterations():
    r = TraceRecorder()
    r.record("COPY", ("a",), ("b",))
    r.next_iteration()
    r.record("COPY", ("b",), ("a",))
    assert len(r) == 2
    assert [c.iteration for c in r.calls] == [0, 1]


def test_primitive_call_is_hashable_value():
    a = PrimitiveCall("COPY", ("x",), ("y",), (("col", 1),), 0)
    b = PrimitiveCall("COPY", ("x",), ("y",), (("col", 1),), 0)
    assert a == b and hash(a) == hash(b)


def test_eager_scale_and_axpy_named(ws, rng):
    e = EagerEngine(ws)
    ws.full("x")[:] = 1.0
    ws.full("y")[:] = 2.0
    ws.set_scalar("s", 4.0)
    e.axpy("x", "y", alpha_name="s", alpha_op="inv")  # y += x/4
    np.testing.assert_allclose(ws.full("y"), 2.25)
    e.scale("y", alpha=0.0)
    assert not ws.full("y").any()
