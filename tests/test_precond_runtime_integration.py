"""Preconditioned LOBPCG runs end-to-end under every runtime model."""

import pytest

from repro.machine import broadwell
from repro.matrices.census import census_for
from repro.matrices.suite import SUITE
from repro.runtime import (
    BSPRuntime,
    DeepSparseRuntime,
    HPXRuntime,
    RegentRuntime,
)
from repro.solvers import lobpcg_trace
from repro.tuning.blocksize import block_size_for_count


@pytest.fixture(scope="module")
def precond_problem():
    spec = SUITE["Queen4147"]
    cen = census_for(spec, block_size_for_count(spec.paper_rows, 48))
    calls, chunked, small = lobpcg_trace(cen, n=8, precondition=True)
    return cen, calls, chunked, small


def test_preconditioned_dag_under_all_runtimes(precond_problem, bw):
    cen, calls, chunked, small = precond_problem
    results = {}
    for rt in (BSPRuntime(bw, "libcsb"), DeepSparseRuntime(bw),
               HPXRuntime(bw), RegentRuntime(bw)):
        r = rt.run(cen, calls, chunked, small, iterations=1)
        results[rt.name] = r
        assert r.counters.kernel_tasks.get("DIAGSCALE", 0) == cen.nbr
    # preconditioner apply is cheap relative to the iteration
    ds = results["deepsparse"]
    assert ds.counters.kernel_time["DIAGSCALE"] < 0.1 * ds.counters.busy_time


def test_preconditioning_cost_is_marginal(precond_problem, bw):
    """Adding the Jacobi apply changes iteration time by only a few %."""
    cen, calls, chunked, small = precond_problem
    from repro.solvers import lobpcg_trace as lt

    plain_calls, pchunked, psmall = lt(cen, n=8, precondition=False)
    with_p = DeepSparseRuntime(bw).run(cen, calls, chunked, small,
                                       iterations=2)
    without = DeepSparseRuntime(bw).run(cen, plain_calls, pchunked, psmall,
                                        iterations=2)
    ratio = with_p.time_per_iteration / without.time_per_iteration
    assert 0.9 < ratio < 1.25
