"""TDGG: trace → fine-grained task DAG with correct dependences."""

import numpy as np
import pytest

from repro.graph.builder import BuildOptions, DAGBuilder
from repro.graph.trace import PrimitiveCall, TraceRecorder
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem


@pytest.fixture(scope="module")
def csb():
    return CSBMatrix.from_coo(banded_fem(160, 6, seed=2), 40)  # 4×4 blocks


def build(csb, calls, options=None, width=2):
    chunked = {"X": width, "Y": width, "Q": width}
    small = {"Z": (width, width), "P": (width, width), "s": (1, 1)}
    b = DAGBuilder(csb, "A", chunked, small, options)
    return b.build(calls)


def rec():
    return TraceRecorder()


def test_spmm_tasks_per_nonempty_block(csb):
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag = build(csb, t.calls)
    n_spmm = dag.by_kernel().get("SPMM", 0)
    assert n_spmm == len(csb.nonempty_blocks())


def test_spmm_row_chain_dependencies(csb):
    """Tasks updating the same Y row chunk are serialized (§3)."""
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag = build(csb, t.calls)
    # group tasks by output row
    rows = {}
    for task in dag.tasks:
        if task.kernel == "SPMM":
            rows.setdefault(task.params["i"], []).append(task.tid)
    for i, tids in rows.items():
        # chain: each consecutive pair connected
        for u, v in zip(tids, tids[1:]):
            assert (u, v) in dag._edge_set
        # exactly the first in each row zeroes the output
        firsts = [dag.tasks[t0].params["zero_first"] for t0 in tids]
        assert firsts[0] and not any(firsts[1:])


def test_skip_empty_ablation(csb):
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag_skip = build(csb, t.calls, BuildOptions(skip_empty=True))
    dag_all = build(csb, t.calls, BuildOptions(skip_empty=False))
    assert len(dag_all) == csb.nbr * csb.nbc  # every block spawns
    assert len(dag_skip) < len(dag_all)


def test_reduction_mode_structure(csb):
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag = build(csb, t.calls, BuildOptions(spmm_mode="reduction"))
    kinds = dag.by_kernel()
    assert kinds["SPMM_REDUCE"] == csb.nbr
    # SPMM tasks in reduction mode are mutually independent per row
    spmm = [t_ for t_ in dag.tasks if t_.kernel == "SPMM"]
    for a in spmm:
        for b in spmm:
            assert (a.tid, b.tid) not in dag._edge_set


def test_bad_spmm_mode():
    with pytest.raises(ValueError, match="spmm_mode"):
        BuildOptions(spmm_mode="nope")


def test_xy_reads_small_z(csb):
    t = rec()
    t.record("XY", ("Y", "Z"), ("Q",))
    dag = build(csb, t.calls)
    assert len(dag) == csb.nbr
    for task in dag.tasks:
        names = [h.name for h in task.reads]
        assert "Z" in names and "Y" in names


def test_xty_partials_and_reduce(csb):
    t = rec()
    t.record("XTY", ("X", "Y"), ("P",))
    dag = build(csb, t.calls)
    assert dag.by_kernel()["XTY"] == csb.nbr
    assert dag.by_kernel()["XTY_REDUCE"] == 1
    red = [x for x in dag.tasks if x.kernel == "XTY_REDUCE"][0]
    assert len(dag.pred[red.tid]) == csb.nbr  # reduce waits for all


def test_raw_war_waw_edges(csb):
    """RAW, WAR and WAW hazards all become edges."""
    t = rec()
    t.record("COPY", ("X",), ("Y",))   # writes Y
    t.record("ADD", ("Y", "X"), ("Q",))  # reads Y (RAW)
    t.record("COPY", ("X",), ("Y",))   # rewrites Y (WAW + WAR vs reader)
    dag = build(csb, t.calls)
    np_ = csb.nbr
    for i in range(np_):
        w1, r, w2 = i, np_ + i, 2 * np_ + i
        assert (w1, r) in dag._edge_set      # RAW
        assert (w1, w2) in dag._edge_set     # WAW
        assert (r, w2) in dag._edge_set      # WAR


def test_scale_zero_for_empty_rows():
    """Rows with no stored blocks still get their output zeroed."""
    from repro.matrices.coo import COOMatrix

    coo = COOMatrix((80, 80), [0], [0], [1.0])  # only block (0,0)
    csb1 = CSBMatrix.from_coo(coo, 20)
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag = build(csb1, t.calls)
    scale = [x for x in dag.tasks if x.kernel == "SCALE"]
    assert len(scale) == csb1.nbr - 1  # all rows but row 0


def test_dot_chain_serializes_scalar_consumers(csb):
    """A SCALE using a named scalar waits for the DOT reduce."""
    t = rec()
    t.record("DOT", ("X", "X"), ("s",), post="sqrt")
    t.record("SCALE", (), ("X",), alpha_name="s", alpha_op="inv")
    dag = build(csb, t.calls)
    red = [x for x in dag.tasks if x.kernel == "DOT_REDUCE"][0]
    scales = [x for x in dag.tasks if x.kernel == "SCALE"]
    for s in scales:
        assert (red.tid, s.tid) in dag._edge_set


def test_csr_storage_gather_span(csb):
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    dag_csb = build(csb, t.calls)
    dag_csr = build(csb, t.calls, BuildOptions(csr_storage=True))
    span_csb = dag_csb.tasks[0].shape["gather_span"]
    span_csr = dag_csr.tasks[0].shape["gather_span"]
    assert span_csr == csb.shape[1] * 2 * 8  # whole vector, width 2
    assert span_csb < span_csr


def test_builder_deterministic(csb):
    t = rec()
    t.record("SPMM", ("A", "X"), ("Y",))
    t.record("XTY", ("X", "Y"), ("P",))
    d1 = build(csb, t.calls)
    d2 = build(csb, t.calls)
    assert [x.kernel for x in d1.tasks] == [x.kernel for x in d2.tasks]
    assert d1._edge_set == d2._edge_set


def test_unknown_primitive_rejected():
    with pytest.raises(ValueError, match="unknown primitive"):
        PrimitiveCall("FROBNICATE", (), ())
