"""Cluster router suite: placement, failover, exactly-once, rollups.

The router's contract, each clause pinned against live in-process
shards (real TCP, real concurrency — :class:`BackgroundService` shards
behind a :class:`BackgroundRouter`):

* **placement** — every cell lands on the shard the consistent-hash
  ring names for its result-cache content hash, so a test-side replica
  of the ring predicts routing exactly;
* **exactly-once, cluster-wide** — duplicate-heavy concurrent load
  through the router computes each distinct cell once across *all*
  shards, proven from the shards' own audit JSONL, not the metrics;
* **failover** — a dead home shard costs one bounded retry and lands
  the request on the ring successor, idempotently;
* **backpressure relay** — a shard's 429 is relayed verbatim, never
  failed over (spilling would split the key's coalescing domain);
* **membership** — a shard restarting on a new port keeps its name and
  therefore every placement; the rollup ``/metrics`` sums shard
  counters so the load harness's invariants hold unchanged.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import threading
import time

import pytest

from repro.bench.cache import ResultCache, placement_key
from repro.serve import (
    BackgroundRouter,
    BackgroundService,
    HashRing,
    Router,
    RouterConfig,
    ServeConfig,
    ServiceClient,
    normalize_cell,
)
from repro.serve.load import run_load
from repro.serve.router import parse_members
from repro.trace.sink import read_jsonl

CELLS = [
    {"machine": "broadwell", "matrix": "inline1", "solver": "lanczos",
     "version": v, "block_count": bc, "iterations": 1}
    for v in ("libcsr", "libcsb", "deepsparse", "hpx", "regent")
    for bc in (16, 32)
]


def _key(doc: dict) -> str:
    return placement_key(normalize_cell(doc).config())


def _shard_config(tmp_path, name: str, **kw) -> ServeConfig:
    root = tmp_path / name
    root.mkdir(parents=True, exist_ok=True)
    kw.setdefault("port", 0)
    kw.setdefault("jobs", 0)
    kw.setdefault("cache", ResultCache(root=str(root / "cache"),
                                       enabled=True))
    kw.setdefault("audit_path", str(root / "audit.jsonl"))
    return ServeConfig(**kw)


class _Cluster:
    """N in-process shards + router, with the ring the router uses."""

    def __init__(self, tmp_path, n: int = 3, **router_kw):
        self.shards = {}
        for i in range(n):
            name = f"shard-{i}"
            self.shards[name] = BackgroundService(
                _shard_config(tmp_path, name)).start()
        members = {name: ("127.0.0.1", bg.port)
                   for name, bg in self.shards.items()}
        router_kw.setdefault("probe_interval", 0.2)
        self.background = BackgroundRouter(
            RouterConfig(port=0, members=members, **router_kw)).start()
        self.ring = HashRing()
        for name in self.shards:
            self.ring.add(name)

    @property
    def port(self) -> int:
        return self.background.port

    def stop(self) -> None:
        self.background.stop()
        for bg in self.shards.values():
            bg.stop()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


# ----------------------------------------------------------------------
# parse_members (unit)
# ----------------------------------------------------------------------
def test_parse_members_accepts_specs_and_dicts():
    assert parse_members(["127.0.0.1:9001", "10.0.0.5:9002"]) == {
        "127.0.0.1:9001": ("127.0.0.1", 9001),
        "10.0.0.5:9002": ("10.0.0.5", 9002),
    }
    named = {"shard-0": ("127.0.0.1", 9001)}
    assert parse_members(named) == named
    for bad in ("no-port", "host:", ":", "host:abc"):
        with pytest.raises(ValueError):
            parse_members([bad])


# ----------------------------------------------------------------------
# placement
# ----------------------------------------------------------------------
def test_cells_route_to_the_ring_predicted_shard(tmp_path):
    """The cross-process half of exactly-once: a test-side ring built
    from nothing but the shard *names* predicts every placement the
    live router makes."""
    with _Cluster(tmp_path, n=3) as cluster:
        with ServiceClient(port=cluster.port) as c:
            for doc in CELLS:
                p = c.submit_cell(**doc)
                assert p["status"] == 200
                assert p["shard"] == cluster.ring.node_for(_key(doc))
                assert p["key"] == _key(doc)


def test_duplicates_hit_the_home_shards_cache(tmp_path):
    with _Cluster(tmp_path, n=3) as cluster:
        with ServiceClient(port=cluster.port) as c:
            first = c.submit_cell(**CELLS[0])
            again = c.submit_cell(**CELLS[0])
    assert first["source"] == "computed"
    assert again["source"] == "cache"
    assert first["shard"] == again["shard"]
    assert first["summary"] == again["summary"]


def test_sweep_fans_out_and_rolls_up(tmp_path):
    with _Cluster(tmp_path, n=3) as cluster:
        with ServiceClient(port=cluster.port) as c:
            sw = c.submit_sweep(
                matrices=["inline1"],
                versions=["libcsr", "libcsb", "deepsparse",
                          "hpx", "regent"],
                iterations=1)
            m = c.metrics()
    assert sw["n_cells"] == 5 and sw["worst_status"] == 200
    for entry in sw["cells"]:
        assert entry["status"] == 200 and "shard" in entry
    used = {e["shard"] for e in sw["cells"]}
    assert len(used) > 1          # a sweep genuinely spans shards
    # Rollup view: cluster computations equal the distinct cells, and
    # the per-shard forward counters cover every used shard.
    assert m["computations"] == 5
    assert m["cluster"]["shards_reporting"] == 3
    assert used <= set(m["forwards"])
    assert m["relayed"].get("computed") == 5
    assert set(m["router"]["members"]) == set(cluster.shards)


# ----------------------------------------------------------------------
# exactly-once, cluster-wide (from the shards' audit logs)
# ----------------------------------------------------------------------
def test_cluster_wide_exactly_once_under_duplicate_load(tmp_path):
    """≥50% duplicate traffic from 32 concurrent clients through the
    router: each distinct cell is computed exactly once *across the
    cluster*, proven from the shards' audit JSONL (the ground truth a
    metrics bug could not fake), and every computation happened on the
    ring-placed shard."""
    with _Cluster(tmp_path, n=3) as cluster:
        report = run_load(cluster.port, n_requests=64,
                          dup_fraction=0.5, threads=32)
        ring = cluster.ring
    assert report["ok"], report["errors"]
    assert report["n_distinct_keys"] > 1

    computed = {}   # key -> [shard names that computed it]
    for name, bg in cluster.shards.items():
        audit = bg.config.audit_path
        assert os.path.exists(audit), f"{name} audit not published"
        for ev in read_jsonl(audit):
            assert ev.path == "/v1/cell"
            if ev.source == "computed":
                computed.setdefault(ev.key, []).append(name)
    assert len(computed) == report["n_distinct_keys"]
    dupes = {k: v for k, v in computed.items() if len(v) > 1}
    assert not dupes, f"computed more than once: {dupes}"
    misplaced = {k: v for k, v in computed.items()
                 if v[0] != ring.node_for(k)}
    assert not misplaced, f"computed off-placement: {misplaced}"


# ----------------------------------------------------------------------
# failover and upstream retry (Router object level — no probe races)
# ----------------------------------------------------------------------
def _dead_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


def test_failover_to_ring_successor_when_home_shard_is_dead(tmp_path):
    """The home shard is unreachable: the router must mark it down,
    count a failover, and serve the request from the ring successor —
    same response a healthy cluster would have produced."""
    live = BackgroundService(_shard_config(tmp_path, "live")).start()
    dead_port = _dead_port()

    async def go():
        router = Router(RouterConfig(members={
            "shard-live": ("127.0.0.1", live.port),
            "shard-dead": ("127.0.0.1", dead_port),
        }))
        # Find a cell whose home is the dead shard.
        doc = None
        for cand in CELLS:
            if router.ring.node_for(_key(cand)) == "shard-dead":
                doc = cand
                break
        assert doc is not None, "no cell landed on shard-dead"
        status, payload, source, key = await router.route_cell(doc)
        return router, status, payload, source, key

    try:
        router, status, payload, source, key = asyncio.run(go())
    finally:
        live.stop()
    assert (status, source) == (200, "routed")
    assert payload["shard"] == "shard-live"
    assert payload["source"] == "computed"
    assert router.metrics.failovers == 1
    assert router.metrics.marked_down == 1
    assert "shard-dead" not in router.ring    # left the ring


def test_probe_eviction_needs_consecutive_misses():
    """One slow /healthz must not evict a busy-but-healthy shard — a
    spurious eviction fails its live keys over to the successor and
    computes them twice, breaking cluster-wide exactly-once.  Only a
    full run of ``probe_fails_down`` consecutive misses takes the
    shard out; a single ok resets the run and a down shard needs just
    one ok to rejoin."""
    router = Router(RouterConfig(
        members={"shard-0": ("127.0.0.1", 1),
                 "shard-1": ("127.0.0.1", 2)},
        probe_fails_down=3))
    shard = router._shards["shard-0"]

    router._note_probe(shard, False)
    router._note_probe(shard, False)
    assert shard.up and "shard-0" in router.ring
    router._note_probe(shard, True)       # run broken: counter resets
    router._note_probe(shard, False)
    router._note_probe(shard, False)
    assert shard.up, "an interrupted run of misses must not evict"
    router._note_probe(shard, False)      # third consecutive miss
    assert not shard.up and "shard-0" not in router.ring
    assert router.metrics.marked_down == 1
    router._note_probe(shard, True)       # one ok rejoins immediately
    assert shard.up and "shard-0" in router.ring
    assert router.metrics.marked_up == 1


def test_all_candidates_dead_yields_503_no_shard():
    async def go():
        router = Router(RouterConfig(members={
            "shard-a": ("127.0.0.1", _dead_port()),
            "shard-b": ("127.0.0.1", _dead_port()),
        }))
        return await router.route_cell(dict(CELLS[0])), router

    (status, payload, source, key), router = asyncio.run(go())
    assert status == 503 and source == "no_shard"
    assert payload["error"] == "no shard available"
    assert payload["key"] == _key(CELLS[0])
    assert len(router.ring) == 0


class _ScriptedShard(threading.Thread):
    """A raw socket 'shard' serving scripted JSON responses.

    Serves one response per connection then closes it, so every pooled
    keep-alive reuse deterministically hits a stale socket — the
    router's single fresh-connection retry path.
    """

    def __init__(self, body: dict, status: int = 200):
        super().__init__(daemon=True)
        self.body = json.dumps(body).encode()
        self.status = status
        self.hits = 0
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._shutdown = threading.Event()

    def run(self):
        self._sock.settimeout(0.2)
        reason = {200: "OK", 429: "Too Many Requests"}.get(
            self.status, "X")
        while not self._shutdown.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                continue
            self.hits += 1
            try:
                conn.settimeout(5)
                buf = b""
                while b"\r\n\r\n" not in buf:
                    buf += conn.recv(4096)
                head, rest = buf.split(b"\r\n\r\n", 1)
                want = 0
                for line in head.lower().split(b"\r\n"):
                    if line.startswith(b"content-length:"):
                        want = int(line.split(b":", 1)[1])
                while len(rest) < want:
                    rest += conn.recv(4096)
                conn.sendall(
                    b"HTTP/1.1 %d %s\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n"
                    b"Connection: keep-alive\r\n\r\n"
                    % (self.status, reason.encode(), len(self.body))
                    + self.body)
            finally:
                conn.close()

    def stop(self):
        self._shutdown.set()
        self.join(timeout=5)
        self._sock.close()


def test_router_retries_stale_pooled_connection_once():
    """Request 1 pools the upstream connection; the shard closes it.
    Request 2 must retry on a fresh connection (metrics.retries == 1)
    instead of failing the shard over."""
    shard = _ScriptedShard({"source": "cache", "key": "k",
                            "summary": {"x": 1}})
    shard.start()

    async def go():
        router = Router(RouterConfig(members={
            "shard-0": ("127.0.0.1", shard.port)}))
        r1 = await router.route_cell(dict(CELLS[0]))
        r2 = await router.route_cell(dict(CELLS[0]))
        return router, r1, r2

    try:
        router, r1, r2 = asyncio.run(go())
    finally:
        shard.stop()
    assert r1[0] == 200 and r2[0] == 200
    assert router.metrics.retries == 1
    assert router.metrics.failovers == 0
    assert router.metrics.marked_down == 0
    assert shard.hits == 2


def test_shard_429_is_relayed_verbatim_never_failed_over():
    """Backpressure is not a failure: spilling a busy shard's key to a
    successor would split its coalescing domain, so the 429 (and its
    Retry-After payload) must reach the client untouched."""
    busy = _ScriptedShard({"error": "queue full", "retry_after_s": 2.5},
                          status=429)
    idle = _ScriptedShard({"source": "computed", "summary": {}})
    busy.start()
    idle.start()

    async def go():
        router = Router(RouterConfig(members={
            "shard-busy": ("127.0.0.1", busy.port),
            "shard-idle": ("127.0.0.1", idle.port),
        }))
        doc = next(d for d in CELLS
                   if router.ring.node_for(_key(d)) == "shard-busy")
        return router, await router.route_cell(doc)

    try:
        router, (status, payload, source, key) = asyncio.run(go())
    finally:
        busy.stop()
        idle.stop()
    assert status == 429
    assert payload["error"] == "queue full"
    assert payload["retry_after_s"] == 2.5
    assert payload["shard"] == "shard-busy"
    assert router.metrics.failovers == 0
    assert idle.hits == 0


# ----------------------------------------------------------------------
# membership
# ----------------------------------------------------------------------
def test_restarted_shard_keeps_its_placements(tmp_path):
    """A shard restart (same name, new port) must not move a single
    key: the re-pointed member serves the same cells from the same
    cache directory."""
    with _Cluster(tmp_path, n=2) as cluster:
        with ServiceClient(port=cluster.port) as c:
            doc = next(d for d in CELLS
                       if cluster.ring.node_for(_key(d)) == "shard-0")
            first = c.submit_cell(**doc)
            assert first["shard"] == "shard-0"

            # "Restart": a fresh daemon, same name, same cache dir,
            # new ephemeral port.
            old = cluster.shards.pop("shard-0")
            old.stop()
            cache = ResultCache(
                root=str(tmp_path / "shard-0" / "cache"), enabled=True)
            fresh = BackgroundService(
                ServeConfig(port=0, jobs=0, cache=cache)).start()
            cluster.shards["shard-0"] = fresh
            cluster.background.router.update_members_threadsafe({
                name: ("127.0.0.1", bg.port)
                for name, bg in cluster.shards.items()})
            time.sleep(0.1)   # let the loop apply the update

            again = c.submit_cell(**doc)
    assert again["shard"] == "shard-0"
    assert again["source"] == "cache"         # same cache domain
    assert again["summary"] == first["summary"]


def test_healthz_reports_membership(tmp_path):
    with _Cluster(tmp_path, n=2) as cluster:
        with ServiceClient(port=cluster.port) as c:
            h = c.healthz()
            assert h["status"] == "ok" and h["role"] == "router"
            assert h["shards_up"] == ["shard-0", "shard-1"]
            assert h["shards_down"] == []

            cluster.shards["shard-1"].stop()
            deadline = time.time() + 10
            while time.time() < deadline:
                h = c.healthz()
                if h["shards_down"] == ["shard-1"]:
                    break
                time.sleep(0.05)
    assert h["shards_down"] == ["shard-1"]    # probes noticed
    assert h["status"] == "ok"                # degraded only when empty


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_cluster_argument_validation(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["cluster"]) == 2
    assert "need --shards" in capsys.readouterr().err
    assert cli_main(["cluster", "--shards", "2",
                     "--member", "x:1"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_cli_submit_cluster_flag_defaults_router_port(tmp_path, capsys):
    from repro.cli import main as cli_main

    with _Cluster(tmp_path, n=2) as cluster:
        rc = cli_main(["submit", "--cluster", "--port",
                       str(cluster.port), "--matrix", "inline1",
                       "--version", "libcsr", "--iterations", "1",
                       "--json"])
        out = capsys.readouterr().out
    assert rc == 0
    payload = json.loads(out)
    assert payload["shard"] in ("shard-0", "shard-1")
    assert payload["source"] == "computed"
