"""Metamorphic cross-scheduler invariants on random built DAGs.

Every runtime policy (DeepSparse, HPX, Regent, BSP) executing a random
builder-produced DAG must land between the scheduling-theory bounds —
makespan no better than the compute-only critical path or the work/P
bound, and no worse than serializing every charged second — and must
do so under *every* combination of the engine's equivalence switches:
``REPRO_NO_STEADY_STATE`` (iteration fast path off) and
``REPRO_NO_CHARGE_MEMO`` (per-(task, core) charge memo off).  Both
switches are documented bit-identical; here that promise is pinned on
random DAGs rather than the fixed paper problems of
``test_engine_bounds.py``.
"""

import os
from contextlib import contextmanager

from hypothesis import given, settings, strategies as st

from repro.machine import broadwell
from repro.sim.engine import _default_barrier_cost, SimulationEngine, run_bsp
from repro.sim.schedulers import (
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
)
from tests.test_property_dag import random_problem

POLICIES = ("deepsparse", "hpx", "regent", "bsp")

_SCHEDULERS = {
    "deepsparse": DeepSparseScheduler,
    "hpx": HPXScheduler,
    "regent": RegentScheduler,
}

#: Both engine switches are read at call time, so toggling the
#: environment between runs is enough — no re-import needed.
_FLAGS = ("REPRO_NO_STEADY_STATE", "REPRO_NO_CHARGE_MEMO")

FLAG_COMBOS = (
    {},
    {"REPRO_NO_STEADY_STATE": "1"},
    {"REPRO_NO_CHARGE_MEMO": "1"},
    {"REPRO_NO_STEADY_STATE": "1", "REPRO_NO_CHARGE_MEMO": "1"},
)


@contextmanager
def _flags(combo):
    saved = {k: os.environ.get(k) for k in _FLAGS}
    try:
        for k in _FLAGS:
            os.environ.pop(k, None)
        os.environ.update(combo)
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _run(machine, dag, policy, seed=0, iterations=1):
    """Run ``dag`` under ``policy``; returns (result, scheduler|None)."""
    if policy == "bsp":
        return run_bsp(machine, dag, iterations=iterations), None
    sched = _SCHEDULERS[policy]()
    res = SimulationEngine(machine, seed=seed).run(
        dag, sched, iterations=iterations
    )
    return res, sched


def _serial_bound(machine, dag, res, policy, sched, iterations):
    """Serializing every charged second is the slowest legal schedule.

    Busy time covers task durations; overhead time covers runtime
    charges billed outside them.  Barriers close each iteration — and,
    under BSP, each fork-join phase — with a little slop per phase for
    the static loop overhead.  Policies that serialize task *release*
    (Regent's dependence-analysis pipeline) can hold the last task
    invisible past the serial-charge horizon, so the latest release
    offset is added once per iteration.
    """
    phases = iterations
    if policy == "bsp":
        phases = iterations * len({t.seq for t in dag.tasks})
    release = 0.0
    if sched is not None:
        release = max(
            (sched.release_time(t.tid, 0.0) for t in dag.tasks),
            default=0.0,
        )
    c = res.counters
    return (c.busy_time + c.overhead_time
            + iterations * release
            + phases * (_default_barrier_cost(machine.n_cores) + 1e-6)
            + 1e-9)


@given(random_problem(), st.sampled_from(POLICIES), st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_makespan_between_span_and_serial_sum(dag, policy, seed):
    """work/P ≤ span-bound ≤ makespan ≤ serialized charges, any policy."""
    bw = broadwell()
    span = dag.critical_path(weight=SimulationEngine(bw).cost.compute_seconds)
    res, sched = _run(bw, dag, policy, seed=seed)
    assert res.counters.tasks_executed == len(dag)
    assert res.total_time >= span - 1e-12
    assert res.total_time >= res.counters.busy_time / bw.n_cores - 1e-12
    assert res.total_time <= _serial_bound(bw, dag, res, policy, sched, 1)


@given(random_problem(), st.sampled_from(POLICIES))
@settings(max_examples=15, deadline=None)
def test_flag_combos_are_bit_identical(dag, policy):
    """The fast-path and memo switches never change a single bit.

    Six iterations so the steady-state detector has room to arm (it
    needs ≥ 4); every combination of the two switches must reproduce
    the plain double-loop exactly — total, per-iteration times, and
    the full counter block.
    """
    baseline = None
    for combo in FLAG_COMBOS:
        with _flags(combo):
            res, _ = _run(broadwell(), dag, policy, seed=7, iterations=6)
        obs = (res.total_time, tuple(res.iteration_times),
               res.counters.busy_time, res.counters.overhead_time,
               res.counters.compute_time, res.counters.memory_time,
               res.counters.misses(), res.counters.tasks_executed)
        if baseline is None:
            baseline = obs
        else:
            assert obs == baseline, combo
    # All six iterations ran, under whichever path produced them.
    assert baseline[7] == 6 * len(dag)


@given(random_problem(), st.sampled_from(POLICIES), st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_multi_iteration_bounds_hold_per_iteration(dag, policy, seed):
    """Each barriered repetition individually beats the span bound,
    and the iteration times sum back to the total."""
    bw = broadwell()
    span = dag.critical_path(weight=SimulationEngine(bw).cost.compute_seconds)
    res, sched = _run(bw, dag, policy, seed=seed, iterations=3)
    assert len(res.iteration_times) == 3
    assert sum(res.iteration_times) <= res.total_time + 1e-9
    assert res.total_time <= _serial_bound(bw, dag, res, policy, sched, 3)
    for t in res.iteration_times:
        # Every iteration executes the whole DAG, so the compute-only
        # critical path lower-bounds each repetition individually.
        assert t >= span - 1e-12
