"""Property-based tests: format invariants over random sparse matrices."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.matrices.coo import COOMatrix
from repro.matrices.csb import CSBMatrix
from repro.matrices.csr import CSRMatrix
from repro.matrices.symmetrize import is_symmetric, symmetrize_lower


@st.composite
def coo_matrices(draw, max_n=40, max_nnz=120, square=True):
    n = draw(st.integers(2, max_n))
    m = n if square else draw(st.integers(2, max_n))
    nnz = draw(st.integers(0, max_nnz))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, nnz)
    cols = rng.integers(0, m, nnz)
    vals = rng.standard_normal(nnz)
    return COOMatrix((n, m), rows, cols, vals)


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_canonical_preserves_matrix(coo):
    np.testing.assert_allclose(
        coo.to_dense(), coo.canonical().to_dense(), atol=1e-12
    )


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_canonical_sorted_unique(coo):
    c = coo.canonical()
    keys = c.rows * c.shape[1] + c.cols
    assert (np.diff(keys) > 0).all() if keys.size > 1 else True


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_csr_roundtrip(coo):
    csr = CSRMatrix.from_coo(coo)
    np.testing.assert_allclose(csr.to_dense(), coo.to_dense(), atol=1e-12)


@given(coo_matrices(), st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_csb_roundtrip_any_block_size(coo, b):
    csb = CSBMatrix.from_coo(coo, b)
    np.testing.assert_allclose(csb.to_dense(), coo.to_dense(), atol=1e-12)


@given(coo_matrices(), st.integers(1, 50), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_spmv_format_agreement(coo, b, xseed):
    x = np.random.default_rng(xseed).standard_normal(coo.shape[1])
    y_coo = coo.spmv(x)
    y_csr = CSRMatrix.from_coo(coo).spmv(x)
    y_csb = CSBMatrix.from_coo(coo, b).spmv(x)
    np.testing.assert_allclose(y_csr, y_coo, atol=1e-9)
    np.testing.assert_allclose(y_csb, y_coo, atol=1e-9)


@given(coo_matrices(), st.integers(1, 50))
@settings(max_examples=40, deadline=None)
def test_census_partition_of_nnz(coo, b):
    """Block census partitions nnz exactly; census ≡ nonempty blocks."""
    csb = CSBMatrix.from_coo(coo, b)
    grid = csb.block_nnz_grid()
    assert grid.sum() == coo.canonical().nnz
    assert (grid > 0).sum() == len(csb.nonempty_blocks())


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_symmetrize_idempotent(coo):
    s1 = symmetrize_lower(coo)
    s2 = symmetrize_lower(s1)
    assert is_symmetric(s1)
    np.testing.assert_allclose(s1.to_dense(), s2.to_dense(), atol=1e-12)


@given(coo_matrices(), st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_blocks_cover_all_entries(coo, b):
    """Summing every block's entries reconstructs the matrix."""
    csb = CSBMatrix.from_coo(coo, b)
    dense = np.zeros(coo.shape)
    for i, j in csb.nonempty_blocks():
        blk = csb.block(i, j)
        rs, _ = csb.row_block_bounds(i)
        cs, _ = csb.col_block_bounds(j)
        np.add.at(dense, (rs + blk.rows, cs + blk.cols), blk.vals)
    np.testing.assert_allclose(dense, coo.to_dense(), atol=1e-12)
