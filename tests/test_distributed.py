"""Distributed HPX prototype: cluster model and scaling behaviour."""

import pytest

from repro.analysis.experiment import _trace
from repro.distributed import (
    ClusterSpec,
    DistributedHPXRuntime,
    ethernet_cluster,
    ib_cluster,
)
from repro.machine import broadwell
from repro.matrices.suite import SUITE
from repro.runtime.base import build_solver_dag
from repro.tuning.blocksize import block_size_for_count


@pytest.fixture(scope="module")
def dag():
    bs = block_size_for_count(SUITE["nlpkkt160"].paper_rows, 64)
    cen, calls, chunked, small = _trace("nlpkkt160", bs, "lobpcg", 8)
    return build_solver_dag(cen, calls, chunked, small)


def test_cluster_validation(bw):
    with pytest.raises(ValueError, match="at least one"):
        ClusterSpec(bw, 0, 1e-6, 1e9)
    with pytest.raises(ValueError, match="interconnect"):
        ClusterSpec(bw, 2, 1e-6, 0)


def test_message_and_collective_model(bw):
    c = ClusterSpec(bw, 8, link_latency=1e-6, link_bandwidth=1e9)
    assert c.message_time(0) == pytest.approx(1e-6)
    assert c.message_time(1e9) == pytest.approx(1.000001)
    # 8 nodes: tree depth 3, up+down
    assert c.allreduce_time(0) == pytest.approx(6e-6)
    assert c.barrier_time() == pytest.approx(6e-6)
    single = ClusterSpec(bw, 1, 1e-6, 1e9)
    assert single.allreduce_time(1000) == 0.0


def test_single_node_has_no_communication(dag, bw):
    r = DistributedHPXRuntime(ib_cluster(bw, 1)).execute(dag)
    assert r.halo_time == 0.0
    assert r.allreduce_time == 0.0
    assert r.halo_bytes == 0.0
    assert r.time_per_iteration == pytest.approx(r.compute_time)


def test_all_tasks_executed_across_nodes(dag, bw):
    r = DistributedHPXRuntime(ib_cluster(bw, 4)).execute(dag)
    assert len(r.node_times) == 4
    assert all(t > 0 for t in r.node_times)  # every node got work


def test_compute_shrinks_with_nodes(dag, bw):
    r1 = DistributedHPXRuntime(ib_cluster(bw, 1)).execute(dag)
    r4 = DistributedHPXRuntime(ib_cluster(bw, 4)).execute(dag)
    assert r4.compute_time < r1.compute_time
    assert r4.halo_time > 0  # distribution is not free


def test_strong_scaling_monotone_on_fast_fabric(dag, bw):
    times = [
        DistributedHPXRuntime(ib_cluster(bw, n)).execute(dag)
        .time_per_iteration
        for n in (1, 2, 4)
    ]
    # total time never increases on InfiniBand for this problem size
    assert times[1] <= times[0] * 1.05
    assert times[2] <= times[1] * 1.05


def test_slow_fabric_is_communication_bound(dag, bw):
    ib = DistributedHPXRuntime(ib_cluster(bw, 8)).execute(dag)
    eth = DistributedHPXRuntime(ethernet_cluster(bw, 8)).execute(dag)
    assert eth.halo_time > ib.halo_time * 3
    assert eth.time_per_iteration > ib.time_per_iteration


def test_efficiency_below_one(dag, bw):
    single = DistributedHPXRuntime(ib_cluster(bw, 1)).execute(dag)
    r8 = DistributedHPXRuntime(ib_cluster(bw, 8)).execute(dag)
    eff = r8.parallel_efficiency(single)
    assert 0.0 < eff < 1.0


# ----------------------------------------------------------------------
# Property: communication costs are monotone in size and scale
# ----------------------------------------------------------------------
# The alpha-beta model only makes physical sense if sending more bytes
# never gets cheaper and adding nodes never shrinks a collective.  The
# analysis notebooks lean on this when they sweep payloads and node
# counts looking for the communication crossover; a regression here
# would silently bend those curves.

from hypothesis import given, settings, strategies as st  # noqa: E402

_FABRICS = [ib_cluster, ethernet_cluster]

_nbytes = st.one_of(
    st.integers(min_value=0, max_value=1 << 40).map(float),
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
              allow_infinity=False),
)
_nodes = st.integers(min_value=1, max_value=4096)


@settings(max_examples=60, deadline=None)
@given(fabric=st.sampled_from(_FABRICS), a=_nbytes, b=_nbytes,
       n=_nodes)
def test_message_time_monotone_in_nbytes(bw, fabric, a, b, n):
    c = fabric(bw, n)
    lo, hi = sorted((a, b))
    assert c.message_time(lo) <= c.message_time(hi)
    assert c.message_time(0) == c.link_latency  # latency floor


@settings(max_examples=60, deadline=None)
@given(fabric=st.sampled_from(_FABRICS), nbytes=_nbytes, a=_nodes,
       b=_nodes)
def test_allreduce_time_monotone_in_n_nodes(bw, fabric, nbytes, a, b):
    lo, hi = sorted((a, b))
    t_lo = fabric(bw, lo).allreduce_time(nbytes)
    t_hi = fabric(bw, hi).allreduce_time(nbytes)
    assert t_lo <= t_hi
    assert t_lo >= 0.0
    if lo == 1:
        assert t_lo == 0.0  # no peers, no traffic


@settings(max_examples=60, deadline=None)
@given(fabric=st.sampled_from(_FABRICS), n=_nodes, a=_nbytes,
       b=_nbytes)
def test_allreduce_time_monotone_in_nbytes(bw, fabric, n, a, b):
    c = fabric(bw, n)
    lo, hi = sorted((a, b))
    assert c.allreduce_time(lo) <= c.allreduce_time(hi)
    # An allreduce is at least as deep as one message round trip.
    if n > 1:
        assert c.allreduce_time(lo) >= 2 * c.message_time(lo)


@settings(max_examples=60, deadline=None)
@given(fabric=st.sampled_from(_FABRICS), a=_nodes, b=_nodes)
def test_barrier_time_monotone_in_n_nodes(bw, fabric, a, b):
    lo, hi = sorted((a, b))
    t_lo = fabric(bw, lo).barrier_time()
    t_hi = fabric(bw, hi).barrier_time()
    assert t_lo <= t_hi
    if lo == 1:
        assert t_lo == 0.0
    # A barrier moves no payload: it never costs more than the same
    # tree pushing actual bytes.
    assert t_hi <= fabric(bw, hi).allreduce_time(0.0) or hi == 1


@settings(max_examples=40, deadline=None)
@given(nbytes=_nbytes, n=_nodes)
def test_ib_beats_ethernet_everywhere(bw, nbytes, n):
    """The presets keep their physical ordering at every operating
    point: the faster fabric is never priced above the slower one."""
    ib, eth = ib_cluster(bw, n), ethernet_cluster(bw, n)
    assert ib.message_time(nbytes) <= eth.message_time(nbytes)
    assert ib.allreduce_time(nbytes) <= eth.allreduce_time(nbytes)
    assert ib.barrier_time() <= eth.barrier_time()
