"""Conjugate Gradient solver: eager correctness and DAG equivalence."""

import numpy as np
import pytest

from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem, random_symmetric
from repro.runtime import ThreadedRuntime, build_solver_dag, execute_dag_serial
from repro.solvers import Workspace, cg, cg_trace


@pytest.fixture(scope="module")
def spd():
    return CSBMatrix.from_coo(banded_fem(300, 8, seed=21), 60)


def test_cg_solves_spd_system(spd, rng):
    b = rng.standard_normal(spd.shape[0])
    res = cg(spd, b, maxiter=300, tol=1e-12)
    assert res.converged
    x = res.x[:, 0]
    assert np.linalg.norm(spd.spmv(x) - b) < 1e-8 * np.linalg.norm(b)


def test_cg_matches_dense_solve(spd, rng):
    b = rng.standard_normal(spd.shape[0])
    res = cg(spd, b, maxiter=400, tol=1e-13)
    xref = np.linalg.solve(spd.to_dense(), b)
    np.testing.assert_allclose(res.x[:, 0], xref, atol=1e-7)


def test_cg_warm_start(spd, rng):
    b = rng.standard_normal(spd.shape[0])
    xref = np.linalg.solve(spd.to_dense(), b)
    near = xref + 1e-6 * rng.standard_normal(spd.shape[0])
    res = cg(spd, b, maxiter=50, tol=1e-10, x0=near)
    assert res.converged
    assert res.iterations < 20  # warm start converges quickly


def test_cg_residual_monotone_overall(spd, rng):
    b = rng.standard_normal(spd.shape[0])
    res = cg(spd, b, maxiter=100, tol=1e-12)
    assert res.history.reduction() < 1e-8


def test_cg_shape_validation(spd):
    with pytest.raises(ValueError, match="length mismatch"):
        cg(spd, np.ones(spd.shape[0] + 1))


def test_cg_dag_equivalence(spd, rng):
    """The CG task DAG iterated serially reproduces the eager solve."""
    b = rng.standard_normal((spd.shape[0], 1))
    calls, chunked, small = cg_trace(spd)
    dag = build_solver_dag(spd, calls, chunked, small)
    assert "SPMV" in dag.by_kernel()
    ws = Workspace(spd, chunked, small)
    ws.full("r")[:] = b
    ws.full("p")[:] = b
    ws.set_scalar("rho", float(b.ravel() @ b.ravel()))
    for _ in range(60):
        execute_dag_serial(dag, ws)
    x = ws.full("x")[:, 0]
    resid = np.linalg.norm(spd.spmv(x) - b.ravel())
    assert resid < 1e-8 * np.linalg.norm(b)


def test_cg_dag_threaded(spd, rng):
    b = rng.standard_normal((spd.shape[0], 1))
    calls, chunked, small = cg_trace(spd)
    dag = build_solver_dag(spd, calls, chunked, small)
    ws = Workspace(spd, chunked, small)
    ws.full("r")[:] = b
    ws.full("p")[:] = b
    ws.set_scalar("rho", float(b.ravel() @ b.ravel()))
    ThreadedRuntime(4).execute(dag, ws, iterations=40)
    x = ws.full("x")[:, 0]
    assert np.linalg.norm(spd.spmv(x) - b.ravel()) < \
        1e-6 * np.linalg.norm(b)


def test_cg_simulated_on_all_runtimes():
    """CG runs at paper scale under every simulated runtime."""
    from repro.machine import broadwell
    from repro.matrices.census import census_for
    from repro.matrices.suite import SUITE
    from repro.runtime import BSPRuntime, DeepSparseRuntime, HPXRuntime

    spec = SUITE["nlpkkt160"]
    cen = census_for(spec, -(-spec.paper_rows // 64))
    calls, chunked, small = cg_trace(cen)
    mach = broadwell()
    base = BSPRuntime(mach, "libcsr").run(cen, calls, chunked, small,
                                          iterations=2)
    for rt in (DeepSparseRuntime(mach), HPXRuntime(mach)):
        r = rt.run(cen, calls, chunked, small, iterations=2)
        assert r.counters.tasks_executed == 2 * r.n_tasks_per_iteration
        assert r.speedup_over(base) > 0.5
