"""Matrix generators and the Table 1 suite."""

import numpy as np
import pytest

from repro.matrices import generators as G
from repro.matrices.suite import SUITE, SUITE_ORDER, load_matrix, load_suite
from repro.matrices.symmetrize import is_symmetric


@pytest.mark.parametrize("gen,kwargs", [
    (G.banded_fem, {"nnz_per_row": 10}),
    (G.kkt_saddle, {}),
    (G.rmat_graph, {"nnz_target": 4000}),
    (G.traffic_hub, {"nnz_target": 1500}),
    (G.ci_hamiltonian, {"nnz_per_row": 12, "n_groups": 8}),
    (G.random_symmetric, {"nnz_per_row": 6}),
])
def test_generator_symmetric_and_spd(gen, kwargs):
    a = gen(300, seed=5, **kwargs)
    assert a.shape == (300, 300)
    assert is_symmetric(a)
    # diagonally dominant ⇒ SPD ⇒ positive smallest eigenvalue
    ev = np.linalg.eigvalsh(a.to_dense())
    assert ev[0] > 0


def test_generators_deterministic():
    a = G.banded_fem(100, 8, seed=1)
    b = G.banded_fem(100, 8, seed=1)
    np.testing.assert_array_equal(a.vals, b.vals)
    c = G.banded_fem(100, 8, seed=2)
    assert not np.array_equal(a.to_dense(), c.to_dense())


def test_banded_fem_bandwidth():
    a = G.banded_fem(400, 10, bandwidth_frac=0.02, seed=0)
    bw = max(2, int(400 * 0.02))
    assert (np.abs(a.rows - a.cols) <= bw).all()


def test_rmat_skew():
    """Power-law graphs concentrate degree on few rows."""
    a = G.rmat_graph(1024, 20000, seed=0)
    rn = np.sort(a.row_nnz())[::-1]
    top_share = rn[:103].sum() / rn.sum()  # top 10% of rows
    assert top_share > 0.25  # much more than uniform (0.10)


def test_kkt_has_empty_corner():
    a = G.kkt_saddle(600, seed=1, dominant=False)
    d = a.to_dense()
    n1 = int(600 * 0.7)
    corner = d[n1:, n1:] - np.diag(np.diag(d))[n1:, n1:]
    # the (2,2) block is (near-)empty off the diagonal
    assert np.count_nonzero(corner) == 0


# ----------------------------------------------------------------------
def test_suite_has_15_matrices():
    assert len(SUITE) == 15
    assert SUITE_ORDER[0] == "inline1"
    assert SUITE_ORDER[-1] == "mawi_201512020130"


def test_suite_metadata_matches_paper():
    assert SUITE["nlpkkt240"].paper_rows == 27_993_600
    assert SUITE["sk-2005"].paper_nnz == 1_909_906_755
    assert SUITE["HV15R"].symmetric is False  # bold in Table 1
    assert SUITE["twitter7"].binary is True  # italic in Table 1


def test_suite_size_ordering_preserved():
    rows = [SUITE[n].paper_rows for n in SUITE_ORDER]
    assert rows == sorted(rows)


def test_load_matrix_scaled_and_symmetric():
    a = load_matrix("Bump_2911", scale=16384)
    assert a.shape[0] == max(1024, 2_911_419 // 16384)
    assert is_symmetric(a)


def test_load_matrix_unknown_name():
    with pytest.raises(KeyError, match="unknown matrix"):
        load_matrix("nosuch")


def test_load_suite_subset():
    mats = load_suite(scale=32768, names=["inline1", "nlpkkt160"])
    assert set(mats) == {"inline1", "nlpkkt160"}


def test_nnz_per_row_carried_to_scale():
    spec = SUITE["Queen4147"]
    a = spec.build(scale=16384)
    got = a.nnz / a.shape[0]
    # within 2× of the paper's nonzeros per row (fill/symmetrize slack)
    assert 0.5 < got / spec.nnz_per_row < 2.0
