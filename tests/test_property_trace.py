"""Property-based tests: trace-stream invariants on random problems.

The golden-trace tests pin one concrete cell; these push randomly
generated DAGs through every execution policy with the observability
layer attached and check the invariants any consumer of the stream
(Chrome trace export, metrics table, gantt renderer) relies on:

* a worker lane never runs two tasks at once,
* every DAG task appears exactly once per iteration,
* the queue-depth series is never negative and only moves at
  scheduling points,
* attaching the tracer never changes a simulated number.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.machine import broadwell
from repro.sim.engine import SimulationEngine, run_bsp
from repro.sim.schedulers import (
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
)
from repro.trace import InMemorySink, Tracer

from tests.test_property_dag import random_problem

#: Task assignment may occur up to the engine's time epsilon before
#: the previous task on the lane retires.
_SLACK = 1e-9

_SCHED = {
    "deepsparse": DeepSparseScheduler,
    "hpx": HPXScheduler,
    "regent": RegentScheduler,
}


def _traced_run(dag, policy, seed, iterations):
    tracer = Tracer(InMemorySink())
    bw = broadwell()
    if policy == "bsp":
        res = run_bsp(bw, dag, iterations=iterations, tracer=tracer)
    else:
        res = SimulationEngine(bw, seed=seed).run(
            dag, _SCHED[policy](), iterations=iterations, tracer=tracer)
    return res, tracer.events


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent", "bsp"]),
       st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_no_lane_ever_runs_two_tasks_at_once(dag, policy, seed):
    _, events = _traced_run(dag, policy, seed, iterations=2)
    by_lane = {}
    for e in events:
        if e.kind == "task":
            by_lane.setdefault(e.core, []).append(e)
    for lane, tasks in by_lane.items():
        tasks.sort(key=lambda t: (t.start, t.end))
        for a, b in zip(tasks, tasks[1:]):
            assert b.start >= a.end - _SLACK, (
                f"lane {lane}: {b.tid} starts at {b.start} before "
                f"{a.tid} ends at {a.end}"
            )


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent", "bsp"]),
       st.integers(0, 100), st.integers(1, 3))
@settings(max_examples=8, deadline=None)
def test_every_task_traced_exactly_once_per_iteration(
        dag, policy, seed, iterations):
    res, events = _traced_run(dag, policy, seed, iterations)
    want = {t.tid for t in dag.tasks}
    for it in range(iterations):
        seen = Counter(e.tid for e in events
                       if e.kind == "task" and e.iteration == it)
        assert set(seen) == want
        assert all(n == 1 for n in seen.values())
    n_tasks = sum(1 for e in events if e.kind == "task")
    assert n_tasks == res.counters.tasks_executed == \
        len(dag) * iterations


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent"]),
       st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_queue_depth_series_is_sane(dag, policy, seed):
    _, events = _traced_run(dag, policy, seed, iterations=1)
    depths = [e for e in events if e.kind == "queue"]
    assert depths, "schedulers must report queue depth"
    for e in depths:
        assert e.depth >= 0
        assert e.time >= 0.0
    # Steal events name a real victim distinct from the thief's own
    # queue.  (HPX victims are *domain* queue indices, so the lane
    # inequality only holds for the per-core-deque policies.)
    for e in events:
        if e.kind == "steal":
            assert e.victim >= 0 and e.core >= 0
            if policy in ("deepsparse", "regent"):
                assert e.victim != e.core


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent", "bsp"]),
       st.integers(0, 100))
@settings(max_examples=8, deadline=None)
def test_tracer_never_perturbs_random_runs(dag, policy, seed):
    """Bit-identity on arbitrary DAGs, not just the fixture cell."""
    bw = broadwell()
    if policy == "bsp":
        plain = run_bsp(bw, dag, iterations=2)
    else:
        plain = SimulationEngine(bw, seed=seed).run(
            dag, _SCHED[policy](), iterations=2)
    traced, events = _traced_run(dag, policy, seed, iterations=2)
    assert traced.total_time == plain.total_time
    assert list(traced.iteration_times) == list(plain.iteration_times)
    assert traced.counters.l1_misses == plain.counters.l1_misses
    assert traced.counters.l2_misses == plain.counters.l2_misses
    assert traced.counters.l3_misses == plain.counters.l3_misses
    assert traced.counters.busy_time == plain.counters.busy_time
    assert [tuple(r) for r in traced.flow.records] == \
        [tuple(r) for r in plain.flow.records]
    tasks = [e for e in events if e.kind == "task"]
    assert sum(t.l1 for t in tasks) == plain.counters.l1_misses
    assert sum(t.l2 for t in tasks) == plain.counters.l2_misses
    assert sum(t.l3 for t in tasks) == plain.counters.l3_misses
