"""The charge memo must be observationally invisible.

``CostModel._charge_fast`` memoizes whole task charges against a
signature of the resident cache state and replays a recorded
state-delta on a hit instead of re-walking the hierarchy.  These tests
pin the memo's one invariant from both ends:

* property level — random task sets charged over random schedules,
  repeated until states recur, must produce bit-identical
  :class:`~repro.sim.cost.TaskCharge` values *and* leave the
  :class:`~repro.machine.cache.CacheHierarchy` in bit-identical state
  (LRU insertion order included — the steady-state fingerprint hashes
  it) whether the memo is armed or killed via ``REPRO_NO_CHARGE_MEMO``;

* engine level — full simulated runs of every task-parallel scheduler
  (deepsparse / hpx / regent) with enough live iterations for the memo
  to record and replay must report identical numbers with the memo on
  and off.

A deterministic case additionally asserts the memo really *hits* under
a recurring heavy access pattern, so the property isn't vacuously
checking the miss path against itself.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.dag import TaskDAG
from repro.graph.task import DataHandle, Task
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.presets import broadwell
from repro.sim.cost import (
    CostModel,
    charge_memo_stats,
    reset_charge_memo_stats,
)

_MEMO_ENV = "REPRO_NO_CHARGE_MEMO"

# Enough repeats of one schedule for the cache to reach its fixed
# point (round 2), the memo to record (third consecutive sighting of a
# state) and then replay hits for the remaining rounds.
_ROUNDS = 6


def _fingerprint(cache: CacheHierarchy):
    """Exact hierarchy state: entries in insertion order + sharers."""
    return (
        tuple((tuple(l._entries.items()), l.used) for l in cache.l1),
        tuple((tuple(l._entries.items()), l.used) for l in cache.l2),
        tuple((tuple(l._entries.items()), l.used) for l in cache.l3),
        tuple(sorted((k, tuple(sorted(v)))
                     for k, v in cache._sharers.items() if v)),
        tuple(sorted((k, tuple(sorted(v)))
                     for k, v in cache._l3_sharers.items() if v)),
    )


def _charge_schedule(tasks, schedule, disarm: bool):
    """Charge ``schedule`` for ``_ROUNDS`` rounds on a fresh model."""
    old = os.environ.pop(_MEMO_ENV, None)
    if disarm:
        os.environ[_MEMO_ENV] = "1"
    try:
        bw = broadwell()
        cache = CacheHierarchy(bw)
        mem = MemoryModel(bw, first_touch=True, n_parts=8)
        cm = CostModel(bw, cache, mem)
        dag = TaskDAG()
        for t in tasks:
            dag.add_task(t)
        cm.prepare(dag)  # iterations=None: memo arms (unless killed)
        charges = []
        for _ in range(_ROUNDS):
            for ti, core in schedule:
                charges.append(tuple(cm.charge(dag.tasks[ti], core)))
        return charges, _fingerprint(cache), cm
    finally:
        os.environ.pop(_MEMO_ENV, None)
        if old is not None:
            os.environ[_MEMO_ENV] = old


@st.composite
def task_workloads(draw):
    """A random task set plus a (task, core) charge schedule.

    Handle sizes range up to several hundred KB so most drawn plans
    overflow L1 (the memo's ``heavy`` gate) and evictions, L2/L3
    spills and cross-core sharing all occur.
    """
    n_handles = draw(st.integers(2, 8))
    handles = [
        DataHandle(f"h{i}", draw(st.integers(0, 7)),
                   draw(st.integers(64, 400_000)))
        for i in range(n_handles)
    ]
    n_tasks = draw(st.integers(1, 5))
    tasks = []
    for _ in range(n_tasks):
        reads = tuple(
            handles[draw(st.integers(0, n_handles - 1))]
            for _ in range(draw(st.integers(1, 3)))
        )
        writes = tuple(
            handles[draw(st.integers(0, n_handles - 1))]
            for _ in range(draw(st.integers(0, 1)))
        )
        tasks.append(Task(0, "AXPY", reads, writes,
                          {"rows": draw(st.integers(1, 10_000))}))
    schedule = [
        (draw(st.integers(0, n_tasks - 1)), draw(st.integers(0, 3)))
        for _ in range(draw(st.integers(1, 12)))
    ]
    return tasks, schedule


@given(task_workloads())
@settings(max_examples=40, deadline=None)
def test_memo_charges_and_state_bit_identical(workload):
    tasks, schedule = workload
    on_charges, on_state, _ = _charge_schedule(tasks, schedule,
                                               disarm=False)
    off_charges, off_state, _ = _charge_schedule(tasks, schedule,
                                                 disarm=True)
    assert on_charges == off_charges  # floats compared with ==
    assert on_state == off_state


def test_memo_hits_on_recurring_heavy_state_and_stays_exact():
    """Sanity against vacuity: a recurring heavy schedule must actually
    drive the memo through record + replay, still bit-identically."""
    big = DataHandle("big", 0, 1 << 20)      # 1 MB: overflows L1+L2
    aux = DataHandle("aux", 1, 200_000)
    tasks = [
        Task(0, "AXPY", (big, aux), (aux,), {"rows": 4096}),
        Task(0, "AXPY", (aux,), (big,), {"rows": 2048}),
    ]
    schedule = [(0, 0), (1, 1), (0, 0)]
    reset_charge_memo_stats()
    on_charges, on_state, cm = _charge_schedule(tasks, schedule,
                                                disarm=False)
    cm.flush_memo_stats()
    stats = charge_memo_stats()
    assert stats["hits"] > 0, stats
    off_charges, off_state, _ = _charge_schedule(tasks, schedule,
                                                 disarm=True)
    assert on_charges == off_charges
    assert on_state == off_state


# ---------------------------------------------------------------------------
# Engine level: whole simulated runs, every task-parallel scheduler.

def _observed(res) -> dict:
    c = res.counters
    return {
        "total_time": res.total_time,
        "iteration_times": list(res.iteration_times),
        "l1_misses": c.l1_misses,
        "l2_misses": c.l2_misses,
        "l3_misses": c.l3_misses,
        "tasks_executed": c.tasks_executed,
        "busy_time": c.busy_time,
        "compute_time": c.compute_time,
        "memory_time": c.memory_time,
    }


@pytest.mark.parametrize("version", ["deepsparse", "hpx", "regent"])
def test_engine_runs_identical_with_memo_killed(version, monkeypatch):
    """iterations=4 with the steady-state replay disabled keeps every
    iteration live, so the memo records during warm iterations and
    replays in the later ones — and must change nothing."""
    from repro.analysis.experiment import run_version

    monkeypatch.setenv("REPRO_NO_STEADY_STATE", "1")
    monkeypatch.delenv(_MEMO_ENV, raising=False)
    on = run_version("broadwell", "inline1", "lanczos", version,
                     block_count=32, iterations=4)
    monkeypatch.setenv(_MEMO_ENV, "1")
    off = run_version("broadwell", "inline1", "lanczos", version,
                      block_count=32, iterations=4)
    assert _observed(on) == _observed(off)
