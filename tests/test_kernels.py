"""Computational kernels and the cost registry."""

import numpy as np
import pytest

from repro.kernels import (
    KERNELS,
    axpy_block,
    cholesky_qr,
    copy_block,
    dot_partial,
    dot_reduce,
    kernel_spec,
    orthonormalize,
    rayleigh_ritz,
    small_eigh,
    small_solve,
    spmm_block,
    spmv_block,
    xty_partial,
    xty_reduce,
    xy_block,
)
from repro.kernels.ortho import modified_gram_schmidt


def test_registry_has_all_dag_kernels():
    needed = {"SPMV", "SPMM", "XY", "XTY", "XTY_REDUCE", "SPMM_REDUCE",
              "AXPY", "SCALE", "COPY", "ADD", "SUB", "DOT", "DOT_REDUCE",
              "RAYLEIGH_RITZ", "SMALL_EIGH", "ORTHO"}
    assert needed <= set(KERNELS)


def test_kernel_spec_unknown():
    with pytest.raises(KeyError, match="not registered"):
        kernel_spec("NOPE")


def test_spmm_flops_scale_with_width():
    s = kernel_spec("SPMM")
    base = {"nnz": 100, "rows": 10, "cols": 10, "width": 1}
    wide = dict(base, width=8)
    assert s.flops(wide) == 8 * s.flops(base)


def test_xty_flops_rectangular():
    s = kernel_spec("XTY")
    assert s.flops({"rows": 50, "w1": 3, "w2": 7}) == 2 * 50 * 3 * 7


def test_reduce_flops_use_elems():
    s = kernel_spec("XTY_REDUCE")
    assert s.flops({"n_parts": 4, "elems": 9}) == 36


# ----------------------------------------------------------------------
def test_block_kernels_match_dense(small_csb, rng):
    i, j = small_csb.nonempty_blocks()[1]
    rs, re = small_csb.row_block_bounds(i)
    cs, ce = small_csb.col_block_bounds(j)
    dense = small_csb.to_dense()[rs:re, cs:ce]
    x = rng.standard_normal(ce - cs)
    y = np.zeros(re - rs)
    spmv_block(small_csb.block(i, j), x, y)
    np.testing.assert_allclose(y, dense @ x, atol=1e-12)
    X = rng.standard_normal((ce - cs, 4))
    Y = np.zeros((re - rs, 4))
    spmm_block(small_csb.block(i, j), X, Y)
    np.testing.assert_allclose(Y, dense @ X, atol=1e-12)


def test_xy_xty_reduce_chain(rng):
    m, n, p = 60, 4, 3
    Y = rng.standard_normal((m, n))
    Z = rng.standard_normal((n, n))
    Q = np.empty((m, n))
    # chunked XY
    for s in range(0, m, 20):
        xy_block(Y[s:s + 20], Z, Q[s:s + 20])
    np.testing.assert_allclose(Q, Y @ Z, atol=1e-12)
    # chunked XTY with reduce (Fig. 2)
    partials = []
    for s in range(0, m, 20):
        buf = np.empty((n, n))
        xty_partial(Y[s:s + 20], Q[s:s + 20], buf)
        partials.append(buf)
    P = np.empty((n, n))
    xty_reduce(partials, P)
    np.testing.assert_allclose(P, Y.T @ Q, atol=1e-12)
    _ = p  # silence unused


def test_blas1_chunks(rng):
    x = rng.standard_normal((30, 2))
    y = rng.standard_normal((30, 2))
    y0 = y.copy()
    axpy_block(2.5, x, y)
    np.testing.assert_allclose(y, y0 + 2.5 * x)
    dst = np.empty_like(x)
    copy_block(x, dst)
    np.testing.assert_allclose(dst, x)
    parts = [dot_partial(x[:15], y[:15]), dot_partial(x[15:], y[15:])]
    np.testing.assert_allclose(dot_reduce(parts),
                               float(np.dot(x.ravel(), y.ravel())))


# ----------------------------------------------------------------------
def test_small_eigh_symmetric(rng):
    A = rng.standard_normal((6, 6))
    w, V = small_eigh(A + A.T)
    np.testing.assert_allclose((A + A.T) @ V, V @ np.diag(w), atol=1e-10)


def test_small_solve(rng):
    A = rng.standard_normal((5, 5)) + 5 * np.eye(5)
    B = rng.standard_normal((5, 2))
    np.testing.assert_allclose(A @ small_solve(A, B), B, atol=1e-10)


def test_rayleigh_ritz_recovers_eigenpairs(rng):
    """RR on an orthonormal basis of an invariant subspace is exact."""
    n = 8
    H = rng.standard_normal((n, n))
    H = H + H.T
    w_all, V_all = np.linalg.eigh(H)
    S = V_all[:, :4]  # exact invariant subspace
    w, C = rayleigh_ritz(S.T @ H @ S, S.T @ S, nev=2)
    np.testing.assert_allclose(w, w_all[:2], atol=1e-10)


def test_rayleigh_ritz_singular_gram(rng):
    """Degenerate basis directions are floored away, not fatal."""
    S = rng.standard_normal((10, 4))
    S[:, 3] = 0.0  # dead direction (like Q=0 in LOBPCG iteration 1)
    H = rng.standard_normal((10, 10))
    H = H + H.T
    w, C = rayleigh_ritz(S.T @ H @ S, S.T @ S, nev=2)
    assert np.isfinite(w).all()
    assert C.shape[0] == 4


def test_orthonormalize(rng):
    X = rng.standard_normal((50, 5))
    Q = orthonormalize(X)
    np.testing.assert_allclose(Q.T @ Q, np.eye(5), atol=1e-10)
    # spans the same space
    proj = Q @ Q.T
    np.testing.assert_allclose(proj @ X, X, atol=1e-8)


def test_orthonormalize_rank_deficient(rng):
    """Singular Gram matrices may pass Cholesky with garbage factors;
    the robust path must still return an orthonormal block."""
    X = rng.standard_normal((20, 3))
    X[:, 2] = X[:, 0]  # rank 2
    Q = orthonormalize(X)
    np.testing.assert_allclose(Q.T @ Q, np.eye(3), atol=1e-8)


def test_mgs_replaces_dead_columns(rng):
    X = rng.standard_normal((20, 3))
    X[:, 1] = 0.0
    Q = modified_gram_schmidt(X)
    np.testing.assert_allclose(Q.T @ Q, np.eye(3), atol=1e-10)
