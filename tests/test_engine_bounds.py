"""Scheduling-theory bounds on the simulated executions.

Any legal schedule of a DAG on P cores satisfies the classic bounds:
makespan ≥ total-work / P and makespan ≥ critical-path time; and any
greedy (work-conserving) schedule stays within Graham's 2× of their
max.  The event engine must respect all three — these catch engine
accounting bugs (double-charged tasks, phantom idle time) that
correctness tests can't see.
"""

import pytest

from repro.analysis.experiment import _trace
from repro.machine import broadwell, epyc
from repro.matrices.suite import SUITE
from repro.runtime.base import build_solver_dag
from repro.sim.engine import SimulationEngine, run_bsp
from repro.sim.schedulers import DeepSparseScheduler, HPXScheduler
from repro.tuning.blocksize import block_size_for_count


@pytest.fixture(scope="module", params=["lanczos", "lobpcg"])
def problem(request):
    bs = block_size_for_count(SUITE["Queen4147"].paper_rows, 48)
    width = 20 if request.param == "lanczos" else 8
    cen, calls, chunked, small = _trace("Queen4147", bs, request.param,
                                        width)
    return build_solver_dag(cen, calls, chunked, small)


@pytest.mark.parametrize("sched_cls", [DeepSparseScheduler, HPXScheduler])
def test_makespan_respects_lower_bounds(problem, sched_cls, bw):
    eng = SimulationEngine(bw)
    res = eng.run(problem, sched_cls(), iterations=1)
    p = bw.n_cores
    busy = res.counters.busy_time
    # Work bound: P cores cannot retire more than P·T seconds of work.
    assert res.total_time >= busy / p - 1e-12
    # Sanity: busy time is positive and tasks all priced.
    assert busy > 0
    assert res.counters.tasks_executed == len(problem)


def test_makespan_at_least_critical_path_time(problem, bw):
    """The span bound: no schedule beats the longest dependent chain.

    Chain time is evaluated with compute-only costs (a lower bound on
    any task's true duration, which adds memory time and overheads).
    """
    eng = SimulationEngine(bw)
    cm = eng.cost
    span = problem.critical_path(weight=cm.compute_seconds)
    res = eng.run(problem, DeepSparseScheduler(), iterations=1)
    assert res.total_time >= span - 1e-12


def test_greedy_schedule_graham_bound(problem, bw):
    """Graham: greedy ≤ work/P + span (with per-task costs bounded by
    each task's own charged duration, a generous span surrogate)."""
    eng = SimulationEngine(bw)
    res = eng.run(problem, DeepSparseScheduler(), iterations=1)
    busy = res.counters.busy_time
    # span surrogate: longest chain weighted by the heaviest observed
    # per-task duration (loose but engine-independent)
    max_dur = max(r.end - r.start for r in res.flow.records)
    span_bound = problem.critical_path() * max_dur
    assert res.total_time <= busy / bw.n_cores + span_bound + 1e-9


def test_bsp_never_faster_than_work_bound(problem, bw):
    res = run_bsp(bw, problem, iterations=1)
    assert res.total_time >= res.counters.busy_time / bw.n_cores - 1e-12


def test_iteration_times_stationary_after_warmup(problem, ep):
    """With warm caches, iterations 2..k have stable durations."""
    eng = SimulationEngine(ep)
    res = eng.run(problem, HPXScheduler(), iterations=4)
    tail = res.iteration_times[1:]
    assert max(tail) <= min(tail) * 1.2


def test_flow_accounts_every_second(problem, bw):
    """Busy time from the flow records equals the counters' busy time."""
    eng = SimulationEngine(bw)
    res = eng.run(problem, DeepSparseScheduler(), iterations=1)
    flow_busy = sum(r.end - r.start for r in res.flow.records)
    assert flow_busy == pytest.approx(res.counters.busy_time, rel=1e-9)
