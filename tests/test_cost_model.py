"""Cost model: compute pricing, effective bytes, gather misses."""

import pytest

from repro.graph.task import DataHandle, Task
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.sim.cost import KIND_EFFICIENCY, CostModel


def make_cost(bw, first_touch=True, **kw):
    cache = CacheHierarchy(bw)
    mem = MemoryModel(bw, first_touch=first_touch, n_parts=64)
    return CostModel(bw, cache, mem, **kw)


def spmm_task(nnz=1000, rows=1000, cols=1000, width=8, span=None,
              tid=0, buffer=False):
    shape = {"nnz": nnz, "rows": rows, "cols": cols, "width": width}
    if span is not None:
        shape["gather_span"] = span
    a = DataHandle("A", 0, nnz * 16)
    x = DataHandle("X", 0, cols * width * 8)
    y = DataHandle("Y", 0, rows * width * 8)
    return Task(tid, "SPMM", (a, x), (y,), shape,
                {"i": 0, "j": 0, "A": "A", "X": "X", "Y": "Y"})


def xy_task(rows=1000, w=8):
    y = DataHandle("Y", 0, rows * w * 8)
    z = DataHandle("Z", None, w * w * 8)
    q = DataHandle("Q", 0, rows * w * 8)
    return Task(0, "XY", (y, z), (q,), {"rows": rows, "w1": w, "w2": w},
                {"i": 0, "Y": "Y", "Z": "Z", "Q": "Q"})


def test_compute_seconds_kernel_efficiency(bw):
    cm = make_cost(bw)
    t = xy_task()
    expected = t.flops / (bw.ghz * 1e9 * bw.flops_per_cycle *
                          KIND_EFFICIENCY["blas3"])
    assert cm.compute_seconds(t) == pytest.approx(expected)


def test_charge_cold_then_warm(bw):
    cm = make_cost(bw)
    t = xy_task(rows=500)
    cold = cm.charge(t, 0)
    warm = cm.charge(t, 0)
    assert warm.memory < cold.memory
    assert warm.misses[0] <= cold.misses[0]
    assert cold.duration == pytest.approx(cold.compute + cold.memory)


def test_sparse_effective_bytes_capped_by_nnz(bw):
    """A nearly-empty block must not be charged the whole chunk."""
    cm = make_cost(bw)
    sparse = spmm_task(nnz=10, rows=10**6, cols=10**6)
    charge = cm.charge(sparse, 0)
    # 10 nonzeros touch at most ~10 lines of X and a few of Y, plus the
    # tiny matrix block: orders of magnitude below the chunk size.
    assert charge.misses[0] < 1000


def test_gather_span_penalty_orders_csr_vs_csb(bw):
    """Full-vector gathers (CSR) miss deeper than block-confined ones."""
    cm_csr = make_cost(bw)
    cm_csb = make_cost(bw)
    nnz = 200_000
    csr = spmm_task(nnz=nnz, span=500 * 2**20)  # 500 MB span
    csb = spmm_task(nnz=nnz, span=256 * 2**10)  # 256 KB span (fits L2)
    ch_csr = cm_csr.charge(csr, 0)
    ch_csb = cm_csb.charge(csb, 0)
    assert ch_csr.misses[2] > ch_csb.misses[2]
    assert ch_csr.memory > ch_csb.memory


def test_gather_numa_penalty(ep):
    """Remote input chunks make the DRAM gather leg more expensive."""
    cache = CacheHierarchy(ep)
    mem = MemoryModel(ep, first_touch=True, n_parts=64)
    cm = CostModel(ep, cache, mem)
    nnz = 100_000
    shape = {"nnz": nnz, "rows": 10**6, "cols": 10**6, "width": 1,
             "gather_span": 10**9}
    a = DataHandle("A", 0, nnz * 16)

    def task_reading_part(p):
        x = DataHandle("X", p, 8 * 10**6)
        y = DataHandle("Y", p, 8 * 10**6)
        return Task(0, "SPMV", (a, x), (y,), shape,
                    {"i": p, "j": p, "A": "A", "X": "X", "Y": "Y"})

    # core 0 lives on domain 0; chunk 0 is local, chunk 63 is remote
    local = cm.charge(task_reading_part(0), 0)
    cm2 = CostModel(ep, CacheHierarchy(ep), mem)
    remote = cm2.charge(task_reading_part(63), 0)
    assert remote.memory > local.memory


def test_zero_gather_intensity_disables_penalty(bw):
    cm = make_cost(bw, gather_intensity=0.0)
    t = spmm_task(nnz=10**6, span=10**9)
    misses, time = cm._gather_misses(t, 0)
    assert misses == (0, 0, 0) and time == 0.0


def test_gather_misses_monotone_in_span(bw):
    cm = make_cost(bw)
    t_small = spmm_task(nnz=10**5, span=10**5)
    t_big = spmm_task(nnz=10**5, span=10**9)
    (a1, a2, a3), _ = cm._gather_misses(t_small, 0)
    (b1, b2, b3), _ = cm._gather_misses(t_big, 0)
    assert b1 >= a1 and b2 >= a2 and b3 >= a3
