"""Jacobi-preconditioned LOBPCG and RCM reordering."""

import numpy as np
import pytest

from repro.matrices.coo import COOMatrix
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem, random_symmetric
from repro.matrices.reorder import bandwidth, permute, rcm_ordering
from repro.solvers import lobpcg, lobpcg_trace


@pytest.fixture(scope="module")
def illcond():
    """SPD matrix with a wildly varying diagonal (Jacobi's home turf)."""
    coo = banded_fem(240, 8, seed=31, dominant=True).canonical()
    rng = np.random.default_rng(5)
    scale = 10.0 ** rng.uniform(0, 3, 240)
    d = np.sqrt(scale)
    vals = coo.vals * d[coo.rows] * d[coo.cols]
    return CSBMatrix.from_coo(
        COOMatrix(coo.shape, coo.rows, coo.cols, vals), 40)


def test_preconditioning_converges_to_same_spectrum(illcond):
    ref = np.linalg.eigvalsh(illcond.to_dense())[:3]
    res = lobpcg(illcond, n=3, maxiter=150, tol=1e-9, precondition=True)
    np.testing.assert_allclose(res.eigenvalues, ref, rtol=1e-4)


def test_preconditioning_accelerates_convergence(illcond):
    """At equal iteration budget, Jacobi reaches a smaller residual."""
    plain = lobpcg(illcond, n=3, maxiter=50, tol=1e-12)
    prec = lobpcg(illcond, n=3, maxiter=50, tol=1e-12,
                  precondition=True)
    assert prec.history.final_residual < plain.history.final_residual


def test_preconditioned_trace_has_diagscale(illcond):
    calls, chunked, small = lobpcg_trace(illcond, n=4, precondition=True)
    assert any(c.op == "DIAGSCALE" for c in calls)
    plain, _, _ = lobpcg_trace(illcond, n=4, precondition=False)
    assert not any(c.op == "DIAGSCALE" for c in plain)
    assert chunked["dinv"] == 1


def test_preconditioned_dag_builds_and_validates(illcond):
    from repro.runtime import build_solver_dag

    calls, chunked, small = lobpcg_trace(illcond, n=4, precondition=True)
    dag = build_solver_dag(illcond, calls, chunked, small)
    assert dag.by_kernel().get("DIAGSCALE", 0) == illcond.nbr


def test_csb_diagonal(illcond):
    np.testing.assert_allclose(illcond.diagonal(),
                               np.diag(illcond.to_dense()))


# ----------------------------------------------------------------------
def test_rcm_is_permutation():
    a = random_symmetric(150, 6, seed=4)
    perm = rcm_ordering(a)
    assert np.array_equal(np.sort(perm), np.arange(150))


def test_rcm_reduces_bandwidth_of_shuffled_band():
    """Scrambling a banded matrix and RCM-ing it back shrinks bandwidth."""
    band = banded_fem(300, 8, bandwidth_frac=0.03, seed=9)
    rng = np.random.default_rng(0)
    shuffle = rng.permutation(300)
    scrambled = permute(band, shuffle)
    assert bandwidth(scrambled) > bandwidth(band)
    recovered = permute(scrambled, rcm_ordering(scrambled))
    assert bandwidth(recovered) < bandwidth(scrambled) * 0.5


def test_permute_preserves_spectrum():
    a = random_symmetric(80, 6, seed=2)
    p = rcm_ordering(a)
    b = permute(a, p)
    np.testing.assert_allclose(
        np.linalg.eigvalsh(a.to_dense()),
        np.linalg.eigvalsh(b.to_dense()),
        atol=1e-9,
    )


def test_permute_validation():
    a = random_symmetric(10, 4, seed=1)
    with pytest.raises(ValueError, match="permutation"):
        permute(a, np.zeros(10, dtype=int))


def test_rcm_requires_square():
    with pytest.raises(ValueError, match="square"):
        rcm_ordering(COOMatrix.empty((3, 4)))


def test_rcm_handles_disconnected_components():
    # two disjoint 2-cliques + an isolated vertex
    coo = COOMatrix((5, 5), [0, 1, 2, 3], [1, 0, 3, 2], np.ones(4))
    perm = rcm_ordering(coo)
    assert np.array_equal(np.sort(perm), np.arange(5))


def test_reordering_reduces_nonempty_blocks():
    """Fewer non-empty CSB blocks after RCM ⇒ fewer SpMM tasks."""
    band = banded_fem(400, 8, bandwidth_frac=0.02, seed=3)
    rng = np.random.default_rng(1)
    scrambled = permute(band, rng.permutation(400))
    recovered = permute(scrambled, rcm_ordering(scrambled))
    before = len(CSBMatrix.from_coo(scrambled, 50).nonempty_blocks())
    after = len(CSBMatrix.from_coo(recovered, 50).nonempty_blocks())
    assert after < before
