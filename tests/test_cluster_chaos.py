"""Cluster chaos suite: SIGKILL a shard mid-flight, lose nothing.

Real subprocess shards (SIGKILL and crash-time audit evidence need
processes, not threads) under the :class:`ClusterSupervisor`, a live
:class:`BackgroundRouter` in front, and a hard kill delivered while
requests are in flight (``REPRO_SERVE_TEST_DELAY`` holds cells open so
"mid-flight" is a deterministic state, not a race window).

What must survive the kill:

* the sweep completes with every cell 200 — the router fails the dead
  shard's cells over to ring successors;
* every summary is **bit-identical** to a direct ``run_version()``
  call and to the frozen equivalence fixture — failover recomputation
  is invisible in the numbers;
* the supervisor restarts the killed shard (same name, new port) and
  every shard still honours the SIGTERM drain contract (exit 0);
* the load-harness CLI path (``--cluster --chaos-kill``, the CI smoke
  job) reports ok end to end.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.bench.cache import placement_key
from repro.serve import HashRing, ServiceClient, normalize_cell
from repro.serve.load import ClusterHarness

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "engine_equivalence.json")
VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")

#: The sweep is exactly the frozen fixture's 12-iteration row, so the
#: post-chaos summaries can be checked against numbers frozen long
#: before the cluster existed.
SWEEP = {"matrices": ["inline1"], "solvers": ["lanczos"],
         "machines": ["broadwell"], "versions": list(VERSIONS),
         "block_counts": [16], "iterations": 12}


def _sweep_keys() -> dict:
    """version -> placement key, computed test-side (determinism pin)."""
    keys = {}
    for v in VERSIONS:
        cell = normalize_cell({
            "machine": "broadwell", "matrix": "inline1",
            "solver": "lanczos", "version": v,
            "block_count": 16, "iterations": 12})
        keys[v] = placement_key(cell.config())
    return keys


def test_sigkill_mid_sweep_fails_over_bit_identically(tmp_path):
    from repro.analysis.experiment import run_version

    with ClusterHarness(
            3, str(tmp_path / "cluster"), jobs=0,
            extra_env={"REPRO_SERVE_TEST_DELAY": "0.25"}) as harness:
        # Test-side ring replica predicts the router's placement from
        # shard *names* alone — pick the victim that owns the most
        # sweep cells, so the kill provably hits in-flight work.
        ring = HashRing()
        for name in harness.supervisor.members():
            ring.add(name)
        keys = _sweep_keys()
        owners = {v: ring.node_for(k) for v, k in keys.items()}
        victim = max(set(owners.values()),
                     key=list(owners.values()).count)

        result = {}

        def sweep():
            with ServiceClient(port=harness.port,
                               timeout=120) as client:
                result.update(client.submit_sweep(**SWEEP))

        t = threading.Thread(target=sweep)
        t.start()
        # The per-cell test delay holds every routed cell open for
        # 250 ms; killing inside that window guarantees the victim
        # dies with requests in flight.
        time.sleep(0.35)
        harness.killed.append(victim)
        harness.supervisor.kill(victim)
        t.join(timeout=120)
        assert not t.is_alive(), "sweep never completed after the kill"

        restarts = {s.name: s.restarts
                    for s in harness.supervisor.shards}

    # -- the sweep completed, every cell 200 ---------------------------
    assert result["n_cells"] == len(VERSIONS)
    assert result["worst_status"] == 200, result
    by_version = {}
    for entry in result["cells"]:
        version = entry["cell"].split("/")[3].split("@")[0]
        assert entry["status"] == 200, entry
        by_version[version] = entry

    # -- bit-identity: direct run AND the frozen fixture ---------------
    with open(FIXTURE, "r", encoding="utf-8") as f:
        frozen = json.load(f)
    for v in VERSIONS:
        direct = run_version(
            "broadwell", "inline1", "lanczos", v, block_count=16,
            iterations=12).summary().to_dict()
        assert by_version[v]["summary"] == direct, \
            f"{v}: served summary drifted from run_version"
        fix = frozen[f"broadwell/inline1/lanczos/{v}/16/12"]
        assert direct["total_time"] == fix["total_time"], v
        assert direct["iteration_times"] == fix["iteration_times"], v

    # -- recovery: victim restarted, everyone drained cleanly ----------
    assert restarts[victim] >= 1, "supervisor never restarted the victim"
    assert all(rc == 0 for rc in harness.exit_codes.values()), \
        f"drain exit codes: {harness.exit_codes}"


def test_load_harness_cluster_chaos_cli(tmp_path):
    """The CI smoke path: ``python -m repro.serve.load --cluster 2
    --chaos-kill`` must survive a mid-load SIGKILL and report ok."""
    from repro.serve.load import main as load_main

    metrics_out = tmp_path / "cluster-report.json"
    rc = load_main([
        "--cluster", "2", "--chaos-kill",
        "--cluster-dir", str(tmp_path / "cluster"),
        "--requests", "32", "--threads", "8",
        "--dup-fraction", "0.5",
        "--metrics-out", str(metrics_out),
    ])
    assert rc == 0
    report = json.loads(metrics_out.read_text())
    assert report["ok"], report["errors"]
    assert report["cluster"]["killed"], "chaos kill never fired"
    assert all(rc == 0
               for rc in report["cluster"]["exit_codes"].values())
    # The audit artifacts the CI job uploads must exist: one published
    # log per live incarnation, plus the killed incarnation's crash
    # .part file.
    audit_dir = tmp_path / "cluster" / "audit"
    published = list(audit_dir.glob("*.audit.jsonl"))
    parts = list(audit_dir.glob("*.audit.jsonl.part"))
    assert published, "no shard published an audit log on drain"
    assert parts, "SIGKILL should leave the victim's .part behind"
