"""Property suite for the fault layer's two load-bearing invariants.

1. **Determinism** — a seeded :class:`~repro.faults.FaultPlan` is the
   *only* source of randomness: two runs of the same plan over the same
   cell must produce bit-identical simulated numbers and fault reports,
   whatever combination of injections the plan contains.

2. **Identity** — a zero-fault plan must be observationally invisible:
   passing ``faults=FaultPlan.empty()`` (or no plan at all) must
   reproduce the frozen equivalence fixture exactly, under every
   combination of the engine kill-switches (``REPRO_NO_STEADY_STATE``,
   ``REPRO_NO_CHARGE_MEMO``) — the fault path may not perturb either
   hot-path optimization, and neither optimization may leak into the
   fault path.
"""

from __future__ import annotations

import json
import os

from hypothesis import given, settings, strategies as st

from repro.analysis.experiment import run_version
from repro.faults import CoreLoss, FaultPlan, SlowCore, TaskFaults

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "engine_equivalence.json")
with open(FIXTURE, "r", encoding="utf-8") as _f:
    _CELLS = json.load(_f)

_VERSIONS = ("libcsr", "libcsb", "deepsparse", "hpx", "regent")
_KILL_SWITCHES = ("REPRO_NO_STEADY_STATE", "REPRO_NO_CHARGE_MEMO")


def _observed(res) -> dict:
    c = res.counters
    return {
        "total_time": res.total_time,
        "iteration_times": list(res.iteration_times),
        "n_cores": res.n_cores,
        "n_tasks_per_iteration": res.n_tasks_per_iteration,
        "l1_misses": c.l1_misses,
        "l2_misses": c.l2_misses,
        "l3_misses": c.l3_misses,
        "tasks_executed": c.tasks_executed,
        "busy_time": c.busy_time,
        "overhead_time": c.overhead_time,
        "compute_time": c.compute_time,
        "memory_time": c.memory_time,
        "kernel_time": c.kernel_time,
        "kernel_tasks": c.kernel_tasks,
    }


@st.composite
def fault_plans(draw):
    """A random non-empty plan: any subset of the three fault kinds."""
    seed = draw(st.integers(0, 2**31 - 1))
    slow = ()
    losses = ()
    tf = None
    kinds = draw(st.sets(st.sampled_from(["slow", "loss", "tasks"]),
                         min_size=1))
    if "slow" in kinds:
        slow = (SlowCore(
            selector=draw(st.sampled_from(["random", "first", "last", 3])),
            factor=draw(st.sampled_from([1.5, 2.0, 3.0, 4.0])),
            onset=draw(st.integers(0, 2)),
        ),)
    if "loss" in kinds:
        losses = (CoreLoss(
            selector=draw(st.sampled_from(["random", "first", "last", 5])),
            at=draw(st.integers(0, 3)),
        ),)
    if "tasks" in kinds:
        tf = TaskFaults(
            rate=draw(st.sampled_from([0.01, 0.05, 0.15])),
            budget=draw(st.integers(0, 3)),
            backoff=draw(st.sampled_from([0.0, 1e-6, 5e-6])),
        )
    return FaultPlan(spec="property", seed=seed, slow=slow,
                     losses=losses, task_faults=tf)


@given(plan=fault_plans(),
       version=st.sampled_from(["libcsb", "deepsparse", "hpx", "regent"]))
@settings(max_examples=15, deadline=None)
def test_same_plan_same_numbers(plan, version):
    """Same seed, same plan -> bit-identical run and fault report."""
    a = run_version("broadwell", "inline1", "lanczos", version,
                    block_count=16, iterations=4, faults=plan)
    b = run_version("broadwell", "inline1", "lanczos", version,
                    block_count=16, iterations=4, faults=plan)
    assert _observed(a) == _observed(b)  # floats compared with ==
    assert a.fault_report.to_dict() == b.fault_report.to_dict()
    assert [tuple(r) for r in a.flow.records] == \
        [tuple(r) for r in b.flow.records]


@given(version=st.sampled_from(_VERSIONS),
       no_steady_state=st.booleans(),
       no_charge_memo=st.booleans())
@settings(max_examples=16, deadline=None)
def test_zero_fault_plan_reproduces_frozen_fixture(
        version, no_steady_state, no_charge_memo):
    """Empty plan == fixture, with and without the hot-path kill
    switches — the fault layer must neither perturb nor depend on the
    steady-state replay and the charge memo."""
    saved = {k: os.environ.pop(k, None) for k in _KILL_SWITCHES}
    try:
        if no_steady_state:
            os.environ["REPRO_NO_STEADY_STATE"] = "1"
        if no_charge_memo:
            os.environ["REPRO_NO_CHARGE_MEMO"] = "1"
        res = run_version("broadwell", "inline1", "lanczos", version,
                          block_count=16, iterations=12,
                          faults=FaultPlan.empty())
    finally:
        for k, v in saved.items():
            os.environ.pop(k, None)
            if v is not None:
                os.environ[k] = v
    assert res.fault_report is None
    got = _observed(res)
    expected = _CELLS[f"broadwell/inline1/lanczos/{version}/16/12"]
    for field, exp in expected.items():
        assert got[field] == exp, (version, field)
