"""Regent dynamic tracing (§5.1): replay skips the analysis pipeline."""

import pytest

from repro.analysis.experiment import _trace
from repro.machine import broadwell
from repro.matrices.suite import SUITE
from repro.runtime import RegentRuntime
from repro.sim.schedulers import RegentScheduler
from repro.tuning.blocksize import block_size_for_count


@pytest.fixture(scope="module")
def problem():
    bs = block_size_for_count(SUITE["nlpkkt160"].paper_rows, 48)
    return _trace("nlpkkt160", bs, "lanczos", 20)


def test_replay_release_times_cheaper(problem):
    cen, calls, chunked, small = problem
    from repro.machine.memory import MemoryModel
    from repro.runtime.base import build_solver_dag

    dag = build_solver_dag(cen, calls, chunked, small)
    mach = broadwell()
    mem = MemoryModel(mach, n_parts=dag.n_partitions)
    s = RegentScheduler(dynamic_tracing=True)
    s.prepare(dag, mach, mem)
    last = len(dag) - 1
    # iteration 0: full analysis; iteration 1+: memoized replay
    s.reset_iteration(0, 0.0)
    t_capture = s.release_time(last, 0.0)
    s.reset_iteration(1, 0.0)
    t_replay = s.release_time(last, 0.0)
    assert t_replay < t_capture * 0.25


def test_tracing_never_slower(problem):
    cen, calls, chunked, small = problem
    mach = broadwell()
    plain = RegentRuntime(mach).run(cen, calls, chunked, small,
                                    iterations=3)
    traced = RegentRuntime(mach, dynamic_tracing=True).run(
        cen, calls, chunked, small, iterations=3)
    assert traced.total_time <= plain.total_time * 1.02


def test_first_iteration_identical(problem):
    """Capture iteration pays the full analysis either way."""
    cen, calls, chunked, small = problem
    mach = broadwell()
    plain = RegentRuntime(mach).run(cen, calls, chunked, small,
                                    iterations=1)
    traced = RegentRuntime(mach, dynamic_tracing=True).run(
        cen, calls, chunked, small, iterations=1)
    assert traced.total_time == pytest.approx(plain.total_time, rel=1e-9)
