"""Block censuses: CSB compatibility and full-scale generation."""

import numpy as np
import pytest

from repro.matrices.census import BlockCensus, census_for, census_from_csb
from repro.matrices.csb import CSBMatrix
from repro.matrices.suite import SUITE


def test_census_from_csb_exact(small_csb):
    cen = census_from_csb(small_csb)
    np.testing.assert_array_equal(cen.grid, small_csb.block_nnz_grid())
    assert cen.nnz == small_csb.nnz
    assert cen.nonempty_blocks() == small_csb.nonempty_blocks()
    assert cen.n_empty_blocks() == small_csb.n_empty_blocks()
    for i in range(cen.nbr):
        assert cen.row_block_bounds(i) == small_csb.row_block_bounds(i)


def test_census_shape_validation():
    with pytest.raises(ValueError, match="grid must be"):
        BlockCensus((100, 100), 10, np.zeros((5, 5), dtype=np.int64))
    with pytest.raises(ValueError, match="non-negative"):
        BlockCensus((20, 20), 10, -np.ones((2, 2), dtype=np.int64))


@pytest.mark.parametrize("name", [
    "inline1", "nlpkkt160", "twitter7", "mawi_201512020130", "Nm7",
])
def test_full_scale_census_totals(name):
    spec = SUITE[name]
    bs = -(-spec.paper_rows // 64)
    cen = census_for(spec, bs)
    assert cen.shape[0] == spec.paper_rows
    # total nonzeros within 30% of Table 1 (rounding + symmetrization)
    assert 0.7 < cen.nnz / spec.paper_nnz < 1.3
    # census symmetric at block level
    np.testing.assert_array_equal(cen.grid, cen.grid.T)


def test_census_deterministic():
    a = census_for(SUITE["nlpkkt160"], 200_000)
    b = census_for(SUITE["nlpkkt160"], 200_000)
    np.testing.assert_array_equal(a.grid, b.grid)


def test_census_band_structure():
    """FEM censuses concentrate mass near the block diagonal."""
    cen = census_for(SUITE["Flan_1565"], -(-SUITE["Flan_1565"].paper_rows // 64))
    grid = cen.grid
    diag_mass = sum(grid[i, max(0, i - 2):i + 3].sum() for i in range(cen.nbr))
    assert diag_mass / grid.sum() > 0.9


def test_census_web_fills_grid():
    """Power-law censuses leave few empty blocks at coarse tiling."""
    spec = SUITE["twitter7"]
    cen = census_for(spec, -(-spec.paper_rows // 32))
    assert cen.n_empty_blocks() < 0.3 * cen.nbr * cen.nbc


def test_census_block_count_guard():
    with pytest.raises(ValueError, match="4096"):
        census_for(SUITE["mawi_201512020130"], 1024)  # 125k block rows


def test_scaled_matrix_census_agrees_with_family(suite_csb):
    """Entry-level scaled matrix and its own census stay consistent."""
    cen = census_from_csb(suite_csb)
    assert cen.nnz == suite_csb.nnz
