"""Property-based tests: DAG construction and scheduling invariants.

Includes the structure-of-arrays equivalence suite: the frozen
:class:`~repro.graph.dag.GraphArrays` view (vectorized levels,
critical path, CSR adjacency, compiled access plans) is pinned equal —
bit-identical, not approximately — to the retained per-node reference
implementations in :mod:`repro.graph.analyze` on random DAGs.
"""

import pickle

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.analyze import critical_path_reference, levels_reference
from repro.graph.builder import BuildOptions, DAGBuilder
from repro.graph.dag import TaskDAG
from repro.graph.task import DataHandle, Task
from repro.graph.trace import TraceRecorder
from repro.machine import broadwell
from repro.matrices.coo import COOMatrix
from repro.matrices.csb import CSBMatrix
from repro.sim.cost import CostModel
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.sim.engine import SimulationEngine, run_bsp
from repro.sim.schedulers import (
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
)


@st.composite
def random_problem(draw):
    """A random CSB matrix + a random legal primitive trace."""
    n = draw(st.integers(20, 120))
    b = draw(st.integers(5, 60))
    nnz = draw(st.integers(1, 300))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    coo = COOMatrix(
        (n, n), rng.integers(0, n, nnz), rng.integers(0, n, nnz),
        rng.standard_normal(nnz),
    )
    csb = CSBMatrix.from_coo(coo, b)
    t = TraceRecorder()
    n_calls = draw(st.integers(1, 8))
    chunked = {"X": 2, "Y": 2, "Q": 2}
    small = {"Z": (2, 2), "P": (2, 2), "s": (1, 1)}
    names = list(chunked)
    for _ in range(n_calls):
        op = draw(st.sampled_from(["SPMM", "XY", "XTY", "COPY", "ADD",
                                   "DOT", "SCALE"]))
        if op == "SPMM":
            x = draw(st.sampled_from(names))
            y = draw(st.sampled_from([n for n in names if n != x]))
            t.record("SPMM", ("A", x), (y,))
        elif op == "XY":
            y = draw(st.sampled_from(names))
            q = draw(st.sampled_from([n for n in names if n != y]))
            t.record("XY", (y, "Z"), (q,))
        elif op == "XTY":
            t.record("XTY", tuple(draw(st.sampled_from(names))
                                  for _ in range(2)), ("P",))
        elif op == "COPY":
            a, bn = draw(st.sampled_from(names)), draw(st.sampled_from(names))
            if a != bn:
                t.record("COPY", (a,), (bn,))
        elif op == "ADD":
            t.record("ADD", (draw(st.sampled_from(names)),
                             draw(st.sampled_from(names))),
                     (draw(st.sampled_from(names)),))
        elif op == "DOT":
            t.record("DOT", (draw(st.sampled_from(names)),
                             draw(st.sampled_from(names))), ("s",))
        else:
            t.record("SCALE", (), (draw(st.sampled_from(names)),),
                     alpha=0.5)
    opts = BuildOptions(
        skip_empty=draw(st.booleans()),
        spmm_mode=draw(st.sampled_from(["dependency", "reduction"])),
    )
    builder = DAGBuilder(csb, "A", chunked, small, opts)
    return builder.build(t.calls)


@given(random_problem())
@settings(max_examples=30, deadline=None)
def test_builder_always_produces_valid_dag(dag):
    dag.validate()  # acyclic
    order = dag.topo_order()
    dag.check_schedule(order)


@given(random_problem())
@settings(max_examples=20, deadline=None)
def test_conflicting_tasks_always_ordered(dag):
    """Any two tasks sharing a written handle are path-connected."""
    reach = [set() for _ in range(len(dag))]
    for u in reversed(dag.topo_order()):
        r = {u}
        for v in dag.succ[u]:
            r |= reach[v]
        reach[u] = r
    tasks = dag.tasks
    for a in tasks:
        aw = {(h.name, h.part) for h in a.writes}
        ar = {(h.name, h.part) for h in a.reads}
        for b in tasks:
            if b.tid <= a.tid:
                continue
            bw = {(h.name, h.part) for h in b.writes}
            br = {(h.name, h.part) for h in b.reads}
            if (aw & bw) or (aw & br) or (ar & bw):
                assert (b.tid in reach[a.tid]) or (a.tid in reach[b.tid])


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent", "bsp"]),
       st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_every_policy_executes_every_task_in_dependence_order(
        dag, policy, seed):
    bw = broadwell()
    if policy == "bsp":
        res = run_bsp(bw, dag, iterations=1)
    else:
        sched = {"deepsparse": DeepSparseScheduler,
                 "hpx": HPXScheduler,
                 "regent": RegentScheduler}[policy]()
        res = SimulationEngine(bw, seed=seed).run(dag, sched, iterations=1)
    assert res.counters.tasks_executed == len(dag)
    end_of = {r.tid: r.end for r in res.flow.records}
    start_of = {r.tid: r.start for r in res.flow.records}
    assert len(end_of) == len(dag)  # each task exactly once
    for (u, v) in dag._edge_pairs():
        assert end_of[u] <= start_of[v] + 1e-12


@given(random_problem())
@settings(max_examples=20, deadline=None)
def test_charges_are_finite_positive(dag):
    bw = broadwell()
    cache = CacheHierarchy(bw)
    mem = MemoryModel(bw, n_parts=16)
    cm = CostModel(bw, cache, mem)
    for t in dag.tasks:
        ch = cm.charge(t, 0)
        assert np.isfinite(ch.duration) and ch.duration >= 0
        assert all(m >= 0 for m in ch.misses)


# ----------------------------------------------------------------------
# Structure-of-arrays equivalence: the frozen GraphArrays view must
# answer every query bit-identically to the retained per-node
# reference implementations.
# ----------------------------------------------------------------------

@st.composite
def random_bare_dag(draw):
    """A random DAG of synthetic tasks — edges drawn freely, not via
    the builder — to exercise shapes (fan-in/fan-out, isolated nodes,
    empty edge sets) the solver builder never produces."""
    n = draw(st.integers(1, 40))
    dag = TaskDAG()
    for i in range(n):
        dag.add_task(Task(
            -1, "COPY",
            (DataHandle("x", i, 64),), (DataHandle("y", i, 64),),
            {"rows": 1, "width": 1}, {"i": i},
        ))
    max_edges = min(120, n * (n - 1) // 2)
    pairs = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        max_size=max_edges,
    ))
    for u, v in pairs:
        if u != v:
            dag.add_edge(min(u, v), max(u, v))  # forward edges: acyclic
    return dag


_dag_strategies = st.one_of(random_problem(), random_bare_dag())


@given(_dag_strategies)
@settings(max_examples=30, deadline=None)
def test_levels_match_reference(dag):
    assert dag.levels() == levels_reference(dag)


@given(_dag_strategies)
@settings(max_examples=30, deadline=None)
def test_critical_path_matches_reference(dag):
    assert dag.critical_path() == critical_path_reference(dag)
    # A weight function that varies per task and is registry-free.
    w = lambda t: 0.25 + (t.tid % 7) * 1.5  # noqa: E731
    assert dag.critical_path(weight=w) == critical_path_reference(dag, w)


@given(_dag_strategies)
@settings(max_examples=30, deadline=None)
def test_soa_adjacency_matches_lists(dag):
    soa = dag.freeze()
    n = len(dag)
    assert soa.n_tasks == n
    assert soa.n_edges == sum(len(vs) for vs in dag.succ) == dag.n_edges
    sp, si = soa.succ_indptr, soa.succ_indices
    pp, pi = soa.pred_indptr, soa.pred_indices
    for u in range(n):
        assert si[sp[u]:sp[u + 1]].tolist() == dag.succ[u]
        assert pi[pp[u]:pp[u + 1]].tolist() == dag.pred[u]
        assert int(soa.indegree[u]) == len(dag.pred[u])


@given(_dag_strategies)
@settings(max_examples=25, deadline=None)
def test_soa_operand_tables_match_tasks(dag):
    soa = dag.freeze()
    key_to_id, id_to_key = dag.handle_interning()
    assert soa.id_to_key == id_to_key
    for t in dag.tasks:
        tid = t.tid
        a, b = soa.read_indptr[tid], soa.read_indptr[tid + 1]
        assert [id_to_key[i] for i in soa.read_ids[a:b]] == \
            [(h.name, h.part) for h in t.reads]
        a, b = soa.write_indptr[tid], soa.write_indptr[tid + 1]
        assert [id_to_key[i] for i in soa.write_ids[a:b]] == \
            [(h.name, h.part) for h in t.writes]
        a, b = soa.touch_indptr[tid], soa.touch_indptr[tid + 1]
        touched = t.touched()
        assert [id_to_key[i] for i in soa.touch_ids[a:b]] == \
            [(h.name, h.part) for h in touched]
        assert soa.touch_nbytes[a:b].tolist() == \
            [h.nbytes for h in touched]
        assert soa.kernel_names[soa.kernel_codes[tid]] == t.kernel


@given(random_problem())
@settings(max_examples=15, deadline=None)
def test_soa_compiled_plans_match_reference(dag):
    """SoA plan compiler == handle-object plan compiler, tuple-exact."""
    bw = broadwell()
    cm = CostModel(bw, CacheHierarchy(bw), MemoryModel(bw, n_parts=16))
    key_to_id, _ = dag.handle_interning()
    soa = dag.freeze()
    via_soa = cm._compile_plans(dag.tasks, key_to_id, soa)
    via_ref = cm._compile_plans(dag.tasks, key_to_id, None)
    assert via_soa == via_ref


@given(random_problem())
@settings(max_examples=10, deadline=None)
def test_frozen_dag_pickle_roundtrip(dag):
    """Pickling (what the prep store does) preserves the whole graph;
    the dropped edge-dedup set is rebuilt lazily and stays correct."""
    dag.freeze()
    clone = pickle.loads(pickle.dumps(dag))
    assert clone.n_edges == dag.n_edges
    assert clone.succ == dag.succ and clone.pred == dag.pred
    assert clone.levels() == dag.levels()
    assert clone._edge_set is None  # dropped by __getstate__
    if clone.n_edges:  # re-adding an existing edge must still dedup
        u = next(i for i, vs in enumerate(clone.succ) if vs)
        v = clone.succ[u][0]
        clone.add_edge(u, v)
        assert clone.n_edges == dag.n_edges
