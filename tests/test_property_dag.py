"""Property-based tests: DAG construction and scheduling invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.builder import BuildOptions, DAGBuilder
from repro.graph.trace import TraceRecorder
from repro.machine import broadwell
from repro.matrices.coo import COOMatrix
from repro.matrices.csb import CSBMatrix
from repro.sim.cost import CostModel
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.sim.engine import SimulationEngine, run_bsp
from repro.sim.schedulers import (
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
)


@st.composite
def random_problem(draw):
    """A random CSB matrix + a random legal primitive trace."""
    n = draw(st.integers(20, 120))
    b = draw(st.integers(5, 60))
    nnz = draw(st.integers(1, 300))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    coo = COOMatrix(
        (n, n), rng.integers(0, n, nnz), rng.integers(0, n, nnz),
        rng.standard_normal(nnz),
    )
    csb = CSBMatrix.from_coo(coo, b)
    t = TraceRecorder()
    n_calls = draw(st.integers(1, 8))
    chunked = {"X": 2, "Y": 2, "Q": 2}
    small = {"Z": (2, 2), "P": (2, 2), "s": (1, 1)}
    names = list(chunked)
    for _ in range(n_calls):
        op = draw(st.sampled_from(["SPMM", "XY", "XTY", "COPY", "ADD",
                                   "DOT", "SCALE"]))
        if op == "SPMM":
            x = draw(st.sampled_from(names))
            y = draw(st.sampled_from([n for n in names if n != x]))
            t.record("SPMM", ("A", x), (y,))
        elif op == "XY":
            y = draw(st.sampled_from(names))
            q = draw(st.sampled_from([n for n in names if n != y]))
            t.record("XY", (y, "Z"), (q,))
        elif op == "XTY":
            t.record("XTY", tuple(draw(st.sampled_from(names))
                                  for _ in range(2)), ("P",))
        elif op == "COPY":
            a, bn = draw(st.sampled_from(names)), draw(st.sampled_from(names))
            if a != bn:
                t.record("COPY", (a,), (bn,))
        elif op == "ADD":
            t.record("ADD", (draw(st.sampled_from(names)),
                             draw(st.sampled_from(names))),
                     (draw(st.sampled_from(names)),))
        elif op == "DOT":
            t.record("DOT", (draw(st.sampled_from(names)),
                             draw(st.sampled_from(names))), ("s",))
        else:
            t.record("SCALE", (), (draw(st.sampled_from(names)),),
                     alpha=0.5)
    opts = BuildOptions(
        skip_empty=draw(st.booleans()),
        spmm_mode=draw(st.sampled_from(["dependency", "reduction"])),
    )
    builder = DAGBuilder(csb, "A", chunked, small, opts)
    return builder.build(t.calls)


@given(random_problem())
@settings(max_examples=30, deadline=None)
def test_builder_always_produces_valid_dag(dag):
    dag.validate()  # acyclic
    order = dag.topo_order()
    dag.check_schedule(order)


@given(random_problem())
@settings(max_examples=20, deadline=None)
def test_conflicting_tasks_always_ordered(dag):
    """Any two tasks sharing a written handle are path-connected."""
    reach = [set() for _ in range(len(dag))]
    for u in reversed(dag.topo_order()):
        r = {u}
        for v in dag.succ[u]:
            r |= reach[v]
        reach[u] = r
    tasks = dag.tasks
    for a in tasks:
        aw = {(h.name, h.part) for h in a.writes}
        ar = {(h.name, h.part) for h in a.reads}
        for b in tasks:
            if b.tid <= a.tid:
                continue
            bw = {(h.name, h.part) for h in b.writes}
            br = {(h.name, h.part) for h in b.reads}
            if (aw & bw) or (aw & br) or (ar & bw):
                assert (b.tid in reach[a.tid]) or (a.tid in reach[b.tid])


@given(random_problem(),
       st.sampled_from(["deepsparse", "hpx", "regent", "bsp"]),
       st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_every_policy_executes_every_task_in_dependence_order(
        dag, policy, seed):
    bw = broadwell()
    if policy == "bsp":
        res = run_bsp(bw, dag, iterations=1)
    else:
        sched = {"deepsparse": DeepSparseScheduler,
                 "hpx": HPXScheduler,
                 "regent": RegentScheduler}[policy]()
        res = SimulationEngine(bw, seed=seed).run(dag, sched, iterations=1)
    assert res.counters.tasks_executed == len(dag)
    end_of = {r.tid: r.end for r in res.flow.records}
    start_of = {r.tid: r.start for r in res.flow.records}
    assert len(end_of) == len(dag)  # each task exactly once
    for (u, v) in dag._edge_set:
        assert end_of[u] <= start_of[v] + 1e-12


@given(random_problem())
@settings(max_examples=20, deadline=None)
def test_charges_are_finite_positive(dag):
    bw = broadwell()
    cache = CacheHierarchy(bw)
    mem = MemoryModel(bw, n_parts=16)
    cm = CostModel(bw, cache, mem)
    for t in dag.tasks:
        ch = cm.charge(t, 0)
        assert np.isfinite(ch.duration) and ch.duration >= 0
        assert all(m >= 0 for m in ch.misses)
