"""Discrete-event engine and BSP executor: schedules, barriers, flow."""

import pytest

from repro.graph.builder import BuildOptions
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem
from repro.runtime.base import build_solver_dag
from repro.sim.engine import SimulationEngine, run_bsp
from repro.sim.schedulers import DeepSparseScheduler, Scheduler
from repro.solvers import lanczos_trace, lobpcg_trace


@pytest.fixture(scope="module")
def small_problem():
    csb = CSBMatrix.from_coo(banded_fem(400, 8, seed=4), 50)
    calls, chunked, small = lobpcg_trace(csb, n=4)
    dag = build_solver_dag(csb, calls, chunked, small)
    return dag


def test_event_engine_executes_everything(bw, small_problem):
    eng = SimulationEngine(bw)
    res = eng.run(small_problem, DeepSparseScheduler(), iterations=1)
    assert res.counters.tasks_executed == len(small_problem)
    assert res.total_time > 0
    assert len(res.flow) == len(small_problem)


def test_flow_respects_dependences(bw, small_problem):
    """Every recorded start is after all predecessors' ends."""
    eng = SimulationEngine(bw)
    res = eng.run(small_problem, DeepSparseScheduler(), iterations=1)
    end_of = {r.tid: r.end for r in res.flow.records}
    start_of = {r.tid: r.start for r in res.flow.records}
    for (u, v) in small_problem._edge_set:
        assert end_of[u] <= start_of[v] + 1e-12


def test_no_core_overlap(bw, small_problem):
    """A core never executes two tasks at once."""
    eng = SimulationEngine(bw)
    res = eng.run(small_problem, DeepSparseScheduler(), iterations=1)
    per_core = {}
    for r in res.flow.records:
        per_core.setdefault(r.core, []).append((r.start, r.end))
    for ivs in per_core.values():
        ivs.sort()
        for (s1, e1), (s2, _e2) in zip(ivs, ivs[1:]):
            assert s2 >= e1 - 1e-12


def test_iterations_accumulate(bw, small_problem):
    eng = SimulationEngine(bw)
    res = eng.run(small_problem, DeepSparseScheduler(), iterations=3)
    assert len(res.iteration_times) == 3
    assert res.counters.tasks_executed == 3 * len(small_problem)
    assert res.total_time == pytest.approx(sum(res.iteration_times))
    # warm caches: later iterations are no slower than the first
    assert res.iteration_times[1] <= res.iteration_times[0] * 1.01


def test_speedup_over(bw, small_problem):
    eng1 = SimulationEngine(bw)
    r1 = eng1.run(small_problem, DeepSparseScheduler(), iterations=1)
    r2 = run_bsp(bw, small_problem, iterations=1)
    assert r1.speedup_over(r2) == pytest.approx(
        r2.time_per_iteration / r1.time_per_iteration
    )


def test_bsp_phases_are_barriers(bw, small_problem):
    """BSP: kernels never overlap in time (phase envelopes disjoint)."""
    res = run_bsp(bw, small_problem, iterations=1)
    assert res.counters.tasks_executed == len(small_problem)
    # group flow records by primitive call (seq); consecutive phases
    # must be disjoint in time
    by_seq = {}
    for r in res.flow.records:
        t = small_problem.tasks[r.tid]
        lo, hi = by_seq.get(t.seq, (r.start, r.end))
        by_seq[t.seq] = (min(lo, r.start), max(hi, r.end))
    seqs = sorted(by_seq)
    for a, b in zip(seqs, seqs[1:]):
        assert by_seq[a][1] <= by_seq[b][0] + 1e-12


def test_amt_pipelines_across_phases(bw, small_problem):
    """AMT runs tasks of different primitive calls concurrently; BSP
    never does (phase barriers)."""
    amt = SimulationEngine(bw).run(small_problem, DeepSparseScheduler(),
                                   iterations=1)
    seq_of = {t.tid: t.seq for t in small_problem.tasks}

    def cross_seq_overlaps(flow):
        recs = sorted(flow.records, key=lambda r: r.start)
        count = 0
        for a, b in zip(recs, recs[1:]):
            if b.start < a.end and seq_of[a.tid] != seq_of[b.tid]:
                count += 1
        return count

    bsp = run_bsp(bw, small_problem, iterations=1)
    assert cross_seq_overlaps(amt.flow) > 0
    assert cross_seq_overlaps(bsp.flow) == 0


def test_base_scheduler_runs_lanczos(bw):
    csb = CSBMatrix.from_coo(banded_fem(300, 6, seed=9), 60)
    calls, chunked, small = lanczos_trace(csb, k=8)
    dag = build_solver_dag(csb, calls, chunked, small)
    res = SimulationEngine(bw).run(dag, Scheduler(), iterations=2)
    assert res.counters.tasks_executed == 2 * len(dag)


def test_bsp_nnz_balanced_vs_uniform(bw):
    """nnz-balanced sparse splits clearly beat uniform on skewed
    (power-law) matrices at full scale — the static load-imbalance
    penalty of the BSP model."""
    from repro.matrices.census import census_for
    from repro.matrices.suite import SUITE

    spec = SUITE["twitter7"]
    cen = census_for(spec, -(-spec.paper_rows // 64))
    calls, chunked, small = lanczos_trace(cen, k=20)
    dag = build_solver_dag(cen, calls, chunked, small)
    uni = run_bsp(bw, dag, iterations=1, nnz_balanced=False)
    bal = run_bsp(bw, dag, iterations=1, nnz_balanced=True)
    assert bal.total_time < uni.total_time * 0.8


def test_empty_dag(bw):
    from repro.graph.dag import TaskDAG

    res = SimulationEngine(bw).run(TaskDAG(), DeepSparseScheduler())
    assert res.counters.tasks_executed == 0
