"""Concurrency/correctness suite for the persistent simulation service.

The daemon's promises, each pinned by a test that exercises real
concurrency (threaded clients against a live loopback server):

* single-flight — N concurrent identical cold requests cause exactly
  one computation, and every response is byte-identical;
* bit-identity — a served summary equals a direct ``run_version``
  call's, and matches the frozen pre-optimization fixture;
* bounded queue — beyond ``backlog`` distinct pending cells, submits
  get 429 + Retry-After while in-flight work is unaffected;
* graceful drain — SIGTERM (subprocess) / ``drain()`` (in-process)
  finishes in-flight work, 503s new work, publishes the audit log,
  exits 0;
* failure transparency — a worker failure surfaces as a 500 carrying
  the worker's captured stderr tail.

``REPRO_SERVE_TEST_DELAY`` (an artificial per-cell delay honored by
:func:`repro.serve.pool.serve_worker`) makes "while a request is in
flight" a deterministic state instead of a ~30 ms race window.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bench.cache import ResultCache
from repro.bench.runner import WorkerFailure
from repro.serve import (
    BackgroundService,
    ServeConfig,
    ServiceClient,
    ServiceError,
    normalize_cell,
)
from repro.serve.http import HttpError, read_request
from repro.serve.load import run_load, spawn_server
from repro.serve.metrics import LatencyWindow
from repro.trace.sink import read_jsonl

CELL = {"machine": "broadwell", "matrix": "inline1",
        "solver": "lanczos", "version": "libcsr",
        "block_count": 16, "iterations": 1}


def _config(tmp_path, **kw) -> ServeConfig:
    kw.setdefault("port", 0)
    kw.setdefault("jobs", 0)
    kw.setdefault("cache",
                  ResultCache(root=str(tmp_path / "cache"), enabled=True))
    return ServeConfig(**kw)


# ----------------------------------------------------------------------
# HTTP framing (unit level)
# ----------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def test_read_request_parses_post_with_body():
    body = b'{"matrix": "inline1"}'
    raw = (b"POST /v1/cell HTTP/1.1\r\nHost: x\r\n"
           b"Content-Length: %d\r\n\r\n" % len(body)) + body
    req = _parse(raw)
    assert req.method == "POST" and req.path == "/v1/cell"
    assert req.json() == {"matrix": "inline1"}
    assert req.keep_alive


def test_read_request_clean_eof_returns_none():
    assert _parse(b"") is None


@pytest.mark.parametrize("raw,status", [
    (b"NONSENSE\r\n\r\n", 400),                      # bad request line
    (b"PUT /x HTTP/1.1\r\n\r\n", 405),               # method
    (b"GET /x HTTP/1.1\r\nbroken\r\n\r\n", 400),     # header line
    (b"POST /x HTTP/1.1\r\nContent-Length: zap\r\n\r\n", 400),
    (b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n", 413),
    (b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 400),
])
def test_read_request_rejects_malformed(raw, status):
    with pytest.raises(HttpError) as e:
        _parse(raw)
    assert e.value.status == status


def test_normalize_cell_rejects_garbage():
    for doc, needle in [
        ({}, "matrix"),
        ({"matrix": "not-a-matrix"}, "matrix"),
        ({"matrix": "inline1", "version": "openmp"}, "version"),
        ({"matrix": "inline1", "iterations": 0}, "iterations"),
        ({"matrix": "inline1", "iterations": "two"}, "iterations"),
        ({"matrix": "inline1", "typo_field": 1}, "typo_field"),
        ({"matrix": "inline1", "first_touch": "yes"}, "first_touch"),
    ]:
        with pytest.raises(HttpError) as e:
            normalize_cell(doc)
        assert e.value.status == 400
        assert needle in e.value.detail


def test_normalize_cell_defaults_block_count_per_version():
    dense = normalize_cell({"matrix": "inline1", "version": "deepsparse"})
    regent = normalize_cell({"matrix": "inline1", "version": "regent"})
    assert dense.block_count != regent.block_count  # §5.4 rule of thumb


def test_latency_window_percentiles():
    w = LatencyWindow(size=8)
    for v in [0.1, 0.2, 0.3, 0.4]:
        w.add(v)
    snap = w.snapshot()
    assert snap["count"] == 4
    assert snap["p50_s"] == 0.2
    assert snap["p99_s"] == 0.4
    assert snap["mean_s"] == pytest.approx(0.25)


def test_latency_window_empty_reports_none_not_crash():
    snap = LatencyWindow().snapshot()
    assert snap == {"count": 0, "mean_s": None,
                    "p50_s": None, "p99_s": None}
    assert LatencyWindow().percentile(50) is None


def test_latency_window_single_sample_is_every_percentile():
    w = LatencyWindow(size=4)
    w.add(0.7)
    for p in (0.0, 1.0, 50.0, 99.0, 100.0):
        assert w.percentile(p) == 0.7
    snap = w.snapshot()
    assert snap["count"] == 1
    assert snap["p50_s"] == snap["p99_s"] == snap["mean_s"] == 0.7


def test_latency_window_wrap_evicts_oldest_keeps_lifetime_stats():
    """Once the ring wraps, percentiles cover only the newest ``size``
    samples while count/mean stay lifetime — a long-lived daemon must
    report *recent* p99, not one diluted by yesterday."""
    w = LatencyWindow(size=4)
    for v in [100.0, 200.0, 1.0, 2.0, 3.0, 4.0]:
        w.add(v)
    # Window holds [3.0, 4.0, 1.0, 2.0]; the 100/200 outliers are gone.
    assert w.percentile(99) == 4.0
    assert w.percentile(50) == 2.0
    assert w.percentile(1) == 1.0
    snap = w.snapshot()
    assert snap["count"] == 6                       # lifetime
    assert snap["mean_s"] == pytest.approx(310.0 / 6)
    # Wrap all the way around again: still exactly `size` samples.
    for v in [5.0, 6.0, 7.0, 8.0, 9.0]:
        w.add(v)
    assert w.percentile(99) == 9.0 and w.percentile(1) == 6.0
    assert w.snapshot()["count"] == 11


# ----------------------------------------------------------------------
# Core service behaviour (loopback, inline workers)
# ----------------------------------------------------------------------
def test_cold_then_hot_and_bit_identity(tmp_path):
    from repro.analysis.experiment import run_version

    with BackgroundService(_config(tmp_path)) as bg:
        with ServiceClient(port=bg.port) as c:
            p1 = c.submit_cell(**CELL)
            p2 = c.submit_cell(**CELL)
    assert p1["source"] == "computed"
    assert p2["source"] == "cache"
    direct = run_version(
        CELL["machine"], CELL["matrix"], CELL["solver"], CELL["version"],
        block_count=CELL["block_count"],
        iterations=CELL["iterations"]).summary().to_dict()
    assert p1["summary"] == direct
    assert p2["summary"] == direct


def test_served_summary_matches_frozen_fixture(tmp_path):
    """The service must not perturb a single simulated number.

    Same contract as ``test_engine_equivalence``: the response for a
    fixture cell must reproduce the frozen pre-optimization engine's
    numbers exactly, after a full HTTP round trip.
    """
    fixture = os.path.join(os.path.dirname(__file__), "fixtures",
                           "engine_equivalence.json")
    with open(fixture, "r", encoding="utf-8") as f:
        cells = json.load(f)
    key = "broadwell/inline1/lanczos/deepsparse/16/12"
    assert key in cells
    machine, matrix, solver, version, bc, iters = key.split("/")
    with BackgroundService(_config(tmp_path)) as bg:
        with ServiceClient(port=bg.port) as c:
            summary = c.cell_summary(
                machine=machine, matrix=matrix, solver=solver,
                version=version, block_count=int(bc),
                iterations=int(iters))
    got = {
        "total_time": summary.total_time,
        "iteration_times": list(summary.iteration_times),
        "n_cores": summary.n_cores,
        "n_tasks_per_iteration": summary.n_tasks_per_iteration,
        "l1_misses": summary.counters.l1_misses,
        "l2_misses": summary.counters.l2_misses,
        "l3_misses": summary.counters.l3_misses,
        "tasks_executed": summary.counters.tasks_executed,
        "busy_time": summary.counters.busy_time,
        "overhead_time": summary.counters.overhead_time,
        "compute_time": summary.counters.compute_time,
        "memory_time": summary.counters.memory_time,
        "kernel_time": summary.counters.kernel_time,
        "kernel_tasks": summary.counters.kernel_tasks,
    }
    for field, expected in cells[key].items():
        assert got[field] == expected, f"{field} drifted over HTTP"


def test_single_flight_duplicates_computed_once(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TEST_DELAY", "0.4")
    with BackgroundService(_config(tmp_path)) as bg:
        results = []
        lock = threading.Lock()

        def hit():
            with ServiceClient(port=bg.port) as c:
                p = c.submit_cell(**CELL)
            with lock:
                results.append(p)

        crew = [threading.Thread(target=hit) for _ in range(8)]
        for t in crew:
            t.start()
        for t in crew:
            t.join()
        with ServiceClient(port=bg.port) as c:
            m = c.metrics()
    sources = sorted(r["source"] for r in results)
    assert m["computations"] == 1, sources
    assert sources.count("computed") == 1
    assert sources.count("coalesced") == 7
    bodies = {json.dumps(r["summary"], sort_keys=True) for r in results}
    assert len(bodies) == 1  # byte-identical responses for one key


def test_mixed_hot_cold_duplicate_load(tmp_path):
    """The headline load test: >=32 concurrent requests, >=50% dupes.

    Every request answered 200, every distinct cold cell computed
    exactly once, all responses per key byte-identical, and /metrics
    accounts for every request by source.
    """
    with BackgroundService(_config(tmp_path)) as bg:
        report = run_load(bg.port, n_requests=40, dup_fraction=0.5,
                          threads=16, seed=7)
    assert report["ok"], report["errors"]
    assert report["statuses"] == {200: 40}
    # Fresh cache: every distinct key is cold, computed exactly once.
    assert report["computations"] == report["n_distinct_keys"]
    src = report["sources"]
    assert src["computed"] == report["n_distinct_keys"]
    assert src["cache"] + src["coalesced"] == 40 - src["computed"]
    rates = report["metrics"]["hit_rates"]
    assert rates["cache"] is not None and rates["coalesced"] is not None
    assert rates["cache"] + rates["coalesced"] > 0.5
    lat = report["metrics"]["latency"]["request"]
    assert lat["count"] >= 40
    assert lat["p50_s"] is not None and lat["p99_s"] >= lat["p50_s"]


def test_bounded_queue_rejects_with_retry_after(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TEST_DELAY", "0.6")
    with BackgroundService(_config(tmp_path, backlog=2)) as bg:
        outcomes = []
        lock = threading.Lock()

        def cold(i):
            with ServiceClient(port=bg.port) as c:
                try:
                    p = c.submit_cell(machine="broadwell",
                                      matrix="inline1",
                                      solver="lanczos",
                                      version="deepsparse",
                                      block_count=16, iterations=1,
                                      seed=i)
                    with lock:
                        outcomes.append(("ok", p["source"]))
                except ServiceError as e:
                    with lock:
                        outcomes.append((e.status, e.retry_after_s))

        crew = [threading.Thread(target=cold, args=(i,))
                for i in range(5)]
        for t in crew:
            t.start()
        for t in crew:
            t.join()
        with ServiceClient(port=bg.port) as c:
            m = c.metrics()
    rejected = [o for o in outcomes if o[0] == 429]
    served = [o for o in outcomes if o[0] == "ok"]
    assert rejected, outcomes          # the backlog bound actually bit
    assert served                      # and admitted work still ran
    for _status, retry_after in rejected:
        assert retry_after is not None and retry_after > 0
    assert m["requests"]["rejected_busy"] == len(rejected)
    assert m["computations"] == len(served)


def test_drain_finishes_inflight_and_503s_new_work(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TEST_DELAY", "0.8")
    with BackgroundService(_config(tmp_path)) as bg:
        inflight = {}

        def slow():
            with ServiceClient(port=bg.port) as c:
                inflight.update(c.submit_cell(**CELL))

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.25)               # cold cell now genuinely running
        drainer = threading.Thread(target=bg.drain)
        drainer.start()
        time.sleep(0.1)
        with ServiceClient(port=bg.port) as probe:
            status, payload = probe.request("POST", "/v1/cell",
                                            dict(CELL))
            assert status == 503
            assert payload["error"] == "draining"
            hstatus, health = probe.request("GET", "/healthz")
            assert hstatus == 200 and health["status"] == "draining"
        t.join()
        drainer.join()
    # The in-flight request was not dropped: it finished and computed.
    assert inflight["source"] == "computed"
    assert inflight["status"] == 200


def test_sigterm_drains_subprocess_exit_zero(tmp_path, monkeypatch):
    """The real thing: a daemon subprocess, SIGTERM mid-flight.

    In-flight work finishes (the response arrives *after* the signal),
    new work is refused, the audit log is published atomically, and
    the process exits 0.
    """
    audit = str(tmp_path / "audit.jsonl")
    proc, port = spawn_server(jobs=0, audit=audit, extra_env={
        "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        "REPRO_SERVE_TEST_DELAY": "1.2",
    })
    try:
        result = {}

        def slow():
            with ServiceClient(port=port, timeout=60) as c:
                result.update(c.submit_cell(**CELL))

        t = threading.Thread(target=slow)
        t.start()
        time.sleep(0.4)                # request in flight in the daemon
        proc.send_signal(signal.SIGTERM)
        t.join(timeout=60)
        rc = proc.wait(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert rc == 0
    assert result.get("status") == 200
    assert result.get("source") == "computed"
    # Audit published (no .part remnant) with the request on record.
    assert os.path.exists(audit)
    assert not os.path.exists(audit + ".part")
    events = list(read_jsonl(audit))
    assert any(e.path == "/v1/cell" and e.status == 200 for e in events)


# ----------------------------------------------------------------------
# Sweeps, failures, audit, observability
# ----------------------------------------------------------------------
def test_sweep_dedupes_equivalent_cells(tmp_path):
    """libcsr ignores block count, so a block-count sweep of libcsr
    cells collapses onto one cache key — the service must compute it
    once and serve the rest from the same flight/cache."""
    with BackgroundService(_config(tmp_path)) as bg:
        with ServiceClient(port=bg.port) as c:
            sweep = c.submit_sweep(matrices=["inline1"],
                                   versions=["libcsr"],
                                   block_counts=[8, 16, 32, 64],
                                   iterations=1)
            m = c.metrics()
    assert sweep["n_cells"] == 4
    assert all(e["status"] == 200 for e in sweep["cells"])
    assert len({e["key"] for e in sweep["cells"]}) == 1
    assert m["computations"] == 1
    bodies = {json.dumps(e["summary"], sort_keys=True)
              for e in sweep["cells"]}
    assert len(bodies) == 1


def test_sweep_and_singles_coalesce_across_endpoints(tmp_path,
                                                     monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_TEST_DELAY", "0.4")
    with BackgroundService(_config(tmp_path)) as bg:
        out = {}

        def sweep():
            with ServiceClient(port=bg.port) as c:
                out["sweep"] = c.submit_sweep(matrices=["inline1"],
                                              versions=["libcsr"],
                                              iterations=1)

        def single():
            with ServiceClient(port=bg.port) as c:
                out["single"] = c.submit_cell(**CELL)

        ts = [threading.Thread(target=sweep),
              threading.Thread(target=single)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        with ServiceClient(port=bg.port) as c:
            m = c.metrics()
    # Same key via two endpoints concurrently -> one computation.
    assert out["sweep"]["cells"][0]["key"] == out["single"]["key"]
    assert m["computations"] == 1


def _failing_worker(config):
    raise WorkerFailure(
        "ValueError: synthetic worker failure",
        "Traceback (most recent call last):\n"
        "ValueError: synthetic worker failure")


def test_worker_failure_surfaces_500_with_stderr_tail(tmp_path):
    cfg = _config(tmp_path, worker=_failing_worker, attempts=2,
                  backoff=0.0)
    with BackgroundService(cfg) as bg:
        with ServiceClient(port=bg.port) as c:
            with pytest.raises(ServiceError) as e:
                c.submit_cell(**CELL)
            m = c.metrics()
    assert e.value.status == 500
    assert "synthetic worker failure" in str(e.value)
    assert "Traceback" in e.value.payload["stderr_tail"]
    assert m["requests"]["error"] == 1
    assert m["worker_retries"] == 1      # attempts=2 -> one retry
    assert m["computations"] == 0        # a failure is not a result


def test_failed_cell_is_not_cached_and_recomputes(tmp_path):
    calls = {"n": 0}
    with BackgroundService(_config(tmp_path)) as bg:
        # First flight fails (worker swapped in-place: inline mode
        # calls it directly), second succeeds and must actually run.
        real = bg.service.pool.worker

        def flaky(config):
            calls["n"] += 1
            if calls["n"] == 1:
                raise WorkerFailure("RuntimeError: first call dies", "")
            return real(config)

        bg.service.pool.worker = flaky
        bg.service.pool.attempts = 1
        with ServiceClient(port=bg.port) as c:
            with pytest.raises(ServiceError):
                c.submit_cell(**CELL)
            p = c.submit_cell(**CELL)
    assert p["source"] == "computed"
    assert calls["n"] == 2


def test_audit_log_records_every_request(tmp_path):
    audit = str(tmp_path / "audit.jsonl")
    with BackgroundService(_config(tmp_path, audit_path=audit)) as bg:
        with ServiceClient(port=bg.port) as c:
            c.submit_cell(**CELL)
            c.submit_cell(**CELL)
            c.request("POST", "/v1/cell", {"matrix": "bogus"})
            c.request("GET", "/nowhere")
            c.healthz()     # observability: not audited
            c.metrics()
    events = list(read_jsonl(audit))
    assert [e.kind for e in events] == ["audit"] * 4
    by_source = [e.source for e in events]
    assert by_source.count("computed") == 1
    assert by_source.count("cache") == 1
    assert by_source.count("invalid") == 2
    computed = next(e for e in events if e.source == "computed")
    assert computed.key and computed.status == 200
    assert computed.latency_s > 0
    assert all(e.wall > 0 for e in events)


def test_healthz_and_metrics_shapes(tmp_path):
    from repro.sim.cost import COST_MODEL_VERSION

    with BackgroundService(_config(tmp_path)) as bg:
        with ServiceClient(port=bg.port) as c:
            health = c.healthz()
            c.submit_cell(**CELL)
            m = c.metrics()
    assert health["status"] == "ok"
    assert health["jobs"] == 0
    assert m["cost_model_version"] == COST_MODEL_VERSION
    assert m["queue"]["backlog"] == 64
    assert m["pool"] == {"jobs": 0, "mode": "inline", "rebuilds": 0}
    assert m["requests_total"] == 1
    assert set(m["requests"]) == {
        "cache", "coalesced", "computed", "rejected_busy",
        "rejected_draining", "invalid", "error"}
    assert m["result_cache"]["writes"] == 1


def test_http_errors_from_service(tmp_path):
    with BackgroundService(_config(tmp_path)) as bg:
        with ServiceClient(port=bg.port) as c:
            cases = [
                ("GET", "/v1/cell", None, 405),
                ("POST", "/v1/sweep", {"matrices": []}, 400),
                ("POST", "/v1/sweep", {"wat": 1}, 400),
                ("POST", "/v1/cell", {"matrix": "inline1",
                                      "bogus": True}, 400),
            ]
            for method, path, doc, want in cases:
                status, payload = c.request(method, path, doc)
                assert status == want, (method, path, payload)
                assert "error" in payload
            # malformed JSON straight onto the wire
            status, payload = c.request("POST", "/v1/cell", None)
            assert status == 400


def test_cli_submit_against_daemon(tmp_path, capsys):
    from repro.cli import main as cli_main

    with BackgroundService(_config(tmp_path)) as bg:
        rc = cli_main(["submit", "--port", str(bg.port),
                       "--matrix", "inline1", "--version", "libcsr",
                       "--iterations", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "inline1" in out and "computed" in out
        rc = cli_main(["submit", "--port", str(bg.port),
                       "--matrix", "inline1", "--version", "libcsr",
                       "--iterations", "1", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        assert json.loads(out)["source"] == "cache"


def test_cli_submit_unreachable_daemon(capsys):
    from repro.cli import main as cli_main

    rc = cli_main(["submit", "--port", "1", "--matrix", "inline1"])
    assert rc == 1
    assert "cannot reach daemon" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Client keep-alive retry policy
# ----------------------------------------------------------------------
class _RawHttpServer(threading.Thread):
    """A bare socket server for exercising the client's transport.

    ``respond=True``: serves one well-formed keep-alive response per
    connection, then slams the connection shut — so the *next* request
    on that connection always hits a stale socket, deterministically.
    ``respond=False``: accepts and immediately closes (a server that
    is up but never answers).  ``accepted`` counts connections, which
    is how the tests observe whether the client silently retried.
    """

    def __init__(self, respond: bool = True):
        super().__init__(daemon=True)
        import socket as _socket

        self.respond = respond
        self.accepted = 0
        self._sock = _socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._shutdown = threading.Event()

    def run(self):
        self._sock.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                continue
            self.accepted += 1
            try:
                if self.respond:
                    conn.settimeout(5)
                    buf = b""
                    while b"\r\n\r\n" not in buf:
                        buf += conn.recv(4096)
                    head = buf.split(b"\r\n\r\n", 1)[0].lower()
                    for line in head.split(b"\r\n"):
                        if line.startswith(b"content-length:"):
                            want = int(line.split(b":", 1)[1])
                            body = buf.split(b"\r\n\r\n", 1)[1]
                            while len(body) < want:
                                body += conn.recv(4096)
                    payload = b'{"ok": true}'
                    conn.sendall(
                        b"HTTP/1.1 200 OK\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: keep-alive\r\n\r\n" % len(payload)
                        + payload)
            finally:
                conn.close()   # the lie: keep-alive advertised, closed

    def stop(self):
        self._shutdown.set()
        self.join(timeout=5)
        self._sock.close()


def test_client_retries_stale_keepalive_once(tmp_path):
    """Regression: a connection parked past the server's keep-alive
    close must be retried transparently on a fresh socket — the
    second request succeeds instead of surfacing RemoteDisconnected."""
    server = _RawHttpServer(respond=True)
    server.start()
    try:
        with ServiceClient(port=server.port) as c:
            s1, p1 = c.request("GET", "/healthz")
            # The server closed the connection after responding; this
            # request goes out on the stale socket first.
            s2, p2 = c.request("GET", "/healthz")
        assert (s1, p1) == (200, {"ok": True})
        assert (s2, p2) == (200, {"ok": True})
        # First request: 1 connection.  Second: stale attempt consumed
        # nothing server-side, retry opened connection #2.
        assert server.accepted == 2
    finally:
        server.stop()


def test_client_does_not_retry_fresh_connection_failures():
    """A server that dies without answering a *fresh* connection must
    surface immediately — retrying could double-submit against a
    half-alive service, and hides real outages."""
    server = _RawHttpServer(respond=False)
    server.start()
    try:
        with ServiceClient(port=server.port, timeout=5) as c:
            with pytest.raises(OSError):
                c.request("GET", "/healthz")
        deadline = time.time() + 2
        while server.accepted < 1 and time.time() < deadline:
            time.sleep(0.01)
        assert server.accepted == 1   # no silent second attempt
    finally:
        server.stop()
