"""Workspace mechanics and threaded/serial task execution bodies."""

import numpy as np
import pytest

from repro.graph.task import DataHandle, Task
from repro.matrices.csb import CSBMatrix
from repro.matrices.generators import banded_fem
from repro.runtime.threaded import ThreadedRuntime, execute_task
from repro.solvers.workspace import Workspace


@pytest.fixture(scope="module")
def csb():
    return CSBMatrix.from_coo(banded_fem(100, 6, seed=1), 25)


@pytest.fixture
def ws(csb):
    return Workspace(csb, {"u": 2, "v": 2, "w": 2},
                     {"g": (2, 2), "s": (1, 1)})


def test_workspace_chunks_are_views(ws):
    ws.chunk("u", 0)[:] = 3.0
    assert (ws.full("u")[:25] == 3.0).all()
    assert (ws.full("u")[25:] == 0.0).all()


def test_workspace_scalars(ws):
    ws.set_scalar("s", 2.5)
    assert ws.scalar("s") == 2.5


def test_spec_only_workspace(csb):
    w = Workspace(csb, {"u": 1}, {}, allocate=False)
    assert not w.allocated
    chunked, small = w.operand_spec()
    assert chunked == {"u": 1}


def test_execute_task_axpy_named_alpha(ws):
    ws.full("u")[:] = 1.0
    ws.full("v")[:] = 2.0
    ws.set_scalar("s", 4.0)
    t = Task(0, "AXPY", (), (), {"rows": 25, "width": 2},
             {"i": 0, "X": "u", "Y": "v", "alpha_name": "s",
              "alpha_op": "inv"})
    execute_task(t, ws)
    np.testing.assert_allclose(ws.chunk("v", 0), 2.25)  # 2 + 1/4
    np.testing.assert_allclose(ws.chunk("v", 1), 2.0)


@pytest.mark.parametrize("op,val,expected", [
    ("identity", 2.0, 2.0),
    ("neg", 2.0, -2.0),
    ("inv", 4.0, 0.25),
    ("neg_inv", 4.0, -0.25),
    ("inv", 0.0, 0.0),  # guarded division
])
def test_alpha_ops(ws, op, val, expected):
    ws.set_scalar("s", val)
    ws.full("u")[:] = 1.0
    t = Task(0, "SCALE", (), (), {"rows": 25, "width": 2},
             {"i": 0, "X": "u", "alpha_name": "s", "alpha_op": op})
    execute_task(t, ws)
    np.testing.assert_allclose(ws.chunk("u", 0), expected)


def test_unknown_alpha_op(ws):
    t = Task(0, "SCALE", (), (), {"rows": 25, "width": 2},
             {"i": 0, "X": "u", "alpha_name": "s", "alpha_op": "log"})
    ws.set_scalar("s", 1.0)
    with pytest.raises(ValueError, match="alpha_op"):
        execute_task(t, ws)


def test_copy_column_transfer(ws):
    ws.full("u")[:, 0] = 7.0
    t = Task(0, "COPY", (), (), {"rows": 25, "width": 2},
             {"i": 0, "X": "u", "Y": "v", "col": 1, "src_col": 0})
    execute_task(t, ws)
    np.testing.assert_allclose(ws.chunk("v", 0)[:, 1], 7.0)
    np.testing.assert_allclose(ws.chunk("v", 0)[:, 0], 0.0)


def test_unknown_small_op(ws):
    t = Task(0, "SMALL_EIGH", (), (), {"k": 1}, {"op": "NOPE"})
    with pytest.raises(KeyError, match="unknown small op"):
        execute_task(t, ws)


def test_prepare_buffers_covers_dot_xty_spmm(csb):
    from repro.runtime import build_solver_dag
    from repro.solvers import lobpcg_trace
    from repro.graph.builder import BuildOptions

    calls, chunked, small = lobpcg_trace(csb, n=2)
    dag = build_solver_dag(csb, calls, chunked, small,
                           options=BuildOptions(spmm_mode="reduction"))
    ws = Workspace(csb, chunked, small)
    ws.prepare_buffers(dag)
    kinds = {k for k in ("XTY", "DOT") for t in dag.tasks
             if t.kernel == k}
    # every partial buffer key exists before execution starts
    for t in dag.tasks:
        if t.kernel == "XTY":
            assert (t.params["buf"], t.params["i"]) in ws.buffers
        if t.kernel in ("SPMV", "SPMM") and t.params.get("buffer"):
            assert (t.params["Y"], t.params["i"]) in ws.buffers


def test_threaded_runtime_validation():
    with pytest.raises(ValueError, match="positive"):
        ThreadedRuntime(n_workers=0)


def test_threaded_runtime_propagates_errors(csb):
    from repro.graph.dag import TaskDAG

    dag = TaskDAG()
    dag.add_task(Task(-1, "SMALL_EIGH", (), (), {"k": 1}, {"op": "NOPE"}))
    ws = Workspace(csb, {}, {})
    with pytest.raises(KeyError, match="unknown small op"):
        ThreadedRuntime(2).execute(dag, ws)


def test_threaded_deterministic_repeats(csb):
    """Racing would break bitwise repeatability across runs."""
    from repro.runtime import build_solver_dag
    from repro.solvers import lobpcg_trace
    from repro.kernels import orthonormalize

    calls, chunked, small = lobpcg_trace(csb, n=2)
    dag = build_solver_dag(csb, calls, chunked, small)
    rng = np.random.default_rng(2)
    X0 = orthonormalize(rng.standard_normal((csb.shape[0], 2)))
    outs = []
    for _ in range(3):
        ws = Workspace(csb, chunked, small)
        ws.full("Psi")[:] = X0
        ThreadedRuntime(4).execute(dag, ws)
        outs.append(ws.full("Psi").copy())
    np.testing.assert_array_equal(outs[0], outs[1])
    np.testing.assert_array_equal(outs[0], outs[2])
