"""Deterministic fault injection: plans, state, and engine behaviour.

Three layers:

* vocabulary — :func:`repro.faults.fault_hash` stability, plan
  validation, named-spec registry, dict round trips, core selectors;
* state — iteration-barrier semantics of deaths and straggler onsets,
  survivor validation, deterministic selector resolution;
* engines — an *empty* plan must change nothing (bit-identity with the
  fault path compiled out), seeded plans must be bit-identical across
  runs and processes, and the per-runtime recovery policies must
  actually separate (BSP stalls, the AMT runtimes absorb the loss).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.experiment import run_version
from repro.faults import (
    FAULT_SPECS,
    CoreLoss,
    FaultPlan,
    FaultState,
    SlowCore,
    TaskFaults,
    fault_hash,
    make_plan,
)
from repro.machine.presets import broadwell

SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")

ALL_VERSIONS = ["libcsr", "libcsb", "deepsparse", "hpx", "regent"]


def _observed(res) -> dict:
    c = res.counters
    return {
        "total_time": res.total_time,
        "iteration_times": list(res.iteration_times),
        "l1_misses": c.l1_misses,
        "l2_misses": c.l2_misses,
        "l3_misses": c.l3_misses,
        "tasks_executed": c.tasks_executed,
        "busy_time": c.busy_time,
        "overhead_time": c.overhead_time,
        "compute_time": c.compute_time,
        "memory_time": c.memory_time,
    }


# ----------------------------------------------------------------------
# fault_hash: the one source of randomness
# ----------------------------------------------------------------------
def test_fault_hash_is_uniform_unit_interval_and_deterministic():
    draws = [fault_hash(7, "task", it, tid, 0)
             for it in range(8) for tid in range(64)]
    assert all(0.0 <= d < 1.0 for d in draws)
    assert len(set(draws)) == len(draws)  # no collisions at this scale
    assert draws == [fault_hash(7, "task", it, tid, 0)
                     for it in range(8) for tid in range(64)]
    # Roughly uniform: the empirical mean of 512 u01 draws.
    assert 0.4 < sum(draws) / len(draws) < 0.6


def test_fault_hash_is_stable_across_processes():
    """No hash() / PYTHONHASHSEED leakage into fault decisions."""
    code = ("from repro.faults import fault_hash; "
            "print(repr(fault_hash(42, 'task', 3, 17, 1)))")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": SRC, "PYTHONHASHSEED": "999"},
    )
    assert out.stdout.strip() == repr(fault_hash(42, "task", 3, 17, 1))


def test_fault_hash_distinguishes_every_coordinate():
    base = fault_hash(0, "task", 1, 2, 3)
    assert fault_hash(1, "task", 1, 2, 3) != base
    assert fault_hash(0, "core", 1, 2, 3) != base
    assert fault_hash(0, "task", 2, 2, 3) != base
    assert fault_hash(0, "task", 1, 3, 3) != base
    assert fault_hash(0, "task", 1, 2, 4) != base


# ----------------------------------------------------------------------
# plan vocabulary
# ----------------------------------------------------------------------
def test_injection_validation():
    with pytest.raises(ValueError):
        SlowCore(factor=0.5)           # a speed-up is not a fault
    with pytest.raises(ValueError):
        SlowCore(onset=-1)
    with pytest.raises(ValueError):
        CoreLoss(at=-1)
    with pytest.raises(ValueError):
        TaskFaults(rate=1.0)           # certain failure never converges
    with pytest.raises(ValueError):
        TaskFaults(budget=-1)
    with pytest.raises(ValueError):
        TaskFaults(backoff=-1e-6)


def test_named_specs_build_and_unknown_spec_raises():
    for name in FAULT_SPECS:
        plan = make_plan(name, seed=3)
        assert plan.spec == name
        assert plan.seed == 3
        assert plan.is_empty == (name == "none")
    with pytest.raises(ValueError, match="unknown fault spec"):
        make_plan("meteor-strike")


@pytest.mark.parametrize("spec", sorted(FAULT_SPECS))
def test_plan_round_trips_through_json(spec):
    plan = FaultPlan.from_spec(spec, seed=11)
    back = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert back == plan


# ----------------------------------------------------------------------
# core selectors
# ----------------------------------------------------------------------
def test_select_cores_shapes():
    bw = broadwell()
    n = bw.n_cores
    assert bw.select_cores(5) == (5,)
    assert bw.select_cores("first") == (0,)
    assert bw.select_cores("last") == (n - 1,)
    dom0 = bw.select_cores("domain:0")
    assert dom0 and all(bw.core(c).numa_domain == 0 for c in dom0)
    sock0 = bw.select_cores("socket:0")
    assert set(dom0) <= set(sock0)
    with pytest.raises(ValueError):
        bw.select_cores("nonsense")
    with pytest.raises(IndexError):
        bw.select_cores(n)  # out of range


def test_select_cores_random_is_seeded_not_stateful():
    bw = broadwell()
    picks = {seed: bw.select_cores("random", seed=seed, salt="loss:0")
             for seed in range(32)}
    assert picks == {seed: bw.select_cores("random", seed=seed,
                                           salt="loss:0")
                     for seed in range(32)}
    assert all(len(p) == 1 and 0 <= p[0] < bw.n_cores
               for p in picks.values())
    assert len({p for p in picks.values()}) > 1  # seed actually matters
    # Distinct salts decorrelate the draws for the same seed.
    assert any(bw.select_cores("random", seed=s, salt="slow:0")
               != bw.select_cores("random", seed=s, salt="loss:0")
               for s in range(32))


# ----------------------------------------------------------------------
# FaultState: barrier semantics
# ----------------------------------------------------------------------
def test_state_barrier_protocol_and_views():
    bw = broadwell()
    plan = FaultPlan(
        spec="test", seed=0,
        slow=(SlowCore(selector=1, factor=3.0, onset=2),),
        losses=(CoreLoss(selector=0, at=1),),
        task_faults=TaskFaults(rate=0.5, budget=2, backoff=1e-6),
    )
    fs = FaultState(plan, bw)

    newly_dead, newly_slow = fs.begin_iteration(0)
    assert (newly_dead, newly_slow) == ([], [])
    assert fs.derates is None and not fs.dead(0)

    newly_dead, newly_slow = fs.begin_iteration(1)
    assert (newly_dead, newly_slow) == ([0], [])
    assert fs.dead(0) and fs.dead_cores == {0}
    assert fs.recovery_core == 1

    newly_dead, newly_slow = fs.begin_iteration(2)
    assert (newly_dead, newly_slow) == ([], [1])
    assert fs.dead(0)                      # still dead, not "newly"
    assert fs.factor(1) == 3.0 and fs.factor(2) == 1.0
    assert fs.derates[1] == 3.0

    assert fs.backoff_seconds(0) == 1e-6
    assert fs.backoff_seconds(2) == 4e-6
    decisions = [fs.task_fails(2, t, 0) for t in range(200)]
    assert any(decisions) and not all(decisions)   # rate in (0, 1)
    assert decisions == [fs.task_fails(2, t, 0) for t in range(200)]


def test_state_rejects_plans_that_kill_every_core():
    bw = broadwell()
    plan = FaultPlan(spec="apocalypse", seed=0,
                     losses=(CoreLoss("socket:0", 1),
                             CoreLoss("socket:1", 1)))
    with pytest.raises(ValueError, match="at least one must survive"):
        FaultState(plan, bw)


def test_dead_core_sheds_its_derate():
    bw = broadwell()
    plan = FaultPlan(spec="t", seed=0,
                     slow=(SlowCore(selector=3, factor=2.0, onset=0),),
                     losses=(CoreLoss(selector=3, at=2),))
    fs = FaultState(plan, bw)
    fs.begin_iteration(0)
    assert fs.factor(3) == 2.0
    fs.begin_iteration(2)
    assert fs.derates is None  # only slow core died -> no active derate


# ----------------------------------------------------------------------
# engines: identity, determinism, recovery separation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", ALL_VERSIONS)
def test_empty_plan_is_observationally_free(version):
    """faults=FaultPlan.empty() must not move a single number."""
    plain = run_version("broadwell", "inline1", "lanczos", version,
                        block_count=16, iterations=6)
    empty = run_version("broadwell", "inline1", "lanczos", version,
                        block_count=16, iterations=6,
                        faults=FaultPlan.empty())
    assert empty.fault_report is None
    assert _observed(empty) == _observed(plain)
    assert empty.steady_state_at == plain.steady_state_at
    assert [tuple(r) for r in empty.flow.records] == \
        [tuple(r) for r in plain.flow.records]


@pytest.mark.parametrize("version", ["libcsb", "deepsparse", "hpx"])
def test_seeded_plan_is_bit_identical_across_runs(version):
    plan = FaultPlan.from_spec("chaos", seed=0)
    a = run_version("broadwell", "inline1", "lanczos", version,
                    block_count=16, iterations=5, faults=plan)
    b = run_version("broadwell", "inline1", "lanczos", version,
                    block_count=16, iterations=5, faults=plan)
    assert _observed(a) == _observed(b)
    assert a.fault_report is not None
    assert a.fault_report.to_dict() == b.fault_report.to_dict()


def test_seeded_plan_is_bit_identical_across_processes():
    """The decision stream must not depend on the process."""
    code = (
        "import json\n"
        "from repro.analysis.experiment import run_version\n"
        "from repro.faults import FaultPlan\n"
        "res = run_version('broadwell', 'inline1', 'lanczos', "
        "'deepsparse', block_count=16, iterations=5, "
        "faults=FaultPlan.from_spec('chaos', seed=0))\n"
        "print(json.dumps([res.total_time, "
        "list(res.iteration_times), res.fault_report.to_dict()]))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": SRC, "PYTHONHASHSEED": "54321"},
    )
    res = run_version("broadwell", "inline1", "lanczos", "deepsparse",
                      block_count=16, iterations=5,
                      faults=FaultPlan.from_spec("chaos", seed=0))
    child = json.loads(out.stdout)
    assert child == json.loads(json.dumps(
        [res.total_time, list(res.iteration_times),
         res.fault_report.to_dict()]
    ))


def test_slow_core_stretches_iterations_after_onset():
    plan = FaultPlan(spec="t", seed=0,
                     slow=(SlowCore(selector=0, factor=4.0, onset=2),))
    res = run_version("broadwell", "inline1", "lanczos", "libcsb",
                      block_count=48, iterations=5, faults=plan)
    healthy = run_version("broadwell", "inline1", "lanczos", "libcsb",
                          block_count=48, iterations=5)
    it = res.iteration_times
    # Pre-onset iterations are untouched; post-onset ones stretch (BSP
    # barriers wait for the slowest lane).
    assert it[0] == healthy.iteration_times[0]
    assert it[1] == healthy.iteration_times[1]
    assert it[2] > healthy.iteration_times[2]
    fr = res.fault_report
    assert fr.slow_cores == [[0, 4.0, 2]]
    assert fr.slow_time > 0.0
    assert res.total_time == pytest.approx(
        healthy.total_time + fr.slow_time, rel=0.5)


def test_core_loss_recovery_separates_the_runtimes():
    """The point of the whole exercise: BSP has no recovery policy, so
    its barrier absorbs the dead lane's share serially; the AMT
    runtimes redistribute and barely notice."""
    plan = FaultPlan.from_spec("core-loss", seed=0)  # random core, at=2
    results = {
        v: run_version("broadwell", "inline1", "lanczos", v,
                       block_count=48, iterations=5, faults=plan)
        for v in ("libcsb", "deepsparse", "hpx")
    }
    healthy = {
        v: run_version("broadwell", "inline1", "lanczos", v,
                       block_count=48, iterations=5)
        for v in ("libcsb", "deepsparse", "hpx")
    }
    lat = {v: r.fault_report.recovery_latency
           for v, r in results.items()}
    slow = {v: results[v].total_time / healthy[v].total_time
            for v in results}
    # BSP stalls: big latency, real slowdown, stall time accounted.
    assert lat["libcsb"] > 5 * max(abs(lat["deepsparse"]), 1e-9)
    assert lat["libcsb"] > 5 * abs(lat["hpx"])
    assert results["libcsb"].fault_report.stall_time > 0.0
    assert slow["libcsb"] > 1.2
    # AMT absorbs: mild slowdown, no stall accounting.
    for v in ("deepsparse", "hpx"):
        assert slow[v] < 1.15
        assert results[v].fault_report.stall_time == 0.0
    # Loss iteration recorded; latency surfaced per loss.
    (core, at, latency), = results["libcsb"].fault_report.core_losses
    assert at == 2 and latency == lat["libcsb"]
    assert 0 <= core < healthy["libcsb"].n_cores


@pytest.mark.parametrize("version", ["libcsb", "deepsparse"])
def test_task_faults_retry_and_charge_the_clock(version):
    plan = FaultPlan(spec="t", seed=1,
                     task_faults=TaskFaults(rate=0.08, budget=3,
                                            backoff=5e-6))
    res = run_version("broadwell", "inline1", "lanczos", version,
                      block_count=16, iterations=4, faults=plan)
    healthy = run_version("broadwell", "inline1", "lanczos", version,
                          block_count=16, iterations=4)
    fr = res.fault_report
    assert fr.retries > 0
    assert fr.re_executed_time > 0.0
    assert fr.backoff_time > 0.0
    assert res.total_time > healthy.total_time
    # Retries re-execute work — each one counts as another execution.
    assert res.counters.tasks_executed == \
        healthy.counters.tasks_executed + fr.retries


def test_zero_budget_abandons_instead_of_retrying():
    plan = FaultPlan(spec="t", seed=1,
                     task_faults=TaskFaults(rate=0.10, budget=0,
                                            backoff=5e-6))
    res = run_version("broadwell", "inline1", "lanczos", "deepsparse",
                      block_count=16, iterations=4, faults=plan)
    fr = res.fault_report
    assert fr.retries == 0
    assert fr.abandoned > 0
    assert fr.re_executed_time == 0.0


def test_fault_report_survives_summary_round_trip():
    plan = FaultPlan.from_spec("chaos", seed=0)
    res = run_version("broadwell", "inline1", "lanczos", "hpx",
                      block_count=16, iterations=5, faults=plan)
    summary = res.summary()
    assert summary.fault_report is not None
    back = type(summary).from_dict(json.loads(json.dumps(
        summary.to_dict())))
    assert back.fault_report == summary.fault_report
    assert back == summary
    # ...and a healthy summary keeps the field at None.
    plain = run_version("broadwell", "inline1", "lanczos", "hpx",
                        block_count=16, iterations=2).summary()
    assert plain.fault_report is None
    assert type(plain).from_dict(plain.to_dict()).fault_report is None


def test_faulted_run_emits_fault_and_recovery_trace_events():
    from repro.trace import InMemorySink, Tracer

    plan = FaultPlan.from_spec("core-loss", seed=0)
    tracer = Tracer(InMemorySink())
    res = run_version("broadwell", "inline1", "lanczos", "hpx",
                      block_count=48, iterations=5, faults=plan,
                      tracer=tracer)
    kinds = {e.kind for e in tracer.events}
    assert "fault" in kinds and "recovery" in kinds
    faults = [e for e in tracer.events if e.kind == "fault"]
    assert any(e.fault == "core-loss" for e in faults)
    (loss,) = [e for e in tracer.events if e.kind == "recovery"]
    assert loss.latency == res.fault_report.recovery_latency
    # The trace exports cleanly with fault events present.
    from repro.trace import to_chrome_trace
    doc = to_chrome_trace(tracer)
    names = {e.get("name") for e in doc["traceEvents"]}
    assert "core-loss" in names
