"""Property battery for the consistent-hash ring.

The router's exactly-once guarantee reduces to three ring properties,
so they get pinned adversarially here:

* **determinism** — placement depends only on (node set, vnodes, key):
  same inputs, same owner, in *any* process (the ring hashes with
  blake2b, never Python's seeded ``hash()``).  A router restart, a
  test-side replica of the ring, and every shard of a fleet agree.
* **balance** — 128 virtual nodes keep the load share of the busiest
  node within a stated bound of the mean, for any node count the
  supervisor would realistically run.
* **minimal remapping** — adding/removing one node moves only the keys
  that land on (or leave) that node: ~1/N of them, never a reshuffle.
  This is what makes a shard restart cheap: every unmoved key keeps
  its cache domain.
"""

from __future__ import annotations

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.ring import DEFAULT_VNODES, HashRing

# Node-name strategy: realistic shard names plus adversarial ones
# (empty-ish, unicode, collision-bait like "shard-1" vs "shard-11").
_names = st.lists(
    st.one_of(
        st.from_regex(r"shard-[0-9]{1,3}", fullmatch=True),
        st.text(min_size=1, max_size=12),
    ),
    min_size=1, max_size=8, unique=True,
)

_keys = st.lists(st.text(min_size=1, max_size=40),
                 min_size=1, max_size=64, unique=True)


def _ring(nodes, vnodes=DEFAULT_VNODES) -> HashRing:
    ring = HashRing(vnodes)
    for n in nodes:
        ring.add(n)
    return ring


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
@given(nodes=_names, keys=_keys)
@settings(max_examples=100, deadline=None)
def test_placement_is_a_pure_function_of_inputs(nodes, keys):
    a = _ring(nodes)
    b = _ring(list(reversed(nodes)))   # insertion order must not matter
    for key in keys:
        assert a.node_for(key) == b.node_for(key)
        assert a.preference(key) == b.preference(key)


def test_placement_identical_in_a_fresh_process():
    """The cross-process pin: a subprocess with its own interpreter
    (its own ``PYTHONHASHSEED``) must place every key identically.
    This is the property that lets the chaos test predict, test-side,
    which shard the router will pick for every cell."""
    nodes = [f"shard-{i}" for i in range(5)]
    keys = [f"key-{i:04d}" for i in range(200)]
    ring = _ring(nodes)
    here = {k: ring.node_for(k) for k in keys}

    prog = (
        "import json, sys\n"
        "from repro.serve.ring import HashRing\n"
        "nodes, keys = json.load(sys.stdin)\n"
        "ring = HashRing()\n"
        "for n in nodes: ring.add(n)\n"
        "print(json.dumps({k: ring.node_for(k) for k in keys}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", prog],
        input=json.dumps([nodes, keys]), capture_output=True,
        text=True, check=True)
    there = json.loads(out.stdout)
    assert there == here


# ----------------------------------------------------------------------
# balance
# ----------------------------------------------------------------------
@given(n_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_load_balance_within_bound(n_nodes, seed):
    """With 128 vnodes the busiest node's share stays within 1.7x of
    the mean over a 4096-key sample (measured headroom: observed max
    is ~1.45x across seeds; the bound leaves slack for sampling noise
    without ever tolerating a degenerate ring)."""
    ring = _ring([f"shard-{i}" for i in range(n_nodes)])
    keys = [f"{seed}:{i}" for i in range(4096)]
    shares = ring.shares(keys)
    assert sum(shares.values()) == len(keys)
    mean = len(keys) / n_nodes
    assert max(shares.values()) <= 1.7 * mean
    assert min(shares.values()) >= 0.4 * mean


# ----------------------------------------------------------------------
# minimal remapping
# ----------------------------------------------------------------------
@given(n_nodes=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_adding_a_node_moves_only_keys_onto_it(n_nodes, seed):
    nodes = [f"shard-{i}" for i in range(n_nodes)]
    keys = [f"{seed}:{i}" for i in range(2048)]
    base = _ring(nodes)
    before = {k: base.node_for(k) for k in keys}
    grown = _ring(nodes + ["joiner"])
    moved = 0
    for k in keys:
        owner = grown.node_for(k)
        if owner != before[k]:
            # A key may only move TO the new node, never between
            # incumbents.
            assert owner == "joiner"
            moved += 1
    # Expected share: 1/(n+1).  Allow 2.5x for vnode placement noise.
    assert moved <= 2.5 * len(keys) / (n_nodes + 1)
    assert moved > 0   # the joiner must actually take load


@given(n_nodes=st.integers(min_value=2, max_value=8),
       victim=st.integers(min_value=0, max_value=7),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_removing_a_node_moves_only_its_own_keys(n_nodes, victim, seed):
    nodes = [f"shard-{i}" for i in range(n_nodes)]
    gone = nodes[victim % n_nodes]
    keys = [f"{seed}:{i}" for i in range(2048)]
    base = _ring(nodes)
    before = {k: base.node_for(k) for k in keys}
    shrunk = _ring([n for n in nodes if n != gone])
    for k in keys:
        if before[k] == gone:
            assert shrunk.node_for(k) != gone
        else:
            # Keys not owned by the removed node must not move at all.
            assert shrunk.node_for(k) == before[k]


@given(nodes=_names, key=st.text(min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_preference_is_owner_first_then_distinct_successors(nodes, key):
    ring = _ring(nodes)
    pref = ring.preference(key)
    assert pref[0] == ring.node_for(key)
    assert len(pref) == len(set(pref)) == len(nodes)
    limited = ring.preference(key, limit=2)
    assert limited == pref[:2]


def test_failover_order_survives_the_failed_node_leaving():
    """The router's failover contract: when the owner is removed, the
    new owner is the old first successor — walking the preference list
    and removing the owner agree on where keys go."""
    nodes = [f"shard-{i}" for i in range(5)]
    ring = _ring(nodes)
    shrunk = {gone: _ring([n for n in nodes if n != gone])
              for gone in nodes}
    for i in range(200):
        key = f"key-{i}"
        pref = ring.preference(key)
        assert shrunk[pref[0]].node_for(key) == pref[1]


def test_empty_ring_and_membership_bookkeeping():
    ring = HashRing()
    assert ring.node_for("anything") is None
    assert ring.preference("anything") == []
    assert len(ring) == 0 and "x" not in ring
    ring.add("x")
    ring.add("x")            # idempotent
    assert len(ring) == 1 and "x" in ring
    assert ring.node_for("anything") == "x"
    ring.remove("x")
    ring.remove("x")         # idempotent
    assert len(ring) == 0
