"""Fig. 9: Lanczos speedups over libcsr, Broadwell and EPYC.

Paper: Broadwell max/avg — DeepSparse 2.3/1.5, HPX 4.3/2.2, Regent
2.0/1.1.  EPYC — DeepSparse 6.5/3.3, HPX 9.9/4.9, Regent 2.7/1.6;
"task parallel versions perform better when we go from a multicore
(Broadwell) to a manycore (EPYC) architecture", with the majority of
the speedup coming from the large matrices.
"""

from benchmarks.common import banner, cell, emit, geomean, matrices

VERSIONS = ["libcsb", "deepsparse", "hpx", "regent"]
PAPER_MAX = {
    "broadwell": {"deepsparse": 2.3, "hpx": 4.3, "regent": 2.0},
    "epyc": {"deepsparse": 6.5, "hpx": 9.9, "regent": 2.7},
}


def run_fig9():
    return {
        mach: {m: cell(mach, m, "lanczos") for m in matrices()}
        for mach in ("broadwell", "epyc")
    }


def test_fig9_lanczos_speedup(benchmark):
    data = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    stats = {}
    for mach, cells in data.items():
        banner(f"Fig. 9 ({mach}): Lanczos speedup over libcsr "
               f"(paper max: {PAPER_MAX[mach]})")
        emit(f"{'matrix':20s}" + "".join(f"{v:>12s}" for v in VERSIONS))
        per = {v: [] for v in VERSIONS}
        for mat, c in cells.items():
            row = f"{mat:20s}"
            for v in VERSIONS:
                s = c.speedup(v)
                per[v].append(s)
                row += f"{s:12.2f}"
            emit(row)
        emit("max:     " + "  ".join(
            f"{v} {max(per[v]):.2f}x" for v in VERSIONS))
        emit("geomean: " + "  ".join(
            f"{v} {geomean(per[v]):.2f}x" for v in VERSIONS))
        stats[mach] = per

    # Shape 1: DeepSparse and HPX beat libcsr on average on both nodes.
    for mach in ("broadwell", "epyc"):
        assert geomean(stats[mach]["deepsparse"]) > 1.1
        assert geomean(stats[mach]["hpx"]) > 1.1
    # Shape 2: manycore (EPYC) beats multicore — in the geomean for
    # DeepSparse, and in the best case for both (the paper notes "the
    # majority of which comes from the large matrices"; our small-
    # matrix EPYC cells undershoot, see EXPERIMENTS.md).
    assert geomean(stats["epyc"]["deepsparse"]) > \
        geomean(stats["broadwell"]["deepsparse"])
    for v in ("deepsparse", "hpx"):
        assert max(stats["epyc"][v]) > max(stats["broadwell"][v])
    # Shape 3: Regent trails the other AMTs and can lose to libcsr.
    for mach in ("broadwell", "epyc"):
        assert geomean(stats[mach]["regent"]) < \
            geomean(stats[mach]["hpx"])
    # Shape 4: the best speedups come from large matrices on EPYC.
    assert max(stats["epyc"]["hpx"]) == max(
        max(stats[m]["hpx"]) for m in stats)
