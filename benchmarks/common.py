"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment grid through :mod:`repro.analysis.experiment`, prints
the same rows/series the paper reports (with the paper's numbers next
to ours), asserts the qualitative *shape* (who wins, roughly by what
factor, where crossovers fall), and hands pytest-benchmark one timed
callable.

Environment:

* ``REPRO_FULL=1`` — run all 15 matrices instead of the representative
  default subset (slow).
* ``REPRO_ITERS`` — solver iterations per simulated run (default 2).
* ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE`` — on-disk result cache
  location / kill switch (see :mod:`repro.bench.cache`).  Figure runs
  share one store with ``python -m repro bench``; a warm cache turns a
  full figure regeneration into a few milliseconds of JSON reads.
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache

from repro.analysis.experiment import run_cell, run_version  # noqa: F401
from repro.analysis.metrics import SolverComparison
from repro.bench.cache import default_cache
from repro.bench.runner import Cell
from repro.matrices.suite import SUITE_ORDER

#: Representative subset: every sparsity family, small through large.
#: (Canonical tuple lives with the orchestrator; list kept for
#: backwards compatibility with callers that mutate/extend it.)
from repro.bench.runner import DEFAULT_MATRICES as _DEFAULT_MATRICES  # noqa: E402

DEFAULT_MATRICES = list(_DEFAULT_MATRICES)

#: Fast subset for the expensive sweeps (Figs. 7 and 14).
SWEEP_MATRICES = ["inline1", "Queen4147", "Nm7", "nlpkkt160"]

ITERATIONS = int(os.environ.get("REPRO_ITERS", "2"))

#: Rule-of-thumb block counts used for the headline comparisons
#: (§5.4: DeepSparse/HPX 32–63 on Broadwell, 64–127 on EPYC;
#: Regent 16–31; libcsb follows the AMT tiling).  Canonical values
#: live with the orchestrator so figures and ``repro bench`` agree.
from repro.bench.runner import (  # noqa: E402  (kept with its comment)
    DEFAULT_BLOCK_COUNT as BLOCK_COUNT,
    REGENT_BLOCK_COUNT,
)


def matrices():
    if os.environ.get("REPRO_FULL"):
        return list(SUITE_ORDER)
    return list(DEFAULT_MATRICES)


def emit(text: str = "") -> None:
    """Print past pytest's capture so the tee'd output keeps the rows."""
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


@lru_cache(maxsize=None)
def cached_version(machine, matrix, solver, version, block_count,
                   iterations=ITERATIONS, first_touch=True):
    """Memoized run: figures sharing cells don't re-simulate them.

    Two tiers.  The in-process LRU (unbounded: the whole experiment
    grid is a few thousand cells even under ``REPRO_FULL``, and each
    entry is a small summary or one RunResult) makes repeat queries
    within one pytest session free.  Behind it sits the on-disk
    :class:`~repro.bench.cache.ResultCache` shared with ``python -m
    repro bench``: a disk hit returns a
    :class:`~repro.sim.engine.RunResultSummary` — a drop-in for
    ``RunResult`` minus the per-task flow records (Gantt rendering
    degrades to a notice; every figure assertion reads aggregates that
    survive the round trip).  A cold cell simulates here, persists its
    summary, and returns the full ``RunResult``.
    """
    cache = default_cache()
    config = Cell(
        machine=machine, matrix=matrix, solver=solver, version=version,
        block_count=block_count, iterations=iterations,
        first_touch=first_touch,
    ).config()
    hit = cache.get(config)
    if hit is not None:
        return hit
    res = run_version(
        machine, matrix, solver, version,
        block_count=block_count, iterations=iterations,
        first_touch=first_touch,
    )
    cache.put(config, res.summary())
    return res


def cell(machine, matrix, solver, versions=None, iterations=ITERATIONS):
    """One evaluation cell at each version's rule-of-thumb granularity."""
    versions = versions or ["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"]
    bc = BLOCK_COUNT[machine]
    results = {}
    for v in versions:
        vbc = REGENT_BLOCK_COUNT[machine] if v == "regent" else bc
        results[v] = cached_version(machine, matrix, solver, v, vbc,
                                    iterations)
    if "libcsr" not in results:
        results["libcsr"] = cached_version(machine, matrix, solver,
                                           "libcsr", bc, iterations)
    return SolverComparison(matrix, solver, machine, results)


def geomean(vals):
    import math

    vals = [v for v in vals if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def banner(title: str) -> None:
    emit("")
    emit("=" * 78)
    emit(title)
    emit("=" * 78)
