"""Shared benchmark infrastructure.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment grid through :mod:`repro.analysis.experiment`, prints
the same rows/series the paper reports (with the paper's numbers next
to ours), asserts the qualitative *shape* (who wins, roughly by what
factor, where crossovers fall), and hands pytest-benchmark one timed
callable.

Environment:

* ``REPRO_FULL=1`` — run all 15 matrices instead of the representative
  default subset (slow).
* ``REPRO_ITERS`` — solver iterations per simulated run (default 2).
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache

from repro.analysis.experiment import run_cell, run_version  # noqa: F401
from repro.analysis.metrics import SolverComparison
from repro.matrices.suite import SUITE_ORDER

#: Representative subset: every sparsity family, small through large.
DEFAULT_MATRICES = [
    "inline1", "Flan_1565", "Queen4147", "Nm7",
    "nlpkkt160", "nlpkkt240", "twitter7", "webbase-2001",
]

#: Fast subset for the expensive sweeps (Figs. 7 and 14).
SWEEP_MATRICES = ["inline1", "Queen4147", "Nm7", "nlpkkt160"]

ITERATIONS = int(os.environ.get("REPRO_ITERS", "2"))

#: Rule-of-thumb block counts used for the headline comparisons
#: (§5.4: DeepSparse/HPX 32–63 on Broadwell, 64–127 on EPYC;
#: Regent 16–31; libcsb follows the AMT tiling).
BLOCK_COUNT = {"broadwell": 48, "epyc": 96}
#: Regent favours coarse grains (paper: 16-31); on the simulated EPYC
#: its 110 workers starve below ~96 blocks, so its best practical
#: granularity there is higher (deviation recorded in EXPERIMENTS.md).
REGENT_BLOCK_COUNT = {"broadwell": 24, "epyc": 96}


def matrices():
    if os.environ.get("REPRO_FULL"):
        return list(SUITE_ORDER)
    return list(DEFAULT_MATRICES)


def emit(text: str = "") -> None:
    """Print past pytest's capture so the tee'd output keeps the rows."""
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


@lru_cache(maxsize=4096)
def cached_version(machine, matrix, solver, version, block_count,
                   iterations=ITERATIONS, first_touch=True):
    """Memoized run: figures sharing cells don't re-simulate them."""
    return run_version(
        machine, matrix, solver, version,
        block_count=block_count, iterations=iterations,
        first_touch=first_touch,
    )


def cell(machine, matrix, solver, versions=None, iterations=ITERATIONS):
    """One evaluation cell at each version's rule-of-thumb granularity."""
    versions = versions or ["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"]
    bc = BLOCK_COUNT[machine]
    results = {}
    for v in versions:
        vbc = REGENT_BLOCK_COUNT[machine] if v == "regent" else bc
        results[v] = cached_version(machine, matrix, solver, v, vbc,
                                    iterations)
    if "libcsr" not in results:
        results["libcsr"] = cached_version(machine, matrix, solver,
                                           "libcsr", bc, iterations)
    return SolverComparison(matrix, solver, machine, results)


def geomean(vals):
    import math

    vals = [v for v in vals if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def banner(title: str) -> None:
    emit("")
    emit("=" * 78)
    emit(title)
    emit("=" * 78)
