"""Perf guard for the simulator hot path and the result cache.

Seven measurements, all recorded in a machine-readable
``BENCH_sim.json`` (schema 2) at the repo root so the performance
trajectory is tracked across PRs:

1. **charge microbench** — ``CostModel.charge`` throughput over a
   prepared paper-scale DAG (the innermost simulator operation).
2. **Fig. 9 Broadwell cold set** — the default 8-matrix × 5-version
   Lanczos grid, cold result cache, single process.  Round 1 runs
   against a *fresh* prep store (cold prep: builds census/DAG/plans
   and writes the artifacts through); rounds 2–3 clear every
   in-process memo and reload from the store (warm prep), so the
   committed JSON shows both the cold-prep wall time and the
   store-served one.  The committed ``SEED_REFERENCE`` is the wall
   time of the *pre-optimization* engine on the same loop (best of 3,
   measured on the same container before the hot-path work); the
   guard asserts we stay ≥ 1.8× under it and ≥ 1.4× under the PR 5
   best (the state before the SoA DAG core + prep store), and that
   all three rounds are bit-identical — loading a prep artifact must
   change nothing but the clock.  The ``prep_store`` JSON section
   records hit rate and cold vs warm seconds.
3. **EPYC 128-core cold cell** — one cold Fig. 9-style cell on the
   big machine (the manycore half of the paper), recorded with the
   charge-memo counters for that run.
4. **charge-memo cell** — a steady-state-disabled multi-iteration cell
   with the resident-state charge memo armed vs killed
   (``REPRO_NO_CHARGE_MEMO=1``).  The guard asserts the memo *hits*
   and that results are bit-identical; both wall times and the hit
   rate are recorded.  The honest finding (see DESIGN.md): replaying
   a charge memo hit costs about as much as the compiled walk it
   skips, so the memo is neutral-by-default and its value is the
   state-signature machinery, not wall-clock — no speedup floor here.
5. **steady-state fast path** — a Fig. 9-style cell at solver-realistic
   iteration counts must run ≥ 5× faster with the iteration-replay
   fast path than with ``REPRO_NO_STEADY_STATE=1`` full simulation
   (recorded; asserted at a noise-tolerant 3.5×), bit-identically.
6. **fault-sweep cell** — one seeded core-loss plan over BSP and the
   AMT runtimes: bit-identical on repeat, empty plan observationally
   free, and the recovery-latency separation (BSP stalls, AMT absorbs)
   recorded per version.
7. **warm-cache speedup** — the same set served from the on-disk
   result cache must be ≥ 10× faster and bit-identical.

Timing tests are inherently noisy on shared machines; each guard uses
best-of-N and conservative thresholds (the recorded numbers, not the
thresholds, are the tracking signal).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.common import emit

#: Wall seconds of the seed (pre-optimization) engine simulating the
#: Fig. 9 Broadwell cell set — best of 3 on this container, measured
#: from a pristine checkout immediately before the hot-path changes.
SEED_REFERENCE_SECONDS = 3.73

#: Same-container reference numbers committed by PR 3 (the state of
#: the hot path before this PR's compiled access plans), so the JSON
#: shows this PR's delta, not just the cumulative speedup over seed.
PR3_REFERENCE = {
    "fig9_broadwell_cold_seconds": 1.9721,
    "charges_per_second": 129910.88,
}

#: Same-container best-of-3 committed by PR 5 (compiled access plans +
#: charge memo, before the SoA DAG core and the prep store), the
#: baseline this PR's ≥ 1.4× floor is measured against.
PR5_REFERENCE = {
    "fig9_broadwell_cold_seconds": 2.0139,
}

BENCH_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sim.json",
)

FIG9_MATRICES = ["inline1", "Flan_1565", "Queen4147", "Nm7",
                 "nlpkkt160", "nlpkkt240", "twitter7", "webbase-2001"]
FIG9_VERSIONS = ["libcsr", "libcsb", "deepsparse", "hpx", "regent"]


def _record(section: str, payload: dict) -> None:
    """Merge one section into BENCH_sim.json (tests run independently)."""
    data = {"schema": 2, "seed_reference": {
        "fig9_broadwell_cold_seconds": SEED_REFERENCE_SECONDS,
        "methodology": "best of 3, single process, cold result cache",
    }, "pr3_reference": dict(PR3_REFERENCE)}
    if os.path.exists(BENCH_PATH):
        try:
            with open(BENCH_PATH, "r", encoding="utf-8") as f:
                data.update(json.load(f))
        except (ValueError, OSError):
            pass
    # A stale schema-1 file on disk must not win the merge.
    data["schema"] = 2
    data["pr3_reference"] = dict(PR3_REFERENCE)
    data[section] = payload
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def _clear_experiment_memos() -> None:
    """Reset the per-process census/trace/DAG/prep memos (true cold run)."""
    from repro.analysis import experiment

    experiment._census.cache_clear()
    experiment._trace.cache_clear()
    experiment._dag.cache_clear()
    experiment._prepped_dag.cache_clear()
    experiment._census_loaded.clear()


def _run_fig9_broadwell_cold():
    """One in-process-cold pass over the Fig. 9 Broadwell grid.

    Returns ``(seconds, summaries)`` — the summaries let the caller
    assert prep-store-served rounds are bit-identical to built ones.
    """
    from repro.analysis.experiment import run_version
    from repro.bench.runner import DEFAULT_BLOCK_COUNT, REGENT_BLOCK_COUNT

    _clear_experiment_memos()
    bc = DEFAULT_BLOCK_COUNT["broadwell"]
    rbc = REGENT_BLOCK_COUNT["broadwell"]
    results = []
    t0 = time.perf_counter()
    for matrix in FIG9_MATRICES:
        for version in FIG9_VERSIONS:
            results.append(run_version(
                "broadwell", matrix, "lanczos", version,
                block_count=rbc if version == "regent" else bc,
                iterations=2,
            ))
    dt = time.perf_counter() - t0
    # Summaries feed the bit-identity check, not the wall time: the
    # seed/PR3/PR5 references timed exactly this run_version loop.
    return dt, [r.summary().to_dict() for r in results]


# ----------------------------------------------------------------------
def test_charge_microbench(benchmark):
    """Throughput of the innermost pricing operation."""
    from repro.analysis.experiment import _dag
    from repro.machine.cache import CacheHierarchy
    from repro.machine.memory import MemoryModel
    from repro.machine.presets import get_machine
    from repro.matrices.suite import SUITE
    from repro.sim.cost import CostModel
    from repro.tuning.blocksize import block_size_for_count
    from repro.graph.builder import BuildOptions

    machine = get_machine("broadwell")
    bs = block_size_for_count(SUITE["Queen4147"].paper_rows, 48)
    dag = _dag("Queen4147", bs, "lanczos", 20,
               BuildOptions(skip_empty=True, spmm_mode="dependency"))
    cost = CostModel(machine, CacheHierarchy(machine),
                     MemoryModel(machine))
    # Paper-default configuration (Fig. 9 cells run 2 iterations): the
    # charge memo stays below its arming horizon, so this measures the
    # compiled bare walk the cold grids actually run.  The memo-armed
    # path has its own guard (test_charge_memo_cell).
    cost.prepare(dag, iterations=2)
    tasks = dag.tasks
    n_cores = machine.n_cores

    def charge_all():
        charge = cost.charge
        for i, t in enumerate(tasks):
            charge(t, i % n_cores)
        return len(tasks)

    n = benchmark(charge_all)
    per_sec = n / benchmark.stats.stats.mean
    emit(f"CostModel.charge: {len(tasks)} tasks, "
         f"{per_sec / 1e3:.1f}k charges/s")
    _record("charge_microbench", {
        "dag_tasks": len(tasks),
        "mean_seconds_per_pass": benchmark.stats.stats.mean,
        "charges_per_second": per_sec,
        "speedup_vs_pr3": per_sec / PR3_REFERENCE["charges_per_second"],
    })
    assert per_sec > 10_000  # sanity floor, ~30x below current speed


def test_fig9_broadwell_cold_set(benchmark, tmp_path, monkeypatch):
    """End-to-end guard: ≥ 1.8× under seed, ≥ 1.4× under the PR 5 best.

    Round 1 faces an empty prep store (cold prep: every census, DAG,
    and compiled plan is built and persisted); rounds 2–3 clear the
    in-process memos and are served from the store.  All rounds must
    be bit-identical — the prep store may only move time, never
    numbers.
    """
    from repro.bench.prep import default_prep_store

    monkeypatch.setenv("REPRO_PREP_DIR", str(tmp_path / "prep"))
    monkeypatch.delenv("REPRO_NO_PREP", raising=False)
    rounds, sums = [], []

    def one_round():
        dt, summaries = _run_fig9_broadwell_cold()
        rounds.append(dt)
        sums.append(summaries)
        return dt

    benchmark.pedantic(one_round, rounds=3, iterations=1)
    store = default_prep_store()
    st = store.stats()
    best = min(rounds)
    cold_prep_s = rounds[0]
    warm_prep_s = min(rounds[1:])
    identical = all(s == sums[0] for s in sums[1:])
    hit_rate = st["hits"] / max(1, st["hits"] + st["misses"])
    speedup = SEED_REFERENCE_SECONDS / best
    pr5_speedup = PR5_REFERENCE["fig9_broadwell_cold_seconds"] / best
    emit(f"Fig. 9 Broadwell cold set: best {best:.2f}s of {rounds} "
         f"(seed {SEED_REFERENCE_SECONDS:.2f}s, {speedup:.2f}x; "
         f"prep cold {cold_prep_s:.2f}s / warm {warm_prep_s:.2f}s, "
         f"hit rate {hit_rate:.0%})")
    _record("fig9_broadwell_cold", {
        "rounds_seconds": rounds,
        "best_seconds": best,
        "cold_prep_seconds": cold_prep_s,
        "seed_seconds": SEED_REFERENCE_SECONDS,
        "speedup_vs_seed": speedup,
        "pr3_best_seconds": PR3_REFERENCE["fig9_broadwell_cold_seconds"],
        "speedup_vs_pr3": (PR3_REFERENCE["fig9_broadwell_cold_seconds"]
                           / best),
        "pr5_best_seconds": PR5_REFERENCE["fig9_broadwell_cold_seconds"],
        "speedup_vs_pr5": pr5_speedup,
        "cells": len(FIG9_MATRICES) * len(FIG9_VERSIONS),
    })
    _record("prep_store", {
        "cold_seconds": cold_prep_s,
        "warm_seconds": warm_prep_s,
        "warm_speedup_vs_cold": cold_prep_s / max(warm_prep_s, 1e-9),
        "hits": st["hits"],
        "misses": st["misses"],
        "writes": st["writes"],
        "hit_rate": hit_rate,
        "bit_identical": identical,
    })
    assert identical, "prep-store-served rounds diverged from built ones"
    assert st["hits"] > 0 and st["writes"] > 0
    # Noise-tolerant hard floors; the committed JSON shows real ratios.
    assert speedup >= 1.8, (
        f"hot path regressed: {best:.2f}s vs seed "
        f"{SEED_REFERENCE_SECONDS:.2f}s ({speedup:.2f}x < 1.8x)"
    )
    assert pr5_speedup >= 1.4, (
        f"SoA + prep store under floor: {best:.2f}s vs PR 5 "
        f"{PR5_REFERENCE['fig9_broadwell_cold_seconds']:.2f}s "
        f"({pr5_speedup:.2f}x < 1.4x)"
    )


def test_epyc_cold_cell(monkeypatch):
    """One cold Fig. 9-style cell on the 128-core EPYC machine.

    The manycore half of the paper's evaluation: a large matrix on the
    2×64-core preset, cold memos, recorded with the charge-memo
    counters for the run (Fig. 9 cells run 2 iterations, below the
    memo's 3-iteration arming horizon, so they are expected to show
    zero memo traffic — the recorded counters pin that the memo adds
    no bookkeeping to the paper-default configuration).  The prep
    store is disabled so this stays a true everything-from-scratch
    build, the one configuration no other timing guard covers.
    """
    from repro.analysis.experiment import run_version

    monkeypatch.setenv("REPRO_NO_PREP", "1")
    from repro.bench.runner import DEFAULT_BLOCK_COUNT
    from repro.sim.cost import charge_memo_stats, reset_charge_memo_stats

    _clear_experiment_memos()
    reset_charge_memo_stats()
    t0 = time.perf_counter()
    res = run_version("epyc", "Queen4147", "lanczos", "deepsparse",
                      block_count=DEFAULT_BLOCK_COUNT["epyc"],
                      iterations=2)
    dt = time.perf_counter() - t0
    stats = charge_memo_stats()
    emit(f"EPYC cold cell: {dt:.2f}s on {res.n_cores} cores, "
         f"{res.counters.tasks_executed} tasks, memo {stats}")
    _record("epyc_cold_cell", {
        "cell": {"machine": "epyc", "matrix": "Queen4147",
                 "solver": "lanczos", "version": "deepsparse",
                 "block_count": DEFAULT_BLOCK_COUNT["epyc"],
                 "iterations": 2},
        "seconds": dt,
        "n_cores": res.n_cores,
        "tasks_executed": res.counters.tasks_executed,
        "memo_hits": stats["hits"],
        "memo_misses": stats["misses"],
    })
    assert res.n_cores == 128
    assert res.counters.tasks_executed > 0
    # Paper-default cells are below the memo arming horizon.
    assert stats == {"hits": 0, "misses": 0}


def test_charge_memo_cell(monkeypatch):
    """Resident-state charge memo: must hit, must change nothing.

    A steady-state-disabled multi-iteration cell keeps every iteration
    live, so warm-iteration cache states recur and the memo records
    (third consecutive sighting) and then replays.  The guard pins the
    two things this PR promises — the memo engages on recurring heavy
    states, and results are bit-identical with it on or killed — and
    records the honest wall-clock of both runs plus the hit rate.  No
    speedup floor: a replayed hit costs about as much as the compiled
    walk it skips (DESIGN.md, "what the memo is and is not worth").
    """
    from repro.analysis.experiment import run_version
    from repro.sim.cost import charge_memo_stats, reset_charge_memo_stats

    cell = dict(machine="broadwell", matrix="Queen4147", solver="lanczos",
                version="deepsparse", block_count=48, iterations=8)

    def one_run():
        return run_version(cell["machine"], cell["matrix"], cell["solver"],
                           cell["version"], block_count=cell["block_count"],
                           iterations=cell["iterations"])

    monkeypatch.setenv("REPRO_NO_STEADY_STATE", "1")
    # Warm the census/trace/DAG memos so both runs time simulation only.
    run_version(cell["machine"], cell["matrix"], cell["solver"],
                cell["version"], block_count=cell["block_count"],
                iterations=1)

    monkeypatch.delenv("REPRO_NO_CHARGE_MEMO", raising=False)
    reset_charge_memo_stats()
    t0 = time.perf_counter()
    on = one_run()
    on_s = time.perf_counter() - t0
    stats = charge_memo_stats()

    monkeypatch.setenv("REPRO_NO_CHARGE_MEMO", "1")
    reset_charge_memo_stats()
    t0 = time.perf_counter()
    off = one_run()
    off_s = time.perf_counter() - t0
    off_stats = charge_memo_stats()

    identical = on.summary().to_dict() == off.summary().to_dict()
    total = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / max(1, total)
    emit(f"charge memo: on {on_s:.2f}s / off {off_s:.2f}s, "
         f"{stats['hits']}/{total} hits ({hit_rate:.0%}), "
         f"bit-identical: {identical}")
    _record("charge_memo", {
        "cell": cell,
        "memo_on_seconds": on_s,
        "memo_off_seconds": off_s,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": hit_rate,
        "bit_identical": identical,
        "note": "no speedup floor by design: a replayed hit costs "
                "about as much as the compiled walk it skips; the "
                "wall-clock win at iteration granularity is the "
                "steady_state section",
    })
    assert identical
    assert stats["hits"] > 0
    # Kill-switch really kills: no memo traffic at all when disabled.
    assert off_stats == {"hits": 0, "misses": 0}


def test_steady_state_speedup(monkeypatch):
    """Multi-iteration fast path: ≥ 5× on a Fig. 9-style cell (recorded;
    the hard floor is a noise-tolerant 3.5×), bit-identical results.

    Iterative solver benchmarks reuse one DAG for tens of iterations;
    once the engine detects the machine/scheduler state fixed point it
    replays the iteration tape instead of re-simulating
    (``repro.sim.engine``, DESIGN.md "Steady-state iteration fast
    path").  ``REPRO_NO_STEADY_STATE=1`` is the kill-switch and the
    full-simulation baseline here.
    """
    from repro.analysis.experiment import run_version

    cell = dict(machine="broadwell", matrix="Queen4147", solver="lanczos",
                version="deepsparse", block_count=48, iterations=64)

    def one_run():
        return run_version(cell["machine"], cell["matrix"], cell["solver"],
                           cell["version"], block_count=cell["block_count"],
                           iterations=cell["iterations"])

    # Warm the census/trace/DAG memos so both paths time simulation only.
    run_version(cell["machine"], cell["matrix"], cell["solver"],
                cell["version"], block_count=cell["block_count"],
                iterations=1)

    def best_of(n):
        best = None
        res = None
        for _ in range(n):
            t0 = time.perf_counter()
            res = one_run()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        return best, res

    monkeypatch.setenv("REPRO_NO_STEADY_STATE", "1")
    full_s, full = best_of(2)
    monkeypatch.delenv("REPRO_NO_STEADY_STATE")
    fast_s, fast = best_of(2)

    assert full.steady_state_at is None
    assert fast.steady_state_at is not None
    fd = full.summary().to_dict()
    qd = fast.summary().to_dict()
    fd.pop("steady_state_at")
    qd.pop("steady_state_at")
    identical = fd == qd
    speedup = full_s / max(fast_s, 1e-9)
    emit(f"steady state: full {full_s:.3f}s -> fast {fast_s:.3f}s "
         f"({speedup:.2f}x), detected at iteration "
         f"{fast.steady_state_at}, bit-identical: {identical}")
    _record("steady_state", {
        "cell": cell,
        "full_sim_seconds": full_s,
        "fast_path_seconds": fast_s,
        "speedup": speedup,
        "steady_state_at": fast.steady_state_at,
        "bit_identical": identical,
    })
    assert identical
    assert speedup >= 3.5


def test_fault_sweep_cell():
    """Deterministic fault injection, recorded for the trajectory.

    One seeded core-loss plan over the BSP baseline and the two AMT
    runtimes pins the three promises of the fault layer: a repeated run
    is bit-identical (the plan is the only randomness), an *empty* plan
    is observationally free (healthy numbers untouched), and the
    per-runtime recovery policies separate — BSP's barrier absorbs the
    dead lane's share serially while work stealing / queue
    redistribution barely notice.
    """
    from repro.analysis.experiment import run_version
    from repro.faults import FaultPlan

    plan = FaultPlan.from_spec("core-loss", seed=0)
    versions = ("libcsb", "deepsparse", "hpx")

    def cell(version, faults=None):
        return run_version("broadwell", "inline1", "lanczos", version,
                           block_count=48, iterations=8, faults=faults)

    t0 = time.perf_counter()
    faulted = {v: cell(v, plan) for v in versions}
    dt = time.perf_counter() - t0
    healthy = {v: cell(v) for v in versions}
    repeat = cell("libcsb", plan)
    deterministic = (repeat.summary().to_dict()
                     == faulted["libcsb"].summary().to_dict())
    empty_free = (cell("libcsb", FaultPlan.empty()).summary().to_dict()
                  == healthy["libcsb"].summary().to_dict())

    per_version = {}
    for v in versions:
        fr = faulted[v].fault_report
        per_version[v] = {
            "slowdown": faulted[v].total_time / healthy[v].total_time,
            "recovery_latency_us": (None if fr.recovery_latency is None
                                    else fr.recovery_latency * 1e6),
            "stall_ms": fr.stall_time * 1e3,
            "policy": fr.policy,
        }
    lat = {v: per_version[v]["recovery_latency_us"] for v in versions}
    emit(f"fault sweep (core-loss seed 0): {dt:.2f}s, latency µs "
         + ", ".join(f"{v} {lat[v]:.0f}" for v in versions)
         + f", deterministic: {deterministic}")
    _record("fault_sweep", {
        "cell": {"machine": "broadwell", "matrix": "inline1",
                 "solver": "lanczos", "block_count": 48,
                 "iterations": 8},
        "spec": "core-loss",
        "seed": 0,
        "seconds": dt,
        "bit_identical_repeat": deterministic,
        "empty_plan_observationally_free": empty_free,
        "versions": per_version,
    })
    assert deterministic
    assert empty_free
    # The headline separation: BSP stalls, the AMT runtimes absorb.
    assert lat["libcsb"] > 5 * abs(lat["deepsparse"])
    assert lat["libcsb"] > 5 * abs(lat["hpx"])
    assert per_version["libcsb"]["stall_ms"] > 0
    assert per_version["deepsparse"]["stall_ms"] == 0
    assert per_version["hpx"]["stall_ms"] == 0


def test_warm_cache_speedup(tmp_path):
    """Disk-cache replay: ≥ 10× faster, bit-identical summaries."""
    from repro.bench.cache import ResultCache
    from repro.bench.runner import ExperimentRunner, expand_grid

    cells = expand_grid(machines=["broadwell"], matrices=FIG9_MATRICES,
                        solvers=["lanczos"], versions=FIG9_VERSIONS,
                        iterations=2)
    cache_root = str(tmp_path / "cache")

    _clear_experiment_memos()
    cold_runner = ExperimentRunner(cache=ResultCache(root=cache_root))
    t0 = time.perf_counter()
    cold = cold_runner.run_cells(cells)
    cold_s = time.perf_counter() - t0

    warm_runner = ExperimentRunner(cache=ResultCache(root=cache_root))
    t0 = time.perf_counter()
    warm = warm_runner.run_cells(cells)
    warm_s = time.perf_counter() - t0

    assert all(not r["cached"] for r in cold_runner.report)
    assert all(r["cached"] for r in warm_runner.report)
    identical = [a.to_dict() for a in warm] == [
        b.summary().to_dict() for b in cold]
    speedup = cold_s / max(warm_s, 1e-9)
    emit(f"warm cache: cold {cold_s:.2f}s -> warm {warm_s * 1e3:.0f}ms "
         f"({speedup:.0f}x), bit-identical: {identical}")
    _record("warm_cache", {
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "speedup": speedup,
        "bit_identical": identical,
    })
    assert identical
    assert speedup >= 10.0
