"""Fig. 8: L1/L2 misses of the Lanczos versions on EPYC (vs libcsr).

Paper: "No framework achieves consistent reduction in cache misses on
L1 level.  Moreover, the improvements on L2 level can be attributed to
the matrices being stored in the CSB format since libcsb, the other BSP
version, yields similar improvements."  (L3 unavailable on EPYC.)
"""

from benchmarks.common import banner, cell, emit, geomean, matrices

VERSIONS = ["libcsb", "deepsparse", "hpx", "regent"]


def run_fig8():
    return {m: cell("epyc", m, "lanczos") for m in matrices()}


def test_fig8_lanczos_cache(benchmark):
    cells = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    banner("Fig. 8: Lanczos cache misses on EPYC, k-times-fewer than "
           "libcsr (paper: no consistent L1 win; L2 win is CSB's)")
    emit(f"{'matrix':20s}" + "".join(
        f"{v + ' L1':>12s}{v + ' L2':>12s}" for v in VERSIONS))
    l1 = {v: [] for v in VERSIONS}
    l2 = {v: [] for v in VERSIONS}
    for mat, c in cells.items():
        row = f"{mat:20s}"
        for v in VERSIONS:
            r1 = c.miss_reduction(v, 1)
            r2 = c.miss_reduction(v, 2)
            l1[v].append(r1)
            l2[v].append(r2)
            row += f"{r1:12.2f}{r2:12.2f}"
        emit(row)
    emit("geomean: " + "  ".join(
        f"{v}: L1 {geomean(l1[v]):.2f} L2 {geomean(l2[v]):.2f}"
        for v in VERSIONS))
    # Shape 1: no consistent L1 reduction for any framework.
    for v in VERSIONS:
        assert geomean(l1[v]) < 1.5
    # Shape 2: the AMT L2 improvements are matched by libcsb (storage
    # effect, not scheduling): libcsb within 25% of DeepSparse's L2.
    g_csb = geomean(l2["libcsb"])
    g_ds = geomean(l2["deepsparse"])
    assert g_csb > 0.75 * g_ds
    # Shape 3: CSB versions do reduce L2 misses somewhere.
    assert max(l2["deepsparse"]) > 1.2
