"""Table 1: the matrix suite — paper dimensions vs scaled instances.

Regenerates the table's rows (name, #rows, #non-zeros) for the paper's
full-scale block censuses and for the laptop-scale synthetic doubles,
verifying relative sizes, symmetry handling and family structure.
"""

from repro.matrices.census import census_for
from repro.matrices.suite import SUITE, SUITE_ORDER
from repro.matrices import load_matrix, is_symmetric

from benchmarks.common import banner, emit


def build_table1():
    rows = []
    for name in SUITE_ORDER:
        spec = SUITE[name]
        cen = census_for(spec, max(1, -(-spec.paper_rows // 64)))
        scaled = load_matrix(name, scale=16384)
        rows.append((spec, cen, scaled))
    return rows


def test_table1(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    banner("Table 1: Matrices used in our evaluation "
           "(paper scale = census, repro scale = synthetic double)")
    emit(f"{'Matrix':20s}{'#Rows':>13s}{'#Non-zeros':>15s}"
         f"{'census nnz':>15s}{'scaled rows':>12s}{'scaled nnz':>12s}")
    for spec, cen, scaled in rows:
        emit(f"{spec.name:20s}{spec.paper_rows:13,d}{spec.paper_nnz:15,d}"
             f"{cen.nnz:15,d}{scaled.shape[0]:12,d}{scaled.nnz:12,d}")
        # census within 30 % of Table 1, scaled instance symmetric
        assert 0.7 < cen.nnz / spec.paper_nnz < 1.3
        assert is_symmetric(scaled)
    # Table 1 ordering by rows is preserved
    sizes = [spec.paper_rows for spec, _c, _s in rows]
    assert sizes == sorted(sizes)
