"""Fig. 13: execution flow graph of nlpkkt240 LOBPCG (2 iterations).

Paper: the XTY kernel accounts for the main timing difference — its
data-parallel execution hurts the BSP model, which task-parallel
execution avoids by reusing the involved blocks in kernels such as XY
or SpMM after the XTY tasks.  HPX "places less value on prioritization
of the tasks that are launched earlier", producing a more shuffled
graph, yet lands at a similar time.
"""

from repro.analysis.gantt import render_flow

from benchmarks.common import BLOCK_COUNT, banner, cached_version, emit

MATRIX = "nlpkkt240"


def run_fig13():
    out = {}
    for mach in ("broadwell", "epyc"):
        for v in ("libcsr", "deepsparse", "hpx"):
            out[(mach, v)] = cached_version(
                mach, MATRIX, "lobpcg", v, BLOCK_COUNT[mach],
                iterations=2,
            )
    return out


def test_fig13_lobpcg_flow(benchmark):
    out = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    banner(f"Fig. 13: execution flow graph, {MATRIX} LOBPCG, "
           "2 iterations per version/architecture")
    for (mach, v), res in out.items():
        emit("")
        emit(render_flow(res, width=88, max_cores=8))
    for mach in ("broadwell", "epyc"):
        bsp = out[(mach, "libcsr")]
        ds = out[(mach, "deepsparse")]
        hpx = out[(mach, "hpx")]
        # Shape 1: pipelined execution — kernel envelopes overlap far
        # more in the AMT versions than under BSP phases.
        assert ds.flow.kernel_overlap_fraction() > 0.3
        assert hpx.flow.kernel_overlap_fraction() > 0.3
        # Shape 2: XTY is where BSP loses — AMT spends less wall time
        # inside XTY relative to the baseline.
        bsp_xty = bsp.counters.kernel_time.get("XTY", 0.0)
        ds_xty = ds.counters.kernel_time.get("XTY", 0.0)
        assert ds_xty < bsp_xty * 1.5
        # Shape 3: DeepSparse and HPX land close to each other
        # (paper: ≈3.0 s for both on this matrix).
        ratio = ds.time_per_iteration / hpx.time_per_iteration
        assert 0.6 < ratio < 1.7
