"""Fig. 5: first-touch placement — DeepSparse Lanczos on EPYC.

Paper: "this optimization is vital for good performance (up to 2.5
fold) for the small and mid-sized matrices on the EPYC system."
"""

from benchmarks.common import (
    BLOCK_COUNT,
    ITERATIONS,
    banner,
    cached_version,
    emit,
    matrices,
)

SMALL_MID = ["inline1", "Flan_1565", "Queen4147", "Nm7", "nlpkkt160"]


def run_fig5():
    out = {}
    for mat in SMALL_MID:
        on = cached_version("epyc", mat, "lanczos", "deepsparse",
                            BLOCK_COUNT["epyc"], ITERATIONS,
                            first_touch=True)
        off = cached_version("epyc", mat, "lanczos", "deepsparse",
                             BLOCK_COUNT["epyc"], ITERATIONS,
                             first_touch=False)
        out[mat] = (on.time_per_iteration, off.time_per_iteration)
    return out


def test_fig5_first_touch(benchmark):
    out = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    banner("Fig. 5: DeepSparse Lanczos on EPYC, first-touch on/off "
           "(paper: up to 2.5x on small/mid matrices)")
    emit(f"{'matrix':20s}{'with (ms)':>12s}{'without (ms)':>14s}"
         f"{'gain':>8s}")
    gains = []
    for mat, (t_on, t_off) in out.items():
        gain = t_off / t_on
        gains.append(gain)
        emit(f"{mat:20s}{t_on * 1e3:12.2f}{t_off * 1e3:14.2f}{gain:8.2f}")
    # Shape: first-touch always helps, and exceeds 2x somewhere.
    assert all(g > 1.2 for g in gains)
    assert max(gains) > 2.0
    assert max(gains) < 4.0  # "up to 2.5 fold", not an order of magnitude
