"""Fig. 12: LOBPCG speedups over libcsr, Broadwell and EPYC.

Paper ranges — Broadwell: DeepSparse 1.8–3.0×, HPX 1.5–4.4×, Regent
0.8–1.9× (slowdowns on a few smaller matrices).  EPYC: DeepSparse
1.2–5.5×, HPX 1.7–7.5×, Regent 0.8–2.3× (degradation again on the
smaller matrices).
"""

from benchmarks.common import banner, cell, emit, geomean, matrices

VERSIONS = ["libcsb", "deepsparse", "hpx", "regent"]
PAPER_RANGE = {
    "broadwell": {"deepsparse": (1.8, 3.0), "hpx": (1.5, 4.4),
                  "regent": (0.8, 1.9)},
    "epyc": {"deepsparse": (1.2, 5.5), "hpx": (1.7, 7.5),
             "regent": (0.8, 2.3)},
}


def run_fig12():
    return {
        mach: {m: cell(mach, m, "lobpcg") for m in matrices()}
        for mach in ("broadwell", "epyc")
    }


def test_fig12_lobpcg_speedup(benchmark):
    data = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    stats = {}
    for mach, cells in data.items():
        banner(f"Fig. 12 ({mach}): LOBPCG speedup over libcsr "
               f"(paper ranges: {PAPER_RANGE[mach]})")
        emit(f"{'matrix':20s}" + "".join(f"{v:>12s}" for v in VERSIONS))
        per = {v: [] for v in VERSIONS}
        for mat, c in cells.items():
            row = f"{mat:20s}"
            for v in VERSIONS:
                s = c.speedup(v)
                per[v].append(s)
                row += f"{s:12.2f}"
            emit(row)
        emit("range:   " + "  ".join(
            f"{v} {min(per[v]):.2f}-{max(per[v]):.2f}x" for v in VERSIONS))
        stats[mach] = per

    for mach in ("broadwell", "epyc"):
        per = stats[mach]
        # Shape 1: DeepSparse and HPX beat libcsr on average.
        assert geomean(per["deepsparse"]) > 1.1
        assert geomean(per["hpx"]) > 1.1
        # Shape 2: Regent is the weakest AMT and dips below 1 somewhere
        # (its paper range starts at 0.8x).
        assert geomean(per["regent"]) < max(
            geomean(per["deepsparse"]), geomean(per["hpx"]))
        assert min(per["regent"]) < 1.3
    # Shape 3: DeepSparse and HPX improve moving to the manycore node.
    for v in ("deepsparse", "hpx"):
        assert max(stats["epyc"][v]) > max(stats["broadwell"][v]) * 0.9
