"""Ablation: cache-capacity sensitivity of the AMT advantage.

DESIGN.md calls out the machine model's central role: the AMT gains on
LOBPCG hinge on chunks surviving in the LLC between producer and
consumer tasks.  Shrinking the L3 should erode the DeepSparse-vs-libcsb
gap; growing it should not hurt.
"""

import dataclasses

from repro.analysis.experiment import _trace
from repro.machine.presets import broadwell
from repro.matrices.suite import SUITE
from repro.runtime import BSPRuntime, DeepSparseRuntime
from repro.tuning.blocksize import block_size_for_count

from benchmarks.common import ITERATIONS, banner, emit

MATRIX = "Queen4147"
L3_SCALES = [0.25, 1.0, 4.0]


def run_ablation():
    spec = SUITE[MATRIX]
    bs = block_size_for_count(spec.paper_rows, 48)
    cen, calls, chunked, small = _trace(MATRIX, bs, "lobpcg", 8)
    out = {}
    for scale in L3_SCALES:
        mach = dataclasses.replace(
            broadwell(), l3_size=int(broadwell().l3_size * scale))
        ds = DeepSparseRuntime(mach).run(cen, calls, chunked, small,
                                         iterations=ITERATIONS)
        csb = BSPRuntime(mach, "libcsb").run(cen, calls, chunked, small,
                                             iterations=ITERATIONS)
        out[scale] = (ds, csb)
    return out


def test_ablation_cache(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner(f"Ablation: L3 capacity sweep, {MATRIX} LOBPCG on Broadwell "
           "(AMT advantage needs LLC room for pipelined reuse)")
    emit(f"{'L3 scale':>9s}{'deepsparse (ms)':>17s}{'libcsb (ms)':>13s}"
         f"{'advantage':>11s}")
    adv = {}
    for scale, (ds, csb) in out.items():
        a = csb.time_per_iteration / ds.time_per_iteration
        adv[scale] = a
        emit(f"{scale:9.2f}{ds.time_per_iteration * 1e3:17.2f}"
             f"{csb.time_per_iteration * 1e3:13.2f}{a:11.2f}")
    # Shape: the advantage does not shrink when the LLC grows.
    assert adv[4.0] >= adv[0.25] * 0.9
    # DeepSparse keeps a lead at the nominal capacity.
    assert adv[1.0] > 1.0
