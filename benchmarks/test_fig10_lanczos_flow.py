"""Fig. 10: execution flow graph of nlpkkt240 Lanczos (3 iterations).

Paper: the manycore node "provides a greater level of parallelism for
the task parallel systems to fill the gap resulting from load
imbalances of SpMV with the succeeding tasks", so each iteration ends
soon after the last SpMV task on EPYC.
"""

from repro.analysis.gantt import render_flow

from benchmarks.common import (
    BLOCK_COUNT,
    banner,
    cached_version,
    emit,
)

MATRIX = "nlpkkt240"
VERSIONS = ["libcsr", "deepsparse", "hpx"]


def run_fig10():
    out = {}
    for mach in ("broadwell", "epyc"):
        for v in VERSIONS:
            out[(mach, v)] = cached_version(
                mach, MATRIX, "lanczos", v, BLOCK_COUNT[mach],
                iterations=3,
            )
    return out


def test_fig10_lanczos_flow(benchmark):
    out = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    banner(f"Fig. 10: execution flow graph, {MATRIX} Lanczos, "
           "3 iterations per version/architecture")
    for (mach, v), res in out.items():
        emit("")
        emit(render_flow(res, width=88, max_cores=8))
        emit(f"iteration spans: "
             + ", ".join(f"[{a * 1e3:.1f}, {b * 1e3:.1f}] ms"
                         for a, b in
                         sorted(res.flow.iteration_spans().values())))
    # Shape: the AMT versions pipeline — tasks of different kernels
    # overlap in time (the barriered baseline cannot) — and the gap-
    # filling pays: per-iteration time is no worse than the baseline.
    # (Raw utilization is not comparable across versions: the baseline
    # is busier only because its CSR gathers create *more work*.)
    for mach in ("broadwell", "epyc"):
        bsp = out[(mach, "libcsr")]
        for v in ("deepsparse", "hpx"):
            amt = out[(mach, v)]
            assert amt.flow.kernel_overlap_fraction() > 0.3
            assert amt.time_per_iteration <= bsp.time_per_iteration * 1.05
    # Shape: "each iteration is completed not long after the execution
    # of the last SpMV task on EPYC" — the AMT advantage on this matrix
    # does not shrink moving to the manycore node.
    def adv(mach):
        return (out[(mach, "libcsr")].time_per_iteration
                / out[(mach, "hpx")].time_per_iteration)

    assert adv("epyc") > 0.8 * adv("broadwell")
