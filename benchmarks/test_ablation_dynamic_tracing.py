"""Ablation: Regent dynamic tracing (§5.1 "Other Attempts").

Paper: dynamic tracing "relies on capturing the task graph in the first
iteration and replaying it for subsequent iterations through
memoization … However, this last attempt did not yield any significant
performance improvement."  The bench shows why: at Regent's preferred
coarse granularity the analysis pipeline overlaps execution, so
memoizing it buys little — while at fine granularity (analysis-bound)
tracing recovers a real fraction.
"""

from repro.analysis.experiment import run_version

from benchmarks.common import ITERATIONS, banner, emit

MATRIX = "nlpkkt160"


def run_ablation():
    out = {}
    for bc in (24, 96, 384):
        plain = run_version("broadwell", MATRIX, "lobpcg", "regent",
                            block_count=bc, iterations=3)
        traced = run_version("broadwell", MATRIX, "lobpcg", "regent",
                             block_count=bc, iterations=3,
                             dynamic_tracing=True)
        out[bc] = (plain, traced)
    return out


def test_ablation_dynamic_tracing(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner(f"Ablation: Regent dynamic tracing, {MATRIX} LOBPCG on "
           "Broadwell (paper: no significant improvement at tuned "
           "granularity)")
    emit(f"{'block count':>12s}{'plain (ms)':>12s}{'traced (ms)':>13s}"
         f"{'gain':>7s}")
    gains = {}
    for bc, (plain, traced) in out.items():
        g = plain.time_per_iteration / traced.time_per_iteration
        gains[bc] = g
        emit(f"{bc:12d}{plain.time_per_iteration * 1e3:12.2f}"
             f"{traced.time_per_iteration * 1e3:13.2f}{g:7.2f}")
    # Shape 1: the paper's finding — at the coarse tuned granularity
    # tracing is a wash (within a few percent).
    assert 0.98 <= gains[24] <= 1.10
    # Shape 2: tracing never hurts, and helps most where the analysis
    # pipeline binds (fine granularity).
    assert all(g >= 0.98 for g in gains.values())
    assert gains[384] >= gains[24]
