"""§5/abstract headline claims, aggregated across the evaluation grid.

Paper: "these frameworks achieve up to 13.7× fewer cache misses over an
efficient BSP implementation across L1, L2 and L3 cache layers.  They
also obtain up to 9.9× improvement in execution time" — 9.9× being
HPX Lanczos on EPYC, 7.5× HPX LOBPCG on EPYC.

The simulated substrate compresses the extremes (DESIGN.md §5), so the
assertions here pin the *structure* of the headline: the best speedup
belongs to an AMT framework running Lanczos-or-LOBPCG on EPYC, HPX or
DeepSparse holds the crown, and the best cache reduction comes from
LOBPCG.
"""

from benchmarks.common import banner, cell, emit, matrices

SOLVERS = ("lanczos", "lobpcg")
MACHINES = ("broadwell", "epyc")
AMTS = ("deepsparse", "hpx", "regent")


def run_headline():
    grid = {}
    for mach in MACHINES:
        for solver in SOLVERS:
            for mat in matrices():
                grid[(mach, solver, mat)] = cell(mach, mat, solver)
    return grid


def test_headline_claims(benchmark):
    grid = benchmark.pedantic(run_headline, rounds=1, iterations=1)
    best_speed = (None, 0.0)
    best_miss = (None, 0.0)
    for key, c in grid.items():
        for v in AMTS:
            s = c.speedup(v)
            if s > best_speed[1]:
                best_speed = ((key, v), s)
            for level in (1, 2, 3):
                r = c.miss_reduction(v, level)
                if r > best_miss[1]:
                    best_miss = ((key, v, level), r)
    banner("Headline claims (paper: up to 9.9x time, 13.7x misses)")
    (key, v), s = best_speed
    emit(f"best speedup: {s:.2f}x — {v} {key[1]} on {key[0]} ({key[2]})")
    (key, v, level), r = best_miss
    emit(f"best miss reduction: {r:.2f}x fewer L{level} misses — "
         f"{v} {key[1]} on {key[0]} ({key[2]})")

    # The crown belongs to DeepSparse or HPX, on EPYC.
    (skey, sv), sval = best_speed
    assert sv in ("deepsparse", "hpx")
    assert skey[0] == "epyc"
    assert sval > 1.5
    # A meaningful cache-miss reduction exists somewhere in the grid.
    (_mkey, _mv, _lvl), mval = best_miss
    assert mval > 1.5
