"""Fig. 6: skipping empty tasks — HPX Lanczos on Broadwell.

Paper: "skipping such tasks may speed up the execution time by 30% on
average, albeit not as effective on some matrices", the flat cases
being those whose optimal block size yields few empty blocks.
"""

from repro.analysis.experiment import run_version
from repro.graph.builder import BuildOptions

from benchmarks.common import ITERATIONS, banner, emit, geomean, matrices

#: Finer-than-optimal tiling exaggerates the empty-block census the
#: way the paper's per-matrix optimal sizes do for sparse patterns.
BLOCK_COUNT = 192


def run_fig6():
    out = {}
    for mat in matrices():
        skip = run_version(
            "broadwell", mat, "lanczos", "hpx", block_count=BLOCK_COUNT,
            iterations=ITERATIONS,
            options=BuildOptions(skip_empty=True),
        )
        spawn = run_version(
            "broadwell", mat, "lanczos", "hpx", block_count=BLOCK_COUNT,
            iterations=ITERATIONS,
            options=BuildOptions(skip_empty=False),
        )
        out[mat] = (skip, spawn)
    return out


def test_fig6_skip_empty(benchmark):
    out = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    banner("Fig. 6: HPX Lanczos on Broadwell, skipping empty tasks "
           "(paper: ~30% mean gain, flat where few blocks are empty)")
    emit(f"{'matrix':20s}{'skip (ms)':>11s}{'spawn (ms)':>12s}"
         f"{'gain':>7s}{'empty tasks':>13s}")
    gains = []
    for mat, (skip, spawn) in out.items():
        gain = spawn.time_per_iteration / skip.time_per_iteration
        extra = (spawn.n_tasks_per_iteration - skip.n_tasks_per_iteration)
        gains.append((gain, extra))
        emit(f"{mat:20s}{skip.time_per_iteration * 1e3:11.2f}"
             f"{spawn.time_per_iteration * 1e3:12.2f}{gain:7.2f}"
             f"{extra:13,d}")
    emit(f"mean gain: {geomean([g for g, _ in gains]):.2f}x")
    # Shape: ~never hurts beyond scheduling noise; mean gain in the
    # tens of percent; biggest wins where many blocks are empty; flat
    # on the matrices whose tiling leaves few empties (paper: "not as
    # effective on some matrices").
    assert all(g >= 0.95 for g, _ in gains)
    assert geomean([g for g, _ in gains]) > 1.08
    helped = [g for g, extra in gains if extra > 30_000]
    assert helped and max(helped) > 1.3
