"""Fig. 14: performance profiles of the six block-count buckets.

Paper (§5.4): optimal block counts always land in 8–511.  DeepSparse
prefers 32–63 on Broadwell and 64–127 on EPYC; HPX prefers 64–127 on
both; Regent prefers 16–31 everywhere, with the three finest buckets at
the bottom — "going beyond 64 block count can cause 5×-10× slowdowns"
for Regent.
"""

from repro.tuning import (
    BLOCK_COUNT_BUCKETS,
    performance_profiles,
)

from benchmarks.common import SWEEP_MATRICES, banner, cached_version, emit

RUNTIMES = ["deepsparse", "hpx", "regent"]
TAUS = [1.0, 1.1, 1.25, 1.5, 2.0]


def run_fig14():
    times = {}
    for mach in ("broadwell", "epyc"):
        for rt in RUNTIMES:
            per_matrix = {}
            for mat in SWEEP_MATRICES:
                per_bucket = {}
                for lo, hi in BLOCK_COUNT_BUCKETS:
                    mid = (lo + hi) // 2
                    res = cached_version(mach, mat, "lobpcg", rt,
                                         block_count=mid, iterations=1)
                    per_bucket[(lo, hi)] = res.time_per_iteration
                per_matrix[mat] = per_bucket
            times[(mach, rt)] = per_matrix
    return times


def test_fig14_block_profiles(benchmark):
    times = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    winners = {}
    for (mach, rt), per_matrix in times.items():
        profs = performance_profiles(per_matrix)
        banner(f"Fig. 14 ({rt} on {mach}): performance profile of "
               "block-count buckets (fraction within tau of best)")
        emit(f"{'bucket':>10s}" + "".join(f"  tau={t:<5.2f}" for t in TAUS)
             + f"{'area':>8s}")
        ranked = sorted(profs.values(), key=lambda p: -p.area())
        for p in ranked:
            lo, hi = p.bucket
            emit(f"{f'{lo}-{hi}':>10s}" + "".join(
                f"  {p.value_at(t):8.2f}" for t in TAUS)
                 + f"{p.area():8.2f}")
        winners[(mach, rt)] = ranked[0].bucket
        emit(f"best bucket: {ranked[0].bucket}")

    # Shape 1: the paper's actual heuristic claim — its rule-of-thumb
    # bucket is robust: within ~1.25x of the best bucket on (almost)
    # every instance ("always within 1.15x the best option" for
    # DeepSparse's 32-63 on Broadwell).  The *identity* of the winning
    # bucket shifts one step finer in our model (see EXPERIMENTS.md);
    # the robustness of the mid-granularity zone is what we pin.
    from repro.tuning import recommend_block_count

    for rt in ("deepsparse", "hpx"):
        for mach in ("broadwell", "epyc"):
            profs = performance_profiles(times[(mach, rt)])
            rule = recommend_block_count(rt, mach)
            assert profs[rule].value_at(2.0) >= 0.5, (rt, mach, rule)
    # Coarse extreme is never the winner for DeepSparse/HPX.
    for rt in ("deepsparse", "hpx"):
        for mach in ("broadwell", "epyc"):
            assert winners[(mach, rt)] != (8, 15)

    # Shape 2: Regent degrades sharply at fine granularity (paper:
    # "going beyond 64 block count can cause 5x-10x slowdowns") — the
    # finest bucket is much slower than its best bucket somewhere.
    worst_ratio = 1.0
    for mach in ("broadwell", "epyc"):
        for mat, per_bucket in times[(mach, "regent")].items():
            best = min(per_bucket.values())
            worst_ratio = max(worst_ratio, per_bucket[(256, 511)] / best)
    assert worst_ratio > 2.0
