"""Ablation: scheduling policy swap on the identical DAG.

§5's premise — "all runtimes are executing the same DAG … their
performance differences are due to the different scheduling
algorithms" — tested directly: one DAG, four executors, plus the
HPX-specific knobs (shuffle window).
"""

from repro.analysis.experiment import run_version

from benchmarks.common import BLOCK_COUNT, ITERATIONS, banner, emit

MATRIX = "nlpkkt160"


def run_ablation():
    out = {}
    for policy in ("libcsb", "deepsparse", "hpx", "regent"):
        out[policy] = run_version("epyc", MATRIX, "lobpcg", policy,
                                  block_count=BLOCK_COUNT["epyc"],
                                  iterations=ITERATIONS)
    # HPX with strict front-of-queue picking (no shuffle)
    out["hpx-strict"] = run_version(
        "epyc", MATRIX, "lobpcg", "hpx",
        block_count=BLOCK_COUNT["epyc"], iterations=ITERATIONS,
        shuffle_window=1,
    )
    return out


def test_ablation_schedulers(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner(f"Ablation: same LOBPCG DAG ({MATRIX}, EPYC), different "
           "scheduling policies")
    emit(f"{'policy':14s}{'t/iter (ms)':>13s}{'L3 misses (M)':>15s}"
         f"{'overhead (ms)':>15s}")
    for policy, res in out.items():
        emit(f"{policy:14s}{res.time_per_iteration * 1e3:13.2f}"
             f"{res.counters.l3_misses / 1e6:15.1f}"
             f"{res.counters.overhead_time * 1e3:15.2f}")
    # Same DAG: identical task counts everywhere.
    counts = {r.n_tasks_per_iteration for r in out.values()}
    assert len(counts) == 1
    # Policy alone separates the versions.
    assert out["deepsparse"].time_per_iteration < \
        out["libcsb"].time_per_iteration
    assert out["regent"].time_per_iteration > \
        out["hpx"].time_per_iteration
