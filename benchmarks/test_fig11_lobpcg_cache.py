"""Fig. 11: L1/L2/L3 misses of the LOBPCG versions on Broadwell.

Paper: "The libcsr and libcsb versions achieve similar number of cache
misses, while the task-parallel versions demonstrate an outstanding
cache performance" — DeepSparse 3.0–10.4× (L1), 3.8–12.0× (L2),
1.4–4.7× (L3); HPX up to 13.7×/13.1×/5.2×; Regent 4.3–9.6×/4.0–12.3×/
1.6–6.2× fewer misses than libcsr.

Reproduction note (DESIGN.md §5): the object-granularity cache model
reproduces the *ordering* (AMT ≥ BSP at L2/L3; libcsr ≈ libcsb) and the
L3 reductions, but underestimates the absolute L1/L2 ratios, which on
real hardware include intra-chunk line reuse this model cannot see.
"""

from benchmarks.common import banner, cell, emit, geomean, matrices

VERSIONS = ["libcsb", "deepsparse", "hpx", "regent"]


def run_fig11():
    return {m: cell("broadwell", m, "lobpcg") for m in matrices()}


def test_fig11_lobpcg_cache(benchmark):
    cells = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    banner("Fig. 11: LOBPCG cache misses on Broadwell, k-times-fewer "
           "than libcsr (paper: AMT 3-13x L1/L2, 1.4-6.2x L3; "
           "libcsb similar to libcsr)")
    emit(f"{'matrix':20s}" + "".join(
        f"{v[:6] + ' L' + str(l):>11s}" for v in VERSIONS
        for l in (1, 2, 3)))
    red = {(v, l): [] for v in VERSIONS for l in (1, 2, 3)}
    for mat, c in cells.items():
        row = f"{mat:20s}"
        for v in VERSIONS:
            for l in (1, 2, 3):
                r = c.miss_reduction(v, l)
                red[(v, l)].append(r)
                row += f"{r:11.2f}"
        emit(row)
    emit("geomean: " + "  ".join(
        f"{v} L3 {geomean(red[(v, 3)]):.2f}x" for v in VERSIONS))
    # Shape 1: libcsr ≈ libcsb at L1 (storage alone doesn't fix LOBPCG).
    assert 0.5 < geomean(red[("libcsb", 1)]) < 2.0
    # Shape 2: every AMT reduces L3 misses on most matrices.
    for v in ("deepsparse", "hpx", "regent"):
        assert geomean(red[(v, 3)]) > 1.0
        assert max(red[(v, 3)]) > 1.4  # paper's lower bound of the range
    # Shape 3: AMT never catastrophically worse than libcsr at any level.
    for v in ("deepsparse", "hpx"):
        for l in (1, 2, 3):
            assert min(red[(v, l)]) > 0.5
