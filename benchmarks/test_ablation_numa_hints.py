"""Ablation: HPX NUMA-aware scheduling hints on/off (§5.1).

Paper: "We employed scheduling hints to achieve a locality-aware
scheduling … improved HPX's both Lanczos and LOBPCG performance
significantly on EPYC, where there exist 8 NUMA domains"; the LOBPCG
discussion quantifies it at around 50 %.
"""

from repro.analysis.experiment import run_version

from benchmarks.common import BLOCK_COUNT, ITERATIONS, banner, emit

MATRICES = ["Queen4147", "nlpkkt160", "nlpkkt240"]


def run_ablation():
    out = {}
    for mach in ("broadwell", "epyc"):
        for mat in MATRICES:
            aware = run_version(mach, mat, "lobpcg", "hpx",
                                block_count=BLOCK_COUNT[mach],
                                iterations=ITERATIONS, numa_aware=True)
            naive = run_version(mach, mat, "lobpcg", "hpx",
                                block_count=BLOCK_COUNT[mach],
                                iterations=ITERATIONS, numa_aware=False)
            out[(mach, mat)] = (aware, naive)
    return out


def test_ablation_numa_hints(benchmark):
    out = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    banner("Ablation: HPX NUMA-aware scheduling hints "
           "(paper: ~50% gain on EPYC's 8 domains)")
    emit(f"{'machine':11s}{'matrix':14s}{'aware (ms)':>12s}"
         f"{'naive (ms)':>12s}{'gain':>7s}")
    gains = {"broadwell": [], "epyc": []}
    for (mach, mat), (aware, naive) in out.items():
        g = naive.time_per_iteration / aware.time_per_iteration
        gains[mach].append(g)
        emit(f"{mach:11s}{mat:14s}{aware.time_per_iteration * 1e3:12.2f}"
             f"{naive.time_per_iteration * 1e3:12.2f}{g:7.2f}")
    # Shape: hints help on EPYC and matter more there than on
    # Broadwell's 2 domains.
    assert all(g >= 0.98 for g in gains["epyc"])
    assert max(gains["epyc"]) > 1.05
    assert max(gains["epyc"]) >= max(gains["broadwell"]) * 0.95
