"""Fig. 7: dependency- vs reduction-based SpMM output — Regent LOBPCG.

Paper: "the reduce-based approach yields an extremely poor performance
on large matrices … due to large buffers that need to be allocated by
each core"; the dependency approach is adopted in all frameworks.
"""

from repro.analysis.experiment import run_version
from repro.graph.builder import BuildOptions

from benchmarks.common import ITERATIONS, banner, emit

MATRICES = ["inline1", "Queen4147", "nlpkkt160", "nlpkkt240", "twitter7"]
BLOCK_COUNT = 24  # Regent's preferred coarse bucket (16-31)


def run_fig7():
    out = {}
    for mat in MATRICES:
        dep = run_version(
            "broadwell", mat, "lobpcg", "regent", block_count=BLOCK_COUNT,
            iterations=ITERATIONS,
            options=BuildOptions(spmm_mode="dependency"),
        )
        red = run_version(
            "broadwell", mat, "lobpcg", "regent", block_count=BLOCK_COUNT,
            iterations=ITERATIONS,
            options=BuildOptions(spmm_mode="reduction"),
        )
        out[mat] = (dep, red)
    return out


def test_fig7_reduction(benchmark):
    out = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    banner("Fig. 7: Regent LOBPCG on Broadwell, SpMM output policy "
           "(paper: reduction collapses on large matrices)")
    emit(f"{'matrix':16s}{'dependency (ms)':>17s}{'reduction (ms)':>16s}"
         f"{'slowdown':>10s}")
    slowdowns = {}
    for mat, (dep, red) in out.items():
        s = red.time_per_iteration / dep.time_per_iteration
        slowdowns[mat] = s
        emit(f"{mat:16s}{dep.time_per_iteration * 1e3:17.2f}"
             f"{red.time_per_iteration * 1e3:16.2f}{s:10.2f}")
    # Shape: the dependency approach wins on every FEM/KKT matrix (the
    # classes Fig. 7 sweeps), with the reduction penalty present across
    # sizes.  Deviation noted in EXPERIMENTS.md: on the power-law
    # twitter7 at Regent's coarse tiling, the dependency chains
    # serialize against only ~24 rows and the modelled reduction cost
    # (per-row partials) undercuts Legion's full-region reduction
    # instances, so the web-graph point does not reproduce.
    for mat, s in slowdowns.items():
        if mat != "twitter7":
            assert s >= 0.9, (mat, s)
    assert slowdowns["nlpkkt240"] > 1.0
    assert max(slowdowns[m] for m in slowdowns if m != "twitter7") > 1.05
