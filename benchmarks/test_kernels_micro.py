"""Microbenchmarks of the executable kernels (real wall time).

These time the NumPy kernel bodies themselves — the code the threaded
runtime and eager solvers actually execute — rather than simulated
costs.  They guard against performance regressions in the vectorized
implementations (e.g. someone replacing the reduceat-based CSR SpMV
with a Python loop).
"""

import numpy as np
import pytest

from repro.matrices import CSBMatrix, CSRMatrix, load_matrix
from repro.kernels import spmm_block, xty_partial, xy_block


@pytest.fixture(scope="module")
def operands():
    coo = load_matrix("Queen4147", scale=4096)
    csr = CSRMatrix.from_coo(coo)
    csb = CSBMatrix.from_coo(coo, 128)
    rng = np.random.default_rng(0)
    X = rng.standard_normal((coo.shape[0], 8))
    return csr, csb, X


def test_csr_spmv(benchmark, operands):
    csr, _csb, X = operands
    x = X[:, 0].copy()
    out = np.zeros(csr.shape[0])
    y = benchmark(csr.spmv, x, out)
    np.testing.assert_allclose(y, csr.to_dense() @ x, atol=1e-9)


def test_csr_spmm(benchmark, operands):
    csr, _csb, X = operands
    out = np.zeros_like(X)
    Y = benchmark(csr.spmm, X, out)
    assert Y.shape == X.shape


def test_csb_spmm_full_sweep(benchmark, operands):
    csr, csb, X = operands
    out = np.zeros_like(X)
    Y = benchmark(csb.spmm, X, out)
    np.testing.assert_allclose(Y, csr.spmm(X), atol=1e-9)


def test_csb_single_block_task(benchmark, operands):
    _csr, csb, X = operands
    i, j = max(csb.nonempty_blocks(),
               key=lambda ij: csb.block_nnz(*ij))
    blk = csb.block(i, j)
    cs, ce = csb.col_block_bounds(j)
    rs, re = csb.row_block_bounds(i)
    Xc = X[cs:ce]
    Yc = np.zeros((re - rs, X.shape[1]))

    def task():
        Yc[:] = 0.0
        spmm_block(blk, Xc, Yc)

    benchmark(task)
    assert np.abs(Yc).sum() > 0


def test_xy_chunk(benchmark, operands):
    _csr, _csb, X = operands
    rng = np.random.default_rng(1)
    Z = rng.standard_normal((8, 8))
    Q = np.empty_like(X[:4096])
    benchmark(xy_block, X[:4096], Z, Q)


def test_xty_chunk(benchmark, operands):
    _csr, _csb, X = operands
    P = np.empty((8, 8))
    benchmark(xty_partial, X[:4096], X[:4096], P)


def test_csb_construction(benchmark):
    coo = load_matrix("nlpkkt160", scale=8192)
    csb = benchmark(CSBMatrix.from_coo, coo, 64)
    assert csb.nnz == coo.canonical().nnz
