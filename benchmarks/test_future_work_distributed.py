"""Future work (§6): HPX on distributed memory — strong scaling.

The paper closes with "Future work will be in the direction of testing
HPX in a distributed memory environment using large-scale sparse
solvers."  This bench runs that experiment on the simulator: LOBPCG on
the largest KKT matrix across 1–8 Broadwell nodes, on an
InfiniBand-class fabric and on commodity 10 GbE.
"""

from repro.analysis.experiment import _trace
from repro.distributed import (
    DistributedHPXRuntime,
    ethernet_cluster,
    ib_cluster,
)
from repro.machine import broadwell
from repro.matrices.suite import SUITE
from repro.runtime.base import build_solver_dag
from repro.tuning.blocksize import block_size_for_count

from benchmarks.common import banner, emit

MATRIX = "nlpkkt240"
NODES = (1, 2, 4, 8)


def run_scaling():
    bs = block_size_for_count(SUITE[MATRIX].paper_rows, 96)
    cen, calls, chunked, small = _trace(MATRIX, bs, "lobpcg", 8)
    dag = build_solver_dag(cen, calls, chunked, small)
    out = {}
    for fabric, mk in (("ib", ib_cluster), ("10gbe", ethernet_cluster)):
        for n in NODES:
            out[(fabric, n)] = DistributedHPXRuntime(
                mk(broadwell(), n)).execute(dag)
    return out


def test_future_work_distributed(benchmark):
    out = benchmark.pedantic(run_scaling, rounds=1, iterations=1)
    banner(f"Future work (§6): distributed HPX, {MATRIX} LOBPCG, "
           "strong scaling over Broadwell nodes")
    emit(f"{'fabric':8s}{'nodes':>6s}{'t/iter (ms)':>13s}"
         f"{'compute':>10s}{'halo':>9s}{'allreduce':>11s}"
         f"{'speedup':>9s}{'efficiency':>12s}")
    for fabric in ("ib", "10gbe"):
        single = out[(fabric, 1)]
        for n in NODES:
            r = out[(fabric, n)]
            emit(f"{fabric:8s}{n:6d}{r.time_per_iteration * 1e3:13.2f}"
                 f"{r.compute_time * 1e3:10.2f}{r.halo_time * 1e3:9.2f}"
                 f"{r.allreduce_time * 1e3:11.2f}"
                 f"{r.speedup_over(single):9.2f}"
                 f"{r.parallel_efficiency(single):12.2f}")
    # Shape: IB scales (monotone speedup, sublinear efficiency);
    # commodity Ethernet is communication-bound and scales far worse.
    ib8 = out[("ib", 8)]
    ib1 = out[("ib", 1)]
    assert ib8.speedup_over(ib1) > 1.5
    assert ib8.parallel_efficiency(ib1) < 0.8
    eth8 = out[("10gbe", 8)]
    assert eth8.time_per_iteration > ib8.time_per_iteration * 2
    assert eth8.halo_time > eth8.compute_time  # comm-dominated