"""Kernel metadata registry: flop and byte footprints per kernel.

The discrete-event simulator prices a task from the *shapes* of its
operands, not from running the kernel.  Each kernel registers a
:class:`KernelSpec` whose ``flops``/``bytes`` callables take the task's
shape dictionary (keys depend on the kernel: ``nnz``, ``rows``,
``cols``, ``width`` …) and return scalar counts.  Keeping this in one
place guarantees the simulator and the executable kernels agree on what
a task costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

__all__ = ["KernelSpec", "KERNELS", "register_kernel", "kernel_spec"]


@dataclass(frozen=True)
class KernelSpec:
    """Cost contract for one kernel.

    Attributes
    ----------
    name:
        Registry key; also the ``Task.kernel`` value in the DAG.
    flops:
        ``shape-dict -> float`` floating-point operation count.
    bytes_streamed:
        ``shape-dict -> float`` bytes of operand data the kernel must
        touch at least once (compulsory traffic; reuse on top of this
        is the cache simulator's job).
    kind:
        ``"sparse"``, ``"blas1"``, ``"blas3"`` or ``"dense-small"`` —
        used by schedulers that treat kernel classes differently and by
        the flow-graph renderer's lane grouping.
    """

    name: str
    flops: Callable[[dict], float]
    bytes_streamed: Callable[[dict], float]
    kind: str


KERNELS: Dict[str, KernelSpec] = {}


def register_kernel(name: str, flops, bytes_streamed, kind: str) -> KernelSpec:
    """Register (or replace) a kernel's cost contract."""
    spec = KernelSpec(name, flops, bytes_streamed, kind)
    KERNELS[name] = spec
    return spec


def kernel_spec(name: str) -> KernelSpec:
    """Look up a kernel's cost contract; raises KeyError for unknowns."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"kernel {name!r} is not registered; known kernels: "
            f"{', '.join(sorted(KERNELS))}"
        ) from None


_F8 = 8  # bytes per float64
_I4 = 4  # bytes per int32 (CSB local indices)


def _spmv_flops(s):
    return 2.0 * s["nnz"]


def _spmv_bytes(s):
    # block entries (val + 2 local indices) + x chunk + y chunk
    return s["nnz"] * (_F8 + 2 * _I4) + (s["cols"] + s["rows"]) * _F8


def _spmm_flops(s):
    return 2.0 * s["nnz"] * s["width"]


def _spmm_bytes(s):
    return s["nnz"] * (_F8 + 2 * _I4) + (s["cols"] + s["rows"]) * s["width"] * _F8


def _xy_flops(s):
    # Q(rows×w2) = Y(rows×w1) @ Z(w1×w2)
    return 2.0 * s["rows"] * s["w1"] * s["w2"]


def _xy_bytes(s):
    return (s["rows"] * (s["w1"] + s["w2"]) + s["w1"] * s["w2"]) * _F8


def _xty_flops(s):
    # P(w1×w2) = X(rows×w1)ᵀ @ Y(rows×w2)
    return 2.0 * s["rows"] * s["w1"] * s["w2"]


def _xty_bytes(s):
    return (s["rows"] * (s["w1"] + s["w2"]) + s["w1"] * s["w2"]) * _F8


def _reduce_flops(s):
    # accumulate n_parts partial buffers of `elems` elements each
    return float(s["n_parts"]) * s["elems"]


def _reduce_bytes(s):
    return (s["n_parts"] + 1.0) * s["elems"] * _F8


def _blas1_flops(s):
    return float(s.get("ops_per_elem", 2)) * s["rows"] * s.get("width", 1)


def _blas1_bytes(s):
    return float(s.get("streams", 3)) * s["rows"] * s.get("width", 1) * _F8


def _dot_reduce_flops(s):
    return float(s["n_parts"]) * s.get("elems", 1)


def _dot_reduce_bytes(s):
    return (s["n_parts"] + 1.0) * s.get("elems", 1) * _F8


def _dense_small_flops(s):
    k = s["k"]
    return float(s.get("eig_const", 10)) * k * k * k


def _dense_small_bytes(s):
    return 3.0 * s["k"] * s["k"] * _F8


register_kernel("SPMV", _spmv_flops, _spmv_bytes, "sparse")
register_kernel("SPMM", _spmm_flops, _spmm_bytes, "sparse")
register_kernel("XY", _xy_flops, _xy_bytes, "blas3")
register_kernel("XTY", _xty_flops, _xty_bytes, "blas3")
register_kernel("XTY_REDUCE", _reduce_flops, _reduce_bytes, "blas1")
register_kernel("SPMM_REDUCE", _reduce_flops, _reduce_bytes, "blas1")
register_kernel("AXPY", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("SCALE", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("COPY", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("ADD", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("SUB", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("DOT", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("DIAGSCALE", _blas1_flops, _blas1_bytes, "blas1")
register_kernel("DOT_REDUCE", _dot_reduce_flops, _dot_reduce_bytes, "blas1")
register_kernel("RAYLEIGH_RITZ", _dense_small_flops, _dense_small_bytes,
                "dense-small")
register_kernel("SMALL_EIGH", _dense_small_flops, _dense_small_bytes,
                "dense-small")
register_kernel("ORTHO", _dense_small_flops, _dense_small_bytes,
                "dense-small")
