"""SpMM kernels: full-matrix (BSP) and per-CSB-block (task body).

LOBPCG's dominant kernel.  Vector blocks have 8–16 columns in the
paper, so the block kernel is a tall-skinny sparse-times-dense update.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csb import CSBBlock
from repro.matrices.csr import CSRMatrix

__all__ = ["spmm_csr", "spmm_block"]


def spmm_csr(A: CSRMatrix, X: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Full Y = A @ X on CSR storage (the ``libcsr`` kernel)."""
    return A.spmm(X, out=out)


def spmm_block(blk: CSBBlock, X_chunk: np.ndarray, Y_chunk: np.ndarray) -> None:
    """``Y_i += A_ij @ X_j`` for one CSB block, in place (Fig. 1 task)."""
    if blk.nnz:
        np.add.at(Y_chunk, blk.rows, blk.vals[:, None] * X_chunk[blk.cols])
