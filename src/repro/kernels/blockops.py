"""Row-block vector kernels: XY, XTY (+reduce), and BLAS-1 chunk ops.

These are the 1-D kernels of Listing 1: every vector or vector block is
partitioned into the same row chunks as the CSB block rows, and each
task touches one chunk.  The XTY kernel computes per-chunk partial
products that a final reduce task accumulates (Fig. 2).

All kernels mutate their output chunk in place (views into the parent
array — no copies, per the first-touch and reuse discipline).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "xy_block",
    "xty_partial",
    "xty_reduce",
    "axpy_block",
    "scale_block",
    "dot_partial",
    "dot_reduce",
    "copy_block",
    "add_block",
    "sub_block",
]


def xy_block(Y_chunk: np.ndarray, Z: np.ndarray, Q_chunk: np.ndarray) -> None:
    """Linear-combination (XY) task: ``Q_i = Y_i @ Z``.

    ``Y_i`` is a ``b×n`` chunk, ``Z`` the whole ``n×n`` coefficient
    matrix (read by every task), ``Q_i`` the output chunk.
    """
    np.matmul(Y_chunk, Z, out=Q_chunk)


def xty_partial(Y_chunk: np.ndarray, Q_chunk: np.ndarray,
                P_partial: np.ndarray) -> None:
    """Inner-product (XTY) task: ``P_partial = Y_iᵀ @ Q_i`` (n×n)."""
    np.matmul(Y_chunk.T, Q_chunk, out=P_partial)


def xty_reduce(partials, P_out: np.ndarray) -> None:
    """Final XTY task: accumulate the per-chunk partials into ``P``."""
    P_out[:] = 0.0
    for p in partials:
        P_out += p


def axpy_block(alpha: float, X_chunk: np.ndarray, Y_chunk: np.ndarray) -> None:
    """``Y_i += alpha * X_i`` in place."""
    Y_chunk += alpha * X_chunk


def scale_block(alpha: float, X_chunk: np.ndarray) -> None:
    """``X_i *= alpha`` in place."""
    X_chunk *= alpha


def dot_partial(X_chunk: np.ndarray, Y_chunk: np.ndarray) -> float:
    """Partial scalar product of two chunks (flattened)."""
    return float(np.dot(X_chunk.ravel(), Y_chunk.ravel()))


def dot_reduce(partials) -> float:
    """Accumulate partial dot products."""
    return float(sum(partials))


def copy_block(src_chunk: np.ndarray, dst_chunk: np.ndarray) -> None:
    """``dst_i = src_i`` chunk copy."""
    dst_chunk[:] = src_chunk


def add_block(X_chunk: np.ndarray, Y_chunk: np.ndarray,
              out_chunk: np.ndarray) -> None:
    """``out_i = X_i + Y_i``."""
    np.add(X_chunk, Y_chunk, out=out_chunk)


def sub_block(X_chunk: np.ndarray, Y_chunk: np.ndarray,
              out_chunk: np.ndarray) -> None:
    """``out_i = X_i − Y_i``."""
    np.subtract(X_chunk, Y_chunk, out=out_chunk)
