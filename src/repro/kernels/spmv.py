"""SpMV kernels: full-matrix (BSP) and per-CSB-block (task body).

The block kernel matches the SpMM task partitioning of Fig. 1 with
vector width n = 1: each task consumes sparse block ``A_ij`` and input
chunk ``x_j`` and accumulates into output chunk ``y_i``.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csb import CSBBlock
from repro.matrices.csr import CSRMatrix

__all__ = ["spmv_csr", "spmv_block"]


def spmv_csr(A: CSRMatrix, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Full y = A @ x on CSR storage (the ``libcsr`` kernel)."""
    return A.spmv(x, out=out)


def spmv_block(blk: CSBBlock, x_chunk: np.ndarray, y_chunk: np.ndarray) -> None:
    """``y_i += A_ij @ x_j`` for one CSB block, in place.

    The dependency-based output policy (§3) means callers must
    serialize tasks writing the same ``y_chunk``; the kernel itself is
    a plain scatter-add over the block's local coordinates.
    """
    if blk.nnz:
        np.add.at(y_chunk, blk.rows, blk.vals * x_chunk[blk.cols])
