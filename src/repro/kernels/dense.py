"""Small dense kernels: Rayleigh–Ritz and tiny eigen/solve helpers.

LOBPCG's per-iteration Rayleigh–Ritz step works on matrices of size
``3n × 3n`` where n is the vector-block width (8–16) — tiny relative to
the sparse operands.  They sit on the critical path (length 29), so the
task DAG models them as single sequential tasks, and these are their
executable bodies.  LAPACK is reached through NumPy/SciPy, mirroring
the paper's use of LAPACK inside tasks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["small_eigh", "small_solve", "rayleigh_ritz"]


def small_eigh(A: np.ndarray):
    """Eigendecomposition of a small symmetric matrix (ascending)."""
    A = np.asarray(A, dtype=np.float64)
    w, V = np.linalg.eigh((A + A.T) * 0.5)
    return w, V


def small_solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Solve the small dense system ``A X = B``."""
    return np.linalg.solve(A, B)


def rayleigh_ritz(gram_A: np.ndarray, gram_B: np.ndarray, nev: int):
    """Rayleigh–Ritz on a subspace: solve ``gram_A c = λ gram_B c``.

    Parameters
    ----------
    gram_A:
        ``Sᵀ H S`` projection of the operator onto the subspace basis S.
    gram_B:
        ``Sᵀ S`` Gram matrix of the basis (may be ill-conditioned when
        LOBPCG directions nearly collapse; handled by eigenvalue
        flooring on the B factor).
    nev:
        Number of smallest Ritz pairs to return.

    Returns
    -------
    (values, coeffs):
        ``values[k]`` and subspace coefficient columns ``coeffs[:, k]``.
    """
    gram_A = np.asarray(gram_A, dtype=np.float64)
    gram_B = np.asarray(gram_B, dtype=np.float64)
    # Whitening transform via eigendecomposition of gram_B with flooring,
    # the standard robust treatment for nearly dependent LOBPCG bases.
    wB, VB = np.linalg.eigh((gram_B + gram_B.T) * 0.5)
    floor = max(wB.max(), 1.0) * 1e-12
    keep = wB > floor
    W = VB[:, keep] / np.sqrt(wB[keep])
    Aw = W.T @ gram_A @ W
    w, V = np.linalg.eigh((Aw + Aw.T) * 0.5)
    k = min(nev, w.size)
    return w[:k], W @ V[:, :k]
