"""Computational kernels shared by every solver version.

The paper uses MKL calls inside each task "for a fair comparison"; the
analogue here is a single set of NumPy-vectorized kernels used by the
BSP baselines, by the real threaded runtime, and (as cost footprints)
by the discrete-event simulator.  Kernels come in two granularities:

* **full** kernels operating on whole operands (the BSP / ``libcsr``
  path), and
* **block** kernels operating on one CSB tile or one row-block chunk
  (the task bodies of the task-parallel versions).

Each kernel has a :class:`~repro.kernels.registry.KernelSpec` entry
giving its flop and byte footprint as a function of operand shapes —
the contract between the executable kernels and the machine model.
"""

from repro.kernels.registry import KernelSpec, KERNELS, kernel_spec
from repro.kernels.spmv import spmv_csr, spmv_block
from repro.kernels.spmm import spmm_csr, spmm_block
from repro.kernels.blockops import (
    xy_block,
    xty_partial,
    xty_reduce,
    axpy_block,
    scale_block,
    dot_partial,
    dot_reduce,
    copy_block,
    add_block,
    sub_block,
)
from repro.kernels.dense import rayleigh_ritz, small_eigh, small_solve
from repro.kernels.ortho import orthonormalize, cholesky_qr

__all__ = [
    "KernelSpec",
    "KERNELS",
    "kernel_spec",
    "spmv_csr",
    "spmv_block",
    "spmm_csr",
    "spmm_block",
    "xy_block",
    "xty_partial",
    "xty_reduce",
    "axpy_block",
    "scale_block",
    "dot_partial",
    "dot_reduce",
    "copy_block",
    "add_block",
    "sub_block",
    "rayleigh_ritz",
    "small_eigh",
    "small_solve",
    "orthonormalize",
    "cholesky_qr",
]
