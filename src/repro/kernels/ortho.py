"""Orthonormalization kernels for block vectors.

LOBPCG orthonormalizes the iterate block; Lanczos orthogonalizes the
new Krylov vector against the basis.  Cholesky-QR is the cheap
blocked path (two passes give full stability for the conditioning seen
here); modified Gram–Schmidt is the fallback when the Gram matrix is
numerically rank-deficient.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cholesky_qr", "modified_gram_schmidt", "orthonormalize"]


def cholesky_qr(X: np.ndarray) -> np.ndarray:
    """Orthonormalize columns via Cholesky of the Gram matrix.

    Raises ``np.linalg.LinAlgError`` if ``XᵀX`` is not numerically SPD;
    callers fall back to :func:`modified_gram_schmidt`.
    """
    G = X.T @ X
    R = np.linalg.cholesky(G).T
    return np.linalg.solve(R.T, X.T).T


def modified_gram_schmidt(X: np.ndarray, drop_tol: float = 1e-12) -> np.ndarray:
    """Column-by-column MGS; replaces dropped columns with random data.

    Deterministic: the replacement vectors come from a fixed-seed
    generator keyed on the column index.
    """
    X = np.array(X, dtype=np.float64)
    m, n = X.shape
    for j in range(n):
        for _attempt in range(3):
            v = X[:, j]
            for i in range(j):
                v -= (X[:, i] @ v) * X[:, i]
            nrm = np.linalg.norm(v)
            if nrm > drop_tol:
                X[:, j] = v / nrm
                break
            rng = np.random.default_rng(977 + j + _attempt)
            X[:, j] = rng.standard_normal(m)
        else:
            raise np.linalg.LinAlgError(
                f"could not orthonormalize column {j}"
            )
    return X


def orthonormalize(X: np.ndarray) -> np.ndarray:
    """Robust orthonormalization: two-pass Cholesky-QR, MGS fallback.

    Cholesky of a numerically singular Gram matrix can *succeed* with
    garbage factors, so the result is verified and MGS is used whenever
    the two-pass product is not actually orthonormal.
    """
    n = X.shape[1]
    try:
        Q = cholesky_qr(X)
        Q = cholesky_qr(Q)  # second pass restores orthogonality fully
        if np.isfinite(Q).all() and (
            np.abs(Q.T @ Q - np.eye(n)).max() < 1e-8
        ):
            return Q
    except np.linalg.LinAlgError:
        pass
    return modified_gram_schmidt(X)
