"""Experiment orchestration: grid expansion, on-disk caching, parallel runs.

Every figure of the paper is a grid of simulated cells
(machine × matrix × solver × version × block count).  This package is
the substrate all of them run through:

* :mod:`repro.bench.cache` — a content-addressed, process-safe result
  store keyed by the full cell config plus a cost-model version salt.
* :mod:`repro.bench.prep` — the compiled-prep store: persisted census
  + DAG + access-plan artifacts, so cold sweeps build each distinct
  prep once and everything else (workers, later processes) loads it.
* :mod:`repro.bench.runner` — :class:`ExperimentRunner`: expands grid
  specs, dedupes cells, serves hits from the cache, prebuilds prep
  artifacts, and fans misses out over a process pool with
  deterministic result ordering.

Environment knobs (read at cache construction):

* ``REPRO_CACHE_DIR`` — cache root (default ``.repro_cache/``).
* ``REPRO_NO_CACHE=1`` — disable the on-disk result cache entirely.
* ``REPRO_PREP_DIR`` — prep-store root (default ``<cache root>/prep``).
* ``REPRO_NO_PREP=1`` — disable the prep store.
* ``REPRO_BENCH_JOBS`` — default worker-process count.
"""

from repro.bench.cache import ResultCache, cache_key, default_cache
from repro.bench.prep import PrepStore, default_prep_store
from repro.bench.runner import (
    Cell,
    DEFAULT_BLOCK_COUNT,
    DEFAULT_MATRICES,
    ExperimentRunner,
    REGENT_BLOCK_COUNT,
    SweepError,
    WorkerFailure,
    expand_grid,
    run_cell_config,
)

__all__ = [
    "Cell",
    "DEFAULT_BLOCK_COUNT",
    "DEFAULT_MATRICES",
    "ExperimentRunner",
    "PrepStore",
    "REGENT_BLOCK_COUNT",
    "ResultCache",
    "SweepError",
    "WorkerFailure",
    "cache_key",
    "default_cache",
    "default_prep_store",
    "expand_grid",
    "run_cell_config",
]
