"""Content-addressed store for compiled per-cell prep artifacts.

The result cache (:mod:`repro.bench.cache`) memoizes *finished
summaries*; this store memoizes the expensive *inputs* of a simulation
cell — the built matrix census, the task DAG with its frozen
structure-of-arrays view (:meth:`repro.graph.dag.TaskDAG.freeze`),
interned handle tables, compiled access plans
(:meth:`repro.sim.cost.CostModel.prepare`) and scheduler domain tables
— so a cold sweep builds each distinct prep exactly once per machine
and every later cell (or worker process, or future sweep) loads it.

Layout mirrors the result cache: one file per artifact under
``<root>/<key[:2]>/<key>.prep``, ``key`` the SHA-256 of the canonical
JSON config plus :data:`PREP_SALT`.  The salt embeds
:data:`repro.sim.cost.COST_MODEL_VERSION` *and* :data:`PREP_FORMAT`,
so cost-semantics changes and artifact-layout changes each orphan old
entries (never mis-serve them).

File format: one JSON header line —
``{"format", "salt", "key", "checksum", "nbytes", "config"}`` — then
``nbytes`` of pickled payload.  The checksum is the SHA-256 of the
payload bytes; reads verify header fields, length, and checksum, and
*any* failure (truncation, bad pickle, wrong salt, checksum mismatch)
quarantines the file to ``<root>/corrupt/`` and reports a miss — a
broken store must never break an experiment.  The human-readable
header makes ``repro prep list`` a one-line read per artifact.

Reads are memoized per process: entries are content-addressed and
immutable, so a repeat ``get`` of the same key returns the
already-deserialized artifact after one ``stat`` validation
(mtime + size) instead of re-reading and re-unpickling megabytes —
the common case for sweeps that clear their in-process DAG memos
between rounds but keep the store instance.

The payload travels by ``pickle``, which is only safe because this is
a *local build cache*: every entry is written by this same codebase on
this same machine, keys are content addresses of trusted configs, and
anything unreadable is quarantined, never executed around.

Environment:

* ``REPRO_PREP_DIR`` — overrides the store root (defaults to
  ``<$REPRO_CACHE_DIR or .repro_cache>/prep``).
* ``REPRO_NO_PREP=1`` — disables the store (gets miss, puts drop).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from typing import Iterator, Optional

from repro.bench.cache import DEFAULT_ROOT, cache_key
from repro.sim.cost import COST_MODEL_VERSION

__all__ = [
    "PREP_FORMAT",
    "PREP_SALT",
    "PrepStore",
    "default_prep_store",
]

#: Storage-schema version of one prep artifact.  Bump on any change to
#: the payload layout *or* to the pickled structures it carries (plan
#: tuple shape, GraphArrays fields, …): old artifacts are orphaned by
#: the salt, not migrated.
PREP_FORMAT = 1

#: Code fingerprint mixed into every key.
PREP_SALT = f"cost-v{COST_MODEL_VERSION}/prep-v{PREP_FORMAT}"


def _default_root() -> str:
    explicit = os.environ.get("REPRO_PREP_DIR")
    if explicit:
        return explicit
    base = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_ROOT
    return os.path.join(base, "prep")


class PrepStore:
    """Persistent prep-artifact store; concurrent-reader/writer safe.

    Same durability contract as :class:`repro.bench.cache.ResultCache`:
    atomic tempfile + ``os.replace`` writes, quarantine-on-corruption
    reads, content-addressed keys.
    """

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None,
                 salt: str = PREP_SALT):
        if root is None:
            root = _default_root()
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_PREP", "") not in (
                "1", "true", "yes", "on",
            )
        self.root = os.path.abspath(root)
        self.enabled = bool(enabled)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        #: Per-process deserialization memo: key -> (mtime_ns, size,
        #: artifact).  Sound because entries are content-addressed —
        #: same key, same bytes — and immutable once written; the
        #: stat validator catches the only legal change (a rewrite by
        #: a concurrent ``put``, which produces identical content, or
        #: external tampering, which must force a real re-read so the
        #: quarantine path still fires).
        self._loaded: dict = {}

    # ------------------------------------------------------------------
    def key(self, config: dict) -> str:
        return cache_key(config, self.salt)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".prep")

    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "corrupt")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt artifact aside (best-effort, never raises)."""
        try:
            qdir = self.quarantine_dir()
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined += 1
        except OSError:
            try:
                os.unlink(path)
                self.quarantined += 1
            except OSError:
                pass

    # ------------------------------------------------------------------
    def get(self, config: dict):
        """Load the artifact for ``config``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        key = self.key(config)
        path = self.path_for(key)
        try:
            st = os.stat(path)
        except OSError:
            self.misses += 1
            return None
        memo = self._loaded.get(key)
        if (memo is not None and memo[0] == st.st_mtime_ns
                and memo[1] == st.st_size):
            self.hits += 1
            return memo[2]
        try:
            with open(path, "rb") as f:
                header = json.loads(f.readline().decode("utf-8"))
                if header.get("format") != PREP_FORMAT:
                    raise ValueError(
                        f"artifact format {header.get('format')!r}")
                if header.get("salt") != self.salt:
                    raise ValueError(f"artifact salt {header.get('salt')!r}")
                if header.get("key") != key:
                    raise ValueError("artifact key mismatch")
                nbytes = header["nbytes"]
                payload = f.read(nbytes + 1)
            if len(payload) != nbytes:
                raise ValueError(
                    f"payload truncated ({len(payload)}/{nbytes} bytes)")
            if hashlib.sha256(payload).hexdigest() != header.get("checksum"):
                raise ValueError("payload checksum mismatch")
            artifact = pickle.loads(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Any decode failure — bad JSON header, short read, pickle
            # error, missing field — quarantines the file and misses.
            self._quarantine(path)
            self._loaded.pop(key, None)
            self.misses += 1
            return None
        self.hits += 1
        self._loaded[key] = (st.st_mtime_ns, st.st_size, artifact)
        return artifact

    def put(self, config: dict, artifact) -> None:
        """Store an artifact atomically (last concurrent writer wins)."""
        if not self.enabled:
            return
        key = self.key(config)
        path = self.path_for(key)
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        header = {
            "format": PREP_FORMAT,
            "salt": self.salt,
            "key": key,
            "checksum": hashlib.sha256(payload).hexdigest(),
            "nbytes": len(payload),
            "config": config,
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(json.dumps(header, sort_keys=True,
                                   default=str).encode("utf-8"))
                f.write(b"\n")
                f.write(payload)
            os.replace(tmp, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._loaded.pop(key, None)
        self.writes += 1

    def __contains__(self, config: dict) -> bool:
        return self.enabled and os.path.exists(
            self.path_for(self.key(config))
        )

    # ------------------------------------------------------------------
    def _entry_paths(self) -> Iterator[str]:
        if not os.path.isdir(self.root):
            return
        for sub in sorted(os.listdir(self.root)):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir) or len(sub) != 2:
                continue
            for name in sorted(os.listdir(subdir)):
                if name.endswith(".prep"):
                    yield os.path.join(subdir, name)

    def entries(self):
        """Headers of every artifact on disk (for ``repro prep list``).

        Unreadable headers yield ``{"path": .., "error": ..}`` stubs
        instead of raising — listing must work on a damaged store.
        """
        out = []
        for path in self._entry_paths():
            try:
                with open(path, "rb") as f:
                    header = json.loads(f.readline().decode("utf-8"))
                header["path"] = path
                header["file_bytes"] = os.path.getsize(path)
                out.append(header)
            except Exception as exc:
                out.append({"path": path, "error": str(exc)})
        return out

    def gc(self) -> dict:
        """Drop artifacts no current code path would ever load.

        Removes entries whose header is unreadable or whose salt
        differs from the running code's (orphans from older
        ``COST_MODEL_VERSION``/:data:`PREP_FORMAT`), plus leftover
        ``.tmp`` files and everything in ``corrupt/``.  Live-salt
        entries are kept.  Returns removal counts.
        """
        stale = tmp = corrupt = 0
        for path in list(self._entry_paths()):
            drop = False
            try:
                with open(path, "rb") as f:
                    header = json.loads(f.readline().decode("utf-8"))
                drop = header.get("salt") != self.salt
            except Exception:
                drop = True
            if drop:
                try:
                    os.unlink(path)
                    stale += 1
                except OSError:
                    pass
        if os.path.isdir(self.root):
            for sub in os.listdir(self.root):
                subdir = os.path.join(self.root, sub)
                if not os.path.isdir(subdir) or len(sub) != 2:
                    continue
                for name in os.listdir(subdir):
                    if name.endswith(".tmp"):
                        try:
                            os.unlink(os.path.join(subdir, name))
                            tmp += 1
                        except OSError:
                            pass
        qdir = self.quarantine_dir()
        if os.path.isdir(qdir):
            for name in os.listdir(qdir):
                try:
                    os.unlink(os.path.join(qdir, name))
                    corrupt += 1
                except OSError:
                    pass
        return {"stale": stale, "tmp": tmp, "corrupt": corrupt}

    def clear(self) -> int:
        """Remove every artifact; returns the number removed."""
        self._loaded.clear()
        removed = 0
        for path in list(self._entry_paths()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict:
        return {
            "root": self.root,
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (f"PrepStore({self.root!r}, {state}, "
                f"hits={self.hits}, misses={self.misses})")


_DEFAULT: Optional[PrepStore] = None


def default_prep_store() -> PrepStore:
    """Process-wide store tracking the environment.

    Unlike the result cache's process singleton, the environment is
    re-checked on every call: tests and the experiment runner retarget
    the store by monkeypatching ``REPRO_PREP_DIR``/``REPRO_NO_PREP``
    mid-process, and a stale singleton would silently keep writing to
    the old root.  The instance (and its hit/miss counters) is only
    replaced when the env-derived config actually changed.
    """
    global _DEFAULT
    root = os.path.abspath(_default_root())
    enabled = os.environ.get("REPRO_NO_PREP", "") not in (
        "1", "true", "yes", "on",
    )
    if (_DEFAULT is None or _DEFAULT.root != root
            or _DEFAULT.enabled != enabled or _DEFAULT.salt != PREP_SALT):
        _DEFAULT = PrepStore(root=root, enabled=enabled)
    return _DEFAULT
