"""Content-addressed on-disk store for simulated run summaries.

Layout: one JSON file per cell under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is the SHA-256 of the canonical JSON encoding of the
cell config plus a code fingerprint (:data:`CACHE_SALT`).  The salt
embeds :data:`repro.sim.cost.COST_MODEL_VERSION`, so any change to
cost-model *semantics* invalidates every cached number; bit-identical
performance refactors keep the cache warm.

Properties the experiment pipeline relies on:

* **Process-safe writes** — entries are written to a temp file in the
  same directory and ``os.replace``'d into place, so concurrent
  workers never expose a torn file.
* **Corruption tolerance** — an unreadable, truncated, or
  checksum-failing entry is treated as a miss and *quarantined* (moved
  aside to ``<root>/corrupt/`` for post-mortem), never an exception.
* **Payload checksums** — every entry embeds the SHA-256 of its
  canonical summary JSON; reads verify it, so silent on-disk
  corruption that still parses as JSON is caught too.
* **Bit-exact round trip** — floats survive via ``repr`` in JSON, so a
  warm-cache re-run returns byte-identical summaries.

Environment:

* ``REPRO_CACHE_DIR`` — overrides the default ``.repro_cache/`` root.
* ``REPRO_NO_CACHE=1`` — disables the store (all gets miss, puts drop).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

from repro.sim.cost import COST_MODEL_VERSION
from repro.sim.engine import RunResultSummary

__all__ = [
    "CACHE_SALT",
    "ENTRY_FORMAT",
    "ResultCache",
    "cache_key",
    "default_cache",
    "placement_key",
]

#: Storage-schema version of one cache entry (bump on layout changes).
#: v2 added the payload checksum; v1 entries are orphaned by the salt
#: (never addressed again), not quarantined — they are not corrupt.
ENTRY_FORMAT = 2

#: Code fingerprint mixed into every key: cost-model semantics + entry
#: schema.  Bumping either orphans old entries (they simply stop being
#: addressed; ``clear()`` reclaims the space).
CACHE_SALT = f"cost-v{COST_MODEL_VERSION}/entry-v{ENTRY_FORMAT}"

DEFAULT_ROOT = ".repro_cache"


def _canonical(config: dict) -> str:
    """Stable, process-independent encoding of a cell config."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"),
                      default=str)


def cache_key(config: dict, salt: str = CACHE_SALT) -> str:
    """Content address of one cell config (stable across processes)."""
    payload = salt + "\n" + _canonical(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def placement_key(config: dict, salt: str = CACHE_SALT) -> str:
    """The cluster's shard-placement key for one cell config.

    Deliberately *the same value* as :func:`cache_key`: the router
    places a cell on the consistent-hash ring by the exact identity
    the result cache stores it under, so a cell's cache entry, its
    single-flight table entry, and its home shard all agree.  That
    shared identity is what makes cluster-wide coalescing exactly-once
    and failover idempotent — a replayed request can only ever
    recompute the same content-addressed result.
    """
    return cache_key(config, salt)


def _payload_checksum(summary_dict: dict) -> str:
    """SHA-256 of the canonical summary encoding (entry integrity)."""
    return hashlib.sha256(
        _canonical(summary_dict).encode("utf-8")
    ).hexdigest()


class ResultCache:
    """Persistent result store; safe for concurrent reader/writers.

    Parameters
    ----------
    root:
        Directory to store entries in.  Defaults to
        ``$REPRO_CACHE_DIR`` or ``.repro_cache/``.
    enabled:
        Force-enable/disable; defaults to the inverse of
        ``$REPRO_NO_CACHE``.
    salt:
        Code fingerprint mixed into keys (tests override this to model
        cost-semantics changes).
    """

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None,
                 salt: str = CACHE_SALT):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_ROOT
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_CACHE", "") not in (
                "1", "true", "yes", "on",
            )
        self.root = os.path.abspath(root)
        self.enabled = bool(enabled)
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.writes = 0
        #: Entries moved to ``<root>/corrupt/`` by reads that found
        #: them undecodable or checksum-failing (surfaced in the bench
        #: summary line).
        self.quarantined = 0

    # ------------------------------------------------------------------
    def key(self, config: dict) -> str:
        return cache_key(config, self.salt)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "corrupt")

    def _quarantine(self, path: str) -> None:
        """Move a corrupt entry aside (best-effort, never raises)."""
        try:
            qdir = self.quarantine_dir()
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
            self.quarantined += 1
        except OSError:
            # Fall back to plain removal; if even that fails the entry
            # just stays and will be re-quarantined next read.
            try:
                os.unlink(path)
                self.quarantined += 1
            except OSError:
                pass

    # ------------------------------------------------------------------
    def get(self, config: dict) -> Optional[RunResultSummary]:
        """Cached summary for ``config``, or ``None`` on a miss.

        Corrupted entries (truncated writes, bad JSON, wrong schema,
        checksum mismatch) are treated as misses and quarantined to
        ``<root>/corrupt/`` — a broken cache must never break an
        experiment, and the evidence is kept for post-mortem.
        """
        if not self.enabled:
            return None
        path = self.path_for(self.key(config))
        try:
            with open(path, "r", encoding="utf-8") as f:
                entry = json.load(f)
            if entry.get("format") != ENTRY_FORMAT:
                raise ValueError(f"entry format {entry.get('format')!r}")
            payload = entry["summary"]
            if entry.get("checksum") != _payload_checksum(payload):
                raise ValueError("payload checksum mismatch")
            summary = RunResultSummary.from_dict(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted entry: quarantine it and report a miss.
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, config: dict, summary: RunResultSummary) -> None:
        """Store a summary atomically (last concurrent writer wins)."""
        if not self.enabled:
            return
        key = self.key(config)
        path = self.path_for(key)
        payload = summary.to_dict()
        entry = {
            "format": ENTRY_FORMAT,
            "key": key,
            "salt": self.salt,
            "config": config,
            "checksum": _payload_checksum(payload),
            "summary": payload,
        }
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(entry, f)
            os.replace(tmp, path)  # atomic on POSIX
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1

    def __contains__(self, config: dict) -> bool:
        return self.enabled and os.path.exists(
            self.path_for(self.key(config))
        )

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return removed
        for sub in os.listdir(self.root):
            subdir = os.path.join(self.root, sub)
            if not os.path.isdir(subdir) or len(sub) != 2:
                continue
            for name in os.listdir(subdir):
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(subdir, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def stats(self) -> dict:
        return {
            "root": self.root,
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "quarantined": self.quarantined,
        }

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (f"ResultCache({self.root!r}, {state}, "
                f"hits={self.hits}, misses={self.misses})")


_DEFAULT: Optional[ResultCache] = None


def default_cache() -> ResultCache:
    """Process-wide cache honouring the environment at first use."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ResultCache()
    return _DEFAULT
