"""The parallel experiment orchestrator.

:class:`ExperimentRunner` is the one path every sweep goes through:

1. expand a grid spec into cells (:func:`expand_grid`),
2. dedupe identical cells,
3. serve what the on-disk cache already has,
4. fan the misses out over a ``ProcessPoolExecutor`` (the simulator is
   pure Python and CPU-bound, so *processes*, not threads, are the
   right parallelism — the GIL serializes threads),
5. persist fresh summaries and return results in input order.

Result ordering is deterministic and independent of ``jobs``: cells
are keyed, executed by key order of first appearance, and re-assembled
into the caller's order, so ``--jobs 8`` returns exactly what
``--jobs 1`` returns.
"""

from __future__ import annotations

import contextlib
import io
import math
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.cache import ResultCache, default_cache
from repro.sim.engine import RunResultSummary

__all__ = [
    "Cell",
    "DEFAULT_BLOCK_COUNT",
    "DEFAULT_MATRICES",
    "ExperimentRunner",
    "REGENT_BLOCK_COUNT",
    "SweepError",
    "WorkerFailure",
    "expand_grid",
    "run_cell_config",
]

#: Rule-of-thumb block counts for the headline comparisons (§5.4:
#: DeepSparse/HPX 32–63 on Broadwell, 64–127 on EPYC).
DEFAULT_BLOCK_COUNT = {"broadwell": 48, "epyc": 96}
#: Regent favours coarse grains (paper: 16–31); on the simulated EPYC
#: its workers starve below ~96 blocks (deviation in EXPERIMENTS.md).
REGENT_BLOCK_COUNT = {"broadwell": 24, "epyc": 96}

#: Representative suite subset — every sparsity family, small through
#: large.  The figure benchmarks and ``repro bench`` default to it.
DEFAULT_MATRICES = (
    "inline1", "Flan_1565", "Queen4147", "Nm7",
    "nlpkkt160", "nlpkkt240", "twitter7", "webbase-2001",
)


@dataclass(frozen=True)
class Cell:
    """One point of the experiment grid."""

    machine: str
    matrix: str
    solver: str
    version: str
    block_count: int = 64
    iterations: int = 2
    width: Optional[int] = None
    first_touch: bool = True
    seed: int = 0

    def config(self) -> dict:
        """Canonical key material for the result cache.

        ``libcsr`` ignores the block count (its grain is one row chunk
        per core), so it is normalized out of the key — every
        ``libcsr`` cell of a block-count sweep hits the same entry.
        """
        return {
            "machine": self.machine,
            "matrix": self.matrix,
            "solver": self.solver,
            "version": self.version,
            "block_count": (None if self.version == "libcsr"
                            else int(self.block_count)),
            "iterations": int(self.iterations),
            "width": self.width,
            "first_touch": bool(self.first_touch),
            "seed": int(self.seed),
        }

    def label(self) -> str:
        return (f"{self.machine}/{self.matrix}/{self.solver}/"
                f"{self.version}@{self.block_count}x{self.iterations}")


def run_cell_config(config: dict) -> RunResultSummary:
    """Simulate one cell (cache-oblivious; the runner handles caching)."""
    from repro.analysis.experiment import run_version

    return run_version(
        config["machine"],
        config["matrix"],
        config["solver"],
        config["version"],
        block_count=int(config.get("block_count") or 64),
        iterations=int(config.get("iterations", 2)),
        width=config.get("width"),
        first_touch=bool(config.get("first_touch", True)),
        seed=int(config.get("seed", 0)),
    ).summary()


#: Stderr-tail capture budget: what a failure record retains of the
#: worker's stderr stream (warnings, native-library chatter, and the
#: formatted traceback).  Bounded so a chatty cell can't bloat the
#: failure table or the service audit log.
STDERR_TAIL_LINES = 20
STDERR_TAIL_CHARS = 4000


def stderr_tail(text: str, lines: int = STDERR_TAIL_LINES,
                chars: int = STDERR_TAIL_CHARS) -> str:
    """Last ``lines`` lines (at most ``chars`` chars) of a stream."""
    text = text[-chars * 4:]
    tail = "\n".join(text.splitlines()[-lines:])
    return tail[-chars:]


class WorkerFailure(RuntimeError):
    """A cell failed in a worker; carries the captured stderr tail.

    Raised by :func:`_pool_worker` instead of the original exception so
    the parent's failure table (and the serve layer's audit log) can
    show *what the worker printed* — warnings and the full traceback —
    not just the exception repr.  Both fields sit in ``args`` so the
    exception pickles across a ``ProcessPoolExecutor`` intact.
    """

    def __init__(self, error: str, stderr_tail: str = ""):
        super().__init__(error, stderr_tail)
        self.error = error
        self.stderr_tail = stderr_tail

    def __str__(self) -> str:
        return self.error


def _pool_worker(config: dict) -> tuple:
    """Child-process entry: plain dicts in, plain dicts out (picklable).

    The cell runs under stderr capture; on failure the exception is
    re-raised as a :class:`WorkerFailure` whose tail holds whatever the
    cell wrote to stderr plus the formatted traceback — the parent
    process cannot see a pool child's stderr otherwise.
    """
    t0 = time.perf_counter()
    buf = io.StringIO()
    try:
        with contextlib.redirect_stderr(buf):
            summary = run_cell_config(config)
    except Exception as e:
        traceback.print_exc(file=buf)
        raise WorkerFailure(f"{type(e).__name__}: {e}",
                            stderr_tail(buf.getvalue())) from None
    return summary.to_dict(), time.perf_counter() - t0


class SweepError(RuntimeError):
    """A sweep finished with cells that failed every retry.

    ``failures`` is a list of ``{"cell", "key", "attempts", "error",
    "stderr"}`` dicts, one per exhausted cell, in first-appearance
    order; the message renders them as a table, with each non-empty
    stderr tail indented under its cell.  Successfully simulated cells
    were still cached before this was raised, so a re-run only repeats
    the failed work.
    """

    def __init__(self, failures: List[dict]):
        self.failures = failures
        lines = [f"{len(failures)} cell(s) failed after retries:"]
        for f in failures:
            lines.append(
                f"  {f['cell']}  attempts={f['attempts']}  {f['error']}"
            )
            for tail_line in (f.get("stderr") or "").splitlines():
                lines.append(f"      stderr| {tail_line}")
        super().__init__("\n".join(lines))


class ExperimentRunner:
    """Expand → dedupe → cache-check → (parallel) simulate → report.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`; defaults to the process-wide one.
        Pass ``ResultCache(enabled=False)`` to force cold runs.
    jobs:
        Worker processes for cache misses.  ``1`` (default, or
        ``$REPRO_BENCH_JOBS``) runs inline — no pool, no pickling.
        ``0`` auto-detects: one worker per available CPU
        (``os.cpu_count()``).
    progress:
        Optional callable invoked with one line per completed cell.
    timeout:
        Per-cell wall-clock budget in seconds for pool execution
        (``None`` = unlimited).  Scaled by the batch size per worker,
        it bounds how long a wedged worker can hold the sweep; expired
        cells are retried, then reported in the failure table.  Inline
        execution cannot preempt a cell, so the timeout only applies
        when a pool is used.
    attempts:
        Total tries per cell (default 2: one run + one retry) before
        the cell lands in the failure table.
    backoff:
        Base of the exponential retry backoff in seconds (sleep
        ``backoff * 2**(attempt-1)`` before re-trying).
    pool_worker:
        The per-cell execution callable, ``config -> (summary_dict,
        seconds)``.  Injectable so the orchestration tests can run
        against crashing/hanging workers; everything else should keep
        the default.
    """

    #: A crashed pool (a worker died, poisoning every queued future) is
    #: rebuilt and the affected cells resubmitted — without charging
    #: them a retry, since the crash cannot be attributed to one cell —
    #: at most this many times before degrading to inline execution.
    max_pool_rebuilds = 3

    def __init__(self, cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 timeout: Optional[float] = None,
                 attempts: int = 2,
                 backoff: float = 0.25,
                 pool_worker: Callable[[dict], tuple] = _pool_worker):
        self.cache = cache if cache is not None else default_cache()
        if jobs is None:
            jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, jobs)
        self.progress = progress
        self.timeout = timeout
        self.attempts = max(1, int(attempts))
        self.backoff = max(0.0, float(backoff))
        self.pool_worker = pool_worker
        self.report: List[dict] = []

    # ------------------------------------------------------------------
    def _note(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def run_cells(self, cells: Sequence[Cell]) -> List[RunResultSummary]:
        """Run every cell; returns summaries in input order.

        Identical cells (after key normalization) are simulated once.
        """
        t_start = time.perf_counter()
        self.report = []
        order: List[str] = []            # unique keys, first-appearance order
        configs: Dict[str, dict] = {}
        labels: Dict[str, str] = {}
        keys: List[str] = []             # per input cell
        for cell in cells:
            config = cell.config()
            key = self.cache.key(config)
            keys.append(key)
            if key not in configs:
                configs[key] = config
                labels[key] = cell.label()
                order.append(key)

        results: Dict[str, RunResultSummary] = {}
        miss_keys: List[str] = []
        for key in order:
            t0 = time.perf_counter()
            hit = self.cache.get(configs[key])
            if hit is not None:
                results[key] = hit
                dt = time.perf_counter() - t0
                self.report.append({
                    "cell": labels[key], "key": key,
                    "cached": True, "seconds": dt,
                })
                self._note(f"[cache] {labels[key]} ({dt * 1e3:.1f} ms)")
            else:
                miss_keys.append(key)

        if miss_keys:
            if self.jobs > 1 and len(miss_keys) > 1:
                self._prebuild_prep(miss_keys, configs)
            self._run_misses(miss_keys, configs, labels, results)

        self.total_seconds = time.perf_counter() - t_start
        return [results[k] for k in keys]

    def _prebuild_prep(self, miss_keys, configs) -> None:
        """Build each distinct prep artifact once before the fan-out.

        Different cells (versions, iteration counts, seeds) share prep
        subkeys, so building in the parent means pool workers *load*
        the census/DAG/compiled plans instead of each rebuilding them.
        Repeats are free (the in-process dag memo absorbs them), a
        disabled store makes this a no-op, and a prebuild failure is
        swallowed — the cell's ordinary run will surface it with the
        full retry machinery.
        """
        from repro.analysis.experiment import prebuild_prep
        from repro.bench.prep import default_prep_store

        store = default_prep_store()
        if not store.enabled:
            return
        t0 = time.perf_counter()
        built = set()
        for key in miss_keys:
            c = configs[key]
            try:
                pc = prebuild_prep(
                    c["machine"], c["matrix"], c["solver"], c["version"],
                    block_count=int(c.get("block_count") or 64),
                    width=c.get("width"),
                    first_touch=bool(c.get("first_touch", True)),
                )
            except Exception as e:
                self._note(f"[prep]  skipped ({type(e).__name__}: {e})")
                continue
            built.add(store.key(pc))
        if built:
            self._note(
                f"[prep]  {len(built)} artifact(s) ready in "
                f"{time.perf_counter() - t0:.2f} s"
            )

    def _run_misses(self, miss_keys, configs, labels, results) -> None:
        """Simulate the cache misses, surviving sick workers.

        Three layers of degradation, so one bad cell or one dead
        worker never loses a whole sweep:

        1. cells whose worker raised or timed out are retried with
           exponential backoff, up to ``attempts`` tries each;
        2. a crashed pool (``BrokenProcessPool``) is rebuilt and the
           poisoned cells resubmitted, up to ``max_pool_rebuilds``;
        3. if the pool stays unhealthy, the leftovers run inline,
           sequentially, in this process.

        Only cells that exhaust their attempts end up in the
        :class:`SweepError` failure table — everything else was
        simulated and cached before the raise.
        """
        attempt_count: Dict[str, int] = {k: 0 for k in miss_keys}
        failures: Dict[str, tuple] = {}  # key -> (error, stderr tail)
        pending = list(miss_keys)
        if self.jobs > 1 and len(pending) > 1:
            pending = self._run_pool(pending, attempt_count, failures,
                                     configs, labels, results)
        self._run_inline(pending, attempt_count, failures,
                         configs, labels, results)
        if failures:
            raise SweepError([
                {"cell": labels[k], "key": k,
                 "attempts": attempt_count[k],
                 "error": failures[k][0], "stderr": failures[k][1]}
                for k in miss_keys if k in failures
            ])

    @staticmethod
    def _failure_fields(exc: BaseException) -> tuple:
        """(error text, stderr tail) of a worker exception.

        :class:`WorkerFailure` carries its own captured tail; anything
        else (injected test workers, pickling errors) degrades to the
        plain exception repr with an empty tail.
        """
        if isinstance(exc, WorkerFailure):
            return exc.error, exc.stderr_tail
        return f"{type(exc).__name__}: {exc}", ""

    def _fail_or_requeue(self, key, exc_text, attempt_count, failures,
                         next_pending, stderr: str = "") -> None:
        attempt_count[key] += 1
        if attempt_count[key] >= self.attempts:
            failures[key] = (exc_text, stderr)
        else:
            next_pending.append(key)

    @staticmethod
    def _kill_pool(pool) -> None:
        """Tear a pool down even if its workers are wedged.

        ``shutdown`` alone waits for running tasks; a cell stuck in an
        infinite loop would hold the sweep forever, so the worker
        processes are terminated first (``_processes`` is private API,
        but the stdlib offers no public kill switch).
        """
        procs = getattr(pool, "_processes", None) or {}
        for p in list(procs.values()):
            try:
                p.terminate()
            except OSError:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _run_pool(self, pending, attempt_count, failures,
                  configs, labels, results) -> List[str]:
        """Pool execution rounds; returns cells left for inline."""
        rebuilds = 0
        rounds = 0
        pool = None
        try:
            while pending:
                if pool is None:
                    try:
                        pool = ProcessPoolExecutor(max_workers=self.jobs)
                    except OSError:
                        return pending  # can't fork: degrade to inline
                if rounds and self.backoff:
                    time.sleep(self.backoff * 2 ** min(rounds - 1, 4))
                rounds += 1
                futs = {
                    pool.submit(self.pool_worker, configs[k]): k
                    for k in pending
                }
                next_pending: List[str] = []
                deadline = None
                if self.timeout is not None:
                    # Per-cell budget scaled by queue depth per worker:
                    # a full batch legitimately takes n/jobs cell-times.
                    batches = max(1, math.ceil(len(pending) / self.jobs))
                    deadline = time.monotonic() + self.timeout * batches
                not_done = set(futs)
                broken = False
                while not_done:
                    budget = None
                    if deadline is not None:
                        budget = max(0.0, deadline - time.monotonic())
                    done, not_done = wait(not_done, timeout=budget)
                    if not done:
                        # Batch deadline expired: whatever is still
                        # running is wedged.  Kill the pool, charge the
                        # unfinished cells one attempt each.
                        for f in not_done:
                            f.cancel()
                            self._fail_or_requeue(
                                futs[f],
                                f"timed out (> {self.timeout:.1f} s/cell)",
                                attempt_count, failures, next_pending,
                            )
                        self._kill_pool(pool)
                        pool = None
                        broken = True
                        break
                    for f in done:
                        key = futs[f]
                        try:
                            summary_dict, dt = f.result()
                        except BrokenProcessPool:
                            # A worker died; every queued future is
                            # poisoned and none of them is to blame.
                            # Requeue without charging an attempt.
                            next_pending.append(key)
                            broken = True
                        except Exception as e:  # clean worker failure
                            text, tail = self._failure_fields(e)
                            self._fail_or_requeue(
                                key, text, attempt_count, failures,
                                next_pending, stderr=tail,
                            )
                        else:
                            summary = RunResultSummary.from_dict(
                                summary_dict
                            )
                            self._finish_miss(key, configs, labels,
                                              results, summary, dt)
                if broken and pool is not None:
                    self._kill_pool(pool)
                    pool = None
                if broken:
                    rebuilds += 1
                    if rebuilds > self.max_pool_rebuilds:
                        self._note(
                            "[pool]  unhealthy after "
                            f"{rebuilds - 1} rebuilds; degrading to "
                            "inline execution"
                        )
                        return next_pending
                pending = next_pending
            return []
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _run_inline(self, pending, attempt_count, failures,
                    configs, labels, results) -> None:
        """Sequential in-process execution with the same retry rules."""
        for key in pending:
            while True:
                try:
                    summary_dict, dt = self.pool_worker(configs[key])
                    summary = RunResultSummary.from_dict(summary_dict)
                except Exception as e:
                    attempt_count[key] += 1
                    if attempt_count[key] >= self.attempts:
                        failures[key] = self._failure_fields(e)
                        break
                    if self.backoff:
                        time.sleep(
                            self.backoff
                            * 2 ** min(attempt_count[key] - 1, 4)
                        )
                    continue
                self._finish_miss(key, configs, labels, results,
                                  summary, dt)
                break

    def _finish_miss(self, key, configs, labels, results, summary,
                     dt) -> None:
        self.cache.put(configs[key], summary)
        results[key] = summary
        self.report.append({
            "cell": labels[key], "key": key,
            "cached": False, "seconds": dt,
        })
        self._note(f"[run]   {labels[key]} ({dt:.2f} s)")

    # ------------------------------------------------------------------
    def run_grid(self, **grid) -> List[RunResultSummary]:
        """Shorthand: :func:`expand_grid` then :meth:`run_cells`."""
        return self.run_cells(expand_grid(**grid))

    def format_report(self) -> str:
        """Human-readable summary of the last :meth:`run_cells`."""
        hits = sum(1 for r in self.report if r["cached"])
        misses = len(self.report) - hits
        sim_s = sum(r["seconds"] for r in self.report if not r["cached"])
        lines = [
            f"{len(self.report)} unique cells: {hits} cached, "
            f"{misses} simulated ({sim_s:.2f} s simulation, "
            f"{getattr(self, 'total_seconds', 0.0):.2f} s wall, "
            f"jobs={self.jobs})",
        ]
        quarantined = getattr(self.cache, "quarantined", 0)
        if quarantined:
            lines.append(
                f"  warning: {quarantined} corrupt cache entr"
                f"{'y' if quarantined == 1 else 'ies'} quarantined to "
                f"{self.cache.quarantine_dir()}"
            )
        slowest = sorted(
            (r for r in self.report if not r["cached"]),
            key=lambda r: -r["seconds"],
        )[:5]
        for r in slowest:
            lines.append(f"  slowest: {r['cell']} {r['seconds']:.2f} s")
        return "\n".join(lines)


def expand_grid(
    machines: Sequence[str] = ("broadwell",),
    matrices: Sequence[str] = (),
    solvers: Sequence[str] = ("lanczos",),
    versions: Sequence[str] = ("libcsr", "libcsb", "deepsparse", "hpx",
                               "regent"),
    block_counts: Optional[Sequence[int]] = None,
    iterations: int = 2,
    width: Optional[int] = None,
    first_touch: bool = True,
    seed: int = 0,
) -> List[Cell]:
    """Cartesian grid spec → cell list (deterministic order).

    With ``block_counts=None`` each version gets its §5.4 rule-of-thumb
    granularity for the machine (Regent coarser than DeepSparse/HPX).
    """
    cells = []
    for machine in machines:
        for matrix in matrices:
            for solver in solvers:
                for version in versions:
                    if block_counts is None:
                        table = (REGENT_BLOCK_COUNT
                                 if version == "regent"
                                 else DEFAULT_BLOCK_COUNT)
                        bcs = [table.get(machine, 64)]
                    else:
                        bcs = list(block_counts)
                    for bc in bcs:
                        cells.append(Cell(
                            machine=machine, matrix=matrix,
                            solver=solver, version=version,
                            block_count=int(bc), iterations=iterations,
                            width=width, first_touch=first_touch,
                            seed=seed,
                        ))
    return cells
