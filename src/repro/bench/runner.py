"""The parallel experiment orchestrator.

:class:`ExperimentRunner` is the one path every sweep goes through:

1. expand a grid spec into cells (:func:`expand_grid`),
2. dedupe identical cells,
3. serve what the on-disk cache already has,
4. fan the misses out over a ``ProcessPoolExecutor`` (the simulator is
   pure Python and CPU-bound, so *processes*, not threads, are the
   right parallelism — the GIL serializes threads),
5. persist fresh summaries and return results in input order.

Result ordering is deterministic and independent of ``jobs``: cells
are keyed, executed by key order of first appearance, and re-assembled
into the caller's order, so ``--jobs 8`` returns exactly what
``--jobs 1`` returns.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.cache import ResultCache, default_cache
from repro.sim.engine import RunResultSummary

__all__ = [
    "Cell",
    "DEFAULT_BLOCK_COUNT",
    "DEFAULT_MATRICES",
    "ExperimentRunner",
    "REGENT_BLOCK_COUNT",
    "expand_grid",
    "run_cell_config",
]

#: Rule-of-thumb block counts for the headline comparisons (§5.4:
#: DeepSparse/HPX 32–63 on Broadwell, 64–127 on EPYC).
DEFAULT_BLOCK_COUNT = {"broadwell": 48, "epyc": 96}
#: Regent favours coarse grains (paper: 16–31); on the simulated EPYC
#: its workers starve below ~96 blocks (deviation in EXPERIMENTS.md).
REGENT_BLOCK_COUNT = {"broadwell": 24, "epyc": 96}

#: Representative suite subset — every sparsity family, small through
#: large.  The figure benchmarks and ``repro bench`` default to it.
DEFAULT_MATRICES = (
    "inline1", "Flan_1565", "Queen4147", "Nm7",
    "nlpkkt160", "nlpkkt240", "twitter7", "webbase-2001",
)


@dataclass(frozen=True)
class Cell:
    """One point of the experiment grid."""

    machine: str
    matrix: str
    solver: str
    version: str
    block_count: int = 64
    iterations: int = 2
    width: Optional[int] = None
    first_touch: bool = True
    seed: int = 0

    def config(self) -> dict:
        """Canonical key material for the result cache.

        ``libcsr`` ignores the block count (its grain is one row chunk
        per core), so it is normalized out of the key — every
        ``libcsr`` cell of a block-count sweep hits the same entry.
        """
        return {
            "machine": self.machine,
            "matrix": self.matrix,
            "solver": self.solver,
            "version": self.version,
            "block_count": (None if self.version == "libcsr"
                            else int(self.block_count)),
            "iterations": int(self.iterations),
            "width": self.width,
            "first_touch": bool(self.first_touch),
            "seed": int(self.seed),
        }

    def label(self) -> str:
        return (f"{self.machine}/{self.matrix}/{self.solver}/"
                f"{self.version}@{self.block_count}x{self.iterations}")


def run_cell_config(config: dict) -> RunResultSummary:
    """Simulate one cell (cache-oblivious; the runner handles caching)."""
    from repro.analysis.experiment import run_version

    return run_version(
        config["machine"],
        config["matrix"],
        config["solver"],
        config["version"],
        block_count=int(config.get("block_count") or 64),
        iterations=int(config.get("iterations", 2)),
        width=config.get("width"),
        first_touch=bool(config.get("first_touch", True)),
        seed=int(config.get("seed", 0)),
    ).summary()


def _pool_worker(config: dict) -> tuple:
    """Child-process entry: plain dicts in, plain dicts out (picklable)."""
    t0 = time.perf_counter()
    summary = run_cell_config(config)
    return summary.to_dict(), time.perf_counter() - t0


class ExperimentRunner:
    """Expand → dedupe → cache-check → (parallel) simulate → report.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`; defaults to the process-wide one.
        Pass ``ResultCache(enabled=False)`` to force cold runs.
    jobs:
        Worker processes for cache misses.  ``1`` (default, or
        ``$REPRO_BENCH_JOBS``) runs inline — no pool, no pickling.
        ``0`` auto-detects: one worker per available CPU
        (``os.cpu_count()``).
    progress:
        Optional callable invoked with one line per completed cell.
    """

    def __init__(self, cache: Optional[ResultCache] = None,
                 jobs: Optional[int] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.cache = cache if cache is not None else default_cache()
        if jobs is None:
            jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, jobs)
        self.progress = progress
        self.report: List[dict] = []

    # ------------------------------------------------------------------
    def _note(self, line: str) -> None:
        if self.progress is not None:
            self.progress(line)

    def run_cells(self, cells: Sequence[Cell]) -> List[RunResultSummary]:
        """Run every cell; returns summaries in input order.

        Identical cells (after key normalization) are simulated once.
        """
        t_start = time.perf_counter()
        self.report = []
        order: List[str] = []            # unique keys, first-appearance order
        configs: Dict[str, dict] = {}
        labels: Dict[str, str] = {}
        keys: List[str] = []             # per input cell
        for cell in cells:
            config = cell.config()
            key = self.cache.key(config)
            keys.append(key)
            if key not in configs:
                configs[key] = config
                labels[key] = cell.label()
                order.append(key)

        results: Dict[str, RunResultSummary] = {}
        miss_keys: List[str] = []
        for key in order:
            t0 = time.perf_counter()
            hit = self.cache.get(configs[key])
            if hit is not None:
                results[key] = hit
                dt = time.perf_counter() - t0
                self.report.append({
                    "cell": labels[key], "key": key,
                    "cached": True, "seconds": dt,
                })
                self._note(f"[cache] {labels[key]} ({dt * 1e3:.1f} ms)")
            else:
                miss_keys.append(key)

        if miss_keys:
            self._run_misses(miss_keys, configs, labels, results)

        self.total_seconds = time.perf_counter() - t_start
        return [results[k] for k in keys]

    def _run_misses(self, miss_keys, configs, labels, results) -> None:
        if self.jobs > 1 and len(miss_keys) > 1:
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                mapped = pool.map(
                    _pool_worker, [configs[k] for k in miss_keys]
                )
                for key, (summary_dict, dt) in zip(miss_keys, mapped):
                    summary = RunResultSummary.from_dict(summary_dict)
                    self._finish_miss(key, configs, labels, results,
                                      summary, dt)
        else:
            for key in miss_keys:
                t0 = time.perf_counter()
                summary = run_cell_config(configs[key])
                self._finish_miss(key, configs, labels, results,
                                  summary, time.perf_counter() - t0)

    def _finish_miss(self, key, configs, labels, results, summary,
                     dt) -> None:
        self.cache.put(configs[key], summary)
        results[key] = summary
        self.report.append({
            "cell": labels[key], "key": key,
            "cached": False, "seconds": dt,
        })
        self._note(f"[run]   {labels[key]} ({dt:.2f} s)")

    # ------------------------------------------------------------------
    def run_grid(self, **grid) -> List[RunResultSummary]:
        """Shorthand: :func:`expand_grid` then :meth:`run_cells`."""
        return self.run_cells(expand_grid(**grid))

    def format_report(self) -> str:
        """Human-readable summary of the last :meth:`run_cells`."""
        hits = sum(1 for r in self.report if r["cached"])
        misses = len(self.report) - hits
        sim_s = sum(r["seconds"] for r in self.report if not r["cached"])
        lines = [
            f"{len(self.report)} unique cells: {hits} cached, "
            f"{misses} simulated ({sim_s:.2f} s simulation, "
            f"{getattr(self, 'total_seconds', 0.0):.2f} s wall, "
            f"jobs={self.jobs})",
        ]
        slowest = sorted(
            (r for r in self.report if not r["cached"]),
            key=lambda r: -r["seconds"],
        )[:5]
        for r in slowest:
            lines.append(f"  slowest: {r['cell']} {r['seconds']:.2f} s")
        return "\n".join(lines)


def expand_grid(
    machines: Sequence[str] = ("broadwell",),
    matrices: Sequence[str] = (),
    solvers: Sequence[str] = ("lanczos",),
    versions: Sequence[str] = ("libcsr", "libcsb", "deepsparse", "hpx",
                               "regent"),
    block_counts: Optional[Sequence[int]] = None,
    iterations: int = 2,
    width: Optional[int] = None,
    first_touch: bool = True,
    seed: int = 0,
) -> List[Cell]:
    """Cartesian grid spec → cell list (deterministic order).

    With ``block_counts=None`` each version gets its §5.4 rule-of-thumb
    granularity for the machine (Regent coarser than DeepSparse/HPX).
    """
    cells = []
    for machine in machines:
        for matrix in matrices:
            for solver in solvers:
                for version in versions:
                    if block_counts is None:
                        table = (REGENT_BLOCK_COUNT
                                 if version == "regent"
                                 else DEFAULT_BLOCK_COUNT)
                        bcs = [table.get(machine, 64)]
                    else:
                        bcs = list(block_counts)
                    for bc in bcs:
                        cells.append(Cell(
                            machine=machine, matrix=matrix,
                            solver=solver, version=version,
                            block_count=int(bc), iterations=iterations,
                            width=width, first_touch=first_touch,
                            seed=seed,
                        ))
    return cells
