"""Discrete-event execution of task DAGs over the machine model.

The engine plays a :class:`~repro.graph.dag.TaskDAG` on P simulated
cores under a pluggable scheduling policy, charging each task its
compute time (flops at a kernel-class efficiency) plus its memory time
(cache-simulator misses priced per level, NUMA-aware at the DRAM
level), plus the runtime's per-task overhead.  The paper's §5 premise —
"all runtimes are executing the same DAG … their performance
differences are due to the different scheduling algorithms" — is taken
literally: one DAG, four policies.
"""

from repro.sim.cost import CostModel, KIND_EFFICIENCY
from repro.sim.flowgraph import FlowGraph, FlowRecord
from repro.sim.schedulers import (
    Scheduler,
    DeepSparseScheduler,
    HPXScheduler,
    RegentScheduler,
)
from repro.sim.engine import SimulationEngine, RunResult, run_bsp

__all__ = [
    "CostModel",
    "KIND_EFFICIENCY",
    "FlowGraph",
    "FlowRecord",
    "Scheduler",
    "DeepSparseScheduler",
    "HPXScheduler",
    "RegentScheduler",
    "SimulationEngine",
    "RunResult",
    "run_bsp",
]
