"""Execution flow graphs — the data behind Figs. 10 and 13.

Every executed task leaves a :class:`FlowRecord` (kernel, core, start,
end, iteration).  :class:`FlowGraph` offers the reductions the paper's
flow-graph discussion uses: per-kernel start/finish envelopes (to see
pipelining — kernels overlapping in time — versus BSP's disjoint
phases), per-core utilization, and an ASCII Gantt rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Tuple

__all__ = ["FlowRecord", "FlowGraph", "FlowSummary"]


class FlowRecord(NamedTuple):
    """One task execution.

    A ``NamedTuple`` rather than a dataclass: one record is appended
    per executed task, so construction cost is on the simulator's hot
    path (tuple construction is several times cheaper than a frozen
    dataclass ``__init__``).
    """

    tid: int
    kernel: str
    core: int
    start: float
    end: float
    iteration: int


class FlowGraph:
    """Append-only trace of task executions for one run."""

    __slots__ = ("records",)

    def __init__(self):
        self.records: List[FlowRecord] = []

    def record(self, tid, kernel, core, start, end, iteration) -> None:
        self.records.append(
            FlowRecord(tid, kernel, core, start, end, iteration)
        )

    def __len__(self):
        return len(self.records)

    @property
    def makespan(self) -> float:
        return max((r.end for r in self.records), default=0.0)

    # ------------------------------------------------------------------
    def kernel_envelopes(self) -> Dict[str, Tuple[float, float]]:
        """First start and last finish per kernel.

        In a BSP execution the envelopes of consecutive kernels are
        disjoint (barriers); in pipelined task execution they overlap —
        the overlap fraction is the quantitative signature of Figs. 10
        and 13.
        """
        env: Dict[str, Tuple[float, float]] = {}
        for r in self.records:
            lo, hi = env.get(r.kernel, (r.start, r.end))
            env[r.kernel] = (min(lo, r.start), max(hi, r.end))
        return env

    def kernel_overlap_fraction(self) -> float:
        """Fraction of kernel-envelope time shared with another kernel.

        0 ⇒ perfectly phased (BSP-like); towards 1 ⇒ fully pipelined.
        """
        env = sorted(self.kernel_envelopes().values())
        if len(env) < 2:
            return 0.0
        total = sum(hi - lo for lo, hi in env)
        if total <= 0:
            return 0.0
        overlap = 0.0
        for i, (lo1, hi1) in enumerate(env):
            for lo2, hi2 in env[i + 1:]:
                if lo2 >= hi1:
                    break
                overlap += max(0.0, min(hi1, hi2) - max(lo1, lo2))
        return min(1.0, overlap / total)

    def core_busy_time(self) -> Dict[int, float]:
        busy: Dict[int, float] = {}
        for r in self.records:
            busy[r.core] = busy.get(r.core, 0.0) + (r.end - r.start)
        return busy

    def utilization(self, n_cores: int) -> float:
        """Mean busy fraction over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return sum(self.core_busy_time().values()) / (span * n_cores)

    def iteration_spans(self) -> Dict[int, Tuple[float, float]]:
        spans: Dict[int, Tuple[float, float]] = {}
        for r in self.records:
            lo, hi = spans.get(r.iteration, (r.start, r.end))
            spans[r.iteration] = (min(lo, r.start), max(hi, r.end))
        return spans

    # ------------------------------------------------------------------
    def summary(self) -> "FlowSummary":
        """Aggregate view of this trace (serializable, records dropped)."""
        return FlowSummary(
            n_records=len(self.records),
            makespan=self.makespan,
            envelopes=self.kernel_envelopes(),
            overlap_fraction=self.kernel_overlap_fraction(),
            core_busy=self.core_busy_time(),
            spans=self.iteration_spans(),
        )

    def to_dict(self) -> dict:
        """Full record list as JSON-serializable rows."""
        return {
            "records": [
                [r.tid, r.kernel, r.core, r.start, r.end, r.iteration]
                for r in self.records
            ]
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FlowGraph":
        fg = cls()
        for tid, kernel, core, start, end, iteration in d.get("records", []):
            fg.record(int(tid), str(kernel), int(core), float(start),
                      float(end), int(iteration))
        return fg

    # ------------------------------------------------------------------
    def to_gantt(self, width: int = 100, max_cores: int = 32) -> str:
        """ASCII Gantt chart: one row per core, one letter per kernel."""
        if not self.records:
            return "(empty flow graph)"
        span = self.makespan
        kernels = sorted({r.kernel for r in self.records})
        letters = {k: chr(ord("A") + i % 26) for i, k in enumerate(kernels)}
        cores = sorted({r.core for r in self.records})[:max_cores]
        lines = []
        legend = "  ".join(f"{letters[k]}={k}" for k in kernels)
        lines.append(f"makespan {span * 1e3:.3f} ms   {legend}")
        for c in cores:
            row = [" "] * width
            for r in self.records:
                if r.core != c:
                    continue
                a = int(r.start / span * (width - 1))
                b = max(a + 1, int(r.end / span * (width - 1)) + 1)
                for x in range(a, min(b, width)):
                    row[x] = letters[r.kernel]
            lines.append(f"core {c:3d} |{''.join(row)}|")
        return "\n".join(lines)


@dataclass
class FlowSummary:
    """Aggregates of a :class:`FlowGraph` without the per-task records.

    This is what the on-disk result cache stores: everything the
    figure/benchmark assertions read (envelopes, overlap fraction,
    per-core busy time, iteration spans) survives the round trip; the
    raw record list — only needed for Gantt rendering — does not.
    The query surface mirrors :class:`FlowGraph` so cached summaries
    are drop-in for analysis code.
    """

    n_records: int = 0
    makespan: float = 0.0
    envelopes: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    overlap_fraction: float = 0.0
    core_busy: Dict[int, float] = field(default_factory=dict)
    spans: Dict[int, Tuple[float, float]] = field(default_factory=dict)

    # -- FlowGraph-compatible query surface -----------------------------
    def __len__(self) -> int:
        return self.n_records

    def kernel_envelopes(self) -> Dict[str, Tuple[float, float]]:
        return dict(self.envelopes)

    def kernel_overlap_fraction(self) -> float:
        return self.overlap_fraction

    def core_busy_time(self) -> Dict[int, float]:
        return dict(self.core_busy)

    def utilization(self, n_cores: int) -> float:
        if self.makespan <= 0:
            return 0.0
        return sum(self.core_busy.values()) / (self.makespan * n_cores)

    def iteration_spans(self) -> Dict[int, Tuple[float, float]]:
        return dict(self.spans)

    def to_gantt(self, width: int = 100, max_cores: int = 32) -> str:
        return ("(flow records not retained in cached summary; "
                "re-run with a cold cache for a Gantt rendering)")

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "n_records": self.n_records,
            "makespan": self.makespan,
            "envelopes": {k: [lo, hi]
                          for k, (lo, hi) in self.envelopes.items()},
            "overlap_fraction": self.overlap_fraction,
            "core_busy": {str(c): t for c, t in self.core_busy.items()},
            "spans": {str(i): [lo, hi]
                      for i, (lo, hi) in self.spans.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FlowSummary":
        return cls(
            n_records=int(d.get("n_records", 0)),
            makespan=float(d.get("makespan", 0.0)),
            envelopes={str(k): (float(v[0]), float(v[1]))
                       for k, v in d.get("envelopes", {}).items()},
            overlap_fraction=float(d.get("overlap_fraction", 0.0)),
            core_busy={int(c): float(t)
                       for c, t in d.get("core_busy", {}).items()},
            spans={int(i): (float(v[0]), float(v[1]))
                   for i, v in d.get("spans", {}).items()},
        )
