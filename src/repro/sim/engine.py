"""The discrete-event engine and the BSP phase executor.

:class:`SimulationEngine.run` plays a DAG under an AMT scheduling
policy: cores pull ready tasks as the policy dictates, each execution
is priced by the cost model against live cache state, and iteration
boundaries are barriers (§4: DeepSparse reuses a single-iteration DAG
with barriers in between; HPX/Regent are barriered in practice by the
convergence check).

:func:`run_bsp` is the library baseline: each primitive call is one
parallel phase — tasks statically chunked over cores, a barrier at the
end — which is exactly the fork-join structure of the MKL-based
``libcsr``/``libcsb`` versions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.graph.dag import TaskDAG
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.perf import PerfCounters
from repro.machine.topology import MachineSpec
from repro.sim.cost import CostModel
from repro.sim.flowgraph import FlowGraph, FlowSummary
from repro.sim.schedulers import Scheduler

__all__ = ["RunResult", "RunResultSummary", "SimulationEngine", "run_bsp"]

_EPS = 1e-15


@dataclass
class RunResult:
    """Outcome of one simulated solver run."""

    machine: str
    policy: str
    total_time: float
    iteration_times: List[float]
    counters: PerfCounters
    flow: FlowGraph
    n_cores: int
    n_tasks_per_iteration: int

    @property
    def time_per_iteration(self) -> float:
        """Mean iteration wall time — the paper's reported quantity."""
        return self.total_time / max(1, len(self.iteration_times))

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup relative to a baseline run (libcsr in the paper)."""
        return baseline.time_per_iteration / self.time_per_iteration

    def summary(self) -> "RunResultSummary":
        """Serializable aggregate of this run (flow records dropped)."""
        return RunResultSummary(
            machine=self.machine,
            policy=self.policy,
            total_time=self.total_time,
            iteration_times=list(self.iteration_times),
            counters=self.counters,
            flow=self.flow.summary(),
            n_cores=self.n_cores,
            n_tasks_per_iteration=self.n_tasks_per_iteration,
        )


@dataclass
class RunResultSummary:
    """What the on-disk result cache stores for one simulated run.

    Drop-in for :class:`RunResult` everywhere the benchmarks and the
    analysis layer read results — timing, counters, flow *aggregates* —
    but without the per-task :class:`FlowRecord` list, so it serializes
    to a few KB regardless of DAG size.  ``to_dict``/``from_dict``
    round-trip bit-exactly (floats survive via ``repr`` in JSON).
    """

    machine: str
    policy: str
    total_time: float
    iteration_times: List[float]
    counters: PerfCounters
    flow: FlowSummary
    n_cores: int
    n_tasks_per_iteration: int

    @property
    def time_per_iteration(self) -> float:
        return self.total_time / max(1, len(self.iteration_times))

    def speedup_over(self, baseline) -> float:
        return baseline.time_per_iteration / self.time_per_iteration

    def summary(self) -> "RunResultSummary":
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "policy": self.policy,
            "total_time": self.total_time,
            "iteration_times": list(self.iteration_times),
            "counters": self.counters.to_dict(),
            "flow": self.flow.to_dict(),
            "n_cores": self.n_cores,
            "n_tasks_per_iteration": self.n_tasks_per_iteration,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunResultSummary":
        return cls(
            machine=str(d["machine"]),
            policy=str(d["policy"]),
            total_time=float(d["total_time"]),
            iteration_times=[float(t) for t in d["iteration_times"]],
            counters=PerfCounters.from_dict(d["counters"]),
            flow=FlowSummary.from_dict(d.get("flow", {})),
            n_cores=int(d["n_cores"]),
            n_tasks_per_iteration=int(d["n_tasks_per_iteration"]),
        )


def _default_barrier_cost(n_cores: int) -> float:
    """Tree barrier: ~0.4 µs per fan-in level."""
    return 0.4e-6 * max(1.0, math.log2(n_cores))


def _max_partitions(dag: TaskDAG) -> int:
    """Highest chunk partition count in the DAG (NUMA placement input)."""
    best = 0
    for t in dag.tasks:
        for h in t.reads + t.writes:
            if h.part is not None:
                best = max(best, h.part + 1)
    return max(1, best)


class SimulationEngine:
    """Event-driven execution of a TaskDAG under one scheduling policy.

    One engine instance owns one machine state (caches, NUMA
    placement); create a fresh engine per configuration so runs don't
    share warmth.
    """

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
    ):
        self.machine = machine
        self.cache = CacheHierarchy(machine)
        self.memory = MemoryModel(machine, first_touch=first_touch)
        self.cost = CostModel(machine, self.cache, self.memory)
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        dag: TaskDAG,
        scheduler: Scheduler,
        iterations: int = 1,
        barrier_cost: Optional[float] = None,
        record_flow: bool = True,
    ) -> RunResult:
        """Execute ``iterations`` barriered repetitions of the DAG."""
        if barrier_cost is None:
            barrier_cost = _default_barrier_cost(self.machine.n_cores)
        self.memory.configure_from_dag(dag)
        if self.memory.n_parts is None:
            self.memory.n_parts = _max_partitions(dag)
        scheduler.prepare(dag, self.machine, self.memory, seed=self.seed)
        self.cost.prepare(dag)
        counters = PerfCounters()
        # record_flow=False must actually skip recording, not record
        # every task and throw the trace away afterwards.
        flow = FlowGraph() if record_flow else None
        clock = 0.0
        iteration_times = []
        for it in range(iterations):
            t0 = clock
            scheduler.reset_iteration(it, t0)
            clock = self._run_iteration(dag, scheduler, counters, flow, it, t0)
            clock += barrier_cost
            iteration_times.append(clock - t0)
        return RunResult(
            machine=self.machine.name,
            policy=scheduler.name,
            total_time=clock,
            iteration_times=iteration_times,
            counters=counters,
            flow=flow if record_flow else FlowGraph(),
            n_cores=self.machine.n_cores,
            n_tasks_per_iteration=len(dag),
        )

    # ------------------------------------------------------------------
    def _run_iteration(self, dag, scheduler, counters, flow, it, t0) -> float:
        n = len(dag)
        if n == 0:
            return t0
        indeg = dag.in_degrees()
        # (time, tid, enabler_core): dep-free, waiting on the runtime.
        release_heap = []
        for tid, d in enumerate(indeg):
            if d == 0:
                heapq.heappush(
                    release_heap, (scheduler.release_time(tid, t0), tid, -1)
                )
        finish_heap = []  # (time, core, tid)
        n_cores = self.machine.n_cores
        # Idle cores as a flag array scanned in ascending id order —
        # same assignment order as the historical ``sorted(idle)``
        # without re-sorting a set on every scheduling round.
        idle = bytearray([1]) * n_cores
        n_idle = n_cores
        completed = 0
        time = t0
        tasks = dag.tasks
        succ = dag.succ
        charge = self.cost.charge
        pick = scheduler.pick
        overhead_of = scheduler.overhead
        has_ready = scheduler.has_ready
        release_time = scheduler.release_time
        record_flow = flow.record if flow is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Counter accumulation in locals, seeded from the running values
        # and stored back once per iteration: the sequence of float adds
        # is identical to per-task ``counters.record_task`` calls (same
        # running accumulator, same task order), so results are
        # bit-exact while the hot loop touches no instance attributes.
        n_exec = counters.tasks_executed
        busy_t = counters.busy_time
        ovh_t = counters.overhead_time
        comp_t = counters.compute_time
        mem_t = counters.memory_time
        l1m = counters.l1_misses
        l2m = counters.l2_misses
        l3m = counters.l3_misses
        ktime = counters.kernel_time
        ktasks = counters.kernel_tasks
        ktime_get = ktime.get
        ktasks_get = ktasks.get
        while completed < n:
            while release_heap and release_heap[0][0] <= time + _EPS:
                _, tid, enabler = heappop(release_heap)
                scheduler.on_ready(tid, time,
                                   enabler if enabler >= 0 else None)
            # Hand ready tasks to idle cores (policy picks per core).
            assigned = False
            if n_idle and has_ready():
                for core in range(n_cores):
                    if not idle[core]:
                        continue
                    tid = pick(core, time)
                    if tid is None:
                        continue
                    task = tasks[tid]
                    overhead = overhead_of(tid)
                    dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                    dur += overhead
                    heappush(finish_heap, (time + dur, core, tid))
                    kernel = task.kernel
                    n_exec += 1
                    busy_t += dur
                    ovh_t += overhead
                    comp_t += compute
                    mem_t += memory_t
                    l1m += m1
                    l2m += m2
                    l3m += m3
                    ktime[kernel] = ktime_get(kernel, 0.0) + dur
                    ktasks[kernel] = ktasks_get(kernel, 0) + 1
                    if record_flow is not None:
                        record_flow(tid, kernel, core, time,
                                    time + dur, it)
                    idle[core] = 0
                    n_idle -= 1
                    assigned = True
                    if not has_ready():
                        break
            if assigned:
                continue
            # Nothing assignable now: advance to the next event.
            if finish_heap:
                time = finish_heap[0][0]
                if n_idle and release_heap and release_heap[0][0] < time:
                    time = release_heap[0][0]
            elif n_idle and release_heap:
                time = release_heap[0][0]
            else:
                raise RuntimeError(
                    "simulation deadlock: tasks remain but no events pending"
                )
            while finish_heap and finish_heap[0][0] <= time + _EPS:
                _, core, tid = heappop(finish_heap)
                idle[core] = 1
                n_idle += 1
                completed += 1
                scheduler.on_complete(tid, core)
                for v in succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        rt = release_time(v, t0)
                        if rt < time:
                            rt = time
                        heappush(release_heap, (rt, v, core))
        counters.tasks_executed = n_exec
        counters.busy_time = busy_t
        counters.overhead_time = ovh_t
        counters.compute_time = comp_t
        counters.memory_time = mem_t
        counters.l1_misses = l1m
        counters.l2_misses = l2m
        counters.l3_misses = l3m
        return time


# ----------------------------------------------------------------------
def run_bsp(
    machine: MachineSpec,
    dag: TaskDAG,
    iterations: int = 1,
    first_touch: bool = True,
    flavor: str = "bsp",
    barrier_cost: Optional[float] = None,
    loop_overhead: float = 0.05e-6,
    record_flow: bool = True,
    nnz_balanced: bool = False,
) -> RunResult:
    """Phase-parallel (fork-join) execution of the same DAG.

    Tasks are grouped by originating primitive call (``task.seq``);
    each group is one parallel region: tasks sorted by partition index
    are statically chunked over cores (MKL/OpenMP static schedule), a
    barrier closes the phase.  Dependence edges are honoured by
    construction because phases execute in program order.
    """
    if barrier_cost is None:
        barrier_cost = _default_barrier_cost(machine.n_cores)
    cache = CacheHierarchy(machine)
    memory = MemoryModel(machine, first_touch=first_touch, scattered=True)
    memory.configure_from_dag(dag)
    if memory.n_parts is None:
        memory.n_parts = _max_partitions(dag)
    cost = CostModel(machine, cache, memory)
    cost.prepare(dag)
    counters = PerfCounters()
    flow = FlowGraph()
    n_cores = machine.n_cores
    tasks = dag.tasks
    pred = dag.pred

    # Phase partition: contiguous runs of equal seq, in program order.
    phases: List[List[int]] = []
    last_seq = None
    for t in tasks:
        if t.seq != last_seq:
            phases.append([])
            last_seq = t.seq
        phases[-1].append(t.tid)

    # The static chunk→core assignment of every phase is iteration-
    # invariant, so it is computed once up front (it used to be redone
    # per iteration).  Static chunked assignment in partition order:
    # library kernels balance differently per kernel class — MKL splits
    # sparse kernels by nonzeros, dense ones by rows — so the
    # chunk→core mapping shifts between phases on skewed matrices (the
    # cross-kernel locality loss inherent to the fork-join model).
    phase_assignments: List[List[tuple]] = []
    for phase in phases:
        # Row-group order; reduce tasks (no row index) sort last,
        # which is also a topological order of intra-phase edges.
        order = sorted(
            phase,
            key=lambda tid: (
                tasks[tid].params.get("i", float("inf")), tid
            ),
        )
        # The parallel loop ranges over row blocks: all tasks of a
        # row group stay on one core (the inner column loop is
        # serial), which also preserves intra-phase dependence
        # chains.  Library BSP phases split the groups statically
        # by row count; on matrices with skewed nonzero
        # distributions the heaviest chunk straggles and the
        # barrier makes everyone wait — the §1 load-imbalance cost
        # of the BSP model.  Set ``nnz_balanced`` for an idealized
        # baseline that splits sparse phases by nonzeros instead.
        groups: List[List[int]] = []
        last_i = object()
        for tid in order:
            gi = tasks[tid].params.get("i", tid)
            if gi != last_i:
                groups.append([])
                last_i = gi
            groups[-1].append(tid)
        ng = len(groups)
        if tasks[order[0]].kind == "sparse" and nnz_balanced:
            weights = [
                sum(max(1.0, tasks[t].shape.get("nnz", 1))
                    for t in g)
                for g in groups
            ]
            total_w = sum(weights)
            cum = 0.0
            group_core = []
            for wgt in weights:
                group_core.append(
                    min(n_cores - 1, int(cum / total_w * n_cores))
                )
                cum += wgt
        else:
            group_core = [k * n_cores // ng for k in range(ng)]
        phase_assignments.append([
            (tid, group_core[k])
            for k, g in enumerate(groups)
            for tid in g
        ])

    charge = cost.charge
    frecord = flow.record if record_flow else None
    # Local counter accumulation (bit-exact: same adds, same order as
    # per-task ``record_task`` calls on the fresh counters object).
    n_exec = 0
    busy_t = ovh_t = comp_t = mem_t = 0.0
    l1m = l2m = l3m = 0
    ktime = counters.kernel_time
    ktasks = counters.kernel_tasks
    ktime_get = ktime.get
    ktasks_get = ktasks.get
    clock = 0.0
    iteration_times = []
    for it in range(iterations):
        t0 = clock
        for assignment in phase_assignments:
            core_clock = [clock] * n_cores
            phase_end: dict = {}
            for tid, core in assignment:
                task = tasks[tid]
                dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                dur += loop_overhead
                # Intra-phase dependences (row chains stay on one core;
                # reduce tasks read partials from other cores) delay
                # the start beyond the core's own availability.
                start = core_clock[core]
                for p in pred[tid]:
                    e = phase_end.get(p)
                    if e is not None and e > start:
                        start = e
                end = start + dur
                core_clock[core] = end
                phase_end[tid] = end
                kernel = task.kernel
                n_exec += 1
                busy_t += dur
                ovh_t += loop_overhead
                comp_t += compute
                mem_t += memory_t
                l1m += m1
                l2m += m2
                l3m += m3
                ktime[kernel] = ktime_get(kernel, 0.0) + dur
                ktasks[kernel] = ktasks_get(kernel, 0) + 1
                if frecord is not None:
                    frecord(tid, kernel, core, start, end, it)
            clock = max(core_clock) + barrier_cost
        iteration_times.append(clock - t0)
    counters.tasks_executed = n_exec
    counters.busy_time = busy_t
    counters.overhead_time = ovh_t
    counters.compute_time = comp_t
    counters.memory_time = mem_t
    counters.l1_misses = l1m
    counters.l2_misses = l2m
    counters.l3_misses = l3m
    return RunResult(
        machine=machine.name,
        policy=flavor,
        total_time=clock,
        iteration_times=iteration_times,
        counters=counters,
        flow=flow,
        n_cores=n_cores,
        n_tasks_per_iteration=len(dag),
    )
