"""The discrete-event engine and the BSP phase executor.

:class:`SimulationEngine.run` plays a DAG under an AMT scheduling
policy: cores pull ready tasks as the policy dictates, each execution
is priced by the cost model against live cache state, and iteration
boundaries are barriers (§4: DeepSparse reuses a single-iteration DAG
with barriers in between; HPX/Regent are barriered in practice by the
convergence check).

:func:`run_bsp` is the library baseline: each primitive call is one
parallel phase — tasks statically chunked over cores, a barrier at the
end — which is exactly the fork-join structure of the MKL-based
``libcsr``/``libcsb`` versions.
"""

from __future__ import annotations

import heapq
import math
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.report import FaultReport
from repro.graph.dag import TaskDAG
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.perf import PerfCounters
from repro.machine.topology import MachineSpec
from repro.sim.cost import CostModel, apply_core_derate
from repro.sim.flowgraph import FlowGraph, FlowSummary
from repro.sim.schedulers import Scheduler

__all__ = ["RunResult", "RunResultSummary", "SimulationEngine", "run_bsp"]

_EPS = 1e-15


def _steady_state_enabled() -> bool:
    """Default for the steady-state fast path: on unless the
    ``REPRO_NO_STEADY_STATE`` environment kill-switch is set."""
    return not os.environ.get("REPRO_NO_STEADY_STATE")


def _machine_state_fingerprint(cache: CacheHierarchy,
                               memory: MemoryModel) -> tuple:
    """Hashable snapshot of every piece of mutable machine state.

    Taken at iteration barriers by the steady-state detector: per-level
    LRU contents *in LRU order* (eviction order is state), the
    coherence sharer maps, and any explicit NUMA placement pins.  The
    memoization dicts (``MemoryModel._domain_memo`` etc.) are excluded
    on purpose — they are pure caches that cannot change simulated
    values.
    """
    return (
        tuple(tuple(c._entries.items()) for c in cache.l1),
        tuple(tuple(c._entries.items()) for c in cache.l2),
        tuple(tuple(c._entries.items()) for c in cache.l3),
        tuple((k, tuple(sorted(v))) for k, v in cache._sharers.items()),
        tuple((k, tuple(sorted(v))) for k, v in cache._l3_sharers.items()),
        tuple(memory._placement.items()),
    )


@dataclass
class RunResult:
    """Outcome of one simulated solver run."""

    machine: str
    policy: str
    total_time: float
    iteration_times: List[float]
    counters: PerfCounters
    flow: FlowGraph
    n_cores: int
    n_tasks_per_iteration: int
    #: 0-based index of the first iteration produced by the
    #: steady-state tape replay instead of full simulation; ``None``
    #: when every iteration was simulated (fast path disabled, never
    #: detected, or the run is too short to arm it).
    steady_state_at: Optional[int] = None
    #: :class:`repro.faults.FaultReport` when the run executed under a
    #: non-empty fault plan; ``None`` on healthy runs.
    fault_report: Optional[FaultReport] = None

    @property
    def time_per_iteration(self) -> float:
        """Mean iteration wall time — the paper's reported quantity."""
        return self.total_time / max(1, len(self.iteration_times))

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup relative to a baseline run (libcsr in the paper)."""
        return baseline.time_per_iteration / self.time_per_iteration

    def summary(self) -> "RunResultSummary":
        """Serializable aggregate of this run (flow records dropped)."""
        return RunResultSummary(
            machine=self.machine,
            policy=self.policy,
            total_time=self.total_time,
            iteration_times=list(self.iteration_times),
            counters=self.counters,
            flow=self.flow.summary(),
            n_cores=self.n_cores,
            n_tasks_per_iteration=self.n_tasks_per_iteration,
            steady_state_at=self.steady_state_at,
            fault_report=self.fault_report,
        )


@dataclass
class RunResultSummary:
    """What the on-disk result cache stores for one simulated run.

    Drop-in for :class:`RunResult` everywhere the benchmarks and the
    analysis layer read results — timing, counters, flow *aggregates* —
    but without the per-task :class:`FlowRecord` list, so it serializes
    to a few KB regardless of DAG size.  ``to_dict``/``from_dict``
    round-trip bit-exactly (floats survive via ``repr`` in JSON).
    """

    machine: str
    policy: str
    total_time: float
    iteration_times: List[float]
    counters: PerfCounters
    flow: FlowSummary
    n_cores: int
    n_tasks_per_iteration: int
    #: See :attr:`RunResult.steady_state_at`.  Optional with a ``None``
    #: default so summaries serialized before the fast path existed
    #: (older on-disk result caches) still deserialize.
    steady_state_at: Optional[int] = None
    #: See :attr:`RunResult.fault_report`; ``None``-default for the
    #: same backward-compatibility reason.
    fault_report: Optional[FaultReport] = None

    @property
    def time_per_iteration(self) -> float:
        return self.total_time / max(1, len(self.iteration_times))

    def speedup_over(self, baseline) -> float:
        return baseline.time_per_iteration / self.time_per_iteration

    def summary(self) -> "RunResultSummary":
        return self

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "policy": self.policy,
            "total_time": self.total_time,
            "iteration_times": list(self.iteration_times),
            "counters": self.counters.to_dict(),
            "flow": self.flow.to_dict(),
            "n_cores": self.n_cores,
            "n_tasks_per_iteration": self.n_tasks_per_iteration,
            "steady_state_at": self.steady_state_at,
            "fault_report": None
            if self.fault_report is None
            else self.fault_report.to_dict(),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunResultSummary":
        ss = d.get("steady_state_at")
        fr = d.get("fault_report")
        return cls(
            machine=str(d["machine"]),
            policy=str(d["policy"]),
            total_time=float(d["total_time"]),
            iteration_times=[float(t) for t in d["iteration_times"]],
            counters=PerfCounters.from_dict(d["counters"]),
            flow=FlowSummary.from_dict(d.get("flow", {})),
            n_cores=int(d["n_cores"]),
            n_tasks_per_iteration=int(d["n_tasks_per_iteration"]),
            steady_state_at=None if ss is None else int(ss),
            fault_report=None if fr is None else FaultReport.from_dict(fr),
        )


def _default_barrier_cost(n_cores: int) -> float:
    """Tree barrier: ~0.4 µs per fan-in level."""
    return 0.4e-6 * max(1.0, math.log2(n_cores))


def _max_partitions(dag: TaskDAG) -> int:
    """Highest chunk partition count in the DAG (NUMA placement input)."""
    soa = getattr(dag, "_soa", None)
    if soa is not None:
        return max(1, soa.max_part)
    best = 0
    for t in dag.tasks:
        for h in t.reads + t.writes:
            if h.part is not None:
                best = max(best, h.part + 1)
    return max(1, best)


class SimulationEngine:
    """Event-driven execution of a TaskDAG under one scheduling policy.

    One engine instance owns one machine state (caches, NUMA
    placement); create a fresh engine per configuration so runs don't
    share warmth.
    """

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
    ):
        self.machine = machine
        self.cache = CacheHierarchy(machine)
        self.memory = MemoryModel(machine, first_touch=first_touch)
        self.cost = CostModel(machine, self.cache, self.memory)
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        dag: TaskDAG,
        scheduler: Scheduler,
        iterations: int = 1,
        barrier_cost: Optional[float] = None,
        record_flow: bool = True,
        steady_state: Optional[bool] = None,
        tracer=None,
        faults=None,
    ) -> RunResult:
        """Execute ``iterations`` barriered repetitions of the DAG.

        ``faults`` (a :class:`repro.faults.FaultPlan`, default off)
        attaches deterministic fault injection: per-core frequency
        derates, core losses at iteration barriers (recovered per the
        scheduler's policy), and transient task faults re-executed with
        backoff charged to the simulated clock.  An empty plan resolves
        to no :class:`~repro.faults.FaultState` and the run is
        bit-identical to ``faults=None``; an active plan disarms the
        steady-state fast path (a degraded machine has no certified
        fixed point) and surfaces ``RunResult.fault_report``.

        ``tracer`` (a :class:`repro.trace.Tracer`, default off) attaches
        the observability layer: per-task events on worker lanes,
        barrier intervals, scheduler queue/steal/poll events, and
        machine-state samples at every barrier.  Tracing is strictly
        observational — with a tracer attached the simulated numbers
        are bit-identical to ``tracer=None``; iterations produced by
        the steady-state replay emit synthesized events
        (``synthesized=True``) carrying the exact times the full
        simulation would have produced.

        ``steady_state`` arms the iteration fast path (default: on,
        unless ``REPRO_NO_STEADY_STATE`` is set).  Iterative solvers
        replay the same DAG against machine state that converges to a
        fixed point after a warm-up iteration or two; once the detector
        sees two consecutive iterations leave *identical* machine and
        scheduler state behind (:func:`_machine_state_fingerprint`,
        :meth:`Scheduler.state_fingerprint`) and produce *identical*
        value tapes, every remaining iteration is produced by replaying
        the tape — re-executing exactly the float operations the full
        simulation would execute, anchored at each iteration's start
        time — so results are bit-identical to the plain loop while
        skipping the cache simulation and scheduling logic entirely.
        Schedulers opt out by returning ``None`` from
        ``state_fingerprint`` (unknown subclasses) or by fingerprinting
        state that never repeats (HPX's RNG), in which case every
        iteration is simulated in full.
        """
        if barrier_cost is None:
            barrier_cost = _default_barrier_cost(self.machine.n_cores)
        self.memory.configure_from_dag(dag)
        if self.memory.n_parts is None:
            self.memory.n_parts = _max_partitions(dag)
        scheduler.prepare(dag, self.machine, self.memory, seed=self.seed)
        self.cost.prepare(dag, iterations=iterations)
        counters = PerfCounters()
        # record_flow=False must actually skip recording, not record
        # every task and throw the trace away afterwards.
        flow = FlowGraph() if record_flow else None
        if steady_state is None:
            steady_state = _steady_state_enabled()
        if tracer is not None:
            tracer.begin_run(self.machine.name, scheduler.name,
                             self.machine.n_cores, dag)
            scheduler.tracer = tracer
            self.cache.trace_hook = tracer._on_cache_access
        ttask = tracer.task if tracer is not None else None
        fs = faults.state(self.machine) if faults is not None else None
        # Detection needs two comparable warm iterations after the cold
        # one, so runs shorter than 4 iterations take the plain loop.
        armed = bool(steady_state) and iterations >= 4 and fs is None
        clock = 0.0
        iteration_times: List[float] = []
        steady_state_at = None
        prev_fp = None
        prev_tape = None
        it = 0
        while it < iterations:
            t0 = clock
            scheduler.reset_iteration(it, t0)
            if fs is not None:
                newly_dead, newly_slow = fs.begin_iteration(it)
                for c in newly_dead:
                    scheduler.on_core_loss(c, t0)
                    if tracer is not None:
                        tracer.fault(t0, c, "core-loss")
                if tracer is not None:
                    for c in newly_slow:
                        tracer.fault(t0, c, "slow-onset",
                                     detail=fs.factor(c))
                end = self._run_iteration_faulted(
                    dag, scheduler, counters, flow, it, t0, ttask, fs
                )
                clock = end + barrier_cost
                iteration_times.append(clock - t0)
                if tracer is not None:
                    tracer.sample_machine(it, end, self.cache, self.memory)
                    tracer.barrier(it, t0, end, clock)
                it += 1
                continue
            if not armed:
                end = self._run_iteration(
                    dag, scheduler, counters, flow, it, t0, ttask
                )
                clock = end + barrier_cost
                iteration_times.append(clock - t0)
                if tracer is not None:
                    tracer.sample_machine(it, end, self.cache, self.memory)
                    tracer.barrier(it, t0, end, clock)
                it += 1
                continue
            end, tape = self._run_iteration_taped(
                dag, scheduler, counters, flow, it, t0, ttask
            )
            clock = end + barrier_cost
            iteration_times.append(clock - t0)
            if tracer is not None:
                tracer.sample_machine(it, end, self.cache, self.memory)
                tracer.barrier(it, t0, end, clock)
            it += 1
            sched_fp = scheduler.state_fingerprint()
            if sched_fp is None:
                # Scheduler opted out: stop taping, plain loop onward.
                armed = False
                continue
            fp = (sched_fp,
                  _machine_state_fingerprint(self.cache, self.memory))
            if prev_fp is not None and fp == prev_fp and tape == prev_tape:
                # Two consecutive iterations started from the same
                # state, behaved identically, and returned to that
                # state: by induction every remaining iteration repeats
                # the tape.  Replay it (falls back to full simulation
                # if the sanity guard ever trips).
                first = it
                it, clock = self._replay_iterations(
                    dag, scheduler, tape, counters, flow,
                    it, iterations, clock, barrier_cost, iteration_times,
                    tracer,
                )
                if it > first:
                    steady_state_at = first
                armed = False
                continue
            prev_fp = fp
            prev_tape = tape
        if tracer is not None:
            scheduler.tracer = None
            self.cache.trace_hook = None
        # Fold this run's charge-memo counters into the process-wide
        # aggregate (the engine object is per-execute, so the counters
        # would otherwise be unobservable from benchmark code).
        self.cost.flush_memo_stats()
        fault_report = None
        if fs is not None:
            fault_report = fs.finalize(scheduler.name,
                                       tuple(iteration_times))
            if tracer is not None:
                for core, at, latency in fault_report.core_losses:
                    if latency is not None:
                        tracer.recovery(sum(iteration_times[: at + 1]),
                                        core, latency)
        return RunResult(
            machine=self.machine.name,
            policy=scheduler.name,
            total_time=clock,
            iteration_times=iteration_times,
            counters=counters,
            flow=flow if record_flow else FlowGraph(),
            n_cores=self.machine.n_cores,
            n_tasks_per_iteration=len(dag),
            steady_state_at=steady_state_at,
            fault_report=fault_report,
        )

    # ------------------------------------------------------------------
    def _run_iteration(self, dag, scheduler, counters, flow, it, t0,
                       ttask=None) -> float:
        n = len(dag)
        if n == 0:
            return t0
        indeg = dag.in_degrees()
        # (time, tid, enabler_core): dep-free, waiting on the runtime.
        release_heap = []
        for tid, d in enumerate(indeg):
            if d == 0:
                heapq.heappush(
                    release_heap, (scheduler.release_time(tid, t0), tid, -1)
                )
        finish_heap = []  # (time, core, tid)
        n_cores = self.machine.n_cores
        # Idle cores as a flag array scanned in ascending id order —
        # same assignment order as the historical ``sorted(idle)``
        # without re-sorting a set on every scheduling round.
        idle = bytearray([1]) * n_cores
        n_idle = n_cores
        completed = 0
        time = t0
        tasks = dag.tasks
        succ = dag.succ
        charge = self.cost.charge
        pick = scheduler.pick
        overhead_of = scheduler.overhead
        has_ready = scheduler.has_ready
        release_time = scheduler.release_time
        record_flow = flow.record if flow is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        # Counter accumulation in locals, seeded from the running values
        # and stored back once per iteration: the sequence of float adds
        # is identical to per-task ``counters.record_task`` calls (same
        # running accumulator, same task order), so results are
        # bit-exact while the hot loop touches no instance attributes.
        n_exec = counters.tasks_executed
        busy_t = counters.busy_time
        ovh_t = counters.overhead_time
        comp_t = counters.compute_time
        mem_t = counters.memory_time
        l1m = counters.l1_misses
        l2m = counters.l2_misses
        l3m = counters.l3_misses
        ktime = counters.kernel_time
        ktasks = counters.kernel_tasks
        ktime_get = ktime.get
        ktasks_get = ktasks.get
        while completed < n:
            while release_heap and release_heap[0][0] <= time + _EPS:
                _, tid, enabler = heappop(release_heap)
                scheduler.on_ready(tid, time,
                                   enabler if enabler >= 0 else None)
            # Hand ready tasks to idle cores (policy picks per core).
            assigned = False
            if n_idle and has_ready():
                for core in range(n_cores):
                    if not idle[core]:
                        continue
                    tid = pick(core, time)
                    if tid is None:
                        continue
                    task = tasks[tid]
                    overhead = overhead_of(tid)
                    dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                    dur += overhead
                    heappush(finish_heap, (time + dur, core, tid))
                    kernel = task.kernel
                    n_exec += 1
                    busy_t += dur
                    ovh_t += overhead
                    comp_t += compute
                    mem_t += memory_t
                    l1m += m1
                    l2m += m2
                    l3m += m3
                    ktime[kernel] = ktime_get(kernel, 0.0) + dur
                    ktasks[kernel] = ktasks_get(kernel, 0) + 1
                    if record_flow is not None:
                        record_flow(tid, kernel, core, time,
                                    time + dur, it)
                    if ttask is not None:
                        ttask(tid, kernel, core, time, time + dur, it,
                              overhead, compute, memory_t, m1, m2, m3)
                    idle[core] = 0
                    n_idle -= 1
                    assigned = True
                    if not has_ready():
                        break
            if assigned:
                continue
            # Nothing assignable now: advance to the next event.
            if finish_heap:
                time = finish_heap[0][0]
                if n_idle and release_heap and release_heap[0][0] < time:
                    time = release_heap[0][0]
            elif n_idle and release_heap:
                time = release_heap[0][0]
            else:
                raise RuntimeError(
                    "simulation deadlock: tasks remain but no events pending"
                )
            while finish_heap and finish_heap[0][0] <= time + _EPS:
                _, core, tid = heappop(finish_heap)
                idle[core] = 1
                n_idle += 1
                completed += 1
                scheduler.on_complete(tid, core)
                for v in succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        rt = release_time(v, t0)
                        if rt < time:
                            rt = time
                        heappush(release_heap, (rt, v, core))
        counters.tasks_executed = n_exec
        counters.busy_time = busy_t
        counters.overhead_time = ovh_t
        counters.compute_time = comp_t
        counters.memory_time = mem_t
        counters.l1_misses = l1m
        counters.l2_misses = l2m
        counters.l3_misses = l3m
        return time

    # ------------------------------------------------------------------
    def _run_iteration_faulted(self, dag, scheduler, counters, flow, it,
                               t0, ttask, fs) -> float:
        """:meth:`_run_iteration` under an active :class:`FaultState`.

        A separate twin rather than flags in the hot loop: the healthy
        path must stay byte-for-byte untouched (the bit-identity
        contract), and the faulted path wants its own structure — dead
        cores never enter the idle scan, derates stretch each charge's
        compute component, and a completion may be poisoned and
        re-queued instead of releasing its successors.
        """
        n = len(dag)
        if n == 0:
            return t0
        indeg = dag.in_degrees()
        release_heap = []
        for tid, d in enumerate(indeg):
            if d == 0:
                heapq.heappush(
                    release_heap, (scheduler.release_time(tid, t0), tid, -1)
                )
        finish_heap = []  # (time, core, tid)
        n_cores = self.machine.n_cores
        # Dead lanes start (and stay) busy: they are simply never
        # scanned for work, which is the engine half of every policy's
        # recovery story.
        idle = bytearray(
            0 if fs.dead(c) else 1 for c in range(n_cores)
        )
        n_idle = sum(idle)
        derates = fs.derates
        rate = fs.rate
        budget = fs.budget
        attempts: dict = {}  # tid -> failed attempts this iteration
        tracer = scheduler.tracer
        completed = 0
        time = t0
        tasks = dag.tasks
        succ = dag.succ
        charge = self.cost.charge
        pick = scheduler.pick
        overhead_of = scheduler.overhead
        has_ready = scheduler.has_ready
        release_time = scheduler.release_time
        record_flow = flow.record if flow is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        n_exec = counters.tasks_executed
        busy_t = counters.busy_time
        ovh_t = counters.overhead_time
        comp_t = counters.compute_time
        mem_t = counters.memory_time
        l1m = counters.l1_misses
        l2m = counters.l2_misses
        l3m = counters.l3_misses
        ktime = counters.kernel_time
        ktasks = counters.kernel_tasks
        ktime_get = ktime.get
        ktasks_get = ktasks.get
        while completed < n:
            while release_heap and release_heap[0][0] <= time + _EPS:
                _, tid, enabler = heappop(release_heap)
                scheduler.on_ready(tid, time,
                                   enabler if enabler >= 0 else None)
            assigned = False
            if n_idle and has_ready():
                for core in range(n_cores):
                    if not idle[core]:
                        continue
                    tid = pick(core, time)
                    if tid is None:
                        continue
                    task = tasks[tid]
                    overhead = overhead_of(tid)
                    dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                    if derates is not None and derates[core] != 1.0:
                        f = derates[core]
                        dur, compute, extra = apply_core_derate(
                            dur, compute, f
                        )
                        ovh_extra = overhead * (f - 1.0)
                        overhead += ovh_extra
                        fs.slow_time += extra + ovh_extra
                    dur += overhead
                    heappush(finish_heap, (time + dur, core, tid))
                    kernel = task.kernel
                    n_exec += 1
                    busy_t += dur
                    ovh_t += overhead
                    comp_t += compute
                    mem_t += memory_t
                    l1m += m1
                    l2m += m2
                    l3m += m3
                    ktime[kernel] = ktime_get(kernel, 0.0) + dur
                    ktasks[kernel] = ktasks_get(kernel, 0) + 1
                    if record_flow is not None:
                        record_flow(tid, kernel, core, time,
                                    time + dur, it)
                    if ttask is not None:
                        ttask(tid, kernel, core, time, time + dur, it,
                              overhead, compute, memory_t, m1, m2, m3)
                    idle[core] = 0
                    n_idle -= 1
                    assigned = True
                    if not has_ready():
                        break
            if assigned:
                continue
            if finish_heap:
                time = finish_heap[0][0]
                if n_idle and release_heap and release_heap[0][0] < time:
                    time = release_heap[0][0]
            elif n_idle and release_heap:
                time = release_heap[0][0]
            else:
                raise RuntimeError(
                    "simulation deadlock: tasks remain but no events pending"
                )
            while finish_heap and finish_heap[0][0] <= time + _EPS:
                ftime, core, tid = heappop(finish_heap)
                if rate > 0.0:
                    a = attempts.get(tid, 0)
                    if fs.task_fails(it, tid, a):
                        if a < budget:
                            # Poisoned result: re-execute on the same
                            # core after exponential backoff; the core
                            # stays busy and the successors stay
                            # unreleased until a clean attempt lands.
                            attempts[tid] = a + 1
                            backoff = fs.backoff_seconds(a)
                            task = tasks[tid]
                            overhead = overhead_of(tid)
                            dur, compute, memory_t, (m1, m2, m3) = charge(
                                task, core
                            )
                            if (derates is not None
                                    and derates[core] != 1.0):
                                f = derates[core]
                                dur, compute, extra = apply_core_derate(
                                    dur, compute, f
                                )
                                ovh_extra = overhead * (f - 1.0)
                                overhead += ovh_extra
                                fs.slow_time += extra + ovh_extra
                            dur += overhead
                            start2 = ftime + backoff
                            heappush(finish_heap,
                                     (start2 + dur, core, tid))
                            kernel = task.kernel
                            n_exec += 1
                            busy_t += dur
                            ovh_t += overhead
                            comp_t += compute
                            mem_t += memory_t
                            l1m += m1
                            l2m += m2
                            l3m += m3
                            ktime[kernel] = ktime_get(kernel, 0.0) + dur
                            ktasks[kernel] = ktasks_get(kernel, 0) + 1
                            fs.retries += 1
                            fs.re_executed_time += dur
                            fs.backoff_time += backoff
                            if record_flow is not None:
                                record_flow(tid, kernel, core, start2,
                                            start2 + dur, it)
                            if ttask is not None:
                                ttask(tid, kernel, core, start2,
                                      start2 + dur, it, overhead,
                                      compute, memory_t, m1, m2, m3)
                            if tracer is not None:
                                tracer.fault(ftime, core, "task-retry",
                                             tid, float(a + 1))
                            continue
                        # Budget exhausted: abandon (solver falls back
                        # to the stale iterate for this block) so the
                        # DAG still completes.
                        fs.abandoned += 1
                        if tracer is not None:
                            tracer.fault(ftime, core, "task-abandoned",
                                         tid, float(a))
                idle[core] = 1
                n_idle += 1
                completed += 1
                scheduler.on_complete(tid, core)
                for v in succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        rt = release_time(v, t0)
                        if rt < time:
                            rt = time
                        heappush(release_heap, (rt, v, core))
        counters.tasks_executed = n_exec
        counters.busy_time = busy_t
        counters.overhead_time = ovh_t
        counters.compute_time = comp_t
        counters.memory_time = mem_t
        counters.l1_misses = l1m
        counters.l2_misses = l2m
        counters.l3_misses = l3m
        return time

    # ------------------------------------------------------------------
    def _run_iteration_taped(self, dag, scheduler, counters, flow, it, t0,
                             ttask=None):
        """:meth:`_run_iteration` plus a *value tape* of the iteration.

        Every timestamp the event loop produces is a node of a small
        value graph anchored at ``t0`` (node 0); the tape records, in
        creation order, how each node is computed:

        * ``(0, tid)`` — initial release: ``release_time(tid, t0)``;
        * ``(1, tid, j)`` — dependence-satisfied release, clamped to
          the enabling event: ``max(release_time(tid, t0), vals[j])``;
        * ``(2, j, dur, tid, core, overhead, compute, memory_t,
          m1, m2, m3)`` — task assignment at time node ``j``, finishing
          at ``vals[j] + dur``, with the full charge decomposition for
          counter/flow replay.

        Heap entries gain the node id as a trailing element; tuple
        ordering is untouched because ``(time, tid)`` / ``(time,
        core)`` are already unique within their heaps.  Returns
        ``(end_time, (ops, end_node))``.  The simulated numbers are
        bit-identical to :meth:`_run_iteration` — taping only appends
        bookkeeping, it never changes an arithmetic operation.
        """
        n = len(dag)
        if n == 0:
            return t0, ([], 0)
        indeg = dag.in_degrees()
        ops: list = []
        tape_op = ops.append
        nv = 1  # node 0 is t0; each op appends exactly one value node
        release_heap = []
        for tid, d in enumerate(indeg):
            if d == 0:
                tape_op((0, tid))
                heapq.heappush(
                    release_heap,
                    (scheduler.release_time(tid, t0), tid, -1, nv),
                )
                nv += 1
        finish_heap = []  # (time, core, tid, node)
        n_cores = self.machine.n_cores
        idle = bytearray([1]) * n_cores
        n_idle = n_cores
        completed = 0
        time = t0
        time_node = 0
        tasks = dag.tasks
        succ = dag.succ
        charge = self.cost.charge
        pick = scheduler.pick
        overhead_of = scheduler.overhead
        has_ready = scheduler.has_ready
        release_time = scheduler.release_time
        record_flow = flow.record if flow is not None else None
        heappush = heapq.heappush
        heappop = heapq.heappop
        n_exec = counters.tasks_executed
        busy_t = counters.busy_time
        ovh_t = counters.overhead_time
        comp_t = counters.compute_time
        mem_t = counters.memory_time
        l1m = counters.l1_misses
        l2m = counters.l2_misses
        l3m = counters.l3_misses
        ktime = counters.kernel_time
        ktasks = counters.kernel_tasks
        ktime_get = ktime.get
        ktasks_get = ktasks.get
        while completed < n:
            while release_heap and release_heap[0][0] <= time + _EPS:
                _, tid, enabler, _node = heappop(release_heap)
                scheduler.on_ready(tid, time,
                                   enabler if enabler >= 0 else None)
            assigned = False
            if n_idle and has_ready():
                for core in range(n_cores):
                    if not idle[core]:
                        continue
                    tid = pick(core, time)
                    if tid is None:
                        continue
                    task = tasks[tid]
                    overhead = overhead_of(tid)
                    dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                    dur += overhead
                    tape_op((2, time_node, dur, tid, core, overhead,
                             compute, memory_t, m1, m2, m3))
                    heappush(finish_heap, (time + dur, core, tid, nv))
                    nv += 1
                    kernel = task.kernel
                    n_exec += 1
                    busy_t += dur
                    ovh_t += overhead
                    comp_t += compute
                    mem_t += memory_t
                    l1m += m1
                    l2m += m2
                    l3m += m3
                    ktime[kernel] = ktime_get(kernel, 0.0) + dur
                    ktasks[kernel] = ktasks_get(kernel, 0) + 1
                    if record_flow is not None:
                        record_flow(tid, kernel, core, time,
                                    time + dur, it)
                    if ttask is not None:
                        ttask(tid, kernel, core, time, time + dur, it,
                              overhead, compute, memory_t, m1, m2, m3)
                    idle[core] = 0
                    n_idle -= 1
                    assigned = True
                    if not has_ready():
                        break
            if assigned:
                continue
            if finish_heap:
                head = finish_heap[0]
                time = head[0]
                time_node = head[3]
                if n_idle and release_heap and release_heap[0][0] < time:
                    head = release_heap[0]
                    time = head[0]
                    time_node = head[3]
            elif n_idle and release_heap:
                head = release_heap[0]
                time = head[0]
                time_node = head[3]
            else:
                raise RuntimeError(
                    "simulation deadlock: tasks remain but no events pending"
                )
            while finish_heap and finish_heap[0][0] <= time + _EPS:
                _, core, tid, _node = heappop(finish_heap)
                idle[core] = 1
                n_idle += 1
                completed += 1
                scheduler.on_complete(tid, core)
                for v in succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        rt = release_time(v, t0)
                        if rt < time:
                            rt = time
                        tape_op((1, v, time_node))
                        heappush(release_heap, (rt, v, core, nv))
                        nv += 1
        counters.tasks_executed = n_exec
        counters.busy_time = busy_t
        counters.overhead_time = ovh_t
        counters.compute_time = comp_t
        counters.memory_time = mem_t
        counters.l1_misses = l1m
        counters.l2_misses = l2m
        counters.l3_misses = l3m
        return time, (ops, time_node)

    # ------------------------------------------------------------------
    def _replay_iterations(
        self, dag, scheduler, tape, counters, flow,
        it, iterations, clock, barrier_cost, iteration_times,
        tracer=None,
    ):
        """Produce iterations ``it..iterations-1`` by replaying ``tape``.

        Re-executes, per iteration, exactly the float operations the
        full simulation would execute — one ``release_time`` call or
        max/add per value node, the same counter additions in the same
        order — anchored at that iteration's start time, so the results
        (clock, iteration times, counters, flow records) are
        bit-identical to continuing the simulation.

        A cheap sanity guard re-checks what the tape's structure
        implies: assignment start times must be non-decreasing in tape
        order and the iteration end must not precede the last start.
        A violation would mean the event order depended on the absolute
        anchor (sub-femtosecond effects the detector cannot certify
        against); the iteration is then *not* committed and the caller
        falls back to full simulation from it.  Returns
        ``(next_iteration, clock)``.
        """
        ops, end_node = tape
        # kind-2 ops with the ids of the value nodes they created
        # (node id of op i is i + 1).
        assign_ops = [(i + 1, op) for i, op in enumerate(ops)
                      if op[0] == 2]
        tasks = dag.tasks
        release_time = scheduler.release_time
        record_flow = flow.record if flow is not None else None
        ttask = tracer.task if tracer is not None else None
        eps = _EPS
        n_exec = counters.tasks_executed
        busy_t = counters.busy_time
        ovh_t = counters.overhead_time
        comp_t = counters.compute_time
        mem_t = counters.memory_time
        l1m = counters.l1_misses
        l2m = counters.l2_misses
        l3m = counters.l3_misses
        ktime = counters.kernel_time
        ktasks = counters.kernel_tasks
        ktime_get = ktime.get
        ktasks_get = ktasks.get
        while it < iterations:
            t0 = clock
            scheduler.reset_iteration(it, t0)
            # -- pass 1: evaluate the value graph at this anchor ------
            vals = [t0]
            append = vals.append
            ok = True
            prev_start = t0
            for op in ops:
                kind = op[0]
                if kind == 2:
                    start = vals[op[1]]
                    if start + eps < prev_start:
                        ok = False
                        break
                    prev_start = start
                    append(start + op[2])
                elif kind == 1:
                    rt = release_time(op[1], t0)
                    tv = vals[op[2]]
                    append(tv if rt < tv else rt)
                else:
                    append(release_time(op[1], t0))
            if ok and vals[end_node] + eps < prev_start:
                ok = False
            if not ok:
                break  # uncommitted; caller resumes full simulation
            # -- pass 2: commit counters, flow, and the clock ---------
            for node, op in assign_ops:
                dur = op[2]
                tid = op[3]
                kernel = tasks[tid].kernel
                n_exec += 1
                busy_t += dur
                ovh_t += op[5]
                comp_t += op[6]
                mem_t += op[7]
                l1m += op[8]
                l2m += op[9]
                l3m += op[10]
                ktime[kernel] = ktime_get(kernel, 0.0) + dur
                ktasks[kernel] = ktasks_get(kernel, 0) + 1
                if record_flow is not None:
                    record_flow(tid, kernel, op[4], vals[op[1]],
                                vals[node], it)
                if ttask is not None:
                    # Synthesized event: not re-simulated, but carries
                    # the exact anchored times/charges full simulation
                    # would produce for this iteration.
                    ttask(tid, kernel, op[4], vals[op[1]], vals[node],
                          it, op[5], op[6], op[7], op[8], op[9], op[10],
                          True)
            clock = vals[end_node] + barrier_cost
            iteration_times.append(clock - t0)
            if tracer is not None:
                # Machine state is at its fixed point during replay, so
                # barrier-interval samples legitimately repeat it.
                tracer.sample_machine(it, vals[end_node], self.cache,
                                      self.memory)
                tracer.barrier(it, t0, vals[end_node], clock,
                               synthesized=True)
            it += 1
        counters.tasks_executed = n_exec
        counters.busy_time = busy_t
        counters.overhead_time = ovh_t
        counters.compute_time = comp_t
        counters.memory_time = mem_t
        counters.l1_misses = l1m
        counters.l2_misses = l2m
        counters.l3_misses = l3m
        return it, clock


# ----------------------------------------------------------------------
def _bsp_phase_assignments(dag: TaskDAG, n_cores: int,
                           nnz_balanced: bool = False):
    """Static chunk→core assignment of every BSP phase, memoized.

    The assignment is run-invariant — a pure function of the task
    list, the core count, and the balancing mode — so it is cached on
    the DAG (and therefore persisted inside prep artifacts: a loaded
    DAG never recomputes it).  Phases are contiguous runs of equal
    ``task.seq`` in program order; library kernels balance differently
    per kernel class — MKL splits sparse kernels by nonzeros, dense
    ones by rows — so the chunk→core mapping shifts between phases on
    skewed matrices (the cross-kernel locality loss inherent to the
    fork-join model).
    """
    memo = getattr(dag, "_bsp_phases", None)
    if memo is None:
        memo = {}
        try:
            dag._bsp_phases = memo
        except AttributeError:  # slotted/foreign DAG type
            memo = None
    mkey = (n_cores, bool(nnz_balanced))
    if memo is not None:
        cached = memo.get(mkey)
        if cached is not None:
            return cached
    tasks = dag.tasks
    phases: List[List[int]] = []
    last_seq = None
    for t in tasks:
        if t.seq != last_seq:
            phases.append([])
            last_seq = t.seq
        phases[-1].append(t.tid)
    phase_assignments: List[List[tuple]] = []
    for phase in phases:
        # Row-group order; reduce tasks (no row index) sort last,
        # which is also a topological order of intra-phase edges.
        order = sorted(
            phase,
            key=lambda tid: (
                tasks[tid].params.get("i", float("inf")), tid
            ),
        )
        # The parallel loop ranges over row blocks: all tasks of a
        # row group stay on one core (the inner column loop is
        # serial), which also preserves intra-phase dependence
        # chains.  Library BSP phases split the groups statically
        # by row count; on matrices with skewed nonzero
        # distributions the heaviest chunk straggles and the
        # barrier makes everyone wait — the §1 load-imbalance cost
        # of the BSP model.  Set ``nnz_balanced`` for an idealized
        # baseline that splits sparse phases by nonzeros instead.
        groups: List[List[int]] = []
        last_i = object()
        for tid in order:
            gi = tasks[tid].params.get("i", tid)
            if gi != last_i:
                groups.append([])
                last_i = gi
            groups[-1].append(tid)
        ng = len(groups)
        if tasks[order[0]].kind == "sparse" and nnz_balanced:
            weights = [
                sum(max(1.0, tasks[t].shape.get("nnz", 1))
                    for t in g)
                for g in groups
            ]
            total_w = sum(weights)
            cum = 0.0
            group_core = []
            for wgt in weights:
                group_core.append(
                    min(n_cores - 1, int(cum / total_w * n_cores))
                )
                cum += wgt
        else:
            group_core = [k * n_cores // ng for k in range(ng)]
        phase_assignments.append([
            (tid, group_core[k])
            for k, g in enumerate(groups)
            for tid in g
        ])
    if memo is not None:
        memo[mkey] = phase_assignments
    return phase_assignments


def run_bsp(
    machine: MachineSpec,
    dag: TaskDAG,
    iterations: int = 1,
    first_touch: bool = True,
    flavor: str = "bsp",
    barrier_cost: Optional[float] = None,
    loop_overhead: float = 0.05e-6,
    record_flow: bool = True,
    nnz_balanced: bool = False,
    steady_state: Optional[bool] = None,
    tracer=None,
    faults=None,
) -> RunResult:
    """Phase-parallel (fork-join) execution of the same DAG.

    Tasks are grouped by originating primitive call (``task.seq``);
    each group is one parallel region: tasks sorted by partition index
    are statically chunked over cores (MKL/OpenMP static schedule), a
    barrier closes the phase.  Dependence edges are honoured by
    construction because phases execute in program order.

    ``steady_state`` arms the same iteration fast path as
    :meth:`SimulationEngine.run`: once two consecutive iterations leave
    identical cache/NUMA state behind and produce identical per-task
    charge tapes, the remaining iterations re-run the (cheap) clock
    arithmetic against the taped charges instead of re-simulating the
    cache — the schedule here is static, so the replay *is* the full
    per-iteration computation minus the ``charge`` calls, and results
    are bit-identical by construction.

    ``faults`` attaches a :class:`repro.faults.FaultPlan`.  BSP has no
    runtime to recover a lost lane: the dead lane's share (and any live
    task transitively depending on it) misses the barrier and is re-run
    serially on the lowest surviving core while everyone stalls — the
    no-recovery worst case the AMT policies are compared against.  An
    empty plan is bit-identical to ``faults=None``; an active one
    disarms the steady-state fast path and fills
    ``RunResult.fault_report``.
    """
    if barrier_cost is None:
        barrier_cost = _default_barrier_cost(machine.n_cores)
    cache = CacheHierarchy(machine)
    memory = MemoryModel(machine, first_touch=first_touch, scattered=True)
    memory.configure_from_dag(dag)
    if memory.n_parts is None:
        memory.n_parts = _max_partitions(dag)
    cost = CostModel(machine, cache, memory)
    cost.prepare(dag, iterations=iterations)
    counters = PerfCounters()
    flow = FlowGraph()
    n_cores = machine.n_cores
    tasks = dag.tasks
    pred = dag.pred
    phase_assignments = _bsp_phase_assignments(dag, n_cores, nnz_balanced)

    charge = cost.charge
    frecord = flow.record if record_flow else None
    if tracer is not None:
        tracer.begin_run(machine.name, flavor, n_cores, dag)
        cache.trace_hook = tracer._on_cache_access
    ttask = tracer.task if tracer is not None else None
    # Local counter accumulation (bit-exact: same adds, same order as
    # per-task ``record_task`` calls on the fresh counters object).
    n_exec = 0
    busy_t = ovh_t = comp_t = mem_t = 0.0
    l1m = l2m = l3m = 0
    ktime = counters.kernel_time
    ktasks = counters.kernel_tasks
    ktime_get = ktime.get
    ktasks_get = ktasks.get
    if steady_state is None:
        steady_state = _steady_state_enabled()
    fs = faults.state(machine) if faults is not None else None
    armed = bool(steady_state) and iterations >= 4 and fs is None
    steady_state_at = None
    prev_fp = None
    prev_charges = None
    clock = 0.0
    iteration_times = []
    it = 0
    while fs is not None and it < iterations:
        # Faulted BSP iteration: there is no runtime to recover a dead
        # lane, so its statically-assigned share never reaches the
        # barrier on time — the phase stalls, and the share (plus any
        # live-lane task transitively depending on it) is re-run
        # serially on the lowest surviving core, the paper's worst-case
        # no-recovery model.  A separate loop so the healthy path below
        # stays byte-for-byte untouched.
        t0 = clock
        newly_dead, newly_slow = fs.begin_iteration(it)
        if tracer is not None:
            for c in newly_dead:
                tracer.fault(t0, c, "core-loss")
            for c in newly_slow:
                tracer.fault(t0, c, "slow-onset", detail=fs.factor(c))
        derates = fs.derates
        rate = fs.rate
        budget = fs.budget
        rcore = fs.recovery_core
        for assignment in phase_assignments:
            core_clock = [clock] * n_cores
            phase_end: dict = {}
            deferred: List[int] = []
            deferred_set: set = set()
            for tid, core in assignment:
                if fs.dead(core) or (
                    deferred_set
                    and any(p in deferred_set for p in pred[tid])
                ):
                    # Cascade: a live lane's task whose producer is
                    # stuck behind the dead lane stalls with it.
                    deferred.append(tid)
                    deferred_set.add(tid)
                    continue
                task = tasks[tid]
                start = core_clock[core]
                for p in pred[tid]:
                    e = phase_end.get(p)
                    if e is not None and e > start:
                        start = e
                attempt = 0
                while True:
                    dur, compute, memory_t, (m1, m2, m3) = charge(
                        task, core
                    )
                    lo = loop_overhead
                    if derates is not None and derates[core] != 1.0:
                        f = derates[core]
                        dur, compute, extra = apply_core_derate(
                            dur, compute, f
                        )
                        lo_extra = lo * (f - 1.0)
                        lo += lo_extra
                        fs.slow_time += extra + lo_extra
                    dur += lo
                    end = start + dur
                    kernel = task.kernel
                    n_exec += 1
                    busy_t += dur
                    ovh_t += lo
                    comp_t += compute
                    mem_t += memory_t
                    l1m += m1
                    l2m += m2
                    l3m += m3
                    ktime[kernel] = ktime_get(kernel, 0.0) + dur
                    ktasks[kernel] = ktasks_get(kernel, 0) + 1
                    if frecord is not None:
                        frecord(tid, kernel, core, start, end, it)
                    if ttask is not None:
                        ttask(tid, kernel, core, start, end, it,
                              lo, compute, memory_t, m1, m2, m3)
                    if attempt > 0:
                        fs.re_executed_time += dur
                    if rate > 0.0 and fs.task_fails(it, tid, attempt):
                        if attempt < budget:
                            backoff = fs.backoff_seconds(attempt)
                            fs.retries += 1
                            fs.backoff_time += backoff
                            if tracer is not None:
                                tracer.fault(end, core, "task-retry",
                                             tid, float(attempt + 1))
                            start = end + backoff
                            attempt += 1
                            continue
                        fs.abandoned += 1
                        if tracer is not None:
                            tracer.fault(end, core, "task-abandoned",
                                         tid, float(attempt))
                    break
                core_clock[core] = end
                phase_end[tid] = end
            phase_close = max(core_clock)
            if deferred:
                # Serial catch-up on the recovery core after everyone
                # else has hit the barrier.
                start = phase_close
                for tid in deferred:
                    task = tasks[tid]
                    attempt = 0
                    while True:
                        dur, compute, memory_t, (m1, m2, m3) = charge(
                            task, rcore
                        )
                        lo = loop_overhead
                        if derates is not None and derates[rcore] != 1.0:
                            f = derates[rcore]
                            dur, compute, extra = apply_core_derate(
                                dur, compute, f
                            )
                            lo_extra = lo * (f - 1.0)
                            lo += lo_extra
                            fs.slow_time += extra + lo_extra
                        dur += lo
                        end = start + dur
                        kernel = task.kernel
                        n_exec += 1
                        busy_t += dur
                        ovh_t += lo
                        comp_t += compute
                        mem_t += memory_t
                        l1m += m1
                        l2m += m2
                        l3m += m3
                        ktime[kernel] = ktime_get(kernel, 0.0) + dur
                        ktasks[kernel] = ktasks_get(kernel, 0) + 1
                        if frecord is not None:
                            frecord(tid, kernel, rcore, start, end, it)
                        if ttask is not None:
                            ttask(tid, kernel, rcore, start, end, it,
                                  lo, compute, memory_t, m1, m2, m3)
                        if attempt > 0:
                            fs.re_executed_time += dur
                        if rate > 0.0 and fs.task_fails(it, tid, attempt):
                            if attempt < budget:
                                backoff = fs.backoff_seconds(attempt)
                                fs.retries += 1
                                fs.backoff_time += backoff
                                if tracer is not None:
                                    tracer.fault(end, rcore,
                                                 "task-retry", tid,
                                                 float(attempt + 1))
                                start = end + backoff
                                attempt += 1
                                continue
                            fs.abandoned += 1
                            if tracer is not None:
                                tracer.fault(end, rcore,
                                             "task-abandoned", tid,
                                             float(attempt))
                        break
                    phase_end[tid] = end
                    start = end
                fs.stall_time += start - phase_close
                phase_close = start
            clock = phase_close + barrier_cost
        iteration_times.append(clock - t0)
        if tracer is not None:
            tracer.sample_machine(it, clock - barrier_cost, cache, memory)
            tracer.barrier(it, t0, clock - barrier_cost, clock)
        it += 1
    while it < iterations:
        t0 = clock
        charges = [] if armed else None
        tape_charge = charges.append if armed else None
        for assignment in phase_assignments:
            core_clock = [clock] * n_cores
            phase_end: dict = {}
            for tid, core in assignment:
                task = tasks[tid]
                dur, compute, memory_t, (m1, m2, m3) = charge(task, core)
                dur += loop_overhead
                if tape_charge is not None:
                    tape_charge((dur, compute, memory_t, m1, m2, m3))
                # Intra-phase dependences (row chains stay on one core;
                # reduce tasks read partials from other cores) delay
                # the start beyond the core's own availability.
                start = core_clock[core]
                for p in pred[tid]:
                    e = phase_end.get(p)
                    if e is not None and e > start:
                        start = e
                end = start + dur
                core_clock[core] = end
                phase_end[tid] = end
                kernel = task.kernel
                n_exec += 1
                busy_t += dur
                ovh_t += loop_overhead
                comp_t += compute
                mem_t += memory_t
                l1m += m1
                l2m += m2
                l3m += m3
                ktime[kernel] = ktime_get(kernel, 0.0) + dur
                ktasks[kernel] = ktasks_get(kernel, 0) + 1
                if frecord is not None:
                    frecord(tid, kernel, core, start, end, it)
                if ttask is not None:
                    ttask(tid, kernel, core, start, end, it,
                          loop_overhead, compute, memory_t, m1, m2, m3)
            clock = max(core_clock) + barrier_cost
        iteration_times.append(clock - t0)
        if tracer is not None:
            tracer.sample_machine(it, clock - barrier_cost, cache, memory)
            tracer.barrier(it, t0, clock - barrier_cost, clock)
        it += 1
        if not armed:
            continue
        fp = _machine_state_fingerprint(cache, memory)
        if prev_fp is not None and fp == prev_fp and charges == prev_charges:
            # Cache/NUMA state is at a fixed point and the last two
            # iterations charged identically: every remaining charge()
            # would return the taped values.  Replay the clock/counter
            # arithmetic (identical float ops, so bit-identical) with
            # the expensive cache simulation elided.
            steady_state_at = it
            while it < iterations:
                t0 = clock
                ci = 0
                for assignment in phase_assignments:
                    core_clock = [clock] * n_cores
                    phase_end = {}
                    for tid, core in assignment:
                        dur, compute, memory_t, m1, m2, m3 = charges[ci]
                        ci += 1
                        start = core_clock[core]
                        for p in pred[tid]:
                            e = phase_end.get(p)
                            if e is not None and e > start:
                                start = e
                        end = start + dur
                        core_clock[core] = end
                        phase_end[tid] = end
                        kernel = tasks[tid].kernel
                        n_exec += 1
                        busy_t += dur
                        ovh_t += loop_overhead
                        comp_t += compute
                        mem_t += memory_t
                        l1m += m1
                        l2m += m2
                        l3m += m3
                        ktime[kernel] = ktime_get(kernel, 0.0) + dur
                        ktasks[kernel] = ktasks_get(kernel, 0) + 1
                        if frecord is not None:
                            frecord(tid, kernel, core, start, end, it)
                        if ttask is not None:
                            ttask(tid, kernel, core, start, end, it,
                                  loop_overhead, compute, memory_t,
                                  m1, m2, m3, True)
                    clock = max(core_clock) + barrier_cost
                iteration_times.append(clock - t0)
                if tracer is not None:
                    # Fixed-point machine state: samples repeat it.
                    tracer.sample_machine(it, clock - barrier_cost,
                                          cache, memory)
                    tracer.barrier(it, t0, clock - barrier_cost, clock,
                                   synthesized=True)
                it += 1
            break
        prev_fp = fp
        prev_charges = charges
    counters.tasks_executed = n_exec
    counters.busy_time = busy_t
    counters.overhead_time = ovh_t
    counters.compute_time = comp_t
    counters.memory_time = mem_t
    counters.l1_misses = l1m
    counters.l2_misses = l2m
    counters.l3_misses = l3m
    if tracer is not None:
        cache.trace_hook = None
    cost.flush_memo_stats()
    fault_report = None
    if fs is not None:
        fault_report = fs.finalize(flavor, tuple(iteration_times))
        if tracer is not None:
            for core, at, latency in fault_report.core_losses:
                if latency is not None:
                    tracer.recovery(sum(iteration_times[: at + 1]),
                                    core, latency)
    return RunResult(
        machine=machine.name,
        policy=flavor,
        total_time=clock,
        iteration_times=iteration_times,
        counters=counters,
        flow=flow,
        n_cores=n_cores,
        n_tasks_per_iteration=len(dag),
        steady_state_at=steady_state_at,
        fault_report=fault_report,
    )
