"""The discrete-event engine and the BSP phase executor.

:class:`SimulationEngine.run` plays a DAG under an AMT scheduling
policy: cores pull ready tasks as the policy dictates, each execution
is priced by the cost model against live cache state, and iteration
boundaries are barriers (§4: DeepSparse reuses a single-iteration DAG
with barriers in between; HPX/Regent are barriered in practice by the
convergence check).

:func:`run_bsp` is the library baseline: each primitive call is one
parallel phase — tasks statically chunked over cores, a barrier at the
end — which is exactly the fork-join structure of the MKL-based
``libcsr``/``libcsb`` versions.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.graph.dag import TaskDAG
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.perf import PerfCounters
from repro.machine.topology import MachineSpec
from repro.sim.cost import CostModel
from repro.sim.flowgraph import FlowGraph
from repro.sim.schedulers import Scheduler

__all__ = ["RunResult", "SimulationEngine", "run_bsp"]

_EPS = 1e-15


@dataclass
class RunResult:
    """Outcome of one simulated solver run."""

    machine: str
    policy: str
    total_time: float
    iteration_times: List[float]
    counters: PerfCounters
    flow: FlowGraph
    n_cores: int
    n_tasks_per_iteration: int

    @property
    def time_per_iteration(self) -> float:
        """Mean iteration wall time — the paper's reported quantity."""
        return self.total_time / max(1, len(self.iteration_times))

    def speedup_over(self, baseline: "RunResult") -> float:
        """Speedup relative to a baseline run (libcsr in the paper)."""
        return baseline.time_per_iteration / self.time_per_iteration


def _default_barrier_cost(n_cores: int) -> float:
    """Tree barrier: ~0.4 µs per fan-in level."""
    return 0.4e-6 * max(1.0, math.log2(n_cores))


def _max_partitions(dag: TaskDAG) -> int:
    """Highest chunk partition count in the DAG (NUMA placement input)."""
    best = 0
    for t in dag.tasks:
        for h in t.reads + t.writes:
            if h.part is not None:
                best = max(best, h.part + 1)
    return max(1, best)


class SimulationEngine:
    """Event-driven execution of a TaskDAG under one scheduling policy.

    One engine instance owns one machine state (caches, NUMA
    placement); create a fresh engine per configuration so runs don't
    share warmth.
    """

    def __init__(
        self,
        machine: MachineSpec,
        first_touch: bool = True,
        seed: int = 0,
    ):
        self.machine = machine
        self.cache = CacheHierarchy(machine)
        self.memory = MemoryModel(machine, first_touch=first_touch)
        self.cost = CostModel(machine, self.cache, self.memory)
        self.seed = seed

    # ------------------------------------------------------------------
    def run(
        self,
        dag: TaskDAG,
        scheduler: Scheduler,
        iterations: int = 1,
        barrier_cost: Optional[float] = None,
        record_flow: bool = True,
    ) -> RunResult:
        """Execute ``iterations`` barriered repetitions of the DAG."""
        if barrier_cost is None:
            barrier_cost = _default_barrier_cost(self.machine.n_cores)
        self.memory.configure_from_dag(dag)
        if self.memory.n_parts is None:
            self.memory.n_parts = _max_partitions(dag)
        scheduler.prepare(dag, self.machine, self.memory, seed=self.seed)
        counters = PerfCounters()
        flow = FlowGraph()
        clock = 0.0
        iteration_times = []
        for it in range(iterations):
            t0 = clock
            scheduler.reset_iteration(it, t0)
            clock = self._run_iteration(dag, scheduler, counters, flow, it, t0)
            clock += barrier_cost
            iteration_times.append(clock - t0)
        return RunResult(
            machine=self.machine.name,
            policy=scheduler.name,
            total_time=clock,
            iteration_times=iteration_times,
            counters=counters,
            flow=flow if record_flow else FlowGraph(),
            n_cores=self.machine.n_cores,
            n_tasks_per_iteration=len(dag),
        )

    # ------------------------------------------------------------------
    def _run_iteration(self, dag, scheduler, counters, flow, it, t0) -> float:
        n = len(dag)
        if n == 0:
            return t0
        indeg = dag.in_degrees()
        # (time, tid, enabler_core): dep-free, waiting on the runtime.
        release_heap = []
        for tid, d in enumerate(indeg):
            if d == 0:
                heapq.heappush(
                    release_heap, (scheduler.release_time(tid, t0), tid, -1)
                )
        finish_heap = []  # (time, core, tid)
        idle = set(range(self.machine.n_cores))
        completed = 0
        time = t0
        tasks = dag.tasks
        while completed < n:
            while release_heap and release_heap[0][0] <= time + _EPS:
                _, tid, enabler = heapq.heappop(release_heap)
                scheduler.on_ready(tid, time,
                                   enabler if enabler >= 0 else None)
            # Hand ready tasks to idle cores (policy picks per core).
            assigned = False
            if scheduler.has_ready() and idle:
                for core in sorted(idle):
                    tid = scheduler.pick(core, time)
                    if tid is None:
                        continue
                    task = tasks[tid]
                    overhead = scheduler.overhead(tid)
                    charge = self.cost.charge(task, core)
                    dur = charge.duration + overhead
                    heapq.heappush(finish_heap, (time + dur, core, tid))
                    counters.record_task(
                        task.kernel, dur, charge.misses, overhead,
                        charge.compute, charge.memory,
                    )
                    flow.record(tid, task.kernel, core, time, time + dur, it)
                    idle.discard(core)
                    assigned = True
                    if not scheduler.has_ready():
                        break
            if assigned:
                continue
            # Nothing assignable now: advance to the next event.
            candidates = []
            if finish_heap:
                candidates.append(finish_heap[0][0])
            if release_heap and idle:
                candidates.append(release_heap[0][0])
            if not candidates:
                raise RuntimeError(
                    "simulation deadlock: tasks remain but no events pending"
                )
            time = min(candidates)
            while finish_heap and finish_heap[0][0] <= time + _EPS:
                _, core, tid = heapq.heappop(finish_heap)
                idle.add(core)
                completed += 1
                scheduler.on_complete(tid, core)
                for v in dag.succ[tid]:
                    indeg[v] -= 1
                    if indeg[v] == 0:
                        rt = max(scheduler.release_time(v, t0), time)
                        heapq.heappush(release_heap, (rt, v, core))
        return time


# ----------------------------------------------------------------------
def run_bsp(
    machine: MachineSpec,
    dag: TaskDAG,
    iterations: int = 1,
    first_touch: bool = True,
    flavor: str = "bsp",
    barrier_cost: Optional[float] = None,
    loop_overhead: float = 0.05e-6,
    record_flow: bool = True,
    nnz_balanced: bool = False,
) -> RunResult:
    """Phase-parallel (fork-join) execution of the same DAG.

    Tasks are grouped by originating primitive call (``task.seq``);
    each group is one parallel region: tasks sorted by partition index
    are statically chunked over cores (MKL/OpenMP static schedule), a
    barrier closes the phase.  Dependence edges are honoured by
    construction because phases execute in program order.
    """
    if barrier_cost is None:
        barrier_cost = _default_barrier_cost(machine.n_cores)
    cache = CacheHierarchy(machine)
    memory = MemoryModel(machine, first_touch=first_touch, scattered=True)
    memory.configure_from_dag(dag)
    if memory.n_parts is None:
        memory.n_parts = _max_partitions(dag)
    cost = CostModel(machine, cache, memory)
    counters = PerfCounters()
    flow = FlowGraph()
    n_cores = machine.n_cores

    # Phase partition: contiguous runs of equal seq, in program order.
    phases: List[List[int]] = []
    last_seq = None
    for t in dag.tasks:
        if t.seq != last_seq:
            phases.append([])
            last_seq = t.seq
        phases[-1].append(t.tid)

    clock = 0.0
    iteration_times = []
    for it in range(iterations):
        t0 = clock
        for phase in phases:
            # Static chunked assignment in partition order.  Library
            # kernels balance differently per kernel class — MKL splits
            # sparse kernels by nonzeros, dense ones by rows — so the
            # chunk→core mapping shifts between phases on skewed
            # matrices (the cross-kernel locality loss inherent to the
            # fork-join model).
            # Row-group order; reduce tasks (no row index) sort last,
            # which is also a topological order of intra-phase edges.
            order = sorted(
                phase,
                key=lambda tid: (
                    dag.tasks[tid].params.get("i", float("inf")), tid
                ),
            )
            core_clock = [clock] * n_cores
            # The parallel loop ranges over row blocks: all tasks of a
            # row group stay on one core (the inner column loop is
            # serial), which also preserves intra-phase dependence
            # chains.  Library BSP phases split the groups statically
            # by row count; on matrices with skewed nonzero
            # distributions the heaviest chunk straggles and the
            # barrier makes everyone wait — the §1 load-imbalance cost
            # of the BSP model.  Set ``nnz_balanced`` for an idealized
            # baseline that splits sparse phases by nonzeros instead.
            groups: List[List[int]] = []
            last_i = object()
            for tid in order:
                gi = dag.tasks[tid].params.get("i", tid)
                if gi != last_i:
                    groups.append([])
                    last_i = gi
                groups[-1].append(tid)
            ng = len(groups)
            if dag.tasks[order[0]].kind == "sparse" and nnz_balanced:
                weights = [
                    sum(max(1.0, dag.tasks[t].shape.get("nnz", 1))
                        for t in g)
                    for g in groups
                ]
                total_w = sum(weights)
                cum = 0.0
                group_core = []
                for wgt in weights:
                    group_core.append(
                        min(n_cores - 1, int(cum / total_w * n_cores))
                    )
                    cum += wgt
            else:
                group_core = [k * n_cores // ng for k in range(ng)]
            assignment = [
                (tid, group_core[k])
                for k, g in enumerate(groups)
                for tid in g
            ]
            phase_end: dict = {}
            for tid, core in assignment:
                task = dag.tasks[tid]
                charge = cost.charge(task, core)
                dur = charge.duration + loop_overhead
                # Intra-phase dependences (row chains stay on one core;
                # reduce tasks read partials from other cores) delay
                # the start beyond the core's own availability.
                start = core_clock[core]
                for p in dag.pred[tid]:
                    e = phase_end.get(p)
                    if e is not None and e > start:
                        start = e
                core_clock[core] = start + dur
                phase_end[tid] = start + dur
                counters.record_task(
                    task.kernel, dur, charge.misses, loop_overhead,
                    charge.compute, charge.memory,
                )
                if record_flow:
                    flow.record(tid, task.kernel, core, start,
                                core_clock[core], it)
            clock = max(core_clock) + barrier_cost
        iteration_times.append(clock - t0)
    return RunResult(
        machine=machine.name,
        policy=flavor,
        total_time=clock,
        iteration_times=iteration_times,
        counters=counters,
        flow=flow,
        n_cores=n_cores,
        n_tasks_per_iteration=len(dag),
    )
