"""Scheduling policies of the three AMT runtimes.

The engine is policy-agnostic; each scheduler implements the documented
(or empirically characterized) behaviour of one runtime:

* :class:`DeepSparseScheduler` — OpenMP tasking as DeepSparse drives
  it: the master thread spawns all tasks of an iteration in depth-first
  topological order (a small per-task spawn cost serializes releases),
  workers pull in roughly spawn order but prefer tasks whose producers
  they executed (the cache-aware stealing effect that yields pipelined
  execution).
* :class:`HPXScheduler` — future/dataflow readiness scheduling with
  per-NUMA-domain queues when NUMA-aware hints are on (§5.1 "Other
  Attempts": ≈50 % gain on EPYC), work stealing between domains, and
  the paper's observed "less value on prioritization of tasks launched
  earlier" (Fig. 13): picks are drawn from a window of the local queue
  rather than strictly from the front.
* :class:`RegentScheduler` — the Legion dependence-analysis pipeline:
  tasks become *visible* to workers only after a serial analysis stage
  has processed them (cheap for ``__demand(__index_launch)`` loops,
  expensive for individually-analyzed tasks), and a slice of cores is
  reserved for the runtime (``-ll:util``), shrinking the worker pool.
  Both effects together reproduce Regent's preference for coarse tasks
  and its 5–10× collapse past 64 block counts (§5.4).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

import numpy as np

from repro.graph.dag import TaskDAG
from repro.machine.memory import MemoryModel
from repro.machine.topology import MachineSpec

__all__ = [
    "Scheduler",
    "DeepSparseScheduler",
    "HPXScheduler",
    "RegentScheduler",
]

#: Kernels Regent launches via __demand(__index_launch): a whole loop of
#: non-interfering tasks admitted with one analysis, per §3.3.
INDEX_LAUNCH_KERNELS = frozenset(
    {"XY", "XTY", "AXPY", "SCALE", "COPY", "ADD", "SUB", "DOT"}
)


def _domain_tables(dag, memory):
    """Per-task NUMA-domain tables over the frozen DAG view.

    Returns ``(first_write_dom, write_doms)`` — the home domain of each
    task's first write (``-1`` for write-less tasks) and the tuple of
    all its writes' domains — or ``None`` when they cannot be derived
    (no frozen view, explicit placement pins, or the memory model's
    interning is not this DAG's).  The tables are a pure function of
    the DAG and the striping inputs, so they are cached on the DAG
    under the same key shape the cost model uses for its home arrays:
    five runtimes scheduling the same memoized DAG resolve every
    domain once.  Callers must stamp ``memory.state_epoch`` next to
    the tables and re-validate per use — a placement mutation bumps
    the epoch, and the live ``domain_of`` path takes over.
    """
    freeze = getattr(dag, "freeze", None)
    if freeze is None or memory._placement:
        return None
    _, id_to_key = dag.handle_interning()
    if memory._intern_keys is not id_to_key:
        return None
    key = (memory.machine, memory.first_touch, memory._n_parts,
           memory.matrix_geometry)
    store = getattr(dag, "_sched_domains", None)
    if store is None:
        store = {}
        try:
            dag._sched_domains = store
        except AttributeError:  # slotted/foreign DAG type
            store = None
    if store is not None:
        tables = store.get(key)
        if tables is not None:
            return tables
    arrays = memory.home_arrays()
    if arrays is None:
        return None
    homes = arrays[0]
    soa = freeze()
    indptr = soa.write_indptr.tolist()
    wids = soa.write_ids.tolist()
    first_write_dom = [
        homes[i] if i >= 0 else -1 for i in soa.first_write_id.tolist()
    ]
    write_doms = [
        tuple(homes[wids[j]] for j in range(indptr[t], indptr[t + 1]))
        for t in range(soa.n_tasks)
    ]
    tables = (first_write_dom, write_doms)
    if store is not None:
        store[key] = tables
    return tables


class Scheduler:
    """Base policy: global FIFO, no release serialization, no overhead."""

    name = "base"

    def __init__(self, overhead_per_task: float = 0.0):
        self.overhead_per_task = overhead_per_task
        self.dag: Optional[TaskDAG] = None
        self.machine: Optional[MachineSpec] = None
        self.memory: Optional[MemoryModel] = None
        self._queue = deque()
        #: Observability hook (``repro.trace``): set by the engine for
        #: the duration of a traced run.  Policies emit queue-depth
        #: samples after every enqueue/dequeue plus steal/poll events;
        #: emission is strictly observational (never reads back), so
        #: scheduling decisions — including every RNG draw — are
        #: identical with tracing on or off.  Deliberately *not* part
        #: of :meth:`state_fingerprint`.
        self.tracer = None

    # -- lifecycle ------------------------------------------------------
    def prepare(
        self,
        dag: TaskDAG,
        machine: MachineSpec,
        memory: MemoryModel,
        seed: int = 0,
    ) -> None:
        """Bind to one DAG and machine before a run."""
        self.dag = dag
        self.machine = machine
        self.memory = memory
        self.rng = np.random.default_rng(seed)
        self._queue = deque()
        self._dead_cores = set()

    def reset_iteration(self, iteration: int, iter_start: float) -> None:
        """Called at each iteration boundary (barrier)."""

    def on_core_loss(self, core: int, time: float) -> None:
        """A lane died (fault injection): stop handing it work.

        The base bookkeeping just records the loss — the engine never
        polls a dead core again.  Policies with per-core structures
        override this to enact their documented recovery
        (:data:`repro.faults.report.RECOVERY_POLICIES`); DeepSparse
        deliberately does not: a dead lane's deque is drained by its
        peers' ordinary work stealing, which *is* its recovery policy.
        """
        self._dead_cores.add(core)

    def state_fingerprint(self):
        """Hashable snapshot of every piece of policy state that can
        influence future scheduling decisions, or ``None`` to opt out
        of the engine's steady-state fast path.

        The engine compares fingerprints taken at consecutive
        iteration barriers; equality (together with identical
        per-iteration charge tapes) certifies that every remaining
        iteration would replay the same schedule, so it stops
        simulating and replays the tape instead
        (:meth:`repro.sim.engine.SimulationEngine.run`).

        The base implementation only knows about the base class's
        FIFO queue, so it *refuses to guess* for subclasses: any
        scheduler that adds mutable state must override this (as all
        built-ins do) or it is conservatively excluded from the fast
        path.  Stochastic policies include their RNG state — which
        advances every iteration, so they simply never reach a
        fingerprint fixed point and always simulate in full.
        """
        if type(self) is not Scheduler:
            return None
        return (tuple(self._queue),)

    # -- policy surface ---------------------------------------------------
    def overhead(self, tid: int) -> float:
        """Per-task runtime overhead charged on the executing core."""
        return self.overhead_per_task

    def release_time(self, tid: int, iter_start: float) -> float:
        """Earliest time the runtime itself can hand this task to a worker."""
        return iter_start

    def allowed(self, core: int) -> bool:
        """Whether this core executes application tasks."""
        return True

    def on_ready(self, tid: int, time: float, enabler_core=None) -> None:
        """A task became runnable; ``enabler_core`` is the core whose
        completion satisfied its last dependence (None for sources)."""
        self._queue.append(tid)
        tr = self.tracer
        if tr is not None:
            tr.queue_depth(time, len(self._queue))

    def on_complete(self, tid: int, core: int) -> None:
        """Completion callback (affinity tracking hooks)."""

    def pick(self, core: int, time: float) -> Optional[int]:
        tr = self.tracer
        if not self.allowed(core) or not self._queue:
            if tr is not None:
                tr.poll(time, core)
            return None
        tid = self._queue.popleft()
        if tr is not None:
            tr.queue_depth(time, len(self._queue))
        return tid

    def has_ready(self) -> bool:
        return bool(self._queue)


class DeepSparseScheduler(Scheduler):
    """OpenMP tasking: per-core LIFO deques with work stealing.

    The LLVM/libomp behaviour DeepSparse rides on: a task enabled by a
    completion is pushed on the completing thread's own deque and
    popped LIFO (depth-first) — so a thread that just produced a chunk
    immediately runs the consumer of that chunk.  This continuation
    locality is the mechanism behind the pipelined execution flow of
    Figs. 10/13.  Idle threads steal the *oldest* task from the victim
    with the fullest deque; master-spawned (source) tasks enter a
    shared FIFO in DeepSparse's depth-first topological spawn order.
    """

    name = "deepsparse"

    def __init__(
        self,
        overhead_per_task: float = 0.35e-6,
        spawn_cost: float = 0.15e-6,
    ):
        super().__init__(overhead_per_task)
        self.spawn_cost = spawn_cost

    def prepare(self, dag, machine, memory, seed=0):
        super().prepare(dag, machine, memory, seed)
        self._deques: List[deque] = [deque() for _ in range(machine.n_cores)]
        self._shared = deque()
        self._n_ready = 0
        # Precomputed write-home domains for the shared-queue NUMA
        # scan; epoch-guarded, with the live domain_of path as
        # fallback (see _domain_tables).
        tables = _domain_tables(dag, memory)
        if tables is not None:
            self._write_doms = tables[1]
            self._dom_epoch = memory.state_epoch
        else:
            self._write_doms = None
            self._dom_epoch = -1

    def state_fingerprint(self):
        # Deques + shared FIFO are the complete policy state (picks
        # depend on nothing else); all empty at a barrier in practice.
        return (
            tuple(tuple(d) for d in self._deques),
            tuple(self._shared),
            self._n_ready,
        )

    def release_time(self, tid: int, iter_start: float) -> float:
        # Master thread spawns tasks serially in program (tid) order.
        return iter_start + (tid + 1) * self.spawn_cost

    def on_ready(self, tid, time, enabler_core=None):
        if enabler_core is None:
            self._shared.append(tid)
        else:
            self._deques[enabler_core].append(tid)
        self._n_ready += 1
        tr = self.tracer
        if tr is not None:
            tr.queue_depth(time, self._n_ready)

    #: shared-queue scan depth for domain-local work: DeepSparse's
    #: depth-first spawn order plus bound threads gives OpenMP tasking
    #: de-facto locality on the spawn queue (DeepSparse's design goal).
    numa_window = 8

    def pick(self, core, time):
        tr = self.tracer
        if self._n_ready == 0:
            if tr is not None:
                tr.poll(time, core)
            return None
        own = self._deques[core]
        if own:
            self._n_ready -= 1
            tid = own.pop()  # LIFO: depth-first continuation
            if tr is not None:
                tr.queue_depth(time, self._n_ready)
            return tid
        if self._shared:
            self._n_ready -= 1
            shared = self._shared
            dom = self.machine.domain_of_core(core)
            limit = min(len(shared), self.numa_window)
            hit = -1
            wdoms = self._write_doms
            if wdoms is not None \
                    and self.memory.state_epoch == self._dom_epoch:
                # Any-write membership over the precomputed domain
                # tuple — the same predicate as the handle scan below.
                for idx in range(limit):
                    if dom in wdoms[shared[idx]]:
                        hit = idx
                        break
            else:
                for idx in range(limit):
                    t = self.dag.tasks[shared[idx]]
                    for h in t.writes:
                        if self.memory.domain_of((h.name, h.part)) == dom:
                            hit = idx
                            break
                    if hit >= 0:
                        break
            if hit >= 0:
                tid = shared[hit]
                del shared[hit]
            else:
                tid = shared.popleft()
            if tr is not None:
                tr.queue_depth(time, self._n_ready)
            return tid
        victim = max(self._deques, key=len)
        if victim:
            self._n_ready -= 1
            tid = victim.popleft()  # steal the oldest
            if tr is not None:
                # Identity lookup: ``list.index`` compares deques by
                # value, and the drained victim would alias any other
                # empty lane.
                vidx = next(i for i, d in enumerate(self._deques)
                            if d is victim)
                tr.steal(time, core, vidx, tid)
                tr.queue_depth(time, self._n_ready)
            return tid
        if tr is not None:
            tr.poll(time, core)
        return None

    def has_ready(self):
        return self._n_ready > 0


class HPXScheduler(Scheduler):
    """HPX future/dataflow scheduling with optional NUMA-aware queues."""

    name = "hpx"

    def __init__(
        self,
        overhead_per_task: float = 0.55e-6,
        spawn_cost: float = 0.25e-6,
        numa_aware: bool = True,
        shuffle_window: int = 8,
    ):
        super().__init__(overhead_per_task)
        self.spawn_cost = spawn_cost
        self.numa_aware = numa_aware
        self.shuffle_window = shuffle_window

    def prepare(self, dag, machine, memory, seed=0):
        super().prepare(dag, machine, memory, seed)
        n_dom = machine.n_numa_domains if self.numa_aware else 1
        self._queues: List[List[int]] = [[] for _ in range(n_dom)]
        self._n_ready = 0
        #: NUMA-hint fallback (fault injection): when every core of a
        #: domain is dead its queue index maps to the nearest live
        #: domain.  Empty on healthy runs — on_ready stays untouched.
        self._dom_remap: Dict[int, int] = {}
        # Precomputed per-task hint domains (first write's home) for
        # on_ready; epoch-guarded like the cost model's home arrays.
        self._task_dom = None
        self._dom_epoch = -1
        if self.numa_aware:
            tables = _domain_tables(dag, memory)
            if tables is not None:
                self._task_dom = [
                    d % n_dom if d >= 0 else 0 for d in tables[0]
                ]
                self._dom_epoch = memory.state_epoch

    def on_core_loss(self, core: int, time: float) -> None:
        # HPX recovery: the ready queue is redistributed.  Individual
        # lane loss needs no queue action (domain peers keep draining
        # the shared per-domain queue); only when the *whole* domain is
        # gone is its queue drained to the nearest live domain and the
        # NUMA hint remapped for future on_ready placements.
        super().on_core_loss(core, time)
        if not self.numa_aware:
            return
        n_q = len(self._queues)
        dead_dom = self.machine.domain_of_core(core) % n_q
        per = self.machine.cores_per_domain
        dom_cores = range(dead_dom * per, (dead_dom + 1) * per)
        if any(c not in self._dead_cores for c in dom_cores):
            return
        live = [
            d
            for d in range(n_q)
            if d != dead_dom
            and self._dom_remap.get(d, d) == d
            and any(
                c not in self._dead_cores
                for c in range(d * per, (d + 1) * per)
            )
        ]
        if not live:
            return
        target = min(live, key=lambda d: (abs(d - dead_dom), d))
        if self._queues[dead_dom]:
            self._queues[target].extend(self._queues[dead_dom])
            self._queues[dead_dom].clear()
            tr = self.tracer
            if tr is not None:
                tr.queue_depth(time, self._n_ready)
        self._dom_remap[dead_dom] = target
        # Re-point any earlier remap that targeted the now-dead domain.
        for d, t in list(self._dom_remap.items()):
            if t == dead_dom:
                self._dom_remap[d] = target

    def release_time(self, tid: int, iter_start: float) -> float:
        # The main thread builds the dataflow tree serially each iteration.
        return iter_start + (tid + 1) * self.spawn_cost

    def _domain_of_task(self, tid: int) -> int:
        if not self.numa_aware:
            return 0
        t = self.dag.tasks[tid]
        for h in t.writes:
            return self.memory.domain_of((h.name, h.part)) % len(self._queues)
        return 0

    def on_ready(self, tid, time, enabler_core=None):
        table = self._task_dom
        if table is not None \
                and self.memory.state_epoch == self._dom_epoch:
            dom = table[tid]
        else:
            dom = self._domain_of_task(tid)
        if self._dom_remap:
            dom = self._dom_remap.get(dom, dom)
        self._queues[dom].append(tid)
        self._n_ready += 1
        tr = self.tracer
        if tr is not None:
            tr.queue_depth(time, self._n_ready)

    def state_fingerprint(self):
        # Window picks draw from the RNG, so the generator state is
        # scheduling state.  It advances every iteration — HPX never
        # reaches a fingerprint fixed point, i.e. it always simulates
        # every iteration in full (the honest outcome for a policy
        # whose schedule genuinely differs between iterations).
        rng_state = self.rng.bit_generator.state
        return (
            tuple(tuple(q) for q in self._queues),
            self._n_ready,
            repr(sorted(rng_state.items(), key=lambda kv: kv[0])),
        )

    def pick(self, core, time):
        tr = self.tracer
        if self._n_ready == 0:
            if tr is not None:
                tr.poll(time, core)
            return None
        if self.numa_aware:
            dom = self.machine.domain_of_core(core) % len(self._queues)
        else:
            dom = 0
        q = self._queues[dom]
        if not q:
            # Work stealing: raid the longest other queue from the back.
            q = max(self._queues, key=len)
            if not q:
                if tr is not None:
                    tr.poll(time, core)
                return None
            self._n_ready -= 1
            tid = q.pop()
            if tr is not None:
                # Victim is a *domain* queue index (HPX queues are
                # per-domain, not per-core); identity lookup because
                # a drained queue compares equal to any empty one.
                vidx = next(i for i, d in enumerate(self._queues)
                            if d is q)
                tr.steal(time, core, vidx, tid)
                tr.queue_depth(time, self._n_ready)
            return tid
        # HPX places "less value on prioritization of tasks launched
        # earlier": draw from a small window at the front.
        idx = int(self.rng.integers(0, min(len(q), self.shuffle_window)))
        self._n_ready -= 1
        tid = q.pop(idx)
        if tr is not None:
            tr.queue_depth(time, self._n_ready)
        return tid

    def has_ready(self):
        return self._n_ready > 0


class RegentScheduler(Scheduler):
    """Legion/Regent: serial dependence analysis + reserved util cores."""

    name = "regent"

    def __init__(
        self,
        overhead_per_task: float = 0.8e-6,
        analysis_cost: float = 15.0e-6,
        index_launch_cost: float = 0.25e-6,
        util_fraction: float = 0.14,
        dynamic_tracing: bool = False,
        replay_cost: float = 0.3e-6,
    ):
        super().__init__(overhead_per_task)
        self.analysis_cost = analysis_cost
        self.index_launch_cost = index_launch_cost
        self.util_fraction = util_fraction
        #: §5.1 "Other Attempts": dynamic tracing (Lee et al. 2018)
        #: captures the task graph in the first iteration and replays
        #: it through memoization afterwards, skipping the dependence
        #: analysis.  The paper found no significant improvement — the
        #: analysis pipeline overlaps execution, so only analysis-bound
        #: configurations benefit.
        self.dynamic_tracing = dynamic_tracing
        self.replay_cost = replay_cost
        self._iteration = 0

    def prepare(self, dag, machine, memory, seed=0):
        super().prepare(dag, machine, memory, seed)
        # -ll:util split: paper uses 4/28 on Broadwell, 18/128 on EPYC.
        self.n_util = max(1, int(round(machine.n_cores * self.util_fraction)))
        self.n_workers = machine.n_cores - self.n_util
        # Serial analysis pipeline: prefix-sum of per-task analysis cost
        # in program order gives each task's visibility time.  Over a
        # frozen DAG the per-task cost is selected by indexing a tiny
        # per-kernel table with the interned kernel codes (same values,
        # same dtype, same cumsum — bit-identical prefix sums).
        soa = dag.freeze() if hasattr(dag, "freeze") else None
        if soa is not None:
            kernel_cost = np.fromiter(
                (
                    self.index_launch_cost
                    if k in INDEX_LAUNCH_KERNELS
                    else self.analysis_cost
                    for k in soa.kernel_names
                ),
                dtype=np.float64,
                count=len(soa.kernel_names),
            )
            costs = kernel_cost[soa.kernel_codes]
        else:
            costs = np.fromiter(
                (
                    self.index_launch_cost
                    if t.kernel in INDEX_LAUNCH_KERNELS
                    else self.analysis_cost
                    for t in dag.tasks
                ),
                dtype=np.float64,
                count=len(dag),
            )
        self._visible = np.cumsum(costs)
        self._visible_replay = np.cumsum(
            np.full(len(dag), self.replay_cost)
        )
        self._iteration = 0
        # Legion's default mapper places point tasks statically by
        # partition index (no work stealing); per-worker queues model
        # that, with a light overflow raid so starvation shows up as
        # idle time rather than artificial deadlock.
        self._np = max(1, getattr(dag, "n_partitions", 1))
        # Static point-task homes, vectorized from the frozen param-i
        # table (exact integer arithmetic — same min/floor-div per
        # task as _home_worker).
        if soa is not None:
            pi = soa.param_i
            nw = self.n_workers
            self._home = np.where(
                pi < 0,
                np.arange(soa.n_tasks, dtype=np.int64) % nw,
                np.minimum(nw - 1, pi * nw // self._np),
            ).tolist()
        else:
            self._home = None
        self._worker_q: List[deque] = [deque()
                                       for _ in range(self.n_workers)]
        self._n_ready = 0
        #: Utility-core promotion (fault injection): maps a promoted
        #: util core to the worker-queue slot of the dead lane it
        #: replaces.  Empty on healthy runs — allowed/pick untouched.
        self._slot_of: Dict[int, int] = {}

    def reset_iteration(self, iteration: int, iter_start: float) -> None:
        self._iteration = iteration

    def on_core_loss(self, core: int, time: float) -> None:
        # Regent recovery: promote a reserved utility core into the
        # worker pool to serve the dead lane's queue slot, keeping at
        # least one util core for the runtime itself (the mapper and
        # dependence-analysis pipeline still need a home).
        super().on_core_loss(core, time)
        slot = self._slot_of.pop(core, core if core < self.n_workers else None)
        if slot is None:
            return
        spare = [
            c
            for c in range(self.machine.n_cores - 1, self.n_workers - 1, -1)
            if c not in self._slot_of and c not in self._dead_cores
        ]
        if len(spare) < 2:  # the last util core is never promoted
            return
        self._slot_of[spare[0]] = slot

    def state_fingerprint(self):
        # ``_iteration`` only influences behaviour through the
        # tracing-replay switch, so fingerprint the *switch*, not the
        # counter (the counter always differs between iterations).
        return (
            bool(self.dynamic_tracing and self._iteration > 0),
            tuple(tuple(q) for q in self._worker_q),
            self._n_ready,
        )

    def release_time(self, tid: int, iter_start: float) -> float:
        if self.dynamic_tracing and self._iteration > 0:
            return iter_start + float(self._visible_replay[tid])
        return iter_start + float(self._visible[tid])

    def allowed(self, core: int) -> bool:
        # The last n_util cores belong to the runtime (unless promoted
        # into the worker pool after a lane loss).
        return core < self.n_workers or core in self._slot_of

    def _home_worker(self, tid: int) -> int:
        i = self.dag.tasks[tid].params.get("i")
        if i is None:
            return tid % self.n_workers
        return min(self.n_workers - 1, int(i) * self.n_workers // self._np)

    def on_ready(self, tid, time, enabler_core=None):
        home = self._home
        self._worker_q[
            home[tid] if home is not None else self._home_worker(tid)
        ].append(tid)
        self._n_ready += 1
        tr = self.tracer
        if tr is not None:
            tr.queue_depth(time, self._n_ready)

    def pick(self, core, time):
        tr = self.tracer
        if not self.allowed(core) or self._n_ready == 0:
            if tr is not None:
                tr.poll(time, core)
            return None
        slot = core
        if self._slot_of:
            slot = self._slot_of.get(core, core)
        q = self._worker_q[slot]
        raided = False
        if not q:
            q = max(self._worker_q, key=len)
            if not q:
                if tr is not None:
                    tr.poll(time, core)
                return None
            raided = True
        self._n_ready -= 1
        tid = q.popleft()
        if tr is not None:
            if raided:
                vidx = next(i for i, d in enumerate(self._worker_q)
                            if d is q)
                tr.steal(time, core, vidx, tid)
            tr.queue_depth(time, self._n_ready)
        return tid

    def has_ready(self):
        return self._n_ready > 0
