"""Task cost model: flops → compute seconds, operand touches → memory seconds.

Compute time prices the task's registered flop count at the core's peak
scaled by a kernel-class efficiency (sparse kernels are irregular and
gather-bound; small BLAS-3 on chunks vectorizes well).  Memory time
runs every operand through the cache hierarchy and prices the missed
lines per level they were served from, with the DRAM leg NUMA-aware.

This is the contract that makes the reproduction honest: *every*
runtime's tasks are priced by this one model; only scheduling order,
placement, and per-task overheads differ between the frameworks.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.task import Task
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.topology import MachineSpec

__all__ = ["CostModel", "COST_MODEL_VERSION", "KIND_EFFICIENCY", "TaskCharge"]

#: Semantic fingerprint of the pricing model.  Bump whenever a change
#: alters *simulated numbers* (efficiencies, cache pricing, gather
#: model, NUMA costs…) so the on-disk result cache
#: (:mod:`repro.bench.cache`) invalidates stale entries.  Pure
#: performance refactors that keep results bit-identical — proven by
#: ``tests/test_engine_equivalence.py`` — must NOT bump it.
COST_MODEL_VERSION = 1

#: Fraction of peak flops each kernel class sustains when data is in L1.
KIND_EFFICIENCY = {
    "sparse": 0.12,      # irregular gather/scatter
    "blas1": 0.40,       # streaming, 1 flop per element pair
    "blas3": 0.80,       # small dgemm on chunks
    "dense-small": 0.30, # tiny LAPACK, latency bound
}


class TaskCharge(tuple):
    """(duration, compute, memory, (l1, l2, l3) missed lines)."""

    __slots__ = ()

    def __new__(cls, duration, compute, memory, misses):
        return super().__new__(cls, (duration, compute, memory, misses))

    @property
    def duration(self):
        return self[0]

    @property
    def compute(self):
        return self[1]

    @property
    def memory(self):
        return self[2]

    @property
    def misses(self):
        return self[3]


class CostModel:
    """Prices task executions; owns nothing, mutates the cache state.

    Parameters
    ----------
    gather_intensity:
        Fraction of a SpMV/SpMM task's per-nonzero input-vector
        accesses that behave as irregular re-touches (the remainder
        coalesce with neighbouring nonzeros — banded structure, sorted
        block entries).  Calibrates the CSR-vs-CSB gap; see
        :meth:`_gather_misses`.
    """

    __slots__ = (
        "machine", "cache", "memory", "gather_intensity", "_peak_core",
        "_l2c", "_l3c", "_prep", "_prep_tasks", "_lazy_info",
    )

    def __init__(
        self,
        machine: MachineSpec,
        cache: CacheHierarchy,
        memory: MemoryModel,
        gather_intensity: float = 0.45,
    ):
        self.machine = machine
        self.cache = cache
        self.memory = memory
        self.gather_intensity = gather_intensity
        self._peak_core = machine.ghz * 1e9 * machine.flops_per_cycle
        self._l2c = machine.l2_line_cost
        self._l3c = machine.l3_line_cost
        # Per-task pricing invariants (everything in charge() that does
        # not depend on core or on mutable cache state).  ``prepare``
        # fills a tid-indexed list for a whole DAG; ad-hoc charges fall
        # back to a lazy per-object memo.
        self._prep = None
        self._prep_tasks = None
        self._lazy_info = {}

    # ------------------------------------------------------------------
    def compute_seconds(self, task: Task) -> float:
        """Pure arithmetic time of one task on one core."""
        eff = KIND_EFFICIENCY.get(task.kind, 0.3)
        return task.flops / (self._peak_core * eff)

    def _effective_bytes(self, task: Task) -> dict:
        """Bytes actually touched per operand name.

        A sparse block task addresses only the input/output vector
        lines its nonzeros hit: a block with few entries over a huge
        chunk must not be charged the whole chunk (decisive for
        power-law matrices, where at useful block sizes most blocks are
        non-empty but nearly empty).  Dense kernels touch operands
        fully — the handle size stands.
        """
        if task.kernel not in ("SPMV", "SPMM"):
            return {}
        s = task.shape
        nnz = s.get("nnz", 0)
        w = s.get("width", 1)
        out = {}
        xname = task.params.get("X")
        yname = task.params.get("Y")
        if xname is not None:
            chunk = s["cols"] * w * 8
            unique_lines = min(-(-chunk // 64), nnz)
            out[xname] = min(chunk, unique_lines * 64)
        if yname is not None:
            chunk = s["rows"] * w * 8
            if task.params.get("buffer"):
                # Reduction mode: the private partial buffer must be
                # zeroed in full before the scatter — the "large
                # buffers allocated by each core" cost of Fig. 7.
                out[yname] = chunk
            else:
                out[yname] = min(chunk, nnz * max(w * 8, 64))
        return out

    def _gather_misses(self, task: Task, core: int):
        """Irregular input-vector traffic of a SpMV/SpMM task.

        Per nonzero, the kernel gathers one input-vector row.  The
        first touch of each line is part of the compulsory chunk stream
        (charged via the cache); *re-touches* hit or miss depending on
        whether the gather span fits each level: in row-major traversal
        a line is re-touched one sweep of the span later, so the miss
        probability at a level of capacity C is ``max(0, 1 − C/span)``.
        CSB spans one block column; CSR (``csr_storage``) spans the
        whole vector — this asymmetry is the measured cache advantage
        of CSB storage (Buluç et al. 2009) and what Fig. 8's L2 column
        attributes to ``libcsb``.

        Returns ``(l1, l2, l3)`` extra missed lines and their time.
        """
        span = task.shape.get("gather_span", 0)
        if span <= 0:
            return (0, 0, 0), 0.0
        nnz = task.shape.get("nnz", 0)
        retouches = nnz * self.gather_intensity
        if retouches <= 0:
            return (0, 0, 0), 0.0
        m = self.machine
        p1 = max(0.0, 1.0 - m.l1_size / span)
        p2 = max(0.0, 1.0 - m.l2_size / span)
        # The L3 slice is shared: a streaming core holds ~its share.
        l3_share = m.l3_size / m.l3_group_cores
        p3 = max(0.0, 1.0 - l3_share / span)
        g1 = int(retouches * p1)
        g2 = int(retouches * p2)
        g3 = int(retouches * p3)
        # NUMA pricing of the DRAM leg: gathers confined to one block
        # column hit that chunk's home domain; CSR-style gathers span
        # the whole (domain-striped) vector and pay the scattered rate.
        chunk_bytes = task.shape.get("cols", 0) * task.shape.get("width", 1) * 8
        if span > 1.5 * max(1, chunk_bytes):
            dram = self.memory.dram_line_cost_scattered(core)
        else:
            xkey = None
            for h in task.reads:
                if h.part is not None and h.name != task.params.get("A"):
                    xkey = (h.name, h.part)
                    break
            dram = self.memory.dram_line_cost(core, xkey)
        time = (
            (g1 - g2) * m.l2_line_cost
            + (g2 - g3) * m.l3_line_cost
            + g3 * dram
        )
        return (g1, g2, g3), time

    # ------------------------------------------------------------------
    # Per-task invariants: everything below is iteration-invariant, so
    # it is computed once per task (per run) instead of once per
    # ``charge`` call.  The arithmetic is kept term-for-term identical
    # to the historical per-call formulation — the equivalence test
    # asserts bit-identical simulated numbers.
    def _task_info(self, task: Task, key_of=None) -> tuple:
        """(compute_seconds, operand touches, gather bundle) of a task.

        ``touches`` is a tuple of ``(key, nbytes, is_write)`` in
        :meth:`Task.touched` order with effective-byte overrides
        applied; ``gather`` is ``None`` or
        ``(g1, g2, g3, fixed_time, scattered, xkey)`` where
        ``fixed_time`` is the L2/L3 leg of the gather cost and only the
        DRAM leg (NUMA-aware, core-dependent) is priced per call.

        ``key_of`` is the DAG's handle-interning map (see
        :meth:`repro.graph.dag.TaskDAG.handle_interning`): when given,
        handle keys are emitted as small ints instead of
        ``(name, part)`` tuples, which is what the LRU dicts, sharer
        maps, and NUMA memos hash on in the innermost loop.  Interning
        is a pure key-space change — hit/miss amounts, eviction order,
        and NUMA domains are identical either way.
        """
        compute = self.compute_seconds(task)
        write_keys = {(h.name, h.part) for h in task.writes}
        touched_bytes = self._effective_bytes(task)
        if key_of is None:
            touches = tuple(
                (
                    (h.name, h.part),
                    touched_bytes.get(h.name, h.nbytes),
                    (h.name, h.part) in write_keys,
                )
                for h in task.touched()
            )
        else:
            touches = tuple(
                (
                    key_of[(h.name, h.part)],
                    touched_bytes.get(h.name, h.nbytes),
                    (h.name, h.part) in write_keys,
                )
                for h in task.touched()
            )
        gather = None
        span = task.shape.get("gather_span", 0)
        if span > 0:
            nnz = task.shape.get("nnz", 0)
            retouches = nnz * self.gather_intensity
            if retouches > 0:
                m = self.machine
                p1 = max(0.0, 1.0 - m.l1_size / span)
                p2 = max(0.0, 1.0 - m.l2_size / span)
                l3_share = m.l3_size / m.l3_group_cores
                p3 = max(0.0, 1.0 - l3_share / span)
                g1 = int(retouches * p1)
                g2 = int(retouches * p2)
                g3 = int(retouches * p3)
                chunk_bytes = (task.shape.get("cols", 0)
                               * task.shape.get("width", 1) * 8)
                scattered = span > 1.5 * max(1, chunk_bytes)
                xkey = None
                if not scattered:
                    for h in task.reads:
                        if h.part is not None and \
                                h.name != task.params.get("A"):
                            xkey = (h.name, h.part)
                            if key_of is not None:
                                xkey = key_of[xkey]
                            break
                fixed = (g1 - g2) * self._l2c + (g2 - g3) * self._l3c
                gather = (g1, g2, g3, fixed, scattered, xkey)
        return (compute, touches, gather)

    def prepare(self, dag) -> None:
        """Precompute pricing invariants for every task of one DAG.

        Called by the engines before their hot loop; ``charge`` falls
        back to a lazy per-task memo for tasks outside the prepared
        DAG (ad-hoc pricing in tests and analysis code).

        The invariants depend only on the task and on *immutable*
        pricing inputs (machine constants, ``gather_intensity``) —
        never on the mutable cache/NUMA state — so they are stashed on
        the DAG keyed by those inputs: five runtimes executing the same
        memoized DAG on the same machine price it once.
        """
        tasks = dag.tasks
        self._prep_tasks = tasks
        # Handle-key interning: the DAG numbers its operand handles
        # once; prepared touches/gathers below carry those int keys, so
        # every structure hashed in the hot loop hashes small ints.
        key_of = None
        interning = getattr(dag, "handle_interning", None)
        if interning is not None:
            key_of, id_to_key = interning()
            self.memory.adopt_interning(id_to_key)
        key = (self.machine, self.gather_intensity)
        store = getattr(dag, "_cost_prep", None)
        if store is None:
            store = {}
            try:
                dag._cost_prep = store
            except AttributeError:  # slotted/foreign DAG type
                self._prep = [self._task_info(t, key_of) for t in tasks]
                return
        prep = store.get(key)
        if prep is None or len(prep) != len(tasks):
            prep = [self._task_info(t, key_of) for t in tasks]
            store[key] = prep
        self._prep = prep

    def charge(self, task: Task, core: int) -> TaskCharge:
        """Execute the task's memory behaviour on ``core`` and price it.

        Mutates the cache hierarchy (this run's state); returns the
        task's duration decomposition and per-level missed lines.
        """
        prep = self._prep
        tid = task.tid
        if (prep is not None and 0 <= tid < len(prep)
                and self._prep_tasks[tid] is task):
            compute, touches, gather = prep[tid]
        else:
            memo = self._lazy_info.get(id(task))
            if memo is None or memo[0] is not task:
                memo = (task, self._task_info(task))
                self._lazy_info[id(task)] = memo
            compute, touches, gather = memo[1]
        cache_access = self.cache.access
        dram_cost = self.memory.dram_line_cost
        l2c = self._l2c
        l3c = self._l3c
        l1 = l2 = l3 = 0
        memory_t = 0.0
        for key, nbytes, is_write in touches:
            m1, m2, m3 = cache_access(core, key, nbytes, is_write)
            if not m1:
                # L1 hit: every term below is +0.0, and x + 0.0 == x
                # bit-exactly for the non-negative accumulators here.
                continue
            l1 += m1
            l2 += m2
            l3 += m3
            if m3:
                memory_t += (
                    (m1 - m2) * l2c
                    + (m2 - m3) * l3c
                    + m3 * dram_cost(core, key)
                )
            else:
                # No DRAM leg: skip the (NUMA-aware, core-dependent)
                # line-cost lookup entirely.  `m3 == 0` makes the third
                # term exactly +0.0, so dropping it is bit-identical.
                memory_t += (m1 - m2) * l2c + m2 * l3c
        if gather is not None:
            g1, g2, g3, fixed, scattered, xkey = gather
            # NUMA pricing of the gather's DRAM leg (see _gather_misses).
            if scattered:
                dram = self.memory.dram_line_cost_scattered(core)
            else:
                dram = dram_cost(core, xkey)
            l1 += g1
            l2 += g2
            l3 += g3
            memory_t += fixed + g3 * dram
        # Compute and memory overlap partially on an out-of-order core;
        # a max() would assume perfect overlap, a sum none.  Memory-bound
        # sparse kernels sit close to "no overlap" because the gathers
        # serialize behind the loads, so charge the sum.
        return tuple.__new__(
            TaskCharge,
            (compute + memory_t, compute, memory_t, (l1, l2, l3)),
        )
