"""Task cost model: flops → compute seconds, operand touches → memory seconds.

Compute time prices the task's registered flop count at the core's peak
scaled by a kernel-class efficiency (sparse kernels are irregular and
gather-bound; small BLAS-3 on chunks vectorizes well).  Memory time
runs every operand through the cache hierarchy and prices the missed
lines per level they were served from, with the DRAM leg NUMA-aware.

This is the contract that makes the reproduction honest: *every*
runtime's tasks are priced by this one model; only scheduling order,
placement, and per-task overheads differ between the frameworks.
"""

from __future__ import annotations

from typing import Tuple

from repro.graph.task import Task
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.topology import MachineSpec

__all__ = ["CostModel", "KIND_EFFICIENCY", "TaskCharge"]

#: Fraction of peak flops each kernel class sustains when data is in L1.
KIND_EFFICIENCY = {
    "sparse": 0.12,      # irregular gather/scatter
    "blas1": 0.40,       # streaming, 1 flop per element pair
    "blas3": 0.80,       # small dgemm on chunks
    "dense-small": 0.30, # tiny LAPACK, latency bound
}


class TaskCharge(tuple):
    """(duration, compute, memory, (l1, l2, l3) missed lines)."""

    __slots__ = ()

    def __new__(cls, duration, compute, memory, misses):
        return super().__new__(cls, (duration, compute, memory, misses))

    @property
    def duration(self):
        return self[0]

    @property
    def compute(self):
        return self[1]

    @property
    def memory(self):
        return self[2]

    @property
    def misses(self):
        return self[3]


class CostModel:
    """Prices task executions; owns nothing, mutates the cache state.

    Parameters
    ----------
    gather_intensity:
        Fraction of a SpMV/SpMM task's per-nonzero input-vector
        accesses that behave as irregular re-touches (the remainder
        coalesce with neighbouring nonzeros — banded structure, sorted
        block entries).  Calibrates the CSR-vs-CSB gap; see
        :meth:`_gather_misses`.
    """

    def __init__(
        self,
        machine: MachineSpec,
        cache: CacheHierarchy,
        memory: MemoryModel,
        gather_intensity: float = 0.45,
    ):
        self.machine = machine
        self.cache = cache
        self.memory = memory
        self.gather_intensity = gather_intensity
        self._peak_core = machine.ghz * 1e9 * machine.flops_per_cycle

    # ------------------------------------------------------------------
    def compute_seconds(self, task: Task) -> float:
        """Pure arithmetic time of one task on one core."""
        eff = KIND_EFFICIENCY.get(task.kind, 0.3)
        return task.flops / (self._peak_core * eff)

    def _effective_bytes(self, task: Task) -> dict:
        """Bytes actually touched per operand name.

        A sparse block task addresses only the input/output vector
        lines its nonzeros hit: a block with few entries over a huge
        chunk must not be charged the whole chunk (decisive for
        power-law matrices, where at useful block sizes most blocks are
        non-empty but nearly empty).  Dense kernels touch operands
        fully — the handle size stands.
        """
        if task.kernel not in ("SPMV", "SPMM"):
            return {}
        s = task.shape
        nnz = s.get("nnz", 0)
        w = s.get("width", 1)
        out = {}
        xname = task.params.get("X")
        yname = task.params.get("Y")
        if xname is not None:
            chunk = s["cols"] * w * 8
            unique_lines = min(-(-chunk // 64), nnz)
            out[xname] = min(chunk, unique_lines * 64)
        if yname is not None:
            chunk = s["rows"] * w * 8
            if task.params.get("buffer"):
                # Reduction mode: the private partial buffer must be
                # zeroed in full before the scatter — the "large
                # buffers allocated by each core" cost of Fig. 7.
                out[yname] = chunk
            else:
                out[yname] = min(chunk, nnz * max(w * 8, 64))
        return out

    def _gather_misses(self, task: Task, core: int):
        """Irregular input-vector traffic of a SpMV/SpMM task.

        Per nonzero, the kernel gathers one input-vector row.  The
        first touch of each line is part of the compulsory chunk stream
        (charged via the cache); *re-touches* hit or miss depending on
        whether the gather span fits each level: in row-major traversal
        a line is re-touched one sweep of the span later, so the miss
        probability at a level of capacity C is ``max(0, 1 − C/span)``.
        CSB spans one block column; CSR (``csr_storage``) spans the
        whole vector — this asymmetry is the measured cache advantage
        of CSB storage (Buluç et al. 2009) and what Fig. 8's L2 column
        attributes to ``libcsb``.

        Returns ``(l1, l2, l3)`` extra missed lines and their time.
        """
        span = task.shape.get("gather_span", 0)
        if span <= 0:
            return (0, 0, 0), 0.0
        nnz = task.shape.get("nnz", 0)
        retouches = nnz * self.gather_intensity
        if retouches <= 0:
            return (0, 0, 0), 0.0
        m = self.machine
        p1 = max(0.0, 1.0 - m.l1_size / span)
        p2 = max(0.0, 1.0 - m.l2_size / span)
        # The L3 slice is shared: a streaming core holds ~its share.
        l3_share = m.l3_size / m.l3_group_cores
        p3 = max(0.0, 1.0 - l3_share / span)
        g1 = int(retouches * p1)
        g2 = int(retouches * p2)
        g3 = int(retouches * p3)
        # NUMA pricing of the DRAM leg: gathers confined to one block
        # column hit that chunk's home domain; CSR-style gathers span
        # the whole (domain-striped) vector and pay the scattered rate.
        chunk_bytes = task.shape.get("cols", 0) * task.shape.get("width", 1) * 8
        if span > 1.5 * max(1, chunk_bytes):
            dram = self.memory.dram_line_cost_scattered(core)
        else:
            xkey = None
            for h in task.reads:
                if h.part is not None and h.name != task.params.get("A"):
                    xkey = (h.name, h.part)
                    break
            dram = self.memory.dram_line_cost(core, xkey)
        time = (
            (g1 - g2) * m.l2_line_cost
            + (g2 - g3) * m.l3_line_cost
            + g3 * dram
        )
        return (g1, g2, g3), time

    def charge(self, task: Task, core: int) -> TaskCharge:
        """Execute the task's memory behaviour on ``core`` and price it.

        Mutates the cache hierarchy (this run's state); returns the
        task's duration decomposition and per-level missed lines.
        """
        compute = self.compute_seconds(task)
        l1 = l2 = l3 = 0
        memory_t = 0.0
        write_keys = {(h.name, h.part) for h in task.writes}
        touched_bytes = self._effective_bytes(task)
        for h in task.touched():
            key = (h.name, h.part)
            m1, m2, m3 = self.cache.access(
                core, key, touched_bytes.get(h.name, h.nbytes),
                write=key in write_keys,
            )
            l1 += m1
            l2 += m2
            l3 += m3
            served_l2 = m1 - m2
            served_l3 = m2 - m3
            memory_t += (
                served_l2 * self.machine.l2_line_cost
                + served_l3 * self.machine.l3_line_cost
                + m3 * self.memory.dram_line_cost(core, key)
            )
        (g1, g2, g3), gather_t = self._gather_misses(task, core)
        l1 += g1
        l2 += g2
        l3 += g3
        memory_t += gather_t
        # Compute and memory overlap partially on an out-of-order core;
        # a max() would assume perfect overlap, a sum none.  Memory-bound
        # sparse kernels sit close to "no overlap" because the gathers
        # serialize behind the loads, so charge the sum.
        duration = compute + memory_t
        return TaskCharge(duration, compute, memory_t, (l1, l2, l3))
