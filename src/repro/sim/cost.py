"""Task cost model: flops → compute seconds, operand touches → memory seconds.

Compute time prices the task's registered flop count at the core's peak
scaled by a kernel-class efficiency (sparse kernels are irregular and
gather-bound; small BLAS-3 on chunks vectorizes well).  Memory time
runs every operand through the cache hierarchy and prices the missed
lines per level they were served from, with the DRAM leg NUMA-aware.

This is the contract that makes the reproduction honest: *every*
runtime's tasks are priced by this one model; only scheduling order,
placement, and per-task overheads differ between the frameworks.
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.graph.task import Task
from repro.machine.cache import CacheHierarchy
from repro.machine.memory import MemoryModel
from repro.machine.topology import MachineSpec

__all__ = [
    "CostModel", "COST_MODEL_VERSION", "KIND_EFFICIENCY", "TaskCharge",
    "apply_core_derate", "charge_memo_stats", "reset_charge_memo_stats",
]

#: Semantic fingerprint of the pricing model.  Bump whenever a change
#: alters *simulated numbers* (efficiencies, cache pricing, gather
#: model, NUMA costs…) so the on-disk result cache
#: (:mod:`repro.bench.cache`) invalidates stale entries.  Pure
#: performance refactors that keep results bit-identical — proven by
#: ``tests/test_engine_equivalence.py`` — must NOT bump it.
COST_MODEL_VERSION = 1

#: Kill-switch for the resident-state charge memo (mirrors
#: ``REPRO_NO_STEADY_STATE``): set ``REPRO_NO_CHARGE_MEMO=1`` to force
#: every charge through the full plan walk.  Results are bit-identical
#: either way — the switch exists for debugging and for the property
#: tests that prove that equivalence.
_MEMO_ENV = "REPRO_NO_CHARGE_MEMO"

#: Process-wide memo hit/miss aggregate, flushed by the engines at the
#: end of each run (engines are per-execute objects, so per-instance
#: counters alone would be unobservable from benchmark code).
_MEMO_STATS = {"hits": 0, "misses": 0}


def charge_memo_stats() -> dict:
    """Process-wide charge-memo ``{"hits": .., "misses": ..}`` totals."""
    return dict(_MEMO_STATS)


def reset_charge_memo_stats() -> None:
    _MEMO_STATS["hits"] = 0
    _MEMO_STATS["misses"] = 0


#: Shared zero-miss lines tuple (full L1 hit): the trace hook only ever
#: reads it, so one immutable instance serves every hit.
_ZERO_LINES = (0, 0, 0)

#: Per-(plan, domain) memo buckets are bounded: a slot that accumulates
#: this many distinct resident-state signatures is thrashing (the local
#: state never settles), so it is dropped and rebuilt rather than grown.
#: Deliberately tiny — iteration recurrence needs 1–2 states per slot,
#: and the entries are tuple graphs the cyclic GC must repeatedly scan:
#: at 32 the retained population made full collections dominate the
#: memo's entire saving (measured ~1.4x *slowdown* on an 8-iteration
#: Fig. 9-style sweep; ~2.9s of a 9.6s run was GC).
_MEMO_BUCKET_CAP = 2

#: Depth-3 signatures snapshot the whole shared-L3 dict, which can hold
#: hundreds of entries; beyond this size the snapshot costs more than a
#: re-walk, so such states are priced live instead of memoized.
_SIG3_CAP = 96

#: A (plan, domain) slot whose local state never recurs (e.g. under
#: HPX's randomized work stealing, measured at a 1% hit rate) is pure
#: signature overhead; after this many consecutive non-hit sightings
#: (hits reset the streak) the slot is disabled outright, so later
#: charges skip even the signature build.
_MEMO_MISS_STREAK = 16

#: Fraction of peak flops each kernel class sustains when data is in L1.
KIND_EFFICIENCY = {
    "sparse": 0.12,      # irregular gather/scatter
    "blas1": 0.40,       # streaming, 1 flop per element pair
    "blas3": 0.80,       # small dgemm on chunks
    "dense-small": 0.30, # tiny LAPACK, latency bound
}


class TaskCharge(tuple):
    """(duration, compute, memory, (l1, l2, l3) missed lines)."""

    __slots__ = ()

    def __new__(cls, duration, compute, memory, misses):
        return super().__new__(cls, (duration, compute, memory, misses))

    @property
    def duration(self):
        return self[0]

    @property
    def compute(self):
        return self[1]

    @property
    def memory(self):
        return self[2]

    @property
    def misses(self):
        return self[3]


class CostModel:
    """Prices task executions; owns nothing, mutates the cache state.

    Parameters
    ----------
    gather_intensity:
        Fraction of a SpMV/SpMM task's per-nonzero input-vector
        accesses that behave as irregular re-touches (the remainder
        coalesce with neighbouring nonzeros — banded structure, sorted
        block entries).  Calibrates the CSR-vs-CSB gap; see
        :meth:`_gather_misses`.
    """

    __slots__ = (
        "machine", "cache", "memory", "gather_intensity", "_peak_core",
        "_l2c", "_l3c", "_prep", "_prep_tasks", "_lazy_info",
        # -- compiled access plans + charge memo (see prepare) ---------
        "_fast_ok", "_fast_prep", "_plan_epoch", "_homes", "_haspart",
        "_core_dom", "_mm_local", "_mm_remote", "_mm_scat",
        "_mm_scatmode", "_n_domains", "_memo",
        "_bare_ctx", "_bare_common",
        "memo_hits", "memo_misses",
    )

    def __init__(
        self,
        machine: MachineSpec,
        cache: CacheHierarchy,
        memory: MemoryModel,
        gather_intensity: float = 0.45,
    ):
        self.machine = machine
        self.cache = cache
        self.memory = memory
        self.gather_intensity = gather_intensity
        self._peak_core = machine.ghz * 1e9 * machine.flops_per_cycle
        self._l2c = machine.l2_line_cost
        self._l3c = machine.l3_line_cost
        # Per-task pricing invariants (everything in charge() that does
        # not depend on core or on mutable cache state).  ``prepare``
        # fills a tid-indexed list for a whole DAG; ad-hoc charges fall
        # back to a lazy per-object memo.
        self._prep = None
        self._prep_tasks = None
        self._lazy_info = {}
        # Fast-path state: armed by ``prepare`` when the DAG interns
        # its handle keys (dense ints index the home-domain arrays).
        # ``_fast_prep`` is ``_prep`` when armed, else None — one load
        # decides the dispatch in ``charge``.
        self._fast_ok = False
        self._fast_prep = None
        self._plan_epoch = -1
        self._homes = None
        self._haspart = None
        self._core_dom = memory._core_domain
        self._mm_local = memory._local_cost
        self._mm_remote = memory._remote_cost
        self._mm_scat = memory._scattered_cost
        self._mm_scatmode = memory.scattered
        self._n_domains = machine.n_numa_domains
        self._memo = None
        self._bare_ctx = None
        self._bare_common = None
        self.memo_hits = 0
        self.memo_misses = 0

    # ------------------------------------------------------------------
    def compute_seconds(self, task: Task) -> float:
        """Pure arithmetic time of one task on one core."""
        eff = KIND_EFFICIENCY.get(task.kind, 0.3)
        return task.flops / (self._peak_core * eff)

    def _effective_bytes(self, task: Task) -> dict:
        """Bytes actually touched per operand name.

        A sparse block task addresses only the input/output vector
        lines its nonzeros hit: a block with few entries over a huge
        chunk must not be charged the whole chunk (decisive for
        power-law matrices, where at useful block sizes most blocks are
        non-empty but nearly empty).  Dense kernels touch operands
        fully — the handle size stands.
        """
        if task.kernel not in ("SPMV", "SPMM"):
            return {}
        s = task.shape
        nnz = s.get("nnz", 0)
        w = s.get("width", 1)
        out = {}
        xname = task.params.get("X")
        yname = task.params.get("Y")
        if xname is not None:
            chunk = s["cols"] * w * 8
            unique_lines = min(-(-chunk // 64), nnz)
            out[xname] = min(chunk, unique_lines * 64)
        if yname is not None:
            chunk = s["rows"] * w * 8
            if task.params.get("buffer"):
                # Reduction mode: the private partial buffer must be
                # zeroed in full before the scatter — the "large
                # buffers allocated by each core" cost of Fig. 7.
                out[yname] = chunk
            else:
                out[yname] = min(chunk, nnz * max(w * 8, 64))
        return out

    def _gather_misses(self, task: Task, core: int):
        """Irregular input-vector traffic of a SpMV/SpMM task.

        Per nonzero, the kernel gathers one input-vector row.  The
        first touch of each line is part of the compulsory chunk stream
        (charged via the cache); *re-touches* hit or miss depending on
        whether the gather span fits each level: in row-major traversal
        a line is re-touched one sweep of the span later, so the miss
        probability at a level of capacity C is ``max(0, 1 − C/span)``.
        CSB spans one block column; CSR (``csr_storage``) spans the
        whole vector — this asymmetry is the measured cache advantage
        of CSB storage (Buluç et al. 2009) and what Fig. 8's L2 column
        attributes to ``libcsb``.

        Returns ``(l1, l2, l3)`` extra missed lines and their time.
        """
        span = task.shape.get("gather_span", 0)
        if span <= 0:
            return (0, 0, 0), 0.0
        nnz = task.shape.get("nnz", 0)
        retouches = nnz * self.gather_intensity
        if retouches <= 0:
            return (0, 0, 0), 0.0
        m = self.machine
        p1 = max(0.0, 1.0 - m.l1_size / span)
        p2 = max(0.0, 1.0 - m.l2_size / span)
        # The L3 slice is shared: a streaming core holds ~its share.
        l3_share = m.l3_size / m.l3_group_cores
        p3 = max(0.0, 1.0 - l3_share / span)
        g1 = int(retouches * p1)
        g2 = int(retouches * p2)
        g3 = int(retouches * p3)
        # NUMA pricing of the DRAM leg: gathers confined to one block
        # column hit that chunk's home domain; CSR-style gathers span
        # the whole (domain-striped) vector and pay the scattered rate.
        chunk_bytes = task.shape.get("cols", 0) * task.shape.get("width", 1) * 8
        if span > 1.5 * max(1, chunk_bytes):
            dram = self.memory.dram_line_cost_scattered(core)
        else:
            xkey = None
            for h in task.reads:
                if h.part is not None and h.name != task.params.get("A"):
                    xkey = (h.name, h.part)
                    break
            dram = self.memory.dram_line_cost(core, xkey)
        time = (
            (g1 - g2) * m.l2_line_cost
            + (g2 - g3) * m.l3_line_cost
            + g3 * dram
        )
        return (g1, g2, g3), time

    # ------------------------------------------------------------------
    # Per-task invariants: everything below is iteration-invariant, so
    # it is computed once per task (per run) instead of once per
    # ``charge`` call.  The arithmetic is kept term-for-term identical
    # to the historical per-call formulation — the equivalence test
    # asserts bit-identical simulated numbers.
    def _task_info(self, task: Task, key_of=None) -> tuple:
        """(compute_seconds, operand touches, gather bundle) of a task.

        ``touches`` is a tuple of
        ``(key, nbytes, is_write, l1_insert, full_lines)`` in
        :meth:`Task.touched` order with effective-byte overrides
        applied — ``l1_insert`` is the machine-constant
        ``min(nbytes, l1_size)`` precomputed so the charge walk can
        branch on the dominant whole-L1 streaming case without any
        per-call arithmetic, and ``full_lines`` is
        ``ceil(nbytes / 64)``, the per-level miss-line count of a
        fully cold touch (every level misses in full, so one
        precomputed value prices all three legs); ``gather`` is
        ``None`` or
        ``(g1, g2, g3, fixed_time, scattered, xkey)`` where
        ``fixed_time`` is the L2/L3 leg of the gather cost and only the
        DRAM leg (NUMA-aware, core-dependent) is priced per call.

        ``key_of`` is the DAG's handle-interning map (see
        :meth:`repro.graph.dag.TaskDAG.handle_interning`): when given,
        handle keys are emitted as small ints instead of
        ``(name, part)`` tuples, which is what the LRU dicts, sharer
        maps, and NUMA memos hash on in the innermost loop.  Interning
        is a pure key-space change — hit/miss amounts, eviction order,
        and NUMA domains are identical either way.
        """
        compute = self.compute_seconds(task)
        # Tasks write one or two handles, so a tuple membership scan
        # beats building a set per task.
        write_keys = tuple((h.name, h.part) for h in task.writes)
        touched_bytes = self._effective_bytes(task)
        tb_get = touched_bytes.get if touched_bytes else None
        l1cap = self.machine.l1_size
        out = []
        for h in task.touched():
            hkey = (h.name, h.part)
            nbytes = tb_get(h.name, h.nbytes) if tb_get is not None \
                else h.nbytes
            out.append((
                hkey if key_of is None else key_of[hkey],
                nbytes,
                hkey in write_keys,
                nbytes if nbytes < l1cap else l1cap,
                (nbytes + 63) // 64,
            ))
        touches = tuple(out)
        return (compute, touches, self._gather_bundle(task, key_of))

    def _gather_bundle(self, task: Task, key_of=None):
        """The precompiled gather tuple of :meth:`_task_info`, or None.

        Factored out so the structure-of-arrays compile path
        (:meth:`_compile_plans_soa`) shares the exact arithmetic."""
        span = task.shape.get("gather_span", 0)
        if span <= 0:
            return None
        nnz = task.shape.get("nnz", 0)
        retouches = nnz * self.gather_intensity
        if retouches <= 0:
            return None
        m = self.machine
        p1 = max(0.0, 1.0 - m.l1_size / span)
        p2 = max(0.0, 1.0 - m.l2_size / span)
        l3_share = m.l3_size / m.l3_group_cores
        p3 = max(0.0, 1.0 - l3_share / span)
        g1 = int(retouches * p1)
        g2 = int(retouches * p2)
        g3 = int(retouches * p3)
        chunk_bytes = (task.shape.get("cols", 0)
                       * task.shape.get("width", 1) * 8)
        scattered = span > 1.5 * max(1, chunk_bytes)
        xkey = None
        if not scattered:
            for h in task.reads:
                if h.part is not None and \
                        h.name != task.params.get("A"):
                    xkey = (h.name, h.part)
                    if key_of is not None:
                        xkey = key_of[xkey]
                    break
        fixed = (g1 - g2) * self._l2c + (g2 - g3) * self._l3c
        return (g1, g2, g3, fixed, scattered, xkey)

    def prepare(self, dag, iterations=None) -> None:
        """Precompute pricing invariants for every task of one DAG.

        Called by the engines before their hot loop; ``charge`` falls
        back to a lazy per-task memo for tasks outside the prepared
        DAG (ad-hoc pricing in tests and analysis code).

        ``iterations`` is the engine's iteration count, used purely as
        a heuristic to arm the charge memo: local cache states can only
        recur across warm iterations (iteration 1 is cold, iteration 2
        first *enters* the fixed point, so iteration 3 is the earliest
        possible replay), so runs known to be shorter than 3 iterations
        skip the memo's bookkeeping entirely.  ``None`` (ad-hoc
        pricing, unknown horizon) arms it.

        The invariants depend only on the task and on *immutable*
        pricing inputs (machine constants, ``gather_intensity``) —
        never on the mutable cache/NUMA state — so they are stashed on
        the DAG keyed by those inputs: five runtimes executing the same
        memoized DAG on the same machine price it once.

        What is stored per task is a *compiled access plan*
        ``(compute, touches, gather, pid)``: the ``_task_info`` tuple
        with zero-byte touches dropped (a zero-byte access is a
        documented no-op: no state change, no hook call, no cost) and a
        dense plan id ``pid`` (the task index) naming the plan in memo
        keys.  ``prepare`` also snapshots the NUMA home domain of
        every interned handle into arrays stamped with the memory
        model's ``state_epoch``; ``charge`` re-validates the epoch per
        call and falls back to the live pricing path on any mismatch.
        """
        tasks = dag.tasks
        self._prep_tasks = tasks
        # Handle-key interning: the DAG numbers its operand handles
        # once; prepared touches/gathers below carry those int keys, so
        # every structure hashed in the hot loop hashes small ints.
        key_of = None
        soa = None
        interning = getattr(dag, "handle_interning", None)
        if interning is not None:
            key_of, id_to_key = interning()
            self.memory.adopt_interning(id_to_key)
            freeze = getattr(dag, "freeze", None)
            if freeze is not None:
                soa = freeze()
        key = (self.machine, self.gather_intensity)
        store = getattr(dag, "_cost_prep", None)
        if store is None:
            store = {}
            try:
                dag._cost_prep = store
            except AttributeError:  # slotted/foreign DAG type
                self._prep = self._compile_plans(tasks, key_of, soa)
                self._arm_fast_path(key_of, iterations, dag)
                return
        prep = store.get(key)
        if prep is None or len(prep) != len(tasks):
            prep = self._compile_plans(tasks, key_of, soa)
            store[key] = prep
            # A replaced plan list may be freed and its id() reused, so
            # any memo keyed on the old plans' identity must go too.
            try:
                dag._charge_memo = {}
            except AttributeError:
                pass
        self._prep = prep
        self._arm_fast_path(key_of, iterations, dag)

    def _compile_plans(self, tasks, key_of, soa=None):
        """Flatten every task into its access plan.

        The plan id is simply the task's index: plans embed their
        operand keys, so two distinct tasks virtually never compile to
        identical plans and content-interning them would only pay
        hashing cost for no collapse.

        ``heavy`` marks plans whose L1 insert extents alone overflow
        L1 — every walk of such a plan does eviction work from any
        start state, which is what makes a memo replay cheaper than
        the walk.  Light plans walk in a handful of dict ops, below
        the cost of even computing a state signature (measured: memoing
        them made whole sweeps *slower* at a 73% hit rate), so the
        charge memo only arms for heavy plans.

        When the DAG is frozen (``soa`` given, interned keys active)
        the touch tuples are read off the flat structure-of-arrays
        tables instead of re-walking ``reads``/``writes`` handle
        objects per task — same values, compiled in one pass over
        preconverted Python-int lists.
        """
        if soa is not None and key_of is not None:
            return self._compile_plans_soa(tasks, soa, key_of)
        plans = []
        info = self._task_info
        l1 = self.machine.l1_size
        for t in tasks:
            compute, touches, gather = info(t, key_of)
            touches = tuple(tt for tt in touches if tt[1] > 0)
            heavy = sum(tt[3] for tt in touches) > l1
            plans.append((compute, touches, gather, len(plans), heavy))
        return plans

    def _compile_plans_soa(self, tasks, soa, key_of):
        """Structure-of-arrays twin of the plan compiler.

        Touch ids/bytes/write-flags come from the DAG's frozen flat
        tables (:class:`repro.graph.dag.GraphArrays`), converted to
        Python ints once (`.tolist()`) so plan tuples never carry NumPy
        scalars into the hot charge walk.  The effective-byte override
        of sparse kernels is applied by operand *name* via the interned
        id tables — byte-for-byte the rule :meth:`_task_info` applies
        to handle objects, pinned by the equivalence fixture and the
        plan-equality property test.
        """
        indptr = soa.touch_indptr.tolist()
        t_ids = soa.touch_ids.tolist()
        t_nbytes = soa.touch_nbytes.tolist()
        t_write = soa.touch_is_write.tolist()
        names = soa.id_name
        l1 = self.machine.l1_size
        peak = self._peak_core
        eff = KIND_EFFICIENCY
        gather_of = self._gather_bundle
        plans = []
        for tid, t in enumerate(tasks):
            compute = t.flops / (peak * eff.get(t.kind, 0.3))
            a, b = indptr[tid], indptr[tid + 1]
            gather = None
            if t.kernel in ("SPMV", "SPMM"):
                tb = self._effective_bytes(t)
                tb_get = tb.get
                touches = []
                for j in range(a, b):
                    oid = t_ids[j]
                    nbytes = tb_get(names[oid], t_nbytes[j])
                    if nbytes > 0:
                        touches.append((
                            oid, nbytes, t_write[j],
                            nbytes if nbytes < l1 else l1,
                            (nbytes + 63) // 64,
                        ))
                gather = gather_of(t, key_of)
            else:
                touches = [
                    (t_ids[j], t_nbytes[j], t_write[j],
                     t_nbytes[j] if t_nbytes[j] < l1 else l1,
                     (t_nbytes[j] + 63) // 64)
                    for j in range(a, b) if t_nbytes[j] > 0
                ]
            heavy = sum(tt[3] for tt in touches) > l1
            plans.append((compute, tuple(touches), gather, tid, heavy))
        return plans

    def _arm_fast_path(self, key_of, iterations=None, dag=None) -> None:
        """Snapshot NUMA homes + memo state for the compiled-plan walk.

        The fast walk prices DRAM legs from per-key arrays instead of
        :meth:`MemoryModel.dram_line_cost`; the arrays are only valid
        while no placement mutation happens, which the memory model's
        ``state_epoch`` tracks.  When the memory model carries no
        explicit placement pins the arrays are pure functions of
        ``(machine, first_touch, n_parts, matrix_geometry)`` over the
        DAG's own interning, so they are cached on the DAG under that
        key — five runtimes pricing the same memoized DAG resolve every
        home once, not once per engine.  The charge memo is armed here
        too and cleared on every ``prepare`` (one memo per run).
        """
        mem = self.memory
        arrays = None
        if key_of is not None:
            astore = None
            if dag is not None and not mem._placement:
                akey = (self.machine, mem.first_touch, mem._n_parts,
                        mem.matrix_geometry)
                astore = getattr(dag, "_home_arrays", None)
                if astore is None:
                    astore = {}
                    try:
                        dag._home_arrays = astore
                    except AttributeError:  # slotted/foreign DAG type
                        astore = None
                if astore is not None:
                    arrays = astore.get(akey)
                    if arrays is not None and \
                            len(arrays[0]) != len(mem._intern_keys):
                        arrays = None
            if arrays is None:
                arrays = mem.home_arrays()
                if arrays is not None and astore is not None:
                    astore[akey] = arrays
        if arrays is not None:
            self._homes, self._haspart = arrays
            self._plan_epoch = mem.state_epoch
            self._fast_ok = True
            self._fast_prep = self._prep
        else:
            self._homes = self._haspart = None
            self._plan_epoch = -1
            self._fast_ok = False
            self._fast_prep = None
        self._core_dom = mem._core_domain
        self._mm_local = mem._local_cost
        self._mm_remote = mem._remote_cost
        self._mm_scat = mem._scattered_cost
        self._mm_scatmode = mem.scattered
        self._n_domains = self.machine.n_numa_domains
        # Memo arming policy: plan ids embed the tasks' operand keys,
        # so distinct tasks almost never share a plan — memo hits come
        # from *the same task* recurring under a recurring local state,
        # which first happens when warm iteration 3 replays iteration
        # 2's charges (iteration 1 is cold, iteration 2 enters the
        # warm fixed point).  Runs known to be shorter are all misses,
        # so they skip the memo's bookkeeping entirely.  When armed,
        # the memo is shared *across runs* through the DAG whenever
        # the recorded values are provably run-independent: an entry
        # is a pure function of the plan (pinned by the exact compiled
        # ``prep`` object), the machine, and the memory-model
        # constants that price DRAM legs — so the store keys on all of
        # those and is only used when no explicit placement pins
        # exist.  Runtime versions re-pricing the same memoized DAG
        # then replay each other's recorded charges wherever local
        # cache states recur.
        memo = None
        if (self._fast_ok and not os.environ.get(_MEMO_ENV)
                and (iterations is None or iterations >= 3)):
            shared = None
            if dag is not None and not mem._placement:
                mkey = (id(self._prep), mem.first_touch, mem.scattered,
                        mem._n_parts, mem.matrix_geometry)
                mstore = getattr(dag, "_charge_memo", None)
                if mstore is None:
                    mstore = {}
                    try:
                        dag._charge_memo = mstore
                    except AttributeError:  # slotted/foreign DAG type
                        mstore = None
                if mstore is not None:
                    shared = mstore.get(mkey)
                    if shared is None:
                        shared = mstore[mkey] = {}
            if shared is not None:
                memo = shared
            elif iterations is None or iterations >= 3:
                memo = {}
        self._memo = memo
        self.memo_hits = 0
        self.memo_misses = 0
        # Hot-loop invariants of the bare compiled walk, resolved once
        # per prepare instead of per charge: one shared tuple for the
        # model-wide bindings and a lazily-filled per-core list (see
        # :meth:`_bare_core_ctx`).  Rebuilt on every prepare; a stale
        # context is unreachable because the bare path is only entered
        # under the same ``state_epoch`` guard that validated these.
        cache = self.cache
        self._bare_common = (
            cache._sharers, cache._l3_sharers, cache._invalidate_others,
            self._l2c, self._l3c, self._homes, self._haspart,
            self._mm_local, self._mm_remote, self._mm_scat,
            self._mm_scatmode,
        )
        self._bare_ctx = [None] * self.machine.n_cores

    def _bare_core_ctx(self, core: int):
        """Resolve (and cache) one core's invariant charge context."""
        cache = self.cache
        g = cache._group_of[core]
        L1 = cache.l1[core]
        L2 = cache.l2[core]
        L3 = cache.l3[g]
        ctx = (L1, L2, L3, L1._entries, L2._entries, L3._entries,
               L1.capacity, L2.capacity, L3.capacity, g,
               self._core_dom[core])
        self._bare_ctx[core] = ctx
        return ctx

    def flush_memo_stats(self) -> None:
        """Fold this run's memo hit/miss counters into the process
        aggregate (called by the engines when a run completes)."""
        _MEMO_STATS["hits"] += self.memo_hits
        _MEMO_STATS["misses"] += self.memo_misses
        self.memo_hits = 0
        self.memo_misses = 0

    def charge(self, task: Task, core: int) -> TaskCharge:
        """Execute the task's memory behaviour on ``core`` and price it.

        Mutates the cache hierarchy (this run's state); returns the
        task's duration decomposition and per-level missed lines.
        """
        tid = task.tid
        fp = self._fast_prep
        if (fp is not None and 0 <= tid < len(fp)
                and self._prep_tasks[tid] is task
                and self.memory.state_epoch == self._plan_epoch):
            plan = fp[tid]
            if ((self._memo is None or not plan[4])
                    and self.cache.trace_hook is None):
                return self._charge_bare(plan, core)
            return self._charge_fast(plan, core)
        prep = self._prep
        if (prep is not None and 0 <= tid < len(prep)
                and self._prep_tasks[tid] is task):
            plan = prep[tid]
            compute, touches, gather = plan[0], plan[1], plan[2]
        else:
            memo = self._lazy_info.get(id(task))
            if memo is None or memo[0] is not task:
                memo = (task, self._task_info(task))
                self._lazy_info[id(task)] = memo
            compute, touches, gather = memo[1]
        cache_access = self.cache.access
        dram_cost = self.memory.dram_line_cost
        l2c = self._l2c
        l3c = self._l3c
        l1 = l2 = l3 = 0
        memory_t = 0.0
        for key, nbytes, is_write, _n1, _lmf in touches:
            m1, m2, m3 = cache_access(core, key, nbytes, is_write)
            if not m1:
                # L1 hit: every term below is +0.0, and x + 0.0 == x
                # bit-exactly for the non-negative accumulators here.
                continue
            l1 += m1
            l2 += m2
            l3 += m3
            if m3:
                memory_t += (
                    (m1 - m2) * l2c
                    + (m2 - m3) * l3c
                    + m3 * dram_cost(core, key)
                )
            else:
                # No DRAM leg: skip the (NUMA-aware, core-dependent)
                # line-cost lookup entirely.  `m3 == 0` makes the third
                # term exactly +0.0, so dropping it is bit-identical.
                memory_t += (m1 - m2) * l2c + m2 * l3c
        if gather is not None:
            g1, g2, g3, fixed, scattered, xkey = gather
            # NUMA pricing of the gather's DRAM leg (see _gather_misses).
            if scattered:
                dram = self.memory.dram_line_cost_scattered(core)
            else:
                dram = dram_cost(core, xkey)
            l1 += g1
            l2 += g2
            l3 += g3
            memory_t += fixed + g3 * dram
        # Compute and memory overlap partially on an out-of-order core;
        # a max() would assume perfect overlap, a sum none.  Memory-bound
        # sparse kernels sit close to "no overlap" because the gathers
        # serialize behind the loads, so charge the sum.
        return tuple.__new__(
            TaskCharge,
            (compute + memory_t, compute, memory_t, (l1, l2, l3)),
        )

    def _charge_fast(self, plan, core: int) -> TaskCharge:
        """Compiled-plan charge: fused walk + resident-state memo.

        Executes the same per-touch algorithm as ``charge`` +
        :meth:`CacheHierarchy.access`, term-for-term and in the same
        order (the equivalence fixture pins the numbers), but fused
        into one loop over the compiled plan with every per-call
        attribute lookup hoisted, the DRAM leg priced from the
        epoch-stamped home arrays, and a whole-cache-clobber eviction
        fast path (an inserted extent that fills the level evicts
        every other entry — the dominant cold-cache case).

        Layered on top is the resident-state charge memo.  A charge's
        *value* and its *state delta* are pure functions of the plan,
        the core's NUMA domain, and exactly this local state: the
        (key → resident bytes) contents, in LRU order, of the core's
        L1, of its L2 if any touch misses L1, and of its L3 group if
        any touch misses L2 (an eviction at a level implies a miss
        into the next, so a walk that never misses L1 never reads
        deeper state).  The signature is those dict-items tuples at
        the matching depth — nothing else is read, which is the
        memo-key invariant.  Sharer sets are deliberately *not* in the
        key: sharer-map updates, prunes, and write invalidations are
        executed live on replay (against the current sets and the
        current ``core``/group, exactly as the full walk would), so
        their state never needs to match record time — which is also
        why slots key on the *domain*, not the core: pricing reads
        only the core's domain, every dict op replays against the
        replaying core's own (signature-matched) caches, and the
        recorded ``used`` totals are sums over the matched signatures.
        On a hit the recorded ``TaskCharge`` is returned after
        replaying the recorded dict operations (preserving insertion
        order — the steady-state fingerprint hashes it) and per-touch
        miss-lines tuples are fed to the trace hook, so tracing sees
        the same event stream as a full walk.  Recording only starts
        when a plan's L1 signature repeats back-to-back for a
        (plan, domain) slot, which keeps one-shot cold states from
        paying the recording overhead.
        """
        compute, touches, gather, pid, heavy = plan
        cache = self.cache
        g = cache._group_of[core]
        L1 = cache.l1[core]
        L2 = cache.l2[core]
        L3 = cache.l3[g]
        e1 = L1._entries
        e2 = L2._entries
        e3 = L3._entries
        sharer_map = cache._sharers
        l3_sharer_map = cache._l3_sharers
        hook = cache.trace_hook
        inval = cache._invalidate_others

        # -- memo lookup ---------------------------------------------
        cdom = self._core_dom[core]
        memo = self._memo
        rec = None
        slot = None
        sig1 = sig2 = sig3 = None
        if memo is not None and heavy:
            mkey = pid * self._n_domains + cdom
            slot = memo.get(mkey)
            if slot is False:
                # Disabled by a miss streak: this slot's state never
                # recurs, don't even build the signature.
                self.memo_misses += 1
                slot = None
            elif slot is None:
                # Signatures are flat ``keys + values`` tuples (decoded
                # unambiguously by splitting at the midpoint, so they
                # discriminate exactly like an items() tuple) — they
                # hold only ints, which lets the cyclic GC untrack them
                # instead of rescanning one pair-tuple per entry on
                # every collection; the allocation churn of pair tuples
                # was a measured net loss at sweep scale.
                sig1 = tuple(e1) + tuple(e1.values())
                # Slot layout: three per-depth entry dicts, the marker
                # signature, the non-hit streak, and the marker's
                # consecutive-sighting count.
                memo[mkey] = [None, None, None, sig1, 0, 1]
                self.memo_misses += 1
                slot = None
            else:
                sig1 = tuple(e1) + tuple(e1.values())
                entry = None
                d = slot[0]
                if d is not None:
                    entry = d.get(sig1)
                if entry is None and (slot[1] is not None
                                      or slot[2] is not None):
                    sig2 = tuple(e2) + tuple(e2.values())
                    d = slot[1]
                    if d is not None:
                        entry = d.get((sig1, sig2))
                    if entry is None:
                        d = slot[2]
                        if d is not None and len(e3) <= _SIG3_CAP:
                            entry = d.get((sig1, sig2,
                                           tuple(e3) + tuple(e3.values())))
                if entry is not None and hook is not None \
                        and entry[1] is not None and entry[2] is None:
                    # Compact (aggregate-only) entry, but a trace hook
                    # is attached and needs per-touch miss events:
                    # fall through to a full walk (counted as a miss;
                    # the re-recording stores a per-touch entry).
                    entry = None
                if entry is not None:
                    # -- replay: recorded charge + state delta --------
                    # The signature matched *exactly* (dict items in
                    # order), so the walk's final L1/L2/L3 contents are
                    # the recorded post-states: apply them wholesale
                    # with clear()+update() (C speed, exact insertion
                    # order) instead of re-executing per-touch dict
                    # churn.  Only the operations on *shared* state —
                    # sharer prunes for recorded victims, sharer adds,
                    # and write invalidations — replay per touch, in
                    # touch order, against the live maps (their state
                    # need not match record time; see above).
                    self.memo_hits += 1
                    slot[4] = 0
                    charge_obj, agg, tops, post1, ru1, p2, p3 = entry
                    if agg is not None and hook is None:
                        # All touch keys distinct and no victim recurs
                        # as a touch key (checked at record time), so
                        # the sharer ops commute across touches —
                        # replay them category-by-category from the
                        # flattened tuples.  Per-key op order is
                        # preserved (each key appears in exactly one
                        # category), which is all the live state can
                        # observe.
                        prunes, l3prunes, radds, l3adds, writes = agg
                        for v in prunes:
                            s = sharer_map.get(v)
                            if s is not None:
                                s.discard(core)
                                if not s:
                                    del sharer_map[v]
                        for v in l3prunes:
                            s = l3_sharer_map.get(v)
                            if s is not None:
                                s.discard(g)
                                if not s:
                                    del l3_sharer_map[v]
                        for key in radds:
                            s = sharer_map.get(key)
                            if s is None:
                                sharer_map[key] = {core}
                            else:
                                s.add(core)
                        for key in l3adds:
                            s = l3_sharer_map.get(key)
                            if s is None:
                                l3_sharer_map[key] = {g}
                            else:
                                s.add(g)
                        for key in writes:
                            s = sharer_map.get(key)
                            if s is None:
                                sharer_map[key] = {core}
                                n_sharers = 1
                            else:
                                s.add(core)
                                n_sharers = len(s)
                            s = l3_sharer_map.get(key)
                            if s is None:
                                l3_sharer_map[key] = {g}
                                n_l3s = 1
                            else:
                                s.add(g)
                                n_l3s = len(s)
                            if n_sharers > 1 or n_l3s > 1:
                                inval(core, g, key)
                    else:
                        for key, write, lines, prunes, l3prunes in tops:
                            for v in prunes:
                                s = sharer_map.get(v)
                                if s is not None:
                                    s.discard(core)
                                    if not s:
                                        del sharer_map[v]
                            for v in l3prunes:
                                s = l3_sharer_map.get(v)
                                if s is not None:
                                    s.discard(g)
                                    if not s:
                                        del l3_sharer_map[v]
                            if write:
                                s = sharer_map.get(key)
                                if s is None:
                                    sharer_map[key] = {core}
                                    n_sharers = 1
                                else:
                                    s.add(core)
                                    n_sharers = len(s)
                                s = l3_sharer_map.get(key)
                                if s is None:
                                    l3_sharer_map[key] = {g}
                                    n_l3s = 1
                                else:
                                    s.add(g)
                                    n_l3s = len(s)
                                if n_sharers > 1 or n_l3s > 1:
                                    inval(core, g, key)
                            else:
                                if lines[0]:
                                    s = sharer_map.get(key)
                                    if s is None:
                                        sharer_map[key] = {core}
                                    else:
                                        s.add(core)
                                s = l3_sharer_map.get(key)
                                if s is None:
                                    l3_sharer_map[key] = {g}
                                else:
                                    s.add(g)
                            if hook is not None:
                                hook(lines)
                    e1.clear()
                    e1.update(zip(post1[0], post1[1]))
                    L1.used = ru1
                    if p2 is not None:
                        e2.clear()
                        e2.update(zip(p2[0], p2[1]))
                        L2.used = p2[2]
                    if p3 is not None:
                        e3.clear()
                        e3.update(zip(p3[0], p3[1]))
                        L3.used = p3[2]
                    return charge_obj
                self.memo_misses += 1
                streak = slot[4] + 1
                slot[4] = streak
                if slot[3] == sig1:
                    c = slot[5] + 1
                    slot[5] = c
                    if c >= 3:
                        # Third consecutive sighting of this L1 state
                        # for this (plan, domain): record the walk.
                        # (Recording on the *second* sighting paid a
                        # store for every state that recurs exactly
                        # twice — e.g. the warm-up iterations of runs
                        # the steady-state fast path then takes over —
                        # a measured net loss at sweep scale.)  Deeper
                        # signatures must be snapshotted now, before
                        # the walk mutates the state they describe.
                        # An L3 too large to sign stays ``None`` — if
                        # the walk turns out to read it, the recording
                        # is discarded.
                        rec = []
                        if sig2 is None:
                            sig2 = tuple(e2) + tuple(e2.values())
                        if len(e3) <= _SIG3_CAP:
                            sig3 = tuple(e3) + tuple(e3.values())
                    else:
                        slot = None
                elif streak >= _MEMO_MISS_STREAK:
                    # The state keeps changing faster than it recurs:
                    # stop signing this slot for good (a hit would
                    # have reset the streak).
                    memo[mkey] = False
                    slot = None
                else:
                    slot[3] = sig1
                    slot[5] = 1
                    slot = None

        # -- full plan walk ------------------------------------------
        cap1 = L1.capacity
        cap2 = L2.capacity
        cap3 = L3.capacity
        u1 = L1.used
        u2 = L2.used
        u3 = L3.used
        l2_touched = False
        l3_touched = False
        l2c = self._l2c
        l3c = self._l3c
        homes = self._homes
        haspart = self._haspart
        local = self._mm_local
        remote = self._mm_remote
        scat = self._mm_scat
        scat_mode = self._mm_scatmode
        lt1 = lt2 = lt3 = 0
        memory_t = 0.0
        for key, nbytes, write, n1, lmf in touches:
            # -- L1 (private) ----------------------------------------
            # ``pr`` collects this touch's sharer-pruned victims (L1
            # then L2, in eviction order) and ``pr3`` its L3-pruned
            # victims — the only per-victim work a memo replay must
            # re-execute (the dict contents themselves are restored
            # wholesale from the recorded post-state).
            pr = pr3 = ()
            if n1 == cap1:
                # Giant touch (the plan precomputed the clamp): the
                # insert fills L1, so the post-state is exactly
                # ``{key: cap1}`` and every *other* entry is a victim.
                # Iterating the dict skipping ``key`` yields the same
                # victims in the same LRU order the one-at-a-time
                # eviction loop would (moving ``key`` to the MRU end
                # does not reorder the rest).
                resident = e1.get(key, 0)
                mb1 = nbytes - resident if resident < nbytes else 0
                if len(e1) > 1 or (not resident and e1):
                    if rec is not None:
                        pr = []
                    for v in e1:
                        if v == key:
                            continue
                        if v not in e2:
                            s = sharer_map.get(v)
                            if s is not None:
                                s.discard(core)
                                if not s:
                                    del sharer_map[v]
                            if rec is not None:
                                pr.append(v)
                    e1.clear()
                e1[key] = cap1
                u1 = cap1
            else:
                resident = e1.pop(key, 0)
                mb1 = nbytes - resident if resident < nbytes else 0
                u1 += n1 - resident
                e1[key] = n1
                if u1 > cap1:
                    # n1 < cap1 here, so the loop stops before ever
                    # reaching ``key`` at the MRU end.
                    if rec is not None and pr == ():
                        pr = []
                    while u1 > cap1 and e1:
                        v = next(iter(e1))
                        u1 -= e1.pop(v)
                        if v not in e2:
                            s = sharer_map.get(v)
                            if s is not None:
                                s.discard(core)
                                if not s:
                                    del sharer_map[v]
                            if rec is not None:
                                pr.append(v)
            mb2 = mb3 = 0
            if mb1:
                # -- L2 (private) ------------------------------------
                l2_touched = True
                if mb1 >= cap2:
                    # Same whole-cache clobber at L2.
                    resident = e2.get(key, 0)
                    mb2 = mb1 - resident if resident < mb1 else 0
                    if len(e2) > 1 or (not resident and e2):
                        if rec is not None and pr == ():
                            pr = []
                        for v in e2:
                            if v == key:
                                continue
                            if v not in e1:
                                s = sharer_map.get(v)
                                if s is not None:
                                    s.discard(core)
                                    if not s:
                                        del sharer_map[v]
                                if rec is not None:
                                    pr.append(v)
                        e2.clear()
                    e2[key] = cap2
                    u2 = cap2
                else:
                    resident = e2.pop(key, 0)
                    mb2 = mb1 - resident if resident < mb1 else 0
                    u2 += mb1 - resident
                    e2[key] = mb1
                    if u2 > cap2:
                        if rec is not None and pr == ():
                            pr = []
                        while u2 > cap2 and e2:
                            v = next(iter(e2))
                            u2 -= e2.pop(v)
                            if v not in e1:
                                s = sharer_map.get(v)
                                if s is not None:
                                    s.discard(core)
                                    if not s:
                                        del sharer_map[v]
                                if rec is not None:
                                    pr.append(v)
                if mb2:
                    # -- L3 (shared per group) -----------------------
                    l3_touched = True
                    resident = e3.pop(key, 0)
                    mb3 = mb2 - resident if resident < mb2 else 0
                    n3 = mb2 if mb2 < cap3 else cap3
                    u3 += n3 - resident
                    e3[key] = n3
                    if u3 > cap3:
                        if rec is not None:
                            pr3 = []
                        while u3 > cap3 and e3:
                            v = next(iter(e3))
                            u3 -= e3.pop(v)
                            s = l3_sharer_map.get(v)
                            if s is not None:
                                s.discard(g)
                                if not s:
                                    del l3_sharer_map[v]
                            if rec is not None:
                                pr3.append(v)
            # Sharer maps are maintained independently (pruning may
            # have emptied one but not the other for this key).
            if write:
                s = sharer_map.get(key)
                if s is None:
                    sharer_map[key] = {core}
                    n_sharers = 1
                else:
                    s.add(core)
                    n_sharers = len(s)
                s = l3_sharer_map.get(key)
                if s is None:
                    l3_sharer_map[key] = {g}
                    n_l3s = 1
                else:
                    s.add(g)
                    n_l3s = len(s)
                if n_sharers > 1 or n_l3s > 1:
                    inval(core, g, key)
            else:
                if mb1:
                    s = sharer_map.get(key)
                    if s is None:
                        sharer_map[key] = {core}
                    else:
                        s.add(core)
                # A read that hit L1 in full needs no L1/L2 sharer op:
                # key-resident-in-L1 implies the core is already a
                # sharer (every path that removes the membership also
                # removes the L1/L2 entries), so the add is a no-op —
                # skip it.  The L3 sharer add is NOT skippable: an L3
                # eviction prunes the group while the key can stay in
                # L1, and the access must re-add it.
                s = l3_sharer_map.get(key)
                if s is None:
                    l3_sharer_map[key] = {g}
                else:
                    s.add(g)
            if mb1:
                if mb3 == nbytes:
                    # Fully cold touch: all three levels missed in
                    # full (mb3 == mb2 == mb1 == nbytes), so the
                    # L2/L3 legs are exactly zero and the line count
                    # is the plan's precomputed ``full_lines``.
                    lm1 = lm2 = lm3 = lmf
                    lt1 += lmf
                    lt2 += lmf
                    lt3 += lmf
                    if scat_mode and haspart[key]:
                        memory_t += lmf * scat
                    elif homes[key] != cdom:
                        memory_t += lmf * remote
                    else:
                        memory_t += lmf * local
                else:
                    # ceil-divide missed bytes into 64-byte lines.
                    lm1 = (mb1 + 63) // 64
                    lm2 = (mb2 + 63) // 64
                    lm3 = (mb3 + 63) // 64
                    lt1 += lm1
                    lt2 += lm2
                    lt3 += lm3
                    if lm3:
                        if scat_mode and haspart[key]:
                            dc = scat
                        elif homes[key] != cdom:
                            dc = remote
                        else:
                            dc = local
                        memory_t += ((lm1 - lm2) * l2c + (lm2 - lm3) * l3c
                                     + lm3 * dc)
                    else:
                        memory_t += (lm1 - lm2) * l2c + lm2 * l3c
                if hook is not None or rec is not None:
                    lines = (lm1, lm2, lm3)
                    if hook is not None:
                        hook(lines)
                    if rec is not None:
                        rec.append((key, write, lines,
                                    tuple(pr), tuple(pr3)))
            else:
                # Full L1 hit: zero miss lines, zero cost — and no
                # victims anywhere (the insert never grows the level:
                # resident >= nbytes >= the clamped extent, and a
                # fully-resident giant touch is the level's only
                # entry) — but the hook still fires, exactly like
                # CacheHierarchy.access.
                if hook is not None:
                    hook(_ZERO_LINES)
                if rec is not None:
                    rec.append((key, write, _ZERO_LINES, (), ()))
        if gather is not None:
            g1, g2, g3, fixed, scattered, xkey = gather
            # NUMA pricing of the gather's DRAM leg (same branch
            # structure as MemoryModel.dram_line_cost).
            if scattered:
                dram = scat
            elif xkey is None:
                dram = local
            elif scat_mode and haspart[xkey]:
                dram = scat
            elif homes[xkey] != cdom:
                dram = remote
            else:
                dram = local
            lt1 += g1
            lt2 += g2
            lt3 += g3
            memory_t += fixed + g3 * dram
        L1.used = u1
        if l2_touched:
            L2.used = u2
        if l3_touched:
            L3.used = u3
        charge_obj = tuple.__new__(
            TaskCharge,
            (compute + memory_t, compute, memory_t, (lt1, lt2, lt3)),
        )
        if rec is not None:
            if l3_touched:
                if sig3 is None:
                    # The walk read an L3 state too large to sign —
                    # the memo-key invariant (key covers all state
                    # read) cannot hold, so drop the recording.
                    return charge_obj
                d = slot[2]
                if d is None:
                    d = slot[2] = {}
                skey = (sig1, sig2, sig3)
            elif l2_touched:
                d = slot[1]
                if d is None:
                    d = slot[1] = {}
                skey = (sig1, sig2)
            else:
                d = slot[0]
                if d is None:
                    d = slot[0] = {}
                skey = sig1
            if len(d) >= _MEMO_BUCKET_CAP:
                d.clear()
            # Flatten the sharer ops into per-category tuples when
            # they provably commute: every touch key distinct, and no
            # pruned victim recurring as a touch key (a key then
            # appears in exactly one category, so per-key op order is
            # trivially preserved).  Plans with recurring keys replay
            # per-touch instead.
            tkeys = [t[0] for t in rec]
            agg = None
            if len(set(tkeys)) == len(tkeys):
                prunes = []
                l3prunes = []
                radds = []
                l3adds = []
                writes = []
                for key, write, lines, prv, prv3 in rec:
                    prunes.extend(prv)
                    l3prunes.extend(prv3)
                    if write:
                        writes.append(key)
                    else:
                        if lines[0]:
                            radds.append(key)
                        l3adds.append(key)
                tset = set(tkeys)
                if not (tset.intersection(prunes)
                        or tset.intersection(l3prunes)):
                    agg = (tuple(prunes), tuple(l3prunes), tuple(radds),
                           tuple(l3adds), tuple(writes))
            # Post-states snapshot the dicts *after* the walk (items
            # in insertion order — replay restores them wholesale and
            # the steady-state fingerprint hashes that order).  The
            # per-touch tape is kept only when the aggregate form
            # can't serve (key collisions) or a trace hook needs the
            # per-touch events — entries are long-lived tuple graphs
            # the cyclic GC keeps scanning, so store the minimum.
            d[skey] = (
                charge_obj, agg,
                tuple(rec) if (agg is None or hook is not None) else None,
                (tuple(e1), tuple(e1.values())), u1,
                (tuple(e2), tuple(e2.values()), u2) if l2_touched else None,
                (tuple(e3), tuple(e3.values()), u3) if l3_touched else None,
            )
        return charge_obj

    def _charge_bare(self, plan, core: int) -> TaskCharge:
        """Compiled-plan charge with the memo and tracing disarmed.

        The same walk as :meth:`_charge_fast` with every memo-lookup,
        recording, and trace-hook branch deleted — the dispatcher in
        :meth:`charge` only routes here when ``self._memo is None``
        and no trace hook is attached, which makes those branches
        provably dead.  Kept as a twin because cold low-iteration
        cells (the fig9 perf-guard workload) run exactly in this mode
        and the dead-branch checks were measurable there.  Any
        semantic change to the walk must be applied to both twins and
        to :meth:`CacheHierarchy.access` (see machine/cache.py).
        """
        compute, touches, gather, _pid, _heavy = plan
        ctx = self._bare_ctx[core]
        if ctx is None:
            ctx = self._bare_core_ctx(core)
        (L1, L2, L3, e1, e2, e3, cap1, cap2, cap3, g, cdom) = ctx
        (sharer_map, l3_sharer_map, inval, l2c, l3c, homes, haspart,
         local, remote, scat, scat_mode) = self._bare_common
        u1 = L1.used
        u2 = L2.used
        u3 = L3.used
        l2_touched = False
        l3_touched = False
        lt1 = lt2 = lt3 = 0
        memory_t = 0.0
        for key, nbytes, write, n1, lmf in touches:
            # -- L1 (private) ----------------------------------------
            if n1 == cap1:
                resident = e1.get(key, 0)
                mb1 = nbytes - resident if resident < nbytes else 0
                if len(e1) > 1 or (not resident and e1):
                    for v in e1:
                        if v == key:
                            continue
                        if v not in e2:
                            s = sharer_map.get(v)
                            if s is not None:
                                s.discard(core)
                                if not s:
                                    del sharer_map[v]
                    e1.clear()
                e1[key] = cap1
                u1 = cap1
            else:
                resident = e1.pop(key, 0)
                mb1 = nbytes - resident if resident < nbytes else 0
                u1 += n1 - resident
                e1[key] = n1
                if u1 > cap1:
                    while u1 > cap1 and e1:
                        v = next(iter(e1))
                        u1 -= e1.pop(v)
                        if v not in e2:
                            s = sharer_map.get(v)
                            if s is not None:
                                s.discard(core)
                                if not s:
                                    del sharer_map[v]
            mb2 = mb3 = 0
            if mb1:
                # -- L2 (private) ------------------------------------
                l2_touched = True
                if mb1 >= cap2:
                    resident = e2.get(key, 0)
                    mb2 = mb1 - resident if resident < mb1 else 0
                    if len(e2) > 1 or (not resident and e2):
                        for v in e2:
                            if v == key:
                                continue
                            if v not in e1:
                                s = sharer_map.get(v)
                                if s is not None:
                                    s.discard(core)
                                    if not s:
                                        del sharer_map[v]
                        e2.clear()
                    e2[key] = cap2
                    u2 = cap2
                else:
                    resident = e2.pop(key, 0)
                    mb2 = mb1 - resident if resident < mb1 else 0
                    u2 += mb1 - resident
                    e2[key] = mb1
                    if u2 > cap2:
                        while u2 > cap2 and e2:
                            v = next(iter(e2))
                            u2 -= e2.pop(v)
                            if v not in e1:
                                s = sharer_map.get(v)
                                if s is not None:
                                    s.discard(core)
                                    if not s:
                                        del sharer_map[v]
                if mb2:
                    # -- L3 (shared per group) -----------------------
                    l3_touched = True
                    resident = e3.pop(key, 0)
                    mb3 = mb2 - resident if resident < mb2 else 0
                    n3 = mb2 if mb2 < cap3 else cap3
                    u3 += n3 - resident
                    e3[key] = n3
                    if u3 > cap3:
                        while u3 > cap3 and e3:
                            v = next(iter(e3))
                            u3 -= e3.pop(v)
                            s = l3_sharer_map.get(v)
                            if s is not None:
                                s.discard(g)
                                if not s:
                                    del l3_sharer_map[v]
            if write:
                s = sharer_map.get(key)
                if s is None:
                    sharer_map[key] = {core}
                    n_sharers = 1
                else:
                    s.add(core)
                    n_sharers = len(s)
                s = l3_sharer_map.get(key)
                if s is None:
                    l3_sharer_map[key] = {g}
                    n_l3s = 1
                else:
                    s.add(g)
                    n_l3s = len(s)
                if n_sharers > 1 or n_l3s > 1:
                    inval(core, g, key)
            else:
                if mb1:
                    s = sharer_map.get(key)
                    if s is None:
                        sharer_map[key] = {core}
                    else:
                        s.add(core)
                s = l3_sharer_map.get(key)
                if s is None:
                    l3_sharer_map[key] = {g}
                else:
                    s.add(g)
            if mb1:
                if mb3 == nbytes:
                    lt1 += lmf
                    lt2 += lmf
                    lt3 += lmf
                    if scat_mode and haspart[key]:
                        memory_t += lmf * scat
                    elif homes[key] != cdom:
                        memory_t += lmf * remote
                    else:
                        memory_t += lmf * local
                else:
                    lm1 = (mb1 + 63) // 64
                    lm2 = (mb2 + 63) // 64
                    lm3 = (mb3 + 63) // 64
                    lt1 += lm1
                    lt2 += lm2
                    lt3 += lm3
                    if lm3:
                        if scat_mode and haspart[key]:
                            dc = scat
                        elif homes[key] != cdom:
                            dc = remote
                        else:
                            dc = local
                        memory_t += ((lm1 - lm2) * l2c + (lm2 - lm3) * l3c
                                     + lm3 * dc)
                    else:
                        memory_t += (lm1 - lm2) * l2c + lm2 * l3c
        if gather is not None:
            g1, g2, g3, fixed, scattered, xkey = gather
            if scattered:
                dram = scat
            elif xkey is None:
                dram = local
            elif scat_mode and haspart[xkey]:
                dram = scat
            elif homes[xkey] != cdom:
                dram = remote
            else:
                dram = local
            lt1 += g1
            lt2 += g2
            lt3 += g3
            memory_t += fixed + g3 * dram
        L1.used = u1
        if l2_touched:
            L2.used = u2
        if l3_touched:
            L3.used = u3
        return tuple.__new__(
            TaskCharge,
            (compute + memory_t, compute, memory_t, (lt1, lt2, lt3)),
        )


def apply_core_derate(dur: float, compute: float, factor: float):
    """Scale a task charge for a frequency-derated core.

    A derate slows the core clock, which stretches the *compute*
    component; the memory component is set by uncore/DRAM transfer
    rates and is unchanged.  Returns ``(dur, compute, extra)`` with
    the derated totals and the added seconds — kept outside
    :class:`CostModel` so the fault layer never perturbs the healthy
    pricing path (COST_MODEL_VERSION stays put).
    """
    extra = compute * (factor - 1.0)
    return dur + extra, compute + extra, extra
