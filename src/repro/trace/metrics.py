"""Per-barrier-interval metrics table derived from a trace.

The time-series view the paper's overhead discussion needs: for every
iteration (= barrier interval) the busy/idle split of the worker pool,
scheduler queue-depth statistics, per-level cache occupancy and miss
totals, and steal/poll counts.  Built purely from the event stream —
the same rows come out of an in-memory run or a reloaded JSONL file.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["MetricsRow", "MetricsTable", "metrics_from_events"]


@dataclass
class MetricsRow:
    """Aggregates for one barrier interval (one solver iteration)."""

    iteration: int
    start: float
    end: float
    span: float
    tasks: int
    busy_time: float
    idle_fraction: float
    queue_depth_max: int
    queue_depth_mean: float
    steals: int
    polls: int
    l1_misses: int
    l2_misses: int
    l3_misses: int
    cache_occupancy: Dict[str, float] = field(default_factory=dict)
    synthesized: bool = False

    COLUMNS = (
        "iteration", "start", "end", "span", "tasks", "busy_time",
        "idle_fraction", "queue_depth_max", "queue_depth_mean",
        "steals", "polls", "l1_misses", "l2_misses", "l3_misses",
        "l1_occupancy", "l2_occupancy", "l3_occupancy", "synthesized",
    )

    def as_list(self) -> list:
        return [
            self.iteration, self.start, self.end, self.span, self.tasks,
            self.busy_time, self.idle_fraction, self.queue_depth_max,
            self.queue_depth_mean, self.steals, self.polls,
            self.l1_misses, self.l2_misses, self.l3_misses,
            self.cache_occupancy.get("L1", 0.0),
            self.cache_occupancy.get("L2", 0.0),
            self.cache_occupancy.get("L3", 0.0),
            int(self.synthesized),
        ]


@dataclass
class MetricsTable:
    """Ordered per-iteration rows plus run metadata."""

    rows: List[MetricsRow]
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dict(self) -> dict:
        return {
            "meta": dict(self.meta),
            "columns": list(MetricsRow.COLUMNS),
            "rows": [r.as_list() for r in self.rows],
        }

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join(MetricsRow.COLUMNS) + "\n")
        for r in self.rows:
            buf.write(",".join(repr(v) if isinstance(v, float) else str(v)
                               for v in r.as_list()) + "\n")
        return buf.getvalue()

    def render(self) -> str:
        """Compact fixed-width text table for terminal output."""
        hdr = (f"{'it':>4s} {'span (ms)':>10s} {'busy (ms)':>10s} "
               f"{'idle':>6s} {'q.max':>6s} {'steals':>7s} "
               f"{'L3 miss':>9s} {'L3 occ':>7s} {'replay':>7s}")
        lines = [hdr]
        for r in self.rows:
            lines.append(
                f"{r.iteration:4d} {r.span * 1e3:10.3f} "
                f"{r.busy_time * 1e3:10.3f} {r.idle_fraction:6.2f} "
                f"{r.queue_depth_max:6d} {r.steals:7d} "
                f"{r.l3_misses:9d} "
                f"{r.cache_occupancy.get('L3', 0.0):7.2f} "
                f"{'yes' if r.synthesized else '':>7s}"
            )
        return "\n".join(lines)


def metrics_from_events(events, n_cores: Optional[int] = None,
                        meta: Optional[dict] = None) -> MetricsTable:
    """Fold an event stream into per-barrier-interval rows.

    Events are attributed to intervals by the barrier events that close
    them (the engine emits scheduler/machine samples between barriers,
    in time order); ``n_cores`` (from ``tracer.meta`` when omitted)
    turns busy time into an idle fraction.
    """
    meta = dict(meta or {})
    if n_cores is None:
        n_cores = meta.get("n_cores")
    rows: List[MetricsRow] = []
    # Accumulators for the currently-open interval.
    tasks = 0
    busy = 0.0
    m1 = m2 = m3 = 0
    qmax = 0
    qsum = 0
    qn = 0
    steals = 0
    polls = 0
    occupancy: Dict[str, float] = {}
    synthesized_tasks = 0
    for ev in events:
        kind = ev.kind
        if kind == "task":
            tasks += 1
            busy += ev.end - ev.start
            m1 += ev.l1
            m2 += ev.l2
            m3 += ev.l3
            if ev.synthesized:
                synthesized_tasks += 1
        elif kind == "queue":
            if ev.depth > qmax:
                qmax = ev.depth
            qsum += ev.depth
            qn += 1
        elif kind == "steal":
            steals += 1
        elif kind == "poll":
            polls += 1
        elif kind == "cache":
            occupancy[ev.level] = (
                ev.used / ev.capacity if ev.capacity else 0.0
            )
        elif kind == "barrier":
            span = ev.end - ev.start
            cores = n_cores or 1
            idle = (1.0 - busy / (span * cores)) if span > 0 else 0.0
            rows.append(MetricsRow(
                iteration=ev.iteration,
                start=ev.start,
                end=ev.end,
                span=span,
                tasks=tasks,
                busy_time=busy,
                idle_fraction=idle,
                queue_depth_max=qmax,
                queue_depth_mean=(qsum / qn) if qn else 0.0,
                steals=steals,
                polls=polls,
                l1_misses=m1,
                l2_misses=m2,
                l3_misses=m3,
                cache_occupancy=dict(occupancy),
                synthesized=ev.synthesized or (
                    tasks > 0 and synthesized_tasks == tasks
                ),
            ))
            tasks = 0
            busy = 0.0
            m1 = m2 = m3 = 0
            qmax = qsum = qn = 0
            steals = polls = 0
            synthesized_tasks = 0
            # occupancy persists (latest sample carries forward)
    return MetricsTable(rows=rows, meta=meta)
