"""Chrome trace-event JSON export (``chrome://tracing`` / Perfetto).

Produces the *JSON Object Format* of the Trace Event specification:
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` — loadable by
Perfetto's legacy-trace importer and by ``chrome://tracing``.

Lane model (all in one process ``pid=0``):

* one thread lane per simulated worker core (``tid = core``), named
  ``core N``, carrying the complete (``"X"``) events of every task the
  core executed, with ``args`` giving task id, kernel, tile
  coordinates, iteration, per-task L1/L2/L3 miss lines, and the
  charge decomposition;
* one ``runtime`` lane (``tid = n_cores``) carrying barrier intervals
  and steal/poll instants;
* counter (``"C"``) events for scheduler queue depth and per-level
  cache occupancy.

Timestamps convert from simulated seconds to the spec's microseconds.
Replay-synthesized events keep their timing but get ``cat="replay"``
so they are visually distinguishable from simulated ones.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_US = 1e6  # simulated seconds -> trace microseconds


def _task_args(ev, dag) -> dict:
    args = {
        "tid": ev.tid,
        "iteration": ev.iteration,
        "l1_misses": ev.l1,
        "l2_misses": ev.l2,
        "l3_misses": ev.l3,
        "overhead_us": ev.overhead * _US,
        "compute_us": ev.compute * _US,
        "memory_us": ev.memory * _US,
    }
    if dag is not None:
        params = dag.tasks[ev.tid].params
        if "i" in params:
            args["i"] = params["i"]
        if "j" in params:
            args["j"] = params["j"]
    return args


def to_chrome_trace(tracer=None, events: Optional[Iterable] = None,
                    meta: Optional[dict] = None, dag=None) -> dict:
    """Convert a tracer (or a raw event iterable) to a Chrome trace.

    Pass either a :class:`~repro.trace.Tracer` whose sink retained the
    events in memory, or an explicit ``events`` iterable (e.g. from
    :func:`repro.trace.sink.read_jsonl`) plus optional ``meta``/``dag``.
    """
    if tracer is not None:
        events = tracer.events if events is None else events
        meta = dict(tracer.meta, **(meta or {}))
        dag = dag if dag is not None else tracer.dag
    if events is None:
        raise ValueError("need a tracer with an in-memory sink or events=")
    meta = meta or {}
    n_cores = meta.get("n_cores")
    out = []
    label = (f"repro-sim {meta.get('machine', '?')}/"
             f"{meta.get('policy', '?')}")
    out.append({"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
                "args": {"name": label}})
    lanes_seen = set()
    runtime_lane = None

    def _lane(core: int):
        if core not in lanes_seen:
            lanes_seen.add(core)
            out.append({"ph": "M", "pid": 0, "tid": core,
                        "name": "thread_name",
                        "args": {"name": f"core {core}"}})
            # Sort index keeps lanes in core order in the UI.
            out.append({"ph": "M", "pid": 0, "tid": core,
                        "name": "thread_sort_index",
                        "args": {"sort_index": core}})

    def _runtime_lane():
        nonlocal runtime_lane
        if runtime_lane is None:
            runtime_lane = (n_cores if n_cores is not None
                            else max(lanes_seen, default=0) + 1)
            out.append({"ph": "M", "pid": 0, "tid": runtime_lane,
                        "name": "thread_name",
                        "args": {"name": "runtime"}})
            out.append({"ph": "M", "pid": 0, "tid": runtime_lane,
                        "name": "thread_sort_index",
                        "args": {"sort_index": 1 << 20}})
        return runtime_lane

    for ev in events:
        kind = ev.kind
        if kind == "task":
            _lane(ev.core)
            out.append({
                "ph": "X", "pid": 0, "tid": ev.core,
                "name": ev.kernel,
                "cat": "replay" if ev.synthesized else "task",
                "ts": ev.start * _US,
                "dur": (ev.end - ev.start) * _US,
                "args": _task_args(ev, dag),
            })
        elif kind == "barrier":
            out.append({
                "ph": "X", "pid": 0, "tid": _runtime_lane(),
                "name": "barrier",
                "cat": "replay" if ev.synthesized else "barrier",
                "ts": ev.compute_end * _US,
                "dur": (ev.end - ev.compute_end) * _US,
                "args": {"iteration": ev.iteration,
                         "span_us": (ev.end - ev.start) * _US},
            })
        elif kind == "queue":
            out.append({
                "ph": "C", "pid": 0, "tid": 0, "name": "ready_tasks",
                "ts": ev.time * _US, "args": {"ready": ev.depth},
            })
        elif kind == "steal":
            _lane(ev.core)
            out.append({
                "ph": "i", "pid": 0, "tid": ev.core, "name": "steal",
                "cat": "sched", "s": "t", "ts": ev.time * _US,
                "args": {"victim": ev.victim, "tid": ev.tid},
            })
        elif kind == "poll":
            _lane(ev.core)
            out.append({
                "ph": "i", "pid": 0, "tid": ev.core, "name": "poll",
                "cat": "sched", "s": "t", "ts": ev.time * _US,
                "args": {},
            })
        elif kind == "cache":
            out.append({
                "ph": "C", "pid": 0, "tid": 0,
                "name": f"{ev.level} occupancy",
                "ts": ev.time * _US,
                "args": {"bytes": ev.used, "capacity": ev.capacity},
            })
        elif kind == "burst":
            out.append({
                "ph": "C", "pid": 0, "tid": 0,
                "name": f"{ev.level} miss bursts",
                "ts": ev.time * _US,
                "args": {"bursts": ev.bursts, "longest": ev.longest,
                         "missed_lines": ev.misses},
            })
        elif kind == "fault":
            _lane(ev.core)
            out.append({
                "ph": "i", "pid": 0, "tid": ev.core, "name": ev.fault,
                "cat": "fault", "s": "t", "ts": ev.time * _US,
                "args": {"tid": ev.tid, "detail": ev.detail},
            })
        elif kind == "recovery":
            _lane(ev.core)
            out.append({
                "ph": "i", "pid": 0, "tid": ev.core, "name": "recovery",
                "cat": "fault", "s": "t", "ts": ev.time * _US,
                "args": {"latency_us": ev.latency * _US},
            })
        elif kind == "numa":
            out.append({
                "ph": "C", "pid": 0, "tid": 0, "name": "numa homes",
                "ts": ev.time * _US,
                "args": {f"domain {d}": n
                         for d, n in enumerate(ev.histogram)},
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome_trace(path: str, tracer=None,
                       events: Optional[Iterable] = None,
                       meta: Optional[dict] = None, dag=None) -> str:
    """Serialize :func:`to_chrome_trace` to ``path``; returns ``path``."""
    doc = to_chrome_trace(tracer=tracer, events=events, meta=meta, dag=dag)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)
    return path
