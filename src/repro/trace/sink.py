"""Event sinks: where a :class:`~repro.trace.Tracer` puts its events.

The sink protocol is one method, ``emit(event)``, plus an optional
``close()`` — injectable so tests can assert on an in-memory list while
big runs stream to disk without retaining anything:

* :class:`InMemorySink` — appends every event to ``events`` (the
  default; what the exporters and the test-suite read).
* :class:`JSONLSink` — streams one JSON object per line to a file and
  keeps O(1) memory; :func:`read_jsonl` loads such a file back into
  event tuples for offline export.
"""

from __future__ import annotations

import json
import os
from typing import IO, Iterator, List, Optional, Union

from repro.trace.events import event_from_dict, event_to_dict

__all__ = ["TraceSink", "InMemorySink", "JSONLSink", "read_jsonl"]


class TraceSink:
    """Abstract sink: receives every event the tracer emits, in order."""

    def emit(self, event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent; no-op by default)."""

    # Context-manager sugar so ``with JSONLSink(p) as sink:`` works.
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class InMemorySink(TraceSink):
    """Keep every event in a list — the test/analysis default."""

    def __init__(self):
        self.events: List = []
        # Bound method handed to the tracer: emitting is a single
        # list.append, the cheapest sink CPython can offer.
        self.emit = self.events.append

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class JSONLSink(TraceSink):
    """Stream events to a JSON-lines file (one event per line).

    For big runs: nothing is retained in memory.  Accepts a path (owned:
    ``close`` closes it) or an open text file object (borrowed).

    Owned paths are crash-safe: the stream is written to
    ``<path>.part`` and atomically renamed to ``path`` on a successful
    :meth:`close`.  If the traced run raises, the context manager
    aborts instead — the ``.part`` file is removed and ``path`` is
    never created, so a half-written trace can't masquerade as a
    complete one.  (Borrowed file objects are the caller's to manage
    and are only flushed.)
    """

    def __init__(self, path_or_file: Union[str, IO[str]]):
        if hasattr(path_or_file, "write"):
            self._f: Optional[IO[str]] = path_or_file
            self._owned = False
            self.path: Optional[str] = None
            self._part: Optional[str] = None
        else:
            self.path = os.fspath(path_or_file)
            self._part = self.path + ".part"
            self._f = open(self._part, "w", encoding="utf-8")
            self._owned = True
        self.n_events = 0

    def emit(self, event) -> None:
        self._f.write(json.dumps(event_to_dict(event)))
        self._f.write("\n")
        self.n_events += 1

    def close(self) -> None:
        f, self._f = self._f, None
        if f is not None:
            f.flush()
            if self._owned:
                f.close()
                os.replace(self._part, self.path)

    def abort(self) -> None:
        """Discard the stream: close and delete the ``.part`` file
        (owned mode) without ever publishing ``path``.  Idempotent."""
        f, self._f = self._f, None
        if f is not None and self._owned:
            f.close()
            try:
                os.unlink(self._part)
            except OSError:
                pass

    def __exit__(self, exc_type, *exc):
        if exc_type is not None:
            self.abort()
            return False
        self.close()
        return False


def read_jsonl(path: str) -> Iterator:
    """Yield the events of a :class:`JSONLSink` file, in emit order."""
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                yield event_from_dict(json.loads(line))
