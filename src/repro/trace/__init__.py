"""Structured tracing & metrics for the simulator (DESIGN.md §7).

Quick use::

    from repro.trace import Tracer, write_chrome_trace, metrics_from_events

    tracer = Tracer()                       # in-memory sink
    res = run_version("broadwell", "inline1", "lanczos", "deepsparse",
                      block_count=16, iterations=4, tracer=tracer)
    write_chrome_trace("trace.json", tracer)          # Perfetto-loadable
    table = metrics_from_events(tracer.events, meta=tracer.meta)

Tracing is strictly observational: with ``tracer=None`` (the default
everywhere) the simulator takes its historical code paths and produces
bit-identical results; with a tracer attached it performs only reads
and emits, never mutating simulated state, so results stay
bit-identical either way (pinned by ``tests/test_engine_equivalence.py``
and the golden-trace suite).
"""

from repro.trace.chrome import to_chrome_trace, write_chrome_trace
from repro.trace.events import (
    EVENT_KINDS,
    BarrierEvent,
    CacheSampleEvent,
    MissBurstEvent,
    NumaSampleEvent,
    PollEvent,
    QueueDepthEvent,
    StealEvent,
    TaskEvent,
    event_from_dict,
    event_to_dict,
)
from repro.trace.metrics import MetricsRow, MetricsTable, metrics_from_events
from repro.trace.sink import InMemorySink, JSONLSink, TraceSink, read_jsonl
from repro.trace.tracer import Tracer

__all__ = [
    "Tracer",
    "TraceSink",
    "InMemorySink",
    "JSONLSink",
    "read_jsonl",
    "TaskEvent",
    "BarrierEvent",
    "QueueDepthEvent",
    "StealEvent",
    "PollEvent",
    "CacheSampleEvent",
    "MissBurstEvent",
    "NumaSampleEvent",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "MetricsRow",
    "MetricsTable",
    "metrics_from_events",
]
