"""The :class:`Tracer`: the object threaded through engine and machine.

Layers never test "is tracing on?" globally — the engine takes an
optional ``tracer`` argument, and when it is ``None`` every emitting
site reduces to a single pre-hoisted ``is None`` check (the hot loops
hoist even that into a local), so tracing off is bit-identical *and*
effectively free.  When a tracer is present, the engine:

* calls :meth:`Tracer.task` for every executed task (real or
  replay-synthesized),
* calls :meth:`Tracer.barrier` and :meth:`Tracer.sample_machine` at
  every iteration barrier,
* installs :meth:`Tracer._on_cache_access` as the cache hierarchy's
  miss-burst hook and hands itself to the scheduler for queue-depth /
  steal / poll events.

The tracer normalizes everything into :mod:`repro.trace.events` tuples
and forwards them to an injectable :class:`~repro.trace.sink.TraceSink`
(in-memory by default, streaming JSONL for big runs).
"""

from __future__ import annotations

from typing import Optional

from repro.trace.events import (
    BarrierEvent,
    CacheSampleEvent,
    FaultEvent,
    MissBurstEvent,
    NumaSampleEvent,
    PollEvent,
    QueueDepthEvent,
    RecoveryEvent,
    StealEvent,
    TaskEvent,
)
from repro.trace.sink import InMemorySink, TraceSink

__all__ = ["Tracer"]

_LEVELS = ("L1", "L2", "L3")


class Tracer:
    """Collects one run's structured events into a sink.

    One tracer traces one run; ``meta`` (machine, policy, core count)
    is set by the engine via :meth:`begin_run` and read by the
    exporters.  ``dag`` is retained so exporters can resolve tile
    coordinates (``task.params['i']/['j']``) without the per-event
    emit paying for the lookup.
    """

    def __init__(self, sink: Optional[TraceSink] = None):
        self.sink = sink if sink is not None else InMemorySink()
        self._emit = self.sink.emit
        self.meta: dict = {}
        self.dag = None
        # Miss-burst accumulators, one slot per level: current run
        # length, completed-burst count, longest run, missed lines.
        self._burst_cur = [0, 0, 0]
        self._burst_count = [0, 0, 0]
        self._burst_longest = [0, 0, 0]
        self._burst_misses = [0, 0, 0]

    # -- lifecycle -----------------------------------------------------
    def begin_run(self, machine: str, policy: str, n_cores: int,
                  dag=None) -> None:
        """Engine entry hook: record run identity for the exporters."""
        self.meta = {
            "machine": machine,
            "policy": policy,
            "n_cores": n_cores,
            "n_tasks_per_iteration": 0 if dag is None else len(dag),
        }
        self.dag = dag

    def close(self) -> None:
        self.sink.close()

    @property
    def events(self) -> list:
        """The event list — only for in-memory sinks."""
        ev = getattr(self.sink, "events", None)
        if ev is None:
            raise TypeError(
                "tracer events are only retained by InMemorySink; "
                "streaming sinks must be read back from disk "
                "(repro.trace.sink.read_jsonl)"
            )
        return ev

    # -- engine-side emitters (hot when tracing is on) -----------------
    def task(self, tid, kernel, core, start, end, iteration,
             overhead, compute, memory, l1, l2, l3,
             synthesized=False) -> None:
        self._emit(TaskEvent(tid, kernel, core, start, end, iteration,
                             overhead, compute, memory, l1, l2, l3,
                             synthesized))

    def barrier(self, iteration, start, compute_end, end,
                synthesized=False) -> None:
        self._emit(BarrierEvent(iteration, start, compute_end, end,
                                synthesized))

    # -- scheduler-side emitters ---------------------------------------
    def queue_depth(self, time, depth) -> None:
        self._emit(QueueDepthEvent(time, depth))

    def steal(self, time, core, victim, tid) -> None:
        self._emit(StealEvent(time, core, victim, tid))

    def poll(self, time, core) -> None:
        self._emit(PollEvent(time, core))

    # -- fault-injection emitters (repro.faults) -----------------------
    def fault(self, time, core, fault, tid=-1, detail=0.0) -> None:
        self._emit(FaultEvent(time, core, fault, tid, detail))

    def recovery(self, time, core, latency) -> None:
        self._emit(RecoveryEvent(time, core, latency))

    # -- machine-side sampling -----------------------------------------
    def _on_cache_access(self, lines) -> None:
        """Per-access miss-burst hook (installed on CacheHierarchy).

        Called once per simulated operand touch while tracing; updates
        the burst accumulators that :meth:`sample_machine` flushes per
        barrier interval.
        """
        cur = self._burst_cur
        for i in range(3):
            m = lines[i]
            if m:
                cur[i] += 1
                self._burst_misses[i] += m
            elif cur[i]:
                self._burst_count[i] += 1
                if cur[i] > self._burst_longest[i]:
                    self._burst_longest[i] = cur[i]
                cur[i] = 0

    def sample_machine(self, iteration, time, cache, memory) -> None:
        """Sample machine state at a barrier: occupancy, bursts, NUMA.

        Pure reads — sampling never mutates simulated state, which is
        what keeps tracing-on runs bit-identical to tracing-off runs.
        """
        for level, (used, capacity) in cache.occupancy_sample().items():
            self._emit(CacheSampleEvent(iteration, time, level,
                                        used, capacity))
        cur = self._burst_cur
        for i, level in enumerate(_LEVELS):
            count = self._burst_count[i]
            longest = self._burst_longest[i]
            if cur[i]:  # close the interval's trailing open run
                count += 1
                if cur[i] > longest:
                    longest = cur[i]
                cur[i] = 0
            self._emit(MissBurstEvent(iteration, time, level, count,
                                      longest, self._burst_misses[i]))
            self._burst_count[i] = 0
            self._burst_longest[i] = 0
            self._burst_misses[i] = 0
        hist = memory.domain_histogram()
        if hist is not None:
            self._emit(NumaSampleEvent(iteration, time, hist))
