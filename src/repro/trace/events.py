"""Trace event vocabulary for the observability layer.

Every event is a ``NamedTuple`` with a ``kind`` class attribute —
construction sits on the simulator's (traced) hot path, and tuples are
the cheapest structured record CPython offers.  The schema is the
contract between the emitting layers (engine, schedulers, machine
model), the sinks (:mod:`repro.trace.sink`), and the exporters
(:mod:`repro.trace.chrome`, :mod:`repro.trace.metrics`); DESIGN.md §7
documents it prose-side.

All timestamps are simulated seconds on the engine clock (the same
float values the :class:`~repro.sim.flowgraph.FlowRecord` trace and
``RunResult.iteration_times`` use), never wall time.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

__all__ = [
    "TaskEvent",
    "BarrierEvent",
    "QueueDepthEvent",
    "StealEvent",
    "PollEvent",
    "CacheSampleEvent",
    "MissBurstEvent",
    "NumaSampleEvent",
    "FaultEvent",
    "RecoveryEvent",
    "EVENT_KINDS",
    "event_to_dict",
    "event_from_dict",
]


class TaskEvent(NamedTuple):
    """One task execution on one worker lane.

    ``synthesized`` marks events emitted by the steady-state tape
    replay: the task was *not* re-simulated, but the event carries the
    exact times/charges the full simulation would have produced
    (anchored at the replayed iteration's start), so consumers may
    treat it identically and merely display the provenance.
    """

    kind = "task"

    tid: int
    kernel: str
    core: int
    start: float
    end: float
    iteration: int
    overhead: float
    compute: float
    memory: float
    l1: int
    l2: int
    l3: int
    synthesized: bool = False


class BarrierEvent(NamedTuple):
    """One iteration's barrier interval.

    ``start`` is the iteration's start time, ``compute_end`` the time
    the last task finished, ``end`` the post-barrier clock
    (``compute_end + barrier_cost``).  One per iteration, including
    replayed ones (``synthesized=True``).
    """

    kind = "barrier"

    iteration: int
    start: float
    compute_end: float
    end: float
    synthesized: bool = False


class QueueDepthEvent(NamedTuple):
    """Scheduler ready-queue depth right after an enqueue or dequeue."""

    kind = "queue"

    time: float
    depth: int


class StealEvent(NamedTuple):
    """A core raided work from a victim queue/deque.

    ``victim`` is the index of the raided structure in the policy's own
    terms: a core id for DeepSparse's per-core deques, a NUMA-domain
    queue index for HPX, a worker queue index for Regent.
    """

    kind = "steal"

    time: float
    core: int
    victim: int
    tid: int


class PollEvent(NamedTuple):
    """A core polled the scheduler and came back empty-handed."""

    kind = "poll"

    time: float
    core: int


class CacheSampleEvent(NamedTuple):
    """Aggregate occupancy of one cache level, sampled at a barrier.

    ``used``/``capacity`` are summed over every unit of the level (all
    per-core L1s, all per-core L2s, all L3 groups).
    """

    kind = "cache"

    iteration: int
    time: float
    level: str  # "L1" | "L2" | "L3"
    used: int
    capacity: int


class MissBurstEvent(NamedTuple):
    """Miss-burst statistics for one level over one barrier interval.

    A *burst* is a maximal run of consecutive ``CacheHierarchy.access``
    calls that missed at the level; ``bursts`` counts completed runs in
    the interval, ``longest`` is the longest run seen, ``misses`` the
    total missed lines attributed to the interval.
    """

    kind = "burst"

    iteration: int
    time: float
    level: str
    bursts: int
    longest: int
    misses: int


class NumaSampleEvent(NamedTuple):
    """NUMA page-home histogram at a barrier (handles per domain)."""

    kind = "numa"

    iteration: int
    time: float
    histogram: Tuple[int, ...]


class FaultEvent(NamedTuple):
    """A fault-injection action (``repro.faults``) took effect.

    ``fault`` names the action: ``"core-loss"``, ``"slow-onset"``,
    ``"task-retry"``, ``"task-abandoned"``.  ``tid`` is the affected
    task for task faults (-1 otherwise); ``detail`` carries the
    fault-specific magnitude (derate factor, retry attempt number).
    """

    kind = "fault"

    time: float
    core: int
    fault: str
    tid: int = -1
    detail: float = 0.0


class RecoveryEvent(NamedTuple):
    """Measured recovery latency after a core loss (one per loss)."""

    kind = "recovery"

    time: float
    core: int
    latency: float


EVENT_KINDS = {
    cls.kind: cls
    for cls in (
        TaskEvent,
        BarrierEvent,
        QueueDepthEvent,
        StealEvent,
        PollEvent,
        CacheSampleEvent,
        MissBurstEvent,
        NumaSampleEvent,
        FaultEvent,
        RecoveryEvent,
    )
}


def event_to_dict(event) -> dict:
    """JSON-serializable form (``kind`` key + the tuple's fields)."""
    d = {"kind": event.kind}
    d.update(event._asdict())
    return d


def event_from_dict(d: dict):
    """Inverse of :func:`event_to_dict` (for JSONL round trips)."""
    d = dict(d)
    cls = EVENT_KINDS[d.pop("kind")]
    if cls is NumaSampleEvent and "histogram" in d:
        d["histogram"] = tuple(d["histogram"])
    return cls(**d)
