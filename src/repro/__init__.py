"""repro: task-parallel runtime evaluation for sparse eigensolvers.

A full reproduction of "An Evaluation of Task-Parallel Frameworks for
Sparse Solvers on Multicore and Manycore CPU Architectures"
(Alperen et al., ICPP '21): CSB-tiled Lanczos and LOBPCG expressed as
task dependency graphs and executed under four runtime models --
DeepSparse/OpenMP tasking, HPX dataflow, Regent regions, and BSP
library baselines -- over an explicit machine model of the paper's
Broadwell and EPYC nodes (cache hierarchy, NUMA, per-runtime
scheduling).

Quick start::

    from repro.matrices import load_matrix, CSBMatrix
    from repro.solvers import lobpcg

    A = CSBMatrix.from_coo(load_matrix("nlpkkt160", scale=4096), 256)
    res = lobpcg(A, n=4, maxiter=50)
    print(res.eigenvalues)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reproduced tables and figures.
"""

__version__ = "1.0.0"

from repro import (matrices, kernels, graph, machine, faults, sim, runtime,
                   solvers, tuning, analysis)

__all__ = [
    "matrices",
    "kernels",
    "graph",
    "machine",
    "faults",
    "sim",
    "runtime",
    "solvers",
    "tuning",
    "analysis",
    "__version__",
]
