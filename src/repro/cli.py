"""Command-line interface: run evaluation cells without writing code.

::

    python -m repro solve   --matrix nlpkkt160 --solver lobpcg
    python -m repro compare --matrix nlpkkt240 --solver lanczos \\
                            --machine epyc --block-count 96
    python -m repro tune    --matrix Queen4147 --runtime deepsparse \\
                            --machine broadwell
    python -m repro bench   --machine broadwell --solver lanczos \\
                            --jobs 4 --profile
    python -m repro chaos   --matrix inline1 --spec core-loss --seed 0
    python -m repro suite

Everything prints the same tables the benchmarks produce; see
``--help`` on each subcommand.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Task-parallel sparse-solver evaluation (ICPP '21 "
                    "reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    s = sub.add_parser("suite", help="list the Table 1 matrix suite")

    s = sub.add_parser("solve", help="eagerly solve one suite matrix")
    s.add_argument("--matrix", required=True)
    s.add_argument("--solver", choices=["lanczos", "lobpcg", "cg"],
                   default="lobpcg")
    s.add_argument("--scale", type=int, default=8192,
                   help="suite reduction factor (default 8192)")
    s.add_argument("--block-size", type=int, default=128)
    s.add_argument("--nev", type=int, default=4,
                   help="eigenpairs (lobpcg) / basis size (lanczos)")
    s.add_argument("--maxiter", type=int, default=80)
    s.add_argument("--precondition", action="store_true")

    s = sub.add_parser("compare",
                       help="simulate the five solver versions at "
                            "paper scale")
    s.add_argument("--matrix", required=True)
    s.add_argument("--solver", choices=["lanczos", "lobpcg"],
                   default="lobpcg")
    s.add_argument("--machine", choices=["broadwell", "epyc"],
                   default="broadwell")
    s.add_argument("--block-count", type=int, default=48)
    s.add_argument("--iterations", type=int, default=2)

    s = sub.add_parser("tune", help="sweep the §5.4 block-count buckets")
    s.add_argument("--matrix", required=True)
    s.add_argument("--runtime",
                   choices=["deepsparse", "hpx", "regent"],
                   default="deepsparse")
    s.add_argument("--machine", choices=["broadwell", "epyc"],
                   default="broadwell")
    s.add_argument("--solver", choices=["lanczos", "lobpcg"],
                   default="lobpcg")
    s.add_argument("--jobs", type=int, default=None,
                   help="worker processes for sweep cells "
                        "(default: $REPRO_BENCH_JOBS or 1; "
                        "0 = auto-detect one per CPU)")

    s = sub.add_parser(
        "bench",
        help="run an experiment grid through the parallel orchestrator "
             "(cached, deduplicated, deterministic)",
    )
    s.add_argument("--machine", nargs="+",
                   choices=["broadwell", "epyc"], default=["broadwell"])
    s.add_argument("--matrix", nargs="+", default=None,
                   help="suite matrices (default: the representative "
                        "8-matrix subset)")
    s.add_argument("--solver", nargs="+",
                   choices=["lanczos", "lobpcg"], default=["lanczos"])
    s.add_argument("--version", nargs="+",
                   choices=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"],
                   default=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"])
    s.add_argument("--block-count", nargs="+", type=int, default=None,
                   help="block counts to sweep (default: the §5.4 "
                        "rule-of-thumb granularity per version)")
    s.add_argument("--iterations", type=int, default=2)
    s.add_argument("--jobs", type=int, default=None,
                   help="worker processes for cache misses "
                        "(default: $REPRO_BENCH_JOBS or 1; "
                        "0 = auto-detect one per CPU)")
    s.add_argument("--no-cache", action="store_true",
                   help="bypass the on-disk result cache (force cold "
                        "simulation, persist nothing)")
    s.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock budget in seconds when "
                        "running with a worker pool; wedged cells are "
                        "killed, retried, then reported")
    s.add_argument("--retries", type=int, default=1,
                   help="extra attempts per failed cell before it "
                        "lands in the failure table (default 1)")
    s.add_argument("--profile", action="store_true",
                   help="print per-cell timing, cache statistics, and "
                        "the slowest cells")
    s.add_argument("--trace", metavar="DIR", default=None,
                   help="run every cell with the observability layer "
                        "attached and write a Chrome trace + metrics "
                        "CSV per cell into DIR (runs in-process and "
                        "bypasses the result cache; simulated numbers "
                        "are bit-identical to untraced runs)")

    s = sub.add_parser(
        "chaos",
        help="simulate one cell under a deterministic fault plan and "
             "compare against the healthy run (per-runtime recovery "
             "behaviour, retries, stall time)",
    )
    s.add_argument("--matrix", default="inline1")
    s.add_argument("--solver", choices=["lanczos", "lobpcg"],
                   default="lanczos")
    s.add_argument("--machine", choices=["broadwell", "epyc"],
                   default="broadwell")
    s.add_argument("--version", nargs="+",
                   choices=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"],
                   default=["libcsb", "deepsparse", "hpx", "regent"])
    s.add_argument("--block-count", type=int, default=48)
    s.add_argument("--iterations", type=int, default=8)
    s.add_argument("--spec", default="chaos",
                   help="named fault plan (see repro.faults.FAULT_SPECS; "
                        "default: chaos = slow core + core loss + "
                        "flaky tasks)")
    s.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed: same seed, same faults, "
                        "bit-identical results (any process, any host)")
    s.add_argument("--json", metavar="FILE", default=None,
                   help="also write the per-version fault reports as a "
                        "JSON artifact")

    s = sub.add_parser(
        "trace",
        help="run one cell with structured tracing and write Chrome "
             "trace-event JSON (chrome://tracing / Perfetto) plus a "
             "per-iteration metrics table",
    )
    s.add_argument("--matrix", required=True)
    s.add_argument("--solver", choices=["lanczos", "lobpcg"],
                   default="lanczos")
    s.add_argument("--version",
                   choices=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"],
                   default="deepsparse")
    s.add_argument("--machine", choices=["broadwell", "epyc"],
                   default="broadwell")
    s.add_argument("--block-count", type=int, default=16)
    s.add_argument("--iterations", type=int, default=4)
    s.add_argument("--out", default="traces",
                   help="output directory (default: ./traces)")
    s.add_argument("--jsonl", action="store_true",
                   help="also dump the raw event stream as JSON lines "
                        "(one event per line; reloadable with "
                        "repro.trace.read_jsonl)")
    s.add_argument("--no-steady-state", action="store_true",
                   help="disable the iteration fast path so every "
                        "iteration is fully simulated (no synthesized "
                        "replay events in the trace)")
    s.add_argument("--width", type=int, default=90,
                   help="Gantt text width")
    s.add_argument("--max-cores", type=int, default=16,
                   help="Gantt lanes to print")

    s = sub.add_parser(
        "prep",
        help="manage the compiled-prep store (census + DAG + access "
             "plans persisted per cell; warm sweeps skip all build "
             "work)",
    )
    s.add_argument("action", choices=["build", "list", "gc"],
                   help="build: compile + persist prep artifacts for a "
                        "grid; list: show artifacts on disk; gc: drop "
                        "stale-salt entries, tmp files, and quarantined "
                        "corrupt artifacts")
    s.add_argument("--machine", nargs="+",
                   choices=["broadwell", "epyc"], default=["broadwell"])
    s.add_argument("--matrix", nargs="+", default=None,
                   help="matrices to prebuild (default: the "
                        "representative 8-matrix subset)")
    s.add_argument("--solver", nargs="+",
                   choices=["lanczos", "lobpcg"], default=["lanczos"])
    s.add_argument("--version", nargs="+",
                   choices=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"],
                   default=["libcsr", "deepsparse"],
                   help="versions whose BuildOptions to compile for "
                        "(versions sharing a decomposition policy "
                        "share one artifact)")
    s.add_argument("--block-count", nargs="+", type=int, default=[64],
                   help="block counts to prebuild (ignored by libcsr)")
    s.add_argument("--width", type=int, default=None,
                   help="vector-block width override (default: the "
                        "solver's paper width)")

    s = sub.add_parser(
        "serve",
        help="run the persistent simulation daemon (JSON over HTTP): "
             "single-flight coalescing on the result-cache key, warm "
             "worker pool, bounded queue with 429 backpressure, "
             "/healthz + /metrics, graceful SIGTERM drain",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8477,
                   help="0 = pick an ephemeral port (announced on "
                        "stdout)")
    s.add_argument("--jobs", type=int, default=0,
                   help="worker processes (0 = inline threads; the "
                        "test/smoke configuration)")
    s.add_argument("--backlog", type=int, default=64,
                   help="max distinct pending computations before "
                        "single-cell submits get 429 + Retry-After")
    s.add_argument("--batch-max", type=int, default=8,
                   help="dispatcher batch size (coalesces prep "
                        "prebuilds across queued cells)")
    s.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall budget in the pool, seconds")
    s.add_argument("--attempts", type=int, default=2)
    s.add_argument("--audit", metavar="FILE", default=None,
                   help="per-request JSONL audit log (crash-safe "
                        ".part file, published atomically on drain)")

    s = sub.add_parser(
        "cluster",
        help="run the sharded cluster router: consistent-hash "
             "placement of cells over N repro-serve shards (placement "
             "key = the result-cache content hash, so single-flight "
             "coalescing stays exactly-once cluster-wide), health-"
             "probe membership, bounded failover to ring successors, "
             "aggregated /healthz + /metrics",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8478,
                   help="router port (0 = ephemeral, announced on "
                        "stdout; default 8478)")
    s.add_argument("--shards", type=int, default=0, metavar="N",
                   help="spawn and supervise N local repro-serve "
                        "shards (ephemeral ports, per-shard cache "
                        "dirs, restart with exponential backoff)")
    s.add_argument("--member", action="append", default=None,
                   metavar="HOST:PORT",
                   help="route to an existing shard instead of "
                        "supervising (repeatable; mutually exclusive "
                        "with --shards)")
    s.add_argument("--jobs", type=int, default=0,
                   help="worker processes per supervised shard")
    s.add_argument("--cluster-dir", default=None,
                   help="supervisor base dir for audit/cache/logs "
                        "(default: a temp dir)")
    s.add_argument("--vnodes", type=int, default=128,
                   help="virtual nodes per shard on the hash ring")
    s.add_argument("--probe-interval", type=float, default=1.0,
                   help="seconds between shard health probes")
    s.add_argument("--max-failover", type=int, default=2,
                   help="ring successors to try after the home shard "
                        "fails mid-request")
    s.add_argument("--audit", metavar="FILE", default=None,
                   help="router-side JSONL audit log")

    s = sub.add_parser(
        "submit",
        help="submit one cell to a running daemon and print the "
             "summary (bit-identical to running the cell locally)",
    )
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=None,
                   help="daemon port (default 8477, or 8478 with "
                        "--cluster)")
    s.add_argument("--cluster", action="store_true",
                   help="target a cluster router instead of a single "
                        "daemon (switches the default port to 8478; "
                        "the payload gains a 'shard' field)")
    s.add_argument("--matrix", required=True)
    s.add_argument("--solver", choices=["lanczos", "lobpcg"],
                   default="lanczos")
    s.add_argument("--version",
                   choices=["libcsr", "libcsb", "deepsparse", "hpx",
                            "regent"],
                   default="deepsparse")
    s.add_argument("--machine", choices=["broadwell", "epyc"],
                   default="broadwell")
    s.add_argument("--block-count", type=int, default=None)
    s.add_argument("--iterations", type=int, default=2)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--json", action="store_true",
                   help="print the raw response payload instead of "
                        "the human summary line")
    return p


def _cmd_suite(_args) -> int:
    from repro.matrices.suite import SUITE, SUITE_ORDER

    print(f"{'matrix':20s}{'#rows':>13s}{'#nonzeros':>15s}"
          f"{'family':>9s}{'sym':>5s}{'bin':>5s}")
    for name in SUITE_ORDER:
        sp = SUITE[name]
        print(f"{name:20s}{sp.paper_rows:13,d}{sp.paper_nnz:15,d}"
              f"{sp.family:>9s}{'y' if sp.symmetric else 'n':>5s}"
              f"{'y' if sp.binary else 'n':>5s}")
    return 0


def _cmd_solve(args) -> int:
    from repro.matrices import CSBMatrix, load_matrix
    from repro.solvers import cg, lanczos, lobpcg

    coo = load_matrix(args.matrix, scale=args.scale)
    csb = CSBMatrix.from_coo(coo, args.block_size)
    print(f"{args.matrix} (scaled): {csb.shape[0]} rows, "
          f"{csb.nnz} nonzeros, {csb.nbr}x{csb.nbc} blocks")
    if args.solver == "lanczos":
        res = lanczos(csb, k=max(args.nev * 4, 10))
        print("extreme eigenvalues:",
              np.round([res.eigenvalues[0], res.eigenvalues[-1]], 8))
        print(f"iterations: {res.iterations}")
    elif args.solver == "lobpcg":
        res = lobpcg(csb, n=args.nev, maxiter=args.maxiter,
                     precondition=args.precondition)
        print("smallest eigenvalues:", np.round(res.eigenvalues, 8))
        print(f"iterations: {res.iterations}, converged: {res.converged}, "
              f"residual: {res.history.final_residual:.3e}")
    else:
        rng = np.random.default_rng(0)
        b = rng.standard_normal(csb.shape[0])
        res = cg(csb, b, maxiter=args.maxiter)
        x = res.x[:, 0]
        rr = np.linalg.norm(csb.spmv(x) - b) / np.linalg.norm(b)
        print(f"CG: {res.iterations} iterations, converged: "
              f"{res.converged}, relative residual {rr:.3e}")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.experiment import run_cell

    cell = run_cell(args.machine, args.matrix, args.solver,
                    block_count=args.block_count,
                    iterations=args.iterations)
    base = cell.results["libcsr"]
    print(f"{args.solver} on {args.machine}, {args.matrix} at paper "
          f"scale, block count {args.block_count}:")
    print(f"{'version':12s}{'t/iter (ms)':>13s}{'speedup':>9s}"
          f"{'L1':>7s}{'L2':>7s}{'L3':>7s}")
    for v, r in cell.results.items():
        cols = ""
        if v != "libcsr":
            cols = "".join(
                f"{cell.miss_reduction(v, l):7.2f}" for l in (1, 2, 3)
            )
        print(f"{v:12s}{r.time_per_iteration * 1e3:13.2f}"
              f"{r.speedup_over(base):9.2f}{cols}")
    return 0


def _cmd_tune(args) -> int:
    from repro.bench import ExperimentRunner
    from repro.tuning import recommend_block_count, sweep_block_counts

    runner = ExperimentRunner(jobs=args.jobs)
    times = sweep_block_counts(args.machine, args.matrix, args.solver,
                               args.runtime, iterations=1, runner=runner)
    for bucket, t in times.items():
        print(f"block count {bucket[0]:3d}-{bucket[1]:<3d}: "
              f"{t * 1e3:9.2f} ms/iter")
    best = min(times, key=times.get)
    print(f"best bucket: {best[0]}-{best[1]}")
    try:
        rule = recommend_block_count(args.runtime, args.machine)
        print(f"paper rule of thumb: {rule[0]}-{rule[1]}")
    except KeyError:
        pass
    return 0


def _trace_cell_artifacts(out_dir, label, tracer, events=None):
    """Write Chrome trace + metrics CSV for one traced cell."""
    import os

    from repro.trace import metrics_from_events, write_chrome_trace

    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, f"{label}.trace.json")
    write_chrome_trace(trace_path, tracer, events=events)
    table = metrics_from_events(events if events is not None
                                else tracer.events, meta=tracer.meta)
    metrics_path = os.path.join(out_dir, f"{label}.metrics.csv")
    with open(metrics_path, "w", encoding="utf-8") as f:
        f.write(table.to_csv())
    return trace_path, metrics_path, table


def _traced_bench_cell(cell_fields: dict, label: str, out_dir: str):
    """Run one traced bench cell and write its artifacts.

    Module-level so ``bench --trace --jobs N`` can ship it to a
    :class:`~concurrent.futures.ProcessPoolExecutor` worker; artifacts
    are written in the worker (they can be large), and only the
    serializable run summary travels back for the results table.
    """
    from repro.analysis.experiment import run_version
    from repro.trace import Tracer

    tracer = Tracer()
    res = run_version(
        cell_fields["machine"], cell_fields["matrix"],
        cell_fields["solver"], cell_fields["version"],
        block_count=cell_fields["block_count"],
        iterations=cell_fields["iterations"], tracer=tracer,
    )
    trace_path, _, _ = _trace_cell_artifacts(out_dir, label, tracer)
    return res.summary(), trace_path


def _cmd_trace(args) -> int:
    import json
    import os

    from repro.analysis.experiment import run_version
    from repro.analysis.gantt import render_trace
    from repro.trace import Tracer, event_to_dict

    if args.no_steady_state:
        os.environ["REPRO_NO_STEADY_STATE"] = "1"
    tracer = Tracer()
    res = run_version(args.machine, args.matrix, args.solver,
                      args.version, block_count=args.block_count,
                      iterations=args.iterations, tracer=tracer)
    label = (f"{args.machine}-{args.matrix}-{args.solver}-{args.version}"
             f"-bc{args.block_count}-it{args.iterations}")
    trace_path, metrics_path, _ = _trace_cell_artifacts(
        args.out, label, tracer
    )
    print(render_trace(tracer, width=args.width,
                       max_cores=args.max_cores))
    # Self-check the trace against the engine's own counters: every
    # executed task must appear, and per-task miss args must sum to
    # the RunResult totals exactly.
    tasks = [e for e in tracer.events if e.kind == "task"]
    c = res.counters
    ok = (len(tasks) == c.tasks_executed
          and sum(t.l1 for t in tasks) == c.l1_misses
          and sum(t.l2 for t in tasks) == c.l2_misses
          and sum(t.l3 for t in tasks) == c.l3_misses)
    print()
    print(f"task events: {len(tasks)} "
          f"({sum(1 for t in tasks if t.synthesized)} replay-synthesized"
          f"{'' if res.steady_state_at is None else ', steady state at iteration ' + str(res.steady_state_at)})")
    print(f"trace/counter consistency: {'OK' if ok else 'MISMATCH'}")
    if args.jsonl:
        events_path = os.path.join(args.out, f"{label}.events.jsonl")
        with open(events_path, "w", encoding="utf-8") as f:
            for ev in tracer.events:
                f.write(json.dumps(event_to_dict(ev)) + "\n")
        print(f"events:  {events_path}")
    print(f"trace:   {trace_path}  (load in chrome://tracing or "
          "https://ui.perfetto.dev)")
    print(f"metrics: {metrics_path}")
    return 0 if ok else 1


def _cmd_chaos(args) -> int:
    import json

    from repro.analysis.experiment import run_version
    from repro.faults import FAULT_SPECS, FaultPlan

    if args.spec not in FAULT_SPECS:
        print(f"unknown fault spec {args.spec!r}; available: "
              f"{', '.join(sorted(FAULT_SPECS))}", file=sys.stderr)
        return 2
    plan = FaultPlan.from_spec(args.spec, seed=args.seed)
    print(f"fault plan {args.spec!r} (seed {args.seed}) on "
          f"{args.machine}, {args.matrix}/{args.solver} at block count "
          f"{args.block_count}, {args.iterations} iterations:")
    print(f"{'version':12s}{'healthy ms':>11s}{'faulted ms':>11s}"
          f"{'slowdown':>9s}{'recov µs':>9s}{'retries':>8s}"
          f"{'abandon':>8s}{'stall ms':>9s}")
    artifact = {
        "spec": args.spec, "seed": args.seed, "machine": args.machine,
        "matrix": args.matrix, "solver": args.solver,
        "block_count": args.block_count, "iterations": args.iterations,
        "plan": plan.to_dict(), "versions": {},
    }
    for version in args.version:
        healthy = run_version(
            args.machine, args.matrix, args.solver, version,
            block_count=args.block_count, iterations=args.iterations,
        )
        faulted = run_version(
            args.machine, args.matrix, args.solver, version,
            block_count=args.block_count, iterations=args.iterations,
            faults=plan,
        )
        fr = faulted.fault_report
        latency = fr.recovery_latency if fr is not None else None
        print(f"{version:12s}"
              f"{healthy.time_per_iteration * 1e3:11.3f}"
              f"{faulted.time_per_iteration * 1e3:11.3f}"
              f"{faulted.total_time / healthy.total_time:9.3f}"
              f"{'—' if latency is None else f'{latency * 1e6:.0f}':>9s}"
              f"{fr.retries if fr else 0:8d}"
              f"{fr.abandoned if fr else 0:8d}"
              f"{(fr.stall_time if fr else 0.0) * 1e3:9.3f}")
        artifact["versions"][version] = {
            "healthy_total_time": healthy.total_time,
            "faulted_total_time": faulted.total_time,
            "fault_report": fr.to_dict() if fr is not None else None,
        }
    print()
    print("  slowdown = faulted/healthy total time; recov µs = extra "
          "time the first post-loss\n  iteration took vs the one "
          "before it (per-runtime recovery policy); stall ms =\n  "
          "barrier time spent re-running a dead lane's share serially "
          "(BSP only).")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=2, sort_keys=True)
        print(f"report: {args.json}")
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        DEFAULT_MATRICES,
        ExperimentRunner,
        ResultCache,
        SweepError,
        expand_grid,
    )

    cache = ResultCache(enabled=False) if args.no_cache else None
    runner = ExperimentRunner(cache=cache, jobs=args.jobs,
                              progress=print if args.profile else None,
                              timeout=args.timeout,
                              attempts=1 + max(0, args.retries))
    cells = expand_grid(
        machines=args.machine,
        matrices=args.matrix or list(DEFAULT_MATRICES),
        solvers=args.solver,
        versions=args.version,
        block_counts=args.block_count,
        iterations=args.iterations,
    )
    if args.trace:
        # Traced grid: cache bypassed (a trace needs a live simulation),
        # one Chrome trace + metrics CSV per cell.  With --jobs > 1 the
        # cells fan out across a process pool; each worker writes its
        # own artifacts (trace content is simulated time, so the output
        # is byte-identical to a sequential run).
        work = [
            ({"machine": cell.machine, "matrix": cell.matrix,
              "solver": cell.solver, "version": cell.version,
              "block_count": cell.block_count,
              "iterations": cell.iterations},
             cell.label().replace("/", "-").replace("@", "-bc"))
            for cell in cells
        ]
        if runner.jobs > 1 and len(cells) > 1:
            from concurrent.futures import ProcessPoolExecutor

            n_workers = min(runner.jobs, len(cells))
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                futures = [
                    pool.submit(_traced_bench_cell, fields, label,
                                args.trace)
                    for fields, label in work
                ]
                traced = [f.result() for f in futures]
        else:
            traced = [_traced_bench_cell(fields, label, args.trace)
                      for fields, label in work]
        results = []
        for cell, (summary, trace_path) in zip(cells, traced):
            if args.profile:
                print(f"traced {cell.label()} -> {trace_path}")
            results.append(summary)
    else:
        try:
            results = runner.run_cells(cells)
        except SweepError as e:
            # Partial failure: everything that did simulate is cached;
            # print the failure table and exit non-zero so CI notices.
            print(str(e), file=sys.stderr)
            if args.profile:
                print(runner.format_report(), file=sys.stderr)
            return 1

    # Results table: per (machine, matrix, solver) group, speedup over
    # the libcsr baseline when it is part of the grid.
    base = {}
    for cell, res in zip(cells, results):
        if cell.version == "libcsr":
            base[(cell.machine, cell.matrix, cell.solver)] = res
    print(f"{'cell':52s}{'t/iter (ms)':>13s}{'speedup':>9s}")
    for cell, res in zip(cells, results):
        b = base.get((cell.machine, cell.matrix, cell.solver))
        speedup = (f"{res.speedup_over(b):9.2f}"
                   if b is not None and b is not res else f"{'—':>9s}")
        print(f"{cell.label():52s}{res.time_per_iteration * 1e3:13.2f}"
              f"{speedup}")
    if args.profile:
        print()
        print(runner.format_report())
        print(f"cache: {runner.cache.stats()}")
    return 0


def _cmd_prep(args) -> int:
    import time

    from repro.bench import DEFAULT_MATRICES, default_prep_store

    store = default_prep_store()
    if args.action == "gc":
        removed = store.gc()
        print(f"prep gc: removed {removed['stale']} stale, "
              f"{removed['tmp']} tmp, {removed['corrupt']} corrupt "
              f"({store.root})")
        return 0
    if args.action == "list":
        entries = store.entries()
        print(f"prep store: {store.root} "
              f"({'enabled' if store.enabled else 'disabled'}, "
              f"{len(entries)} artifacts)")
        if entries:
            print(f"{'machine':10s}{'matrix':16s}{'solver':9s}"
                  f"{'bs':>7s}{'w':>4s}{'KiB':>8s}  key")
        for e in entries:
            if "error" in e:
                print(f"  unreadable {e['path']}: {e['error']}")
                continue
            c = e.get("config", {})
            print(f"{c.get('machine', '?'):10s}"
                  f"{c.get('matrix', '?'):16s}"
                  f"{c.get('solver', '?'):9s}"
                  f"{c.get('block_size', 0):>7d}"
                  f"{c.get('width', 0):>4d}"
                  f"{e.get('file_bytes', 0) / 1024:8.1f}"
                  f"  {e.get('key', '?')[:12]}")
        return 0

    # build: one artifact per distinct (machine, matrix, solver,
    # block_size, options) — versions sharing BuildOptions dedupe via
    # the content address.
    from repro.analysis.experiment import prebuild_prep

    if not store.enabled:
        print("prep store disabled (REPRO_NO_PREP); nothing to build",
              file=sys.stderr)
        return 1
    matrices = args.matrix or list(DEFAULT_MATRICES)
    built = 0
    t0 = time.perf_counter()
    for machine in args.machine:
        for matrix in matrices:
            for solver in args.solver:
                for version in args.version:
                    for bc in args.block_count:
                        config = prebuild_prep(
                            machine, matrix, solver, version,
                            block_count=bc, width=args.width,
                        )
                        key = store.key(config)
                        print(f"  {machine}/{matrix}/{solver} "
                              f"bs={config['block_size']} "
                              f"-> {key[:12]}")
                        built += 1
    dt = time.perf_counter() - t0
    st = store.stats()
    print(f"prep build: {built} cells in {dt:.2f}s "
          f"(hits={st['hits']} misses={st['misses']} "
          f"writes={st['writes']}) -> {store.root}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve.service import ServeConfig, serve_main

    config = ServeConfig(host=args.host, port=args.port,
                         jobs=args.jobs, backlog=args.backlog,
                         batch_max=args.batch_max,
                         timeout=args.timeout, attempts=args.attempts,
                         audit_path=args.audit)

    def announce(line: str) -> None:
        print(line, flush=True)

    return asyncio.run(serve_main(config, announce=announce))


def _cmd_cluster(args) -> int:
    import asyncio

    from repro.serve.router import (
        RouterConfig,
        parse_members,
        router_main,
    )

    if args.shards and args.member:
        print("--shards and --member are mutually exclusive",
              file=sys.stderr)
        return 2
    if not args.shards and not args.member:
        print("need --shards N (supervised) or --member HOST:PORT "
              "(existing shards)", file=sys.stderr)
        return 2

    sup = None
    if args.shards:
        import tempfile

        from repro.serve.supervisor import ClusterSupervisor

        base = args.cluster_dir or tempfile.mkdtemp(
            prefix="repro-cluster-")
        sup = ClusterSupervisor(args.shards, base, jobs=args.jobs)
        sup.start()
        members = sup.members()
        print(f"repro cluster: supervising {args.shards} shards "
              f"under {base}", flush=True)
    else:
        members = parse_members(args.member)

    config = RouterConfig(host=args.host, port=args.port,
                          members=members, vnodes=args.vnodes,
                          probe_interval=args.probe_interval,
                          max_failover=args.max_failover,
                          audit_path=args.audit)

    def on_ready(router) -> None:
        if sup is not None:
            sup.on_membership = router.update_members_threadsafe

    def announce(line: str) -> None:
        print(line, flush=True)

    try:
        rc = asyncio.run(router_main(config, announce=announce,
                                     on_ready=on_ready))
    finally:
        if sup is not None:
            codes = sup.stop()
            bad = {n: c for n, c in codes.items() if c != 0}
            if bad:
                print(f"shard drain exit codes (want all 0): {bad}",
                      file=sys.stderr)
                rc = 1
    return rc


def _cmd_submit(args) -> int:
    import json as _json

    from repro.serve.client import ServiceClient, ServiceError

    port = args.port
    if port is None:
        port = 8478 if args.cluster else 8477
    fields = {"machine": args.machine, "matrix": args.matrix,
              "solver": args.solver, "version": args.version,
              "iterations": args.iterations, "seed": args.seed}
    if args.block_count is not None:
        fields["block_count"] = args.block_count
    with ServiceClient(args.host, port) as client:
        try:
            payload = client.submit_cell(**fields)
        except ServiceError as e:
            print(f"error: {e}", file=sys.stderr)
            tail = e.payload.get("stderr_tail")
            if tail:
                for line in str(tail).splitlines():
                    print(f"  stderr| {line}", file=sys.stderr)
            if e.retry_after_s is not None:
                print(f"  retry after {e.retry_after_s:.2f} s",
                      file=sys.stderr)
            return 1
        except OSError as e:
            print(f"error: cannot reach daemon at "
                  f"{args.host}:{port}: {e}", file=sys.stderr)
            return 1
    if args.json:
        print(_json.dumps(payload, indent=2, sort_keys=True))
        return 0
    s = payload["summary"]
    per_it = s["total_time"] / max(1, len(s["iteration_times"]))
    shard = f" @{payload['shard']}" if "shard" in payload else ""
    print(f"{args.machine}/{args.matrix}/{args.solver}/{args.version} "
          f"[{payload['source']}{shard}] total={s['total_time']:.6f}s "
          f"per-iter={per_it:.6f}s cores={s['n_cores']} "
          f"tasks/iter={s['n_tasks_per_iteration']}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handler = {
        "suite": _cmd_suite,
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "tune": _cmd_tune,
        "bench": _cmd_bench,
        "chaos": _cmd_chaos,
        "trace": _cmd_trace,
        "prep": _cmd_prep,
        "serve": _cmd_serve,
        "cluster": _cmd_cluster,
        "submit": _cmd_submit,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro prep list | head`);
        # the usual Unix contract is a quiet exit, not a traceback.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
