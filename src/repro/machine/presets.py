"""Presets for the two evaluation nodes of §5.

Geometry is taken verbatim from the paper; the per-line transfer costs
are calibrated so the memory-bound sparse kernels land at realistic
fractions of peak (SpMV ≈ a few percent of peak flops when streaming
from DRAM) and so NUMA effects are stronger on EPYC (8 domains) than
Broadwell (2 domains), matching §5.1.
"""

from __future__ import annotations

from repro.machine.topology import MachineSpec

__all__ = ["broadwell", "epyc", "MACHINES", "get_machine"]

KB = 1024
MB = 1024 * 1024


def broadwell() -> MachineSpec:
    """2 × 14-core Intel Xeon E5-2680v4, 2.4 GHz (the multicore node)."""
    return MachineSpec(
        name="broadwell",
        n_cores=28,
        n_sockets=2,
        n_numa_domains=2,
        l1_size=32 * KB,
        l2_size=256 * KB,
        l3_size=35 * MB,
        l3_group_cores=14,
        ghz=2.4,
        flops_per_cycle=8.0,  # AVX2 FMA: 4 lanes × 2 flops
        l2_line_cost=1.1e-9,
        l3_line_cost=3.2e-9,
        dram_line_cost=12.0e-9,
        numa_penalty=1.7,
    )


def epyc() -> MachineSpec:
    """2 × 64-core AMD EPYC 7H12, 2.6 GHz (the manycore node).

    16 MB L3 per 4-core CCX; 8 NUMA domains of 16 cores — the layout
    behind the paper's first-touch and NUMA-aware-scheduling findings.
    """
    return MachineSpec(
        name="epyc",
        n_cores=128,
        n_sockets=2,
        n_numa_domains=8,
        l1_size=32 * KB,
        l2_size=512 * KB,
        l3_size=16 * MB,
        l3_group_cores=4,
        ghz=2.6,
        flops_per_cycle=8.0,
        l2_line_cost=1.0e-9,
        l3_line_cost=3.5e-9,
        # More cores contending for memory: higher per-core line cost,
        # and crossing one of 8 domains is pricier than Broadwell's 2.
        dram_line_cost=18.0e-9,
        numa_penalty=2.8,
    )


MACHINES = {"broadwell": broadwell, "epyc": epyc}


def get_machine(name: str) -> MachineSpec:
    """Look up a preset by name."""
    try:
        return MACHINES[name]()
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; presets: {', '.join(MACHINES)}"
        ) from None
