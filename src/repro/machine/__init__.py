"""Simulated hardware: topology, caches, NUMA memory, perf counters.

The paper measures wall time and ``perf stat`` cache misses on two real
nodes.  This package is the substitution: an explicit machine model
with the published topology of both nodes —

* **Broadwell**: 2 × 14-core Xeon E5-2680v4, 2.4 GHz, 32 KB L1d +
  256 KB L2 per core, 35 MB L3 per socket, 2 NUMA domains.
* **EPYC**: 2 × 64-core EPYC 7H12, 2.6 GHz, 32 KB L1d + 512 KB L2 per
  core, 16 MB L3 per 4-core CCX, 8 NUMA domains (16 cores each).

Caches are LRU over data-object extents (handles), misses are counted
in 64-byte lines, writes invalidate other cores' copies (coherence),
and DRAM access costs depend on first-touch NUMA placement.
"""

from repro.machine.topology import MachineSpec, CoreInfo
from repro.machine.presets import broadwell, epyc, MACHINES, get_machine
from repro.machine.cache import LRUCache, CacheHierarchy, CACHE_LINE
from repro.machine.memory import MemoryModel
from repro.machine.perf import PerfCounters

__all__ = [
    "MachineSpec",
    "CoreInfo",
    "broadwell",
    "epyc",
    "MACHINES",
    "get_machine",
    "LRUCache",
    "CacheHierarchy",
    "CACHE_LINE",
    "MemoryModel",
    "PerfCounters",
]
