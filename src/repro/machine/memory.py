"""NUMA memory model with first-touch page placement.

§5.1: "first-touch placement … refers to allocation of a data page in
the memory closest to the thread accessing it first.  When a single
thread initializes all data structures, the data ends up residing in
the memory of a single NUMA node" — up to 2.5× slowdown on EPYC.

With ``first_touch=True`` the solvers' parallel initialization is
modelled by striping partitioned handles round-robin across domains
(chunk *i* is initialized by a thread of domain ``i mod D``); with
``first_touch=False`` everything lands on domain 0.  Unpartitioned
(small) handles always live on domain 0 — they are tiny and
cache-resident anyway.

``dram_line_cost`` is on the simulator's innermost loop (once per
operand touch that misses L3, and once per gather bundle), so the two
possible outcomes — local vs remote line cost — and the per-core /
per-key domain lookups are all precomputed; the placement rule itself
is unchanged and pinned by ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.machine.topology import MachineSpec

__all__ = ["MemoryModel"]


class MemoryModel:
    """Maps handle keys to NUMA domains and prices DRAM line transfers."""

    __slots__ = (
        "machine", "first_touch", "scattered", "_n_parts",
        "matrix_geometry", "_placement", "_core_domain", "_domain_memo",
        "_local_cost", "_remote_cost", "_scattered_cost",
        "_intern_keys", "_intern_parts", "state_epoch",
    )

    def __init__(self, machine: MachineSpec, first_touch: bool = True,
                 n_parts: int = None, scattered: bool = False):
        self.machine = machine
        self.first_touch = bool(first_touch)
        #: Library (BSP) mode: MKL kernels partition work internally per
        #: call (nnz-balanced SpMV, tiled dgemm) with no regard to page
        #: homes, so chunk accesses are distribution-averaged across
        #: domains instead of aligned — the NUMA sensitivity the paper
        #: observes for the BSP versions on EPYC.
        self.scattered = bool(scattered)
        self._n_parts = n_parts
        #: (name, block columns) of the sparse matrix, whose handles are
        #: row-major block ids homed with their block row.
        self.matrix_geometry = None
        self._placement = {}
        # -- hot-path precomputation (pure caching, no semantics) ------
        self._domain_memo = {}
        #: Monotone counter bumped by every mutation that can change a
        #: handle's home domain (placement pins, partition-count or
        #: interning changes).  Compiled access plans
        #: (:meth:`repro.sim.cost.CostModel.prepare`) bake per-key home
        #: domains into arrays and compare this epoch per charge; on a
        #: mismatch they fall back to the live :meth:`dram_line_cost`
        #: path, so precomputation can never serve a stale home.
        self.state_epoch = 0
        # Interned handle keys (see TaskDAG.handle_interning): parallel
        # lists resolving a small int key back to its (name, part)
        # tuple and to its ``part`` alone (the scattered-cost test).
        self._intern_keys = None
        self._intern_parts = None
        self._core_domain = tuple(
            machine.domain_of_core(c) for c in range(machine.n_cores)
        )
        base = machine.dram_line_cost
        d = machine.n_numa_domains
        if not self.first_touch:
            base = base * d ** 0.5
        self._local_cost = base
        self._remote_cost = base * machine.numa_penalty
        if not self.first_touch:
            self._scattered_cost = (
                machine.dram_line_cost * (d ** 0.5) * machine.numa_penalty
            )
        else:
            self._scattered_cost = (
                machine.dram_line_cost
                * (1 + (d - 1) * machine.numa_penalty) / d
            )

    @property
    def n_parts(self):
        return self._n_parts

    @n_parts.setter
    def n_parts(self, value) -> None:
        # The placement rule depends on the partition count, so mutating
        # it invalidates every memoized home domain.
        self._n_parts = value
        self._domain_memo.clear()
        self.state_epoch += 1

    def configure_from_dag(self, dag) -> None:
        """Adopt a DAG's partition geometry (set by the TDGG)."""
        n_parts = getattr(dag, "n_partitions", None)
        if n_parts:
            self.n_parts = n_parts
        name = getattr(dag, "matrix_name", None)
        nbc = getattr(dag, "matrix_nbc", None)
        if name and nbc:
            self.matrix_geometry = (name, nbc)
        interning = getattr(dag, "handle_interning", None)
        if interning is not None:
            self.adopt_interning(interning()[1])
        self._domain_memo.clear()
        self.state_epoch += 1

    def adopt_interning(self, id_to_key) -> None:
        """Adopt a DAG's handle interning so int keys resolve here.

        Placement semantics are unchanged: an int key prices exactly
        as the ``(name, part)`` tuple it interns would.  Switching to
        a different table invalidates the memo (old int keys would
        otherwise alias new handles).
        """
        if self._intern_keys is id_to_key:
            return
        self._intern_keys = id_to_key
        self._intern_parts = [k[1] for k in id_to_key]
        self._domain_memo.clear()
        self.state_epoch += 1

    # ------------------------------------------------------------------
    def domain_of(self, key: tuple) -> int:
        """Home domain of a handle ``(name, part)``.

        Parallel initialization is a static OpenMP loop over chunks, so
        chunk *i* of ``n_parts`` is first touched by a thread of domain
        ``i·D // n_parts`` (contiguous blocks of chunks per domain).
        Without ``n_parts`` known, falls back to round-robin striping.
        """
        memo = self._domain_memo
        dom = memo.get(key)
        if dom is not None:
            return dom
        name, part = self._intern_keys[key] if type(key) is int else key
        override = self._placement.get((name, part))
        if override is not None:
            memo[key] = override
            return override
        if not self.first_touch or part is None:
            memo[key] = 0
            return 0
        if self.matrix_geometry and name == self.matrix_geometry[0]:
            part = part // self.matrix_geometry[1]  # block row of (i, j)
        d = self.machine.n_numa_domains
        if self.n_parts:
            dom = min(d - 1, int(part) * d // self.n_parts)
        else:
            dom = int(part) % d
        memo[key] = dom
        return dom

    def place(self, key: tuple, domain: int) -> None:
        """Pin a handle to a domain (overrides the striping rule)."""
        if not 0 <= domain < self.machine.n_numa_domains:
            raise ValueError(f"domain {domain} out of range")
        self._placement[key] = domain
        # Int-keyed memo entries for this handle would go stale, so
        # drop the whole memo (placement pins happen before runs).
        self._domain_memo.clear()
        self.state_epoch += 1

    def is_remote(self, core: int, key: tuple) -> bool:
        return self._core_domain[core] != self.domain_of(key)

    def domain_histogram(self):
        """Handles homed per NUMA domain, or ``None`` if unknowable.

        The observability layer samples this at iteration barriers to
        show page-home skew (the §5.1 first-touch story).  With handle
        interning adopted the histogram covers every handle the DAG
        touches; otherwise it falls back to the explicit placement
        pins, and returns ``None`` when neither exists.  Read-mostly:
        it resolves homes through :meth:`domain_of`, which only
        populates the pure ``_domain_memo`` cache — simulated pricing
        is unaffected (the memo is deliberately outside the
        steady-state fingerprint for exactly this reason).
        """
        hist = [0] * self.machine.n_numa_domains
        if self._intern_keys is not None:
            keys = range(len(self._intern_keys))
        elif self._placement:
            keys = list(self._placement)
        else:
            return None
        domain_of = self.domain_of
        for k in keys:
            hist[domain_of(k)] += 1
        return tuple(hist)

    def home_arrays(self):
        """Per-interned-key ``(home_domain, is_partitioned)`` arrays.

        Used by the access-plan compiler: with interning adopted, it
        resolves every key's home once so the charge fast path indexes
        a list instead of calling :meth:`dram_line_cost` per touch.
        Returns ``(homes, has_part)`` or ``None`` without interning.
        The caller must stamp the current :attr:`state_epoch` next to
        the arrays and re-validate it per charge — any placement
        mutation bumps the epoch and invalidates them.
        """
        if self._intern_keys is None:
            return None
        domain_of = self.domain_of
        homes = [domain_of(k) for k in range(len(self._intern_keys))]
        has_part = [p is not None for p in self._intern_parts]
        return homes, has_part

    # ------------------------------------------------------------------
    def dram_line_cost(self, core: int, key: Optional[tuple]) -> float:
        """Seconds per line fetched from DRAM by ``core`` for ``key``.

        Without first-touch, every page homes on domain 0 and one
        memory controller serves the whole node: beyond the remote-hop
        penalty most cores pay, the controller saturates.  The √D
        factor models that partial serialization (D = NUMA domains) —
        it reproduces Fig. 5's "up to 2.5×" on EPYC (D=8) while staying
        mild on Broadwell (D=2).
        """
        if key is not None:
            if self.scattered:
                part = (self._intern_parts[key] if type(key) is int
                        else key[1])
                if part is not None:
                    return self._scattered_cost
            dom = self._domain_memo.get(key)
            if dom is None:
                dom = self.domain_of(key)
            if self._core_domain[core] != dom:
                return self._remote_cost
        return self._local_cost

    def dram_line_cost_scattered(self, core: int) -> float:
        """Expected line cost for accesses spread over all domains.

        CSR gathers range over the whole input vector, whose pages are
        striped across every domain: 1/D of the lines are local, the
        rest pay the remote hop.
        """
        return self._scattered_cost
