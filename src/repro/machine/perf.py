"""Performance counters: the simulator's ``perf stat``.

Accumulates per-level cache misses (in lines), per-kernel busy time,
task counts and overhead time; supports normalization against a
baseline run the way the paper normalizes every cache plot to
``libcsr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Counter block for one simulated run."""

    l1_misses: int = 0
    l2_misses: int = 0
    l3_misses: int = 0
    tasks_executed: int = 0
    busy_time: float = 0.0
    overhead_time: float = 0.0
    compute_time: float = 0.0
    memory_time: float = 0.0
    kernel_time: Dict[str, float] = field(default_factory=dict)
    kernel_tasks: Dict[str, int] = field(default_factory=dict)

    def record_task(
        self,
        kernel: str,
        duration: float,
        misses: tuple,
        overhead: float,
        compute: float,
        memory: float,
    ) -> None:
        """Fold one executed task into the counters."""
        self.tasks_executed += 1
        self.busy_time += duration
        self.overhead_time += overhead
        self.compute_time += compute
        self.memory_time += memory
        self.l1_misses += misses[0]
        self.l2_misses += misses[1]
        self.l3_misses += misses[2]
        self.kernel_time[kernel] = self.kernel_time.get(kernel, 0.0) + duration
        self.kernel_tasks[kernel] = self.kernel_tasks.get(kernel, 0) + 1

    # ------------------------------------------------------------------
    def misses(self) -> tuple:
        return (self.l1_misses, self.l2_misses, self.l3_misses)

    def normalized_misses(self, baseline: "PerfCounters") -> tuple:
        """Misses of this run relative to a baseline (libcsr in the paper).

        Values < 1 mean *fewer* misses than the baseline; the paper's
        plots report the inverse ("k× fewer misses" = 1/value).
        """
        out = []
        for mine, theirs in zip(self.misses(), baseline.misses()):
            out.append(mine / theirs if theirs else float("nan"))
        return tuple(out)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable snapshot (bit-exact round trip)."""
        return {
            "l1_misses": self.l1_misses,
            "l2_misses": self.l2_misses,
            "l3_misses": self.l3_misses,
            "tasks_executed": self.tasks_executed,
            "busy_time": self.busy_time,
            "overhead_time": self.overhead_time,
            "compute_time": self.compute_time,
            "memory_time": self.memory_time,
            "kernel_time": dict(self.kernel_time),
            "kernel_tasks": dict(self.kernel_tasks),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerfCounters":
        """Inverse of :meth:`to_dict`."""
        return cls(
            l1_misses=int(d["l1_misses"]),
            l2_misses=int(d["l2_misses"]),
            l3_misses=int(d["l3_misses"]),
            tasks_executed=int(d["tasks_executed"]),
            busy_time=float(d["busy_time"]),
            overhead_time=float(d["overhead_time"]),
            compute_time=float(d["compute_time"]),
            memory_time=float(d["memory_time"]),
            kernel_time={str(k): float(v)
                         for k, v in d.get("kernel_time", {}).items()},
            kernel_tasks={str(k): int(v)
                          for k, v in d.get("kernel_tasks", {}).items()},
        )

    def merge(self, other: "PerfCounters") -> None:
        """Accumulate another counter block (multi-iteration totals)."""
        self.l1_misses += other.l1_misses
        self.l2_misses += other.l2_misses
        self.l3_misses += other.l3_misses
        self.tasks_executed += other.tasks_executed
        self.busy_time += other.busy_time
        self.overhead_time += other.overhead_time
        self.compute_time += other.compute_time
        self.memory_time += other.memory_time
        for k, v in other.kernel_time.items():
            self.kernel_time[k] = self.kernel_time.get(k, 0.0) + v
        for k, v in other.kernel_tasks.items():
            self.kernel_tasks[k] = self.kernel_tasks.get(k, 0) + v
