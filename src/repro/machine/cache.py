"""LRU cache simulation at data-object granularity.

Simulating every 64-byte line of multi-megabyte operands is orders of
magnitude too slow in Python and unnecessary for this study: tasks
stream whole extents (a CSB tile, a b×n vector chunk), so residency can
be tracked per *handle* with partial-byte occupancy.  An access of
``nbytes`` hits on however many bytes of that handle are resident and
misses on the rest; misses are reported in cache lines, which is what
``perf stat`` counts.

The hierarchy is per-core L1 and L2 plus one shared L3 per L3 group
(socket on Broadwell, CCX on EPYC).  Writes invalidate the handle in
every *other* core's private levels and other L3 groups — the MESI
behaviour that makes the BSP versions pay coherence misses when the
next kernel's static schedule lands a chunk on a different core.

Implementation note: this is the innermost loop of the whole simulator
(one ``CacheHierarchy.access`` per operand per task per iteration), so
it is written for CPython speed — plain dicts in insertion order
instead of ``OrderedDict`` (same LRU semantics: pop + reinsert moves a
key to the MRU end, ``next(iter(d))`` is the LRU end), no per-call
closures, and a precomputed core→L3-group map.  Semantics are frozen
by ``tests/test_engine_equivalence.py``: every change here must keep
simulated numbers bit-identical or bump
:data:`repro.sim.cost.COST_MODEL_VERSION`.

The compiled-plan charge walk (:meth:`repro.sim.cost.CostModel.
_charge_fast`) inlines this exact algorithm once more, fused with the
pricing loop; it reads and writes ``LRUCache._entries`` / ``.used``
and the hierarchy's ``_sharers`` / ``_l3_sharers`` / ``_group_of`` /
``_invalidate_others`` / ``trace_hook`` directly.  Those names are an
internal contract: any semantic change to :meth:`CacheHierarchy.
access` must be mirrored there (the equivalence fixture and the
charge-memo property test catch divergence).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.machine.topology import MachineSpec

__all__ = ["CACHE_LINE", "LRUCache", "CacheHierarchy"]

CACHE_LINE = 64


class LRUCache:
    """One cache level: LRU over (handle-key → resident bytes).

    ``access`` returns the number of *missed bytes*; the caller
    propagates those to the next level.  Objects larger than the
    capacity are clamped to capacity (a streaming object can keep at
    most ``capacity`` bytes resident).
    """

    __slots__ = ("capacity", "used", "_entries")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.used = 0
        # Plain dict in insertion order == LRU order (pop + reinsert
        # moves to the MRU end; the first key is the LRU victim).
        self._entries: Dict[tuple, int] = {}

    def access(self, key: tuple, nbytes: int) -> int:
        """Touch ``nbytes`` of object ``key``; return missed bytes."""
        if nbytes <= 0:
            return 0
        entries = self._entries
        resident = entries.pop(key, 0)
        miss = nbytes - resident if resident < nbytes else 0
        capacity = self.capacity
        new_resident = nbytes if nbytes < capacity else capacity
        used = self.used + new_resident - resident
        entries[key] = new_resident  # most-recently-used position
        if used > capacity:
            while used > capacity and entries:
                k = next(iter(entries))
                used -= entries.pop(k)
        self.used = used
        return miss

    def invalidate(self, key: tuple) -> None:
        """Drop an object (coherence invalidation on remote write)."""
        sz = self._entries.pop(key, None)
        if sz:
            self.used -= sz

    def resident(self, key: tuple) -> int:
        """Bytes of ``key`` currently resident (no LRU update)."""
        return self._entries.get(key, 0)

    def flush(self) -> None:
        self._entries.clear()
        self.used = 0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)


class CacheHierarchy:
    """Private L1/L2 per core, shared L3 per group, with coherence.

    ``access`` models one task-level operand touch and returns missed
    lines per level ``(l1, l2, l3)``; an L3 miss means a DRAM access
    (priced by the memory model, which knows NUMA placement).
    """

    __slots__ = ("machine", "l1", "l2", "l3", "_group_of",
                 "_sharers", "_l3_sharers", "trace_hook")

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        #: Optional observability hook (``repro.trace``): when set, it
        #: is called once per :meth:`access` with the missed-lines
        #: tuple — the tracer's miss-burst sampler.  ``None`` (the
        #: default) costs one pre-hoisted attribute check per access;
        #: the hook only observes, it can never change simulated state.
        self.trace_hook = None
        self.l1 = [LRUCache(machine.l1_size) for _ in range(machine.n_cores)]
        self.l2 = [LRUCache(machine.l2_size) for _ in range(machine.n_cores)]
        self.l3 = [LRUCache(machine.l3_size) for _ in range(machine.n_l3_groups)]
        # core id -> L3 group id, precomputed off the hot path.
        self._group_of = tuple(
            machine.l3_group_of_core(c) for c in range(machine.n_cores)
        )
        # handle-key -> set of core ids / l3 group ids that may hold it;
        # bounds the invalidation sweep to actual sharers.
        self._sharers: Dict[tuple, set] = {}
        self._l3_sharers: Dict[tuple, set] = {}

    # ------------------------------------------------------------------
    def access(
        self, core: int, key: tuple, nbytes: int, write: bool = False
    ) -> Tuple[int, int, int]:
        """Touch ``nbytes`` of ``key`` from ``core``; missed lines/level.

        The three :meth:`LRUCache.access` bodies are inlined here: this
        method runs once per operand per task per iteration (~300k
        times for one figure's cell set), and at that call count the
        three method invocations plus their attribute traffic are a
        measurable fraction of total simulation time.  The logic is
        line-for-line the LRUCache algorithm; ``tests/test_cost_model``
        cross-checks the two and the equivalence fixture pins results.
        """
        if nbytes <= 0:
            return (0, 0, 0)
        g = self._group_of[core]
        sharer_map = self._sharers
        l3_sharer_map = self._l3_sharers
        # -- L1 (private) ---------------------------------------------
        level = self.l1[core]
        entries = level._entries
        l2_entries = self.l2[core]._entries
        resident = entries.pop(key, 0)
        m1 = nbytes - resident if resident < nbytes else 0
        capacity = level.capacity
        new_resident = nbytes if nbytes < capacity else capacity
        used = level.used + new_resident - resident
        entries[key] = new_resident
        if used > capacity:
            if new_resident == capacity:
                # Whole-cache clobber: the inserted extent fills the
                # level, so every other entry must go.  Same victims in
                # the same LRU order as the loop below — the dominant
                # case for cold streaming touches, without the per-
                # victim iterator churn.
                victims = list(entries)
                victims.pop()  # the just-inserted key (MRU end)
                entries.clear()
                entries[key] = new_resident
                used = new_resident
            else:
                victims = []
                while used > capacity and entries:
                    k = next(iter(entries))
                    used -= entries.pop(k)
                    victims.append(k)
            for k in victims:
                if k not in l2_entries:
                    # Evicted from every private level of this core:
                    # prune the stale sharer so the invalidation sweep
                    # and the sharer maps stay bounded by actual
                    # residency.  Bit-exact: invalidating a non-holder
                    # is a no-op, so membership of non-holders never
                    # affected state.
                    s = sharer_map.get(k)
                    if s is not None:
                        s.discard(core)
                        if not s:
                            del sharer_map[k]
        level.used = used
        m2 = m3 = 0
        if m1:
            # -- L2 (private) -----------------------------------------
            level = self.l2[core]
            entries = l2_entries
            l1_entries = self.l1[core]._entries
            resident = entries.pop(key, 0)
            m2 = m1 - resident if resident < m1 else 0
            capacity = level.capacity
            new_resident = m1 if m1 < capacity else capacity
            used = level.used + new_resident - resident
            entries[key] = new_resident
            if used > capacity:
                if new_resident == capacity:
                    victims = list(entries)
                    victims.pop()
                    entries.clear()
                    entries[key] = new_resident
                    used = new_resident
                else:
                    victims = []
                    while used > capacity and entries:
                        k = next(iter(entries))
                        used -= entries.pop(k)
                        victims.append(k)
                for k in victims:
                    if k not in l1_entries:
                        s = sharer_map.get(k)
                        if s is not None:
                            s.discard(core)
                            if not s:
                                del sharer_map[k]
            level.used = used
            if m2:
                # -- L3 (shared per group) ----------------------------
                level = self.l3[g]
                entries = level._entries
                resident = entries.pop(key, 0)
                m3 = m2 - resident if resident < m2 else 0
                capacity = level.capacity
                new_resident = m2 if m2 < capacity else capacity
                used = level.used + new_resident - resident
                entries[key] = new_resident
                if used > capacity:
                    if new_resident == capacity:
                        victims = list(entries)
                        victims.pop()
                        entries.clear()
                        entries[key] = new_resident
                        used = new_resident
                    else:
                        victims = []
                        while used > capacity and entries:
                            k = next(iter(entries))
                            used -= entries.pop(k)
                            victims.append(k)
                    for k in victims:
                        s = l3_sharer_map.get(k)
                        if s is not None:
                            s.discard(g)
                            if not s:
                                del l3_sharer_map[k]
                level.used = used
        # Sharer maps are maintained independently (pruning may have
        # emptied one but not the other for this key).
        sharers = sharer_map.get(key)
        if sharers is None:
            sharer_map[key] = {core}
            n_sharers = 1
        else:
            sharers.add(core)
            n_sharers = len(sharers)
        l3s = l3_sharer_map.get(key)
        if l3s is None:
            l3_sharer_map[key] = {g}
            n_l3s = 1
        else:
            l3s.add(g)
            n_l3s = len(l3s)
        # Common case: we are the only sharer at both levels —
        # _invalidate_others would no-op, so don't pay the call.
        if write and (n_sharers > 1 or n_l3s > 1):
            self._invalidate_others(core, g, key)
        # ceil-divide missed bytes into 64-byte lines ((0+63)//64 == 0).
        lines = (
            (m1 + 63) // CACHE_LINE,
            (m2 + 63) // CACHE_LINE,
            (m3 + 63) // CACHE_LINE,
        )
        hook = self.trace_hook
        if hook is not None:
            hook(lines)
        return lines

    def _invalidate_others(self, core: int, group: int, key: tuple) -> None:
        sharers = self._sharers.get(key)
        if sharers and (len(sharers) > 1 or core not in sharers):
            l1 = self.l1
            l2 = self.l2
            for c in sharers:
                if c != core:
                    l1[c].invalidate(key)
                    l2[c].invalidate(key)
            sharers.intersection_update({core})
        l3s = self._l3_sharers.get(key)
        if l3s and (len(l3s) > 1 or group not in l3s):
            l3 = self.l3
            for gg in l3s:
                if gg != group:
                    l3[gg].invalidate(key)
            l3s.intersection_update({group})

    # ------------------------------------------------------------------
    def occupancy_sample(self) -> Dict[str, Tuple[int, int]]:
        """Aggregate ``(used, capacity)`` bytes per level, for sampling.

        Summed over every unit of a level (all per-core L1s/L2s, all
        L3 groups).  Pure read — the observability layer samples this
        at iteration barriers; it never perturbs LRU state.
        """
        return {
            "L1": (sum(c.used for c in self.l1),
                   sum(c.capacity for c in self.l1)),
            "L2": (sum(c.used for c in self.l2),
                   sum(c.capacity for c in self.l2)),
            "L3": (sum(c.used for c in self.l3),
                   sum(c.capacity for c in self.l3)),
        }

    def occupancy_by_unit(self) -> Dict[str, Tuple[Tuple[int, int], ...]]:
        """Per-unit ``(used, capacity)`` tuples per level (diagnostics)."""
        return {
            "L1": tuple((c.used, c.capacity) for c in self.l1),
            "L2": tuple((c.used, c.capacity) for c in self.l2),
            "L3": tuple((c.used, c.capacity) for c in self.l3),
        }

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Cold-start every level (between benchmark configurations)."""
        for c in self.l1:
            c.flush()
        for c in self.l2:
            c.flush()
        for c in self.l3:
            c.flush()
        self._sharers.clear()
        self._l3_sharers.clear()
