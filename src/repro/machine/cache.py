"""LRU cache simulation at data-object granularity.

Simulating every 64-byte line of multi-megabyte operands is orders of
magnitude too slow in Python and unnecessary for this study: tasks
stream whole extents (a CSB tile, a b×n vector chunk), so residency can
be tracked per *handle* with partial-byte occupancy.  An access of
``nbytes`` hits on however many bytes of that handle are resident and
misses on the rest; misses are reported in cache lines, which is what
``perf stat`` counts.

The hierarchy is per-core L1 and L2 plus one shared L3 per L3 group
(socket on Broadwell, CCX on EPYC).  Writes invalidate the handle in
every *other* core's private levels and other L3 groups — the MESI
behaviour that makes the BSP versions pay coherence misses when the
next kernel's static schedule lands a chunk on a different core.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from repro.machine.topology import MachineSpec

__all__ = ["CACHE_LINE", "LRUCache", "CacheHierarchy"]

CACHE_LINE = 64


class LRUCache:
    """One cache level: LRU over (handle-key → resident bytes).

    ``access`` returns the number of *missed bytes*; the caller
    propagates those to the next level.  Objects larger than the
    capacity are clamped to capacity (a streaming object can keep at
    most ``capacity`` bytes resident).
    """

    __slots__ = ("capacity", "used", "_entries")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.used = 0
        self._entries: "OrderedDict[tuple, int]" = OrderedDict()

    def access(self, key: tuple, nbytes: int) -> int:
        """Touch ``nbytes`` of object ``key``; return missed bytes."""
        if nbytes <= 0:
            return 0
        resident = self._entries.pop(key, 0)
        hit = min(resident, nbytes)
        miss = nbytes - hit
        new_resident = min(nbytes, self.capacity)
        self.used += new_resident - resident
        self._entries[key] = new_resident  # most-recently-used position
        self._evict()
        return miss

    def _evict(self) -> None:
        while self.used > self.capacity and self._entries:
            _k, sz = self._entries.popitem(last=False)
            self.used -= sz

    def invalidate(self, key: tuple) -> None:
        """Drop an object (coherence invalidation on remote write)."""
        sz = self._entries.pop(key, None)
        if sz:
            self.used -= sz

    def resident(self, key: tuple) -> int:
        """Bytes of ``key`` currently resident (no LRU update)."""
        return self._entries.get(key, 0)

    def flush(self) -> None:
        self._entries.clear()
        self.used = 0

    def __contains__(self, key):
        return key in self._entries

    def __len__(self):
        return len(self._entries)


class CacheHierarchy:
    """Private L1/L2 per core, shared L3 per group, with coherence.

    ``access`` models one task-level operand touch and returns missed
    lines per level ``(l1, l2, l3)``; an L3 miss means a DRAM access
    (priced by the memory model, which knows NUMA placement).
    """

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        self.l1 = [LRUCache(machine.l1_size) for _ in range(machine.n_cores)]
        self.l2 = [LRUCache(machine.l2_size) for _ in range(machine.n_cores)]
        self.l3 = [LRUCache(machine.l3_size) for _ in range(machine.n_l3_groups)]
        # handle-key -> set of core ids / l3 group ids that may hold it;
        # bounds the invalidation sweep to actual sharers.
        self._sharers: Dict[tuple, set] = {}
        self._l3_sharers: Dict[tuple, set] = {}

    # ------------------------------------------------------------------
    def access(
        self, core: int, key: tuple, nbytes: int, write: bool = False
    ) -> Tuple[int, int, int]:
        """Touch ``nbytes`` of ``key`` from ``core``; missed lines/level."""
        if nbytes <= 0:
            return (0, 0, 0)
        g = self.machine.l3_group_of_core(core)
        m1 = self.l1[core].access(key, nbytes)
        m2 = self.l2[core].access(key, m1) if m1 else 0
        m3 = self.l3[g].access(key, m2) if m2 else 0
        self._sharers.setdefault(key, set()).add(core)
        self._l3_sharers.setdefault(key, set()).add(g)
        if write:
            self._invalidate_others(core, g, key)
        lines = lambda b: -(-b // CACHE_LINE) if b else 0  # noqa: E731
        return (lines(m1), lines(m2), lines(m3))

    def _invalidate_others(self, core: int, group: int, key: tuple) -> None:
        sharers = self._sharers.get(key)
        if sharers:
            for c in sharers:
                if c != core:
                    self.l1[c].invalidate(key)
                    self.l2[c].invalidate(key)
            sharers.intersection_update({core})
        l3s = self._l3_sharers.get(key)
        if l3s:
            for gg in l3s:
                if gg != group:
                    self.l3[gg].invalidate(key)
            l3s.intersection_update({group})

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Cold-start every level (between benchmark configurations)."""
        for c in self.l1:
            c.flush()
        for c in self.l2:
            c.flush()
        for c in self.l3:
            c.flush()
        self._sharers.clear()
        self._l3_sharers.clear()
