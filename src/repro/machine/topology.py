"""Machine topology: cores, sockets, NUMA domains, cache geometry, rates.

A :class:`MachineSpec` is a frozen description of one node.  Timing
constants are per-cache-line transfer costs (seconds/line) rather than
load-to-use latencies: the simulator charges bandwidth-style amortized
costs, which is the right regime for the streaming sparse kernels the
paper studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["MachineSpec", "CoreInfo"]


@dataclass(frozen=True)
class CoreInfo:
    """Static identity of one core within the node."""

    core_id: int
    socket: int
    numa_domain: int
    l3_group: int


@dataclass(frozen=True)
class MachineSpec:
    """One node of the evaluation testbed.

    Attributes
    ----------
    name:
        Preset name (``"broadwell"``, ``"epyc"``).
    n_cores, n_sockets, n_numa_domains:
        Topology counts; cores are split evenly.
    l1_size, l2_size:
        Per-core data-cache capacities in bytes.
    l3_size:
        Capacity of one L3 slice in bytes.
    l3_group_cores:
        Cores sharing one L3 slice (14 on Broadwell = whole socket;
        4 on EPYC = one CCX).
    ghz:
        Core clock.
    flops_per_cycle:
        Peak double-precision FLOPs per cycle per core.
    l2_line_cost, l3_line_cost, dram_line_cost:
        Seconds to bring one 64-byte line from that level (amortized).
    numa_penalty:
        Multiplier on ``dram_line_cost`` for remote-domain accesses.
    """

    name: str
    n_cores: int
    n_sockets: int
    n_numa_domains: int
    l1_size: int
    l2_size: int
    l3_size: int
    l3_group_cores: int
    ghz: float
    flops_per_cycle: float = 8.0
    l2_line_cost: float = 1.2e-9
    l3_line_cost: float = 3.0e-9
    dram_line_cost: float = 13.0e-9
    numa_penalty: float = 2.0

    def __post_init__(self):
        if self.n_cores % self.n_sockets:
            raise ValueError("cores must divide evenly into sockets")
        if self.n_cores % self.n_numa_domains:
            raise ValueError("cores must divide evenly into NUMA domains")
        if self.n_cores % self.l3_group_cores:
            raise ValueError("cores must divide evenly into L3 groups")

    # ------------------------------------------------------------------
    @property
    def cores_per_socket(self) -> int:
        return self.n_cores // self.n_sockets

    @property
    def cores_per_domain(self) -> int:
        return self.n_cores // self.n_numa_domains

    @property
    def n_l3_groups(self) -> int:
        return self.n_cores // self.l3_group_cores

    def core(self, core_id: int) -> CoreInfo:
        """Topology coordinates of a core."""
        if not 0 <= core_id < self.n_cores:
            raise IndexError(f"core {core_id} out of range on {self.name}")
        return CoreInfo(
            core_id,
            core_id // self.cores_per_socket,
            core_id // self.cores_per_domain,
            core_id // self.l3_group_cores,
        )

    def domain_of_core(self, core_id: int) -> int:
        return core_id // self.cores_per_domain

    def l3_group_of_core(self, core_id: int) -> int:
        return core_id // self.l3_group_cores

    def cores(self):
        """All cores in id order."""
        return [self.core(i) for i in range(self.n_cores)]

    def select_cores(self, selector, seed: int = 0, salt: str = "") -> tuple:
        """Resolve a fault-plan core selector to concrete core ids.

        ``selector`` may be an int core id, ``"first"``/``"last"``,
        ``"random"`` (a deterministic draw from ``(seed, salt)`` — no
        RNG state, so independent of call order and process),
        ``"domain:<d>"`` (all cores of NUMA domain ``d``), or
        ``"socket:<s>"`` (all cores of socket ``s``).
        """
        if isinstance(selector, int):
            if not 0 <= selector < self.n_cores:
                raise IndexError(f"core {selector} out of range on {self.name}")
            return (selector,)
        if selector == "first":
            return (0,)
        if selector == "last":
            return (self.n_cores - 1,)
        if selector == "random":
            import hashlib

            key = f"{seed}:core:{salt}".encode("utf-8")
            digest = hashlib.blake2b(key, digest_size=8).digest()
            return (int.from_bytes(digest, "big") % self.n_cores,)
        if isinstance(selector, str) and selector.startswith("domain:"):
            d = int(selector.split(":", 1)[1])
            if not 0 <= d < self.n_numa_domains:
                raise IndexError(f"domain {d} out of range on {self.name}")
            per = self.cores_per_domain
            return tuple(range(d * per, (d + 1) * per))
        if isinstance(selector, str) and selector.startswith("socket:"):
            s = int(selector.split(":", 1)[1])
            if not 0 <= s < self.n_sockets:
                raise IndexError(f"socket {s} out of range on {self.name}")
            per = self.cores_per_socket
            return tuple(range(s * per, (s + 1) * per))
        raise ValueError(f"unknown core selector {selector!r}")

    @property
    def peak_flops(self) -> float:
        """Node peak DP FLOP/s."""
        return self.n_cores * self.ghz * 1e9 * self.flops_per_cycle
