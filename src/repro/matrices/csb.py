"""Compressed Sparse Block (CSB) format — the 2-D tiled storage.

All three task-parallel versions in the paper (DeepSparse, HPX, Regent)
and the ``libcsb`` BSP baseline partition the matrix into ``b × b``
blocks; SpMV/SpMM tasks are created per *non-empty* block, and the same
row-block partitioning dictates the decomposition of every vector and
vector block in the solver.

Storage follows the paper's Regent workaround (§3.3): one contiguous
entry array where entries falling in the same block are contiguous
("to better utilize the cache"), plus a block-pointer array of length
``nbr*nbc + 1`` so that block *(i, j)* occupies the slice
``blk_ptr[i*nbc + j] : blk_ptr[i*nbc + j + 1]`` — the exact
``blkptrs[i*np+j] < blkptrs[i*np+j+1]`` non-empty test from Listing 3.
Within a block, coordinates are stored *local* to the block origin in
int32 (the space saving that motivates CSB).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.coo import COOMatrix

__all__ = ["CSBMatrix", "CSBBlock"]


@dataclass
class CSBBlock:
    """A view of one non-empty CSB block: local COO triplets.

    ``rows``/``cols`` are offsets from the block origin
    ``(block_row * b, block_col * b)``; views into the parent's
    contiguous arrays, never copies.
    """

    block_row: int
    block_col: int
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray

    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def nbytes(self) -> int:
        return self.rows.nbytes + self.cols.nbytes + self.vals.nbytes


class CSBMatrix:
    """Sparse matrix tiled into ``block_size × block_size`` blocks.

    Parameters
    ----------
    shape:
        Global ``(nrows, ncols)``.
    block_size:
        Tile edge ``b``.  The last block row/column may be ragged.

    Attributes
    ----------
    nbr, nbc:
        Number of block rows / block columns (``ceil(dim / b)``).
    blk_ptr:
        ``int64[nbr*nbc + 1]`` — entry-range pointers in row-major
        block order.
    local_rows, local_cols:
        ``int32[nnz]`` block-local coordinates.
    vals:
        ``float64[nnz]``.
    """

    def __init__(self, shape, block_size, blk_ptr, local_rows, local_cols, vals):
        self.shape = tuple(shape)
        self.block_size = int(block_size)
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        self.nbr = -(-self.shape[0] // self.block_size)
        self.nbc = -(-self.shape[1] // self.block_size)
        self.blk_ptr = np.asarray(blk_ptr, dtype=np.int64)
        self.local_rows = np.asarray(local_rows, dtype=np.int32)
        self.local_cols = np.asarray(local_cols, dtype=np.int32)
        self.vals = np.asarray(vals, dtype=np.float64)
        if self.blk_ptr.size != self.nbr * self.nbc + 1:
            raise ValueError(
                f"blk_ptr must have nbr*nbc+1={self.nbr * self.nbc + 1} "
                f"entries, got {self.blk_ptr.size}"
            )
        if self.blk_ptr[0] != 0 or self.blk_ptr[-1] != self.vals.size:
            raise ValueError("blk_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.blk_ptr) < 0):
            raise ValueError("blk_ptr must be non-decreasing")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix, block_size: int) -> "CSBMatrix":
        """Tile a COO matrix; entries are grouped block-contiguously."""
        coo = coo.canonical()
        b = int(block_size)
        if b <= 0:
            raise ValueError("block_size must be positive")
        nbr = -(-coo.shape[0] // b)
        nbc = -(-coo.shape[1] // b)
        bi = coo.rows // b
        bj = coo.cols // b
        blk_id = bi * nbc + bj
        order = np.argsort(blk_id, kind="stable")
        blk_sorted = blk_id[order]
        counts = np.bincount(blk_sorted, minlength=nbr * nbc)
        blk_ptr = np.zeros(nbr * nbc + 1, dtype=np.int64)
        np.cumsum(counts, out=blk_ptr[1:])
        local_rows = (coo.rows[order] - bi[order] * b).astype(np.int32)
        local_cols = (coo.cols[order] - bj[order] * b).astype(np.int32)
        return cls(coo.shape, b, blk_ptr, local_rows, local_cols, coo.vals[order])

    def to_coo(self) -> COOMatrix:
        nblk = self.nbr * self.nbc
        per_blk = np.diff(self.blk_ptr)
        blk_id = np.repeat(np.arange(nblk, dtype=np.int64), per_blk)
        bi = blk_id // self.nbc
        bj = blk_id % self.nbc
        rows = bi * self.block_size + self.local_rows
        cols = bj * self.block_size + self.local_cols
        return COOMatrix(self.shape, rows, cols, self.vals.copy())

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.vals.size)

    def nbytes(self) -> int:
        return (
            self.blk_ptr.nbytes
            + self.local_rows.nbytes
            + self.local_cols.nbytes
            + self.vals.nbytes
        )

    def block_nnz(self, i: int, j: int) -> int:
        """Stored entries in block (i, j); 0 means the block spawns no task."""
        k = i * self.nbc + j
        return int(self.blk_ptr[k + 1] - self.blk_ptr[k])

    def block_nnz_grid(self) -> np.ndarray:
        """``(nbr, nbc)`` array of per-block entry counts."""
        return np.diff(self.blk_ptr).reshape(self.nbr, self.nbc)

    def nonempty_blocks(self):
        """Row-major list of ``(i, j)`` for blocks with at least one entry.

        This is exactly the task census for SpMV/SpMM: one task per
        returned pair ("skipping empty tasks", §5.1).
        """
        nz = np.nonzero(np.diff(self.blk_ptr))[0]
        return list(zip((nz // self.nbc).tolist(), (nz % self.nbc).tolist()))

    def n_empty_blocks(self) -> int:
        return int(np.count_nonzero(np.diff(self.blk_ptr) == 0))

    def block(self, i: int, j: int) -> CSBBlock:
        """View of block (i, j) as local COO triplets (no copy)."""
        if not (0 <= i < self.nbr and 0 <= j < self.nbc):
            raise IndexError(f"block ({i}, {j}) out of range")
        k = i * self.nbc + j
        s, e = self.blk_ptr[k], self.blk_ptr[k + 1]
        return CSBBlock(
            i, j, self.local_rows[s:e], self.local_cols[s:e], self.vals[s:e]
        )

    def diagonal(self) -> "np.ndarray":
        """Main diagonal (zeros where no entry is stored)."""
        d = np.zeros(min(self.shape))
        for i in range(min(self.nbr, self.nbc)):
            blk = self.block(i, i)
            on = blk.rows == blk.cols
            s0 = i * self.block_size
            np.add.at(d, s0 + blk.rows[on], blk.vals[on])
        return d

    # ------------------------------------------------------------------
    # Row-block geometry shared with vector partitioning
    # ------------------------------------------------------------------
    def row_block_bounds(self, i: int) -> tuple:
        """Global ``[start, end)`` row range of block row *i* (ragged tail)."""
        s = i * self.block_size
        return s, min(s + self.block_size, self.shape[0])

    def col_block_bounds(self, j: int) -> tuple:
        s = j * self.block_size
        return s, min(s + self.block_size, self.shape[1])

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def block_spmv(self, i: int, j: int, x: np.ndarray, y: np.ndarray) -> None:
        """``y += A_{ij} @ x`` on block-local vector chunks (in place).

        ``x`` is the column-block chunk, ``y`` the row-block chunk.
        Scatter-add via ``np.add.at`` — duplicate local rows accumulate.
        """
        blk = self.block(i, j)
        if blk.nnz:
            np.add.at(y, blk.rows, blk.vals * x[blk.cols])

    def block_spmm(self, i: int, j: int, X: np.ndarray, Y: np.ndarray) -> None:
        """``Y += A_{ij} @ X`` for dense vector-block chunks (in place)."""
        blk = self.block(i, j)
        if blk.nnz:
            np.add.at(Y, blk.rows, blk.vals[:, None] * X[blk.cols])

    def spmv(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Full y = A @ x by sweeping non-empty blocks (serial reference)."""
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in spmv")
        y = np.zeros(self.shape[0]) if out is None else out
        if out is not None:
            y[:] = 0.0
        for i, j in self.nonempty_blocks():
            rs, re = self.row_block_bounds(i)
            cs, ce = self.col_block_bounds(j)
            self.block_spmv(i, j, x[cs:ce], y[rs:re])
        return y

    def spmm(self, X: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Full Y = A @ X by sweeping non-empty blocks (serial reference)."""
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in spmm")
        Y = np.zeros((self.shape[0], X.shape[1])) if out is None else out
        if out is not None:
            Y[:] = 0.0
        for i, j in self.nonempty_blocks():
            rs, re = self.row_block_bounds(i)
            cs, ce = self.col_block_bounds(j)
            self.block_spmm(i, j, X[cs:ce], Y[rs:re])
        return Y
