"""Symmetrization and value-fill preprocessing from Table 1.

Both solvers require symmetric input.  The paper makes non-symmetric
matrices symmetric by copying the transposed lower triangle over the
upper triangle, ``A_new = L + Lᵀ − D``, and fills originally-binary
matrices with random values "without breaking the symmetry".
"""

from __future__ import annotations

import numpy as np

from repro.matrices.coo import COOMatrix

__all__ = ["symmetrize_lower", "is_symmetric", "fill_binary_random"]


def symmetrize_lower(coo: COOMatrix) -> COOMatrix:
    """``A_new = L + Lᵀ − D`` where L is the lower triangle incl. diagonal.

    Discards the strict upper triangle, mirrors the strict lower
    triangle, keeps the diagonal once — the paper's rule for
    non-symmetric inputs.  Requires a square matrix.
    """
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("symmetrize_lower requires a square matrix")
    coo = coo.canonical()
    lower = coo.rows >= coo.cols
    r, c, v = coo.rows[lower], coo.cols[lower], coo.vals[lower]
    strict = r > c
    rows = np.concatenate([r, c[strict]])
    cols = np.concatenate([c, r[strict]])
    vals = np.concatenate([v, v[strict]])
    return COOMatrix(coo.shape, rows, cols, vals).canonical()


def is_symmetric(coo: COOMatrix, tol: float = 0.0) -> bool:
    """Check structural+numeric symmetry of a canonical COO matrix."""
    if coo.shape[0] != coo.shape[1]:
        return False
    a = coo.canonical()
    t = a.transpose().canonical()
    if a.nnz != t.nnz:
        return False
    same_pattern = np.array_equal(a.rows, t.rows) and np.array_equal(
        a.cols, t.cols
    )
    if not same_pattern:
        return False
    if tol == 0.0:
        return bool(np.array_equal(a.vals, t.vals))
    return bool(np.allclose(a.vals, t.vals, atol=tol, rtol=tol))


def fill_binary_random(coo: COOMatrix, seed: int = 0) -> COOMatrix:
    """Replace unit values of a symmetric binary matrix with random ones.

    Symmetry is preserved by drawing one value per unordered pair
    ``{i, j}`` from a pair-keyed hash of the indices, so ``(i, j)`` and
    ``(j, i)`` receive the same value without any sorting or matching
    pass.  Values are uniform in ``(0.1, 1.1)`` — bounded away from
    zero so no entry cancels.
    """
    coo = coo.canonical()
    lo = np.minimum(coo.rows, coo.cols).astype(np.uint64)
    hi = np.maximum(coo.rows, coo.cols).astype(np.uint64)
    # SplitMix64-style hash of the unordered pair key, salted by seed.
    key = lo * np.uint64(0x9E3779B97F4A7C15) ^ (hi + np.uint64(seed))
    key ^= key >> np.uint64(30)
    key *= np.uint64(0xBF58476D1CE4E5B9)
    key ^= key >> np.uint64(27)
    key *= np.uint64(0x94D049BB133111EB)
    key ^= key >> np.uint64(31)
    vals = 0.1 + (key.astype(np.float64) / np.float64(2**64))
    return COOMatrix(coo.shape, coo.rows.copy(), coo.cols.copy(), vals)
