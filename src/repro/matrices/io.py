"""Matrix I/O: Matrix Market (coordinate) and a compact NPZ container.

The paper loads SuiteSparse matrices from Matrix Market files.  This
reader/writer supports the ``matrix coordinate real/integer/pattern
general/symmetric`` subset that covers the whole collection, plus an
NPZ round-trip for fast local caching of generated suite matrices.
"""

from __future__ import annotations

import io
import os

import numpy as np

from repro.matrices.coo import COOMatrix

__all__ = ["read_matrix_market", "write_matrix_market", "save_npz", "load_npz"]


def read_matrix_market(path_or_file) -> COOMatrix:
    """Parse a Matrix Market coordinate file into COO.

    Supports real/integer/pattern fields and general/symmetric
    symmetry.  Symmetric files are expanded (mirror off-diagonal
    entries), matching SuiteSparse conventions.  Pattern files get unit
    values.
    """
    close = False
    if isinstance(path_or_file, (str, os.PathLike)):
        f = open(path_or_file, "r")
        close = True
    else:
        f = path_or_file
    try:
        header = f.readline().strip().split()
        if len(header) < 5 or header[0] != "%%MatrixMarket":
            raise ValueError("not a MatrixMarket file (bad banner)")
        _, obj, fmt, field, symmetry = [h.lower() for h in header[:5]]
        if obj != "matrix" or fmt != "coordinate":
            raise ValueError(f"unsupported MatrixMarket type: {obj} {fmt}")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"unsupported field type: {field}")
        if symmetry not in ("general", "symmetric"):
            raise ValueError(f"unsupported symmetry: {symmetry}")
        # Skip comments, read size line.
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nr, nc, nnz = (int(t) for t in line.split())
        body = f.read()
    finally:
        if close:
            f.close()
    ncols_body = 2 if field == "pattern" else 3
    raw = np.loadtxt(io.StringIO(body), ndmin=2)
    if raw.size == 0:
        raw = raw.reshape(0, ncols_body)
    if raw.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {raw.shape[0]}")
    rows = raw[:, 0].astype(np.int64) - 1  # MM is 1-based
    cols = raw[:, 1].astype(np.int64) - 1
    vals = raw[:, 2] if field != "pattern" else np.ones(nnz)
    if symmetry == "symmetric":
        off = rows != cols
        rows, cols = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
        )
        vals = np.concatenate([vals, vals[off]])
    return COOMatrix((nr, nc), rows, cols, vals).canonical()


def write_matrix_market(path_or_file, coo: COOMatrix, symmetric: bool = False):
    """Write COO as a general or symmetric real coordinate file.

    With ``symmetric=True`` only the lower triangle is emitted (the
    matrix must actually be symmetric; this is not checked here —
    callers validate via :func:`repro.matrices.symmetrize.is_symmetric`).
    """
    coo = coo.canonical()
    rows, cols, vals = coo.rows, coo.cols, coo.vals
    if symmetric:
        keep = rows >= cols
        rows, cols, vals = rows[keep], cols[keep], vals[keep]
    sym = "symmetric" if symmetric else "general"
    close = False
    if isinstance(path_or_file, (str, os.PathLike)):
        f = open(path_or_file, "w")
        close = True
    else:
        f = path_or_file
    try:
        f.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
        f.write(f"{coo.shape[0]} {coo.shape[1]} {rows.size}\n")
        body = np.column_stack([rows + 1, cols + 1, vals])
        np.savetxt(f, body, fmt="%d %d %.17g")
    finally:
        if close:
            f.close()


def save_npz(path, coo: COOMatrix):
    """Cache a COO matrix in NumPy's compressed container."""
    np.savez_compressed(
        path,
        shape=np.asarray(coo.shape, dtype=np.int64),
        rows=coo.rows,
        cols=coo.cols,
        vals=coo.vals,
    )


def load_npz(path) -> COOMatrix:
    """Load a COO matrix written by :func:`save_npz`."""
    with np.load(path) as z:
        return COOMatrix(
            tuple(int(v) for v in z["shape"]), z["rows"], z["cols"], z["vals"]
        )
