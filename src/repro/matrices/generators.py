"""Deterministic generators for every sparsity-pattern family in Table 1.

The paper's evaluation depends on the *class* of sparsity pattern —
bandwidth-limited FEM meshes, KKT saddle points, power-law web graphs,
hub-dominated traffic matrices, and configuration-interaction
Hamiltonians — because the pattern drives nonzero skew (load
imbalance), the empty-block census per CSB block size, and reuse
distance.  Each generator reproduces one family at a configurable
scale; all are seeded and fully deterministic.

Every generator returns a symmetric :class:`COOMatrix` with strictly
positive diagonal (diagonal dominance is applied at the end so that the
eigenproblem is well-conditioned for the solver tests).
"""

from __future__ import annotations

import numpy as np

from repro.matrices.coo import COOMatrix
from repro.matrices.symmetrize import symmetrize_lower, fill_binary_random

__all__ = [
    "banded_fem",
    "kkt_saddle",
    "rmat_graph",
    "traffic_hub",
    "ci_hamiltonian",
    "random_symmetric",
    "make_diagonally_dominant",
]


def make_diagonally_dominant(coo: COOMatrix, margin: float = 1.0) -> COOMatrix:
    """Overwrite the diagonal with row |off-diagonal| sums plus ``margin``.

    Keeps the off-diagonal pattern untouched; guarantees symmetric
    positive definiteness (Gershgorin), which the eigensolver
    correctness tests rely on.
    """
    coo = coo.canonical()
    off = coo.rows != coo.cols
    absrow = np.zeros(coo.shape[0])
    np.add.at(absrow, coo.rows[off], np.abs(coo.vals[off]))
    diag_idx = np.arange(coo.shape[0], dtype=np.int64)
    rows = np.concatenate([coo.rows[off], diag_idx])
    cols = np.concatenate([coo.cols[off], diag_idx])
    vals = np.concatenate([coo.vals[off], absrow + margin])
    return COOMatrix(coo.shape, rows, cols, vals).canonical()


def _finalize(coo: COOMatrix, dominant: bool) -> COOMatrix:
    return make_diagonally_dominant(coo) if dominant else coo.canonical()


def banded_fem(
    n: int, nnz_per_row: int, bandwidth_frac: float = 0.02, seed: int = 0,
    dominant: bool = True,
) -> COOMatrix:
    """FEM-style mesh matrix: entries clustered near the diagonal.

    Models inline_1 / Flan_1565 / Bump_2911 / Queen_4147 /
    dielFilterV3real / HV15R — stiffness-matrix patterns whose nonzeros
    fall within a narrow band around the diagonal, with per-row counts
    nearly uniform (low skew, few empty CSB blocks near the diagonal,
    many far away).
    """
    rng = np.random.default_rng(seed)
    half = max(1, (nnz_per_row - 1) // 2)
    # The band must be wide enough to hold the per-row draws without
    # heavy collision (at small scales bandwidth_frac·n can be tiny).
    bw = max(2, int(n * bandwidth_frac), 2 * half)
    rows = np.repeat(np.arange(n, dtype=np.int64), half)
    offsets = rng.integers(1, bw + 1, size=rows.size)
    cols = rows - offsets  # lower triangle only; mirrored below
    valid = cols >= 0
    rows, cols = rows[valid], cols[valid]
    vals = rng.standard_normal(rows.size) * 0.5
    lower = COOMatrix((n, n), rows, cols, vals)
    return _finalize(symmetrize_lower(lower), dominant)


def kkt_saddle(
    n: int, nnz_per_row: int = 27, constraint_frac: float = 0.3, seed: int = 0,
    dominant: bool = True,
) -> COOMatrix:
    """KKT saddle-point matrix: ``[[H, Aᵀ], [A, 0]]``.

    Models the nlpkkt160/200/240 family (interior-point KKT systems).
    H is a banded SPD block on the primal variables; A is a sparse
    wide constraint Jacobian.  The zero (2,2) block produces the large
    empty regions characteristic of these matrices.
    """
    rng = np.random.default_rng(seed)
    n1 = int(n * (1.0 - constraint_frac))
    n2 = n - n1
    # H block: banded on [0, n1)
    h = banded_fem(n1, nnz_per_row, bandwidth_frac=0.01, seed=seed + 1,
                   dominant=False)
    # A block: each constraint row touches a handful of primal columns.
    per_con = max(2, nnz_per_row // 4)
    a_rows = np.repeat(np.arange(n2, dtype=np.int64), per_con) + n1
    a_cols = rng.integers(0, n1, size=a_rows.size)
    a_vals = rng.standard_normal(a_rows.size)
    rows = np.concatenate([h.rows, a_rows])
    cols = np.concatenate([h.cols, a_cols])
    vals = np.concatenate([h.vals, a_vals])
    lower = COOMatrix((n, n), rows, cols, vals)
    return _finalize(symmetrize_lower(lower), dominant)


def rmat_graph(
    n: int, nnz_target: int, seed: int = 0,
    probs: tuple = (0.57, 0.19, 0.19, 0.05),
    dominant: bool = True,
) -> COOMatrix:
    """R-MAT power-law graph: models it-2004 / sk-2005 / webbase / twitter7.

    Recursive-matrix generation yields a heavy-tailed degree
    distribution — a few hub rows carry most of the nonzeros, which is
    the load-imbalance stressor in the paper's web-graph matrices.
    These matrices were originally binary; values are filled with the
    symmetric pair-hash of :func:`fill_binary_random` and the matrix is
    symmetrized, matching Table 1's bold+italic treatment.
    """
    rng = np.random.default_rng(seed)
    levels = max(1, int(np.ceil(np.log2(max(2, n)))))
    size = 1 << levels
    a, b, c, _d = probs
    m = int(nnz_target)
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for _lvl in range(levels):
        r = rng.random(m)
        right = r >= a + b  # quadrants c and d
        down_given = np.where(
            right, (r - a - b) >= c, r >= a
        )  # within half: lower quadrant?
        rows = (rows << 1) | right.astype(np.int64)
        cols = (cols << 1) | down_given.astype(np.int64)
    # Fold indices beyond n back into range (keeps the skew).
    rows %= n
    cols %= n
    binary = COOMatrix((n, n), rows, cols, np.ones(m)).canonical()
    filled = fill_binary_random(binary, seed=seed)
    return _finalize(symmetrize_lower(filled), dominant)


def traffic_hub(
    n: int, nnz_target: int, hub_frac: float = 1e-3, seed: int = 0,
    dominant: bool = True,
) -> COOMatrix:
    """Network-traffic matrix: models mawi_201512020130.

    Extremely sparse (≈2 nnz/row) with a tiny set of hub endpoints
    (gateways) touched by a large share of the flows.  Originally a
    binary matrix (italic in Table 1) — filled with symmetric random
    values.
    """
    rng = np.random.default_rng(seed)
    m = int(nnz_target)
    n_hubs = max(1, int(n * hub_frac))
    hubs = rng.integers(0, n, size=n_hubs)
    n_hub_edges = m // 2
    h_rows = hubs[rng.integers(0, n_hubs, size=n_hub_edges)]
    h_cols = rng.integers(0, n, size=n_hub_edges)
    r_rows = rng.integers(0, n, size=m - n_hub_edges)
    r_cols = rng.integers(0, n, size=m - n_hub_edges)
    rows = np.concatenate([h_rows, r_rows])
    cols = np.concatenate([h_cols, r_cols])
    binary = COOMatrix((n, n), rows, cols, np.ones(m)).canonical()
    filled = fill_binary_random(binary, seed=seed)
    return _finalize(symmetrize_lower(filled), dominant)


def ci_hamiltonian(
    n: int, nnz_per_row: int, n_groups: int = 48, seed: int = 0,
    dominant: bool = True,
) -> COOMatrix:
    """Configuration-interaction Hamiltonian: models Nm7.

    Nuclear shell-model matrices have dense diagonal blocks (many-body
    basis groups coupled by the interaction) plus scattered inter-group
    bands.  Generated as a block pattern over ``n_groups`` basis groups
    where each group couples to itself and a few random partners.
    """
    rng = np.random.default_rng(seed)
    gsize = -(-n // n_groups)
    groups = np.minimum(np.arange(n, dtype=np.int64) // gsize, n_groups - 1)
    # Intra-group couplings: dense-ish local blocks.
    intra = max(1, nnz_per_row // 2)
    rows_i = np.repeat(np.arange(n, dtype=np.int64), intra)
    lo = groups[rows_i] * gsize
    hi = np.minimum(lo + gsize, n)
    cols_i = lo + rng.integers(0, gsize, size=rows_i.size) % (hi - lo)
    # Inter-group couplings: each group pairs with a few partners.
    partners = rng.integers(0, n_groups, size=(n_groups, 3))
    inter = max(1, nnz_per_row - intra)
    rows_o = np.repeat(np.arange(n, dtype=np.int64), inter)
    pgrp = partners[groups[rows_o], rng.integers(0, 3, size=rows_o.size)]
    plo = pgrp * gsize
    phi = np.minimum(plo + gsize, n)
    cols_o = plo + rng.integers(0, gsize, size=rows_o.size) % (phi - plo)
    rows = np.concatenate([rows_i, rows_o])
    cols = np.concatenate([cols_i, cols_o])
    vals = rng.standard_normal(rows.size) * 0.3
    keep = rows >= cols
    lower = COOMatrix((n, n), rows[keep], cols[keep], vals[keep])
    return _finalize(symmetrize_lower(lower), dominant)


def random_symmetric(
    n: int, nnz_per_row: int, seed: int = 0, dominant: bool = True
) -> COOMatrix:
    """Uniform-random symmetric matrix (generic helper for tests)."""
    rng = np.random.default_rng(seed)
    m = n * max(1, nnz_per_row // 2)
    rows = rng.integers(0, n, size=m)
    cols = rng.integers(0, n, size=m)
    keep = rows >= cols
    lower = COOMatrix(
        (n, n), rows[keep], cols[keep], rng.standard_normal(int(keep.sum()))
    )
    return _finalize(symmetrize_lower(lower), dominant)
