"""The 15-matrix evaluation suite of Table 1, at configurable scale.

The paper evaluates on 14 SuiteSparse matrices plus Nm7 (nuclear shell
model), spanning 0.5 M – 128 M rows and 36 M – 1.9 G nonzeros.  Without
network access or the memory for billion-nonzero operands, this module
provides deterministic synthetic doubles: same names, same sparsity
*family* (FEM band, CFD, CI Hamiltonian, KKT saddle point, power-law
web/social graph, hub traffic), same relative size ordering and
nonzeros-per-row, scaled down by ``scale`` (default 1024×).

Matrices that are non-symmetric in SuiteSparse (bold in Table 1) are
symmetrized with ``A = L + Lᵀ − D`` exactly as the paper does; binary
matrices (italic) are filled with symmetric random values — both rules
are baked into the generators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.matrices.coo import COOMatrix
from repro.matrices import generators as G

__all__ = ["MatrixSpec", "SUITE", "SUITE_ORDER", "load_matrix", "load_suite"]


@dataclass(frozen=True)
class MatrixSpec:
    """Metadata for one Table 1 matrix and its synthetic generator."""

    name: str
    paper_rows: int
    paper_nnz: int
    family: str  # fem | cfd | ci | kkt | web | social | traffic
    symmetric: bool  # False ⇒ bold in Table 1 (symmetrized by L + Lᵀ − D)
    binary: bool  # True ⇒ italic in Table 1 (random refill)
    generator: Callable = field(repr=False, compare=False, default=None)
    gen_kwargs: dict = field(repr=False, compare=False, default_factory=dict)

    @property
    def nnz_per_row(self) -> float:
        return self.paper_nnz / self.paper_rows

    def scaled_rows(self, scale: int, min_rows: int = 1024) -> int:
        """Row count of the synthetic double at reduction factor ``scale``."""
        return max(min_rows, self.paper_rows // scale)

    def build(self, scale: int = 1024, seed: int = None) -> COOMatrix:
        """Generate the scaled synthetic double (deterministic per name)."""
        n = self.scaled_rows(scale)
        if seed is None:
            # Stable per-matrix seed derived from the name.
            seed = sum(ord(ch) for ch in self.name) * 7919
        kwargs = dict(self.gen_kwargs)
        if self.family in ("web", "social", "traffic"):
            kwargs.setdefault("nnz_target", int(n * self.nnz_per_row))
        else:
            kwargs.setdefault("nnz_per_row", max(3, int(round(self.nnz_per_row))))
        return self.generator(n, seed=seed, **kwargs)


def _spec(name, rows, nnz, family, symmetric, binary, gen, **kw) -> MatrixSpec:
    return MatrixSpec(name, rows, nnz, family, symmetric, binary, gen, kw)


# Table 1, in the paper's order.  Row/nnz figures are the paper's.
_SPECS = [
    _spec("inline1", 503_712, 36_816_170, "fem", True, False,
          G.banded_fem, bandwidth_frac=0.015),
    _spec("dielFilterV3real", 1_102_824, 89_306_020, "fem", True, False,
          G.banded_fem, bandwidth_frac=0.02),
    _spec("Flan_1565", 1_564_794, 117_406_044, "fem", True, False,
          G.banded_fem, bandwidth_frac=0.01),
    _spec("HV15R", 2_017_169, 281_419_743, "cfd", False, False,
          G.banded_fem, bandwidth_frac=0.04),
    _spec("Bump_2911", 2_911_419, 127_729_899, "fem", True, False,
          G.banded_fem, bandwidth_frac=0.012),
    _spec("Queen4147", 4_147_110, 329_499_284, "fem", True, False,
          G.banded_fem, bandwidth_frac=0.015),
    _spec("Nm7", 4_985_422, 647_663_919, "ci", True, False,
          G.ci_hamiltonian, n_groups=48),
    _spec("nlpkkt160", 8_345_600, 229_518_112, "kkt", True, False,
          G.kkt_saddle),
    _spec("nlpkkt200", 16_240_000, 448_225_632, "kkt", True, False,
          G.kkt_saddle),
    _spec("nlpkkt240", 27_993_600, 774_472_352, "kkt", True, False,
          G.kkt_saddle),
    _spec("it-2004", 41_291_594, 1_120_355_761, "web", False, True,
          G.rmat_graph),
    _spec("twitter7", 41_652_230, 868_012_304, "social", False, True,
          G.rmat_graph, probs=(0.52, 0.23, 0.23, 0.02)),
    _spec("sk-2005", 50_636_154, 1_909_906_755, "web", False, True,
          G.rmat_graph),
    _spec("webbase-2001", 118_142_155, 1_013_570_040, "web", False, True,
          G.rmat_graph),
    _spec("mawi_201512020130", 128_568_730, 270_234_840, "traffic", False,
          True, G.traffic_hub),
]

SUITE: Dict[str, MatrixSpec] = {s.name: s for s in _SPECS}
SUITE_ORDER = [s.name for s in _SPECS]

# The paper treats the last two matrices specially (fewer iterations due
# to size); useful for benchmark parameterization.
LARGE_MATRICES = ("webbase-2001", "mawi_201512020130")


def load_matrix(name: str, scale: int = 1024, seed: int = None) -> COOMatrix:
    """Generate one suite matrix by name at the given reduction factor."""
    if name not in SUITE:
        raise KeyError(
            f"unknown matrix {name!r}; suite members: {', '.join(SUITE_ORDER)}"
        )
    return SUITE[name].build(scale=scale, seed=seed)


def load_suite(scale: int = 1024, names=None) -> Dict[str, COOMatrix]:
    """Generate several suite matrices (all of Table 1 by default)."""
    names = SUITE_ORDER if names is None else list(names)
    return {n: load_matrix(n, scale=scale) for n in names}
