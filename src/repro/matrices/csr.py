"""Compressed Sparse Row (CSR) format — the ``libcsr`` baseline storage.

The BSP baseline in the paper (``libcsr``) stores the matrix in CSR and
calls thread-parallel MKL SpMV/SpMM.  Here CSR is implemented from
scratch with vectorized NumPy kernels; the SpMV/SpMM entry points in
:mod:`repro.kernels` dispatch to these methods.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matrices.coo import COOMatrix

__all__ = ["CSRMatrix"]


@dataclass
class CSRMatrix:
    """CSR storage: ``indptr`` (nrows+1), ``indices`` (nnz), ``data`` (nnz).

    Rows are stored contiguously; within a row, columns are ascending
    (guaranteed when built via :meth:`from_coo`).
    """

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray

    def __post_init__(self):
        self.indptr = np.asarray(self.indptr, dtype=np.int64)
        self.indices = np.asarray(self.indices, dtype=np.int64)
        self.data = np.asarray(self.data, dtype=np.float64)
        nr, nc = self.shape
        if self.indptr.size != nr + 1:
            raise ValueError(
                f"indptr must have nrows+1={nr + 1} entries, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.data.size:
            raise ValueError("indices and data length mismatch")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= nc
        ):
            raise ValueError("column index out of range")

    # ------------------------------------------------------------------
    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSRMatrix":
        """Build from COO; duplicates are summed, rows sorted by column."""
        coo = coo.canonical()
        nr = coo.shape[0]
        counts = np.bincount(coo.rows, minlength=nr)
        indptr = np.zeros(nr + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(coo.shape, indptr, coo.cols.copy(), coo.vals.copy())

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense))

    def to_coo(self) -> COOMatrix:
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
        )
        out = COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())
        out._canonical = True
        return out

    def to_dense(self) -> np.ndarray:
        return self.to_coo().to_dense()

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.data.size)

    def row_nnz(self) -> np.ndarray:
        return np.diff(self.indptr)

    def nbytes(self) -> int:
        """Storage footprint, used by the cache/memory machine model."""
        return self.indptr.nbytes + self.indices.nbytes + self.data.nbytes

    # ------------------------------------------------------------------
    # Kernels (vectorized; no per-entry Python loops)
    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """y = A @ x.

        Uses a gather-multiply then segment-reduce via
        ``np.add.reduceat`` over row boundaries — the standard
        vectorized CSR SpMV.
        """
        x = np.asarray(x)
        if x.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in spmv")
        if out is None:
            out = np.zeros(self.shape[0])
        else:
            out[:] = 0.0
        if self.nnz == 0:
            return out
        prod = self.data * x[self.indices]
        nonempty = np.diff(self.indptr) > 0
        starts = self.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(prod, starts)
        return out

    def spmm(self, X: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Y = A @ X for a dense block of vectors X (m × n, small n)."""
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[0] != self.shape[1]:
            raise ValueError("dimension mismatch in spmm")
        if out is None:
            out = np.zeros((self.shape[0], X.shape[1]))
        else:
            out[:] = 0.0
        if self.nnz == 0:
            return out
        prod = self.data[:, None] * X[self.indices]
        nonempty = np.diff(self.indptr) > 0
        starts = self.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(prod, starts, axis=0)
        return out

    def transpose(self) -> "CSRMatrix":
        return CSRMatrix.from_coo(self.to_coo().transpose())

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where no entry is stored)."""
        coo = self.to_coo()
        d = np.zeros(min(self.shape))
        on_diag = coo.rows == coo.cols
        d[coo.rows[on_diag]] = coo.vals[on_diag]
        return d
