"""Bandwidth-reducing reordering (reverse Cuthill–McKee).

The CSB block census — and with it the whole task structure — depends
on where the nonzeros sit.  RCM reordering concentrates them near the
diagonal, turning scattered patterns into banded ones: fewer non-empty
blocks, shorter SpMM row chains, smaller gather spans.  Offered as a
preprocessing utility (the paper takes SuiteSparse orderings as-is; the
ablation benchmark quantifies what reordering would have bought).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.matrices.coo import COOMatrix

__all__ = ["rcm_ordering", "permute", "bandwidth"]


def _adjacency(coo: COOMatrix):
    """CSR-style adjacency (indptr, indices) of the symmetric pattern."""
    coo = coo.canonical()
    off = coo.rows != coo.cols
    r = np.concatenate([coo.rows[off], coo.cols[off]])
    c = np.concatenate([coo.cols[off], coo.rows[off]])
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    n = coo.shape[0]
    counts = np.bincount(r, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, c


def rcm_ordering(coo: COOMatrix) -> np.ndarray:
    """Reverse Cuthill–McKee permutation of a symmetric matrix.

    Returns ``perm`` such that row/column ``perm[k]`` of the original
    matrix becomes row/column ``k`` of the reordered one.  Disconnected
    components are handled by restarting from the minimum-degree
    unvisited vertex.
    """
    if coo.shape[0] != coo.shape[1]:
        raise ValueError("RCM requires a square (symmetric) matrix")
    n = coo.shape[0]
    indptr, indices = _adjacency(coo)
    degree = np.diff(indptr)
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    # Process components in min-degree order of their seeds.
    seeds = np.argsort(degree, kind="stable")
    seed_idx = 0
    queue = deque()
    while pos < n:
        if not queue:
            while visited[seeds[seed_idx]]:
                seed_idx += 1
            start = int(seeds[seed_idx])
            visited[start] = True
            queue.append(start)
        v = queue.popleft()
        order[pos] = v
        pos += 1
        # A symmetric canonical matrix already stores both (i, j) and
        # (j, i), and the mirror pass doubles them again: dedupe.
        nbrs = np.unique(indices[indptr[v]:indptr[v + 1]])
        fresh = nbrs[~visited[nbrs]]
        if fresh.size:
            fresh = fresh[np.argsort(degree[fresh], kind="stable")]
            visited[fresh] = True
            queue.extend(int(x) for x in fresh)
    return order[::-1].copy()  # the "reverse" of Cuthill–McKee


def permute(coo: COOMatrix, perm: np.ndarray) -> COOMatrix:
    """Symmetric permutation ``A' = P A Pᵀ`` given ``perm`` (old→position).

    ``perm[k]`` is the original index placed at position ``k``.
    """
    perm = np.asarray(perm, dtype=np.int64)
    n = coo.shape[0]
    if perm.shape != (n,) or not np.array_equal(np.sort(perm), np.arange(n)):
        raise ValueError("perm must be a permutation of range(nrows)")
    inv = np.empty(n, dtype=np.int64)
    inv[perm] = np.arange(n, dtype=np.int64)
    c = coo.canonical()
    return COOMatrix(coo.shape, inv[c.rows], inv[c.cols],
                     c.vals.copy()).canonical()


def bandwidth(coo: COOMatrix) -> int:
    """Maximum |row − col| over stored entries (0 for diagonal/empty)."""
    c = coo.canonical()
    if c.nnz == 0:
        return 0
    return int(np.max(np.abs(c.rows - c.cols)))
