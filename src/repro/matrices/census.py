"""Block-level nonzero censuses at full paper scale.

The simulator never needs matrix *entries* — tasks are priced from
per-block nonzero counts, row-block sizes, and byte footprints.  This
module generates the block census of each Table 1 matrix at its
**original dimensions** (up to 128 M rows, 1.9 G nonzeros) directly at
block resolution, so simulated task work, cache working sets, and
runtime overheads all carry their real-scale proportions.  A census is
duck-type compatible with :class:`~repro.matrices.csb.CSBMatrix` for
everything the DAG builder uses.

Census generators mirror the entry-level generator families:

* banded FEM/CFD → analytic band-overlap census,
* KKT saddle point → banded H census + uniform constraint coupling,
* R-MAT web/social graphs → multinomial quadrant splitting (R-MAT run
  at block resolution *is* the block-count distribution),
* hub traffic → heavy hub block rows over a sparse background,
* CI Hamiltonian → group-block pattern.
"""

from __future__ import annotations

import numpy as np

from repro.matrices.csb import CSBMatrix

__all__ = ["BlockCensus", "census_for", "census_from_csb"]


class BlockCensus:
    """Block-resolution view of a sparse matrix: an ``nbr×nbc`` nnz grid.

    Implements the subset of the :class:`CSBMatrix` interface consumed
    by :class:`~repro.graph.builder.DAGBuilder` and the runtimes:
    ``shape``, ``block_size``, ``nbr``/``nbc``, ``block_nnz_grid()``,
    ``row_block_bounds``/``col_block_bounds``, ``nonempty_blocks()``,
    ``n_empty_blocks()`` and ``nnz``.
    """

    def __init__(self, shape, block_size, grid: np.ndarray):
        self.shape = tuple(shape)
        self.block_size = int(block_size)
        self.nbr = -(-self.shape[0] // self.block_size)
        self.nbc = -(-self.shape[1] // self.block_size)
        grid = np.asarray(grid, dtype=np.int64)
        if grid.shape != (self.nbr, self.nbc):
            raise ValueError(
                f"census grid must be {(self.nbr, self.nbc)}, got {grid.shape}"
            )
        if (grid < 0).any():
            raise ValueError("census counts must be non-negative")
        self.grid = grid

    # -- CSBMatrix-compatible interface --------------------------------
    @property
    def nnz(self) -> int:
        return int(self.grid.sum())

    def block_nnz_grid(self) -> np.ndarray:
        return self.grid

    def block_nnz(self, i: int, j: int) -> int:
        return int(self.grid[i, j])

    def row_block_bounds(self, i: int) -> tuple:
        s = i * self.block_size
        return s, min(s + self.block_size, self.shape[0])

    def col_block_bounds(self, j: int) -> tuple:
        s = j * self.block_size
        return s, min(s + self.block_size, self.shape[1])

    def nonempty_blocks(self):
        nz = np.nonzero(self.grid.ravel())[0]
        return list(zip((nz // self.nbc).tolist(), (nz % self.nbc).tolist()))

    def n_empty_blocks(self) -> int:
        return int(np.count_nonzero(self.grid == 0))


def census_from_csb(csb: CSBMatrix) -> BlockCensus:
    """Exact census of a materialized CSB matrix (consistency checks)."""
    return BlockCensus(csb.shape, csb.block_size, csb.block_nnz_grid())


# ----------------------------------------------------------------------
# Family-specific census generators (full scale, block resolution)
# ----------------------------------------------------------------------
def _band_census(n, b, nnz_total, bandwidth, rng) -> np.ndarray:
    """Analytic band census: nnz spread over |row − col| ≤ bandwidth."""
    nbr = -(-n // b)
    grid = np.zeros((nbr, nbr), dtype=np.float64)
    # Per block row, weight block columns by band-overlap area.
    per_row = nnz_total / n
    for i in range(nbr):
        r0, r1 = i * b, min((i + 1) * b, n)
        jmin = max(0, (r0 - bandwidth) // b)
        jmax = min(nbr - 1, (r1 + bandwidth) // b)
        js = np.arange(jmin, jmax + 1)
        c0 = js * b
        c1 = np.minimum(c0 + b, n)
        # Overlap of the band [r−bw, r+bw] with column range, integrated
        # over rows of the block: approximated at the block-row center.
        mid = (r0 + r1) / 2.0
        lo = np.maximum(c0, mid - bandwidth)
        hi = np.minimum(c1, mid + bandwidth)
        w = np.maximum(0.0, hi - lo)
        if w.sum() <= 0:
            w = np.ones_like(w, dtype=float)
        grid[i, js] = w / w.sum() * per_row * (r1 - r0)
    # Deterministic multiplicative jitter so no two block rows are
    # perfectly equal (the real matrices aren't).
    grid *= 1.0 + 0.1 * (rng.random(grid.shape) - 0.5)
    return np.round(grid).astype(np.int64)


def _rmat_census(nbr, nnz_total, rng, probs=(0.57, 0.19, 0.19, 0.05)):
    """Multinomial R-MAT splitting down to an ``nbr×nbr`` grid."""
    levels = int(np.ceil(np.log2(max(2, nbr))))
    size = 1 << levels
    grid = np.zeros((1, 1), dtype=np.int64)
    grid[0, 0] = nnz_total
    a, b, c, d = probs
    for _ in range(levels):
        m = grid.shape[0]
        new = np.zeros((2 * m, 2 * m), dtype=np.int64)
        counts = grid.ravel()
        # Binomial chain: top vs bottom, then left vs right within each —
        # slight per-cell probability noise keeps the fractal from being
        # perfectly self-similar (as in the smoothed R-MAT variants).
        noise = 0.05 * (rng.random(counts.shape) - 0.5)
        p_top = np.clip(a + b + noise, 0.05, 0.95)
        top = rng.binomial(counts, p_top)
        bottom = counts - top
        p_left_top = np.clip(a / max(a + b, 1e-9) + noise, 0.05, 0.95)
        p_left_bot = np.clip(c / max(c + d, 1e-9) + noise, 0.05, 0.95)
        tl = rng.binomial(top, p_left_top)
        tr = top - tl
        bl = rng.binomial(bottom, p_left_bot)
        br = bottom - bl
        new[0::2, 0::2] = tl.reshape(m, m)
        new[0::2, 1::2] = tr.reshape(m, m)
        new[1::2, 0::2] = bl.reshape(m, m)
        new[1::2, 1::2] = br.reshape(m, m)
        grid = new
    return grid[:nbr, :nbr] if size >= nbr else grid


def _symmetrize_grid(grid: np.ndarray) -> np.ndarray:
    """Make the census symmetric while preserving the total count."""
    s = grid + grid.T
    total = grid.sum()
    ssum = s.sum()
    if ssum == 0:
        return s
    out = np.round(s * (total / ssum)).astype(np.int64)
    return np.maximum(out, (out + out.T) // 2)  # keep symmetric


def _hub_census(nbr, nnz_total, rng, hub_blocks=2):
    """Traffic census: a few hub block rows/cols plus sparse background."""
    grid = np.zeros((nbr, nbr), dtype=np.float64)
    hubs = rng.choice(nbr, size=min(hub_blocks, nbr), replace=False)
    hub_share = 0.5
    grid[hubs, :] += hub_share * nnz_total / (2 * len(hubs) * nbr)
    grid[:, hubs] += hub_share * nnz_total / (2 * len(hubs) * nbr)
    # Background: most flows touch only nearby blocks; ~60 % of cells empty.
    mask = rng.random((nbr, nbr)) < 0.4
    bg = (1 - hub_share) * nnz_total / max(mask.sum(), 1)
    grid += mask * bg
    out = np.round(grid).astype(np.int64)
    return _symmetrize_grid(out)


def _ci_census(n, b, nnz_total, rng, n_groups=48):
    """CI Hamiltonian census: group diagonal blocks + partner couplings."""
    nbr = -(-n // b)
    gsize_rows = -(-n // n_groups)
    grid = np.zeros((nbr, nbr), dtype=np.float64)
    partners = rng.integers(0, n_groups, size=(n_groups, 3))
    blocks_per_group = max(1, gsize_rows // b)

    def group_block_range(g):
        lo = g * gsize_rows // b
        hi = min(nbr, lo + blocks_per_group + 1)
        return lo, hi

    intra_share = 0.55
    per_group = nnz_total / n_groups
    for g in range(n_groups):
        lo, hi = group_block_range(g)
        span = max(1, hi - lo)
        grid[lo:hi, lo:hi] += intra_share * per_group / (span * span)
        for p in partners[g]:
            plo, phi = group_block_range(int(p))
            pspan = max(1, phi - plo)
            grid[lo:hi, plo:phi] += (
                (1 - intra_share) * per_group / (3 * span * pspan)
            )
    out = np.round(grid).astype(np.int64)
    return _symmetrize_grid(out)


def _kkt_census(n, b, nnz_total, rng, constraint_frac=0.3):
    """KKT census: banded H on primal rows, coupling stripes, empty (2,2)."""
    nbr = -(-n // b)
    n1 = int(n * (1 - constraint_frac))
    split = n1 // b  # first block row of the constraint range
    h_nnz = int(nnz_total * 0.7)
    a_nnz = nnz_total - h_nnz
    grid = np.zeros((nbr, nbr), dtype=np.int64)
    h = _band_census(n1, b, h_nnz, max(b, int(n1 * 0.01)), rng)
    grid[: h.shape[0], : h.shape[1]] += h
    if split < nbr:
        # Constraint rows couple uniformly into the primal block columns.
        ncon_rows = nbr - split
        per_cell = a_nnz / max(1, 2 * ncon_rows * max(split, 1))
        grid[split:, :split] += int(round(per_cell))
        grid[:split, split:] += int(round(per_cell))
    return _symmetrize_grid(grid)


# ----------------------------------------------------------------------
def census_for(spec, block_size: int, seed: int = None) -> BlockCensus:
    """Full-scale block census for one Table 1 matrix spec.

    Parameters
    ----------
    spec:
        A :class:`~repro.matrices.suite.MatrixSpec` (or its name).
    block_size:
        CSB block edge the census is taken at.
    """
    from repro.matrices.suite import SUITE

    if isinstance(spec, str):
        spec = SUITE[spec]
    if seed is None:
        seed = sum(ord(ch) for ch in spec.name) * 104729
    rng = np.random.default_rng(seed)
    n = spec.paper_rows
    nnz = spec.paper_nnz
    b = int(block_size)
    nbr = -(-n // b)
    if nbr > 4096:
        raise ValueError(
            f"census at block size {b} would have {nbr} block rows; "
            "block counts beyond 4096 are outside the study's range "
            "(§5.4 finds optima in 8–511) and too dense to simulate"
        )
    if spec.family in ("fem", "cfd"):
        bw_frac = spec.gen_kwargs.get("bandwidth_frac", 0.02)
        grid = _band_census(n, b, nnz, max(b, int(n * bw_frac)), rng)
        grid = _symmetrize_grid(grid)
    elif spec.family == "kkt":
        grid = _kkt_census(n, b, nnz, rng)
    elif spec.family in ("web", "social"):
        probs = spec.gen_kwargs.get("probs", (0.57, 0.19, 0.19, 0.05))
        grid = _symmetrize_grid(_rmat_census(nbr, nnz, rng, probs))
    elif spec.family == "traffic":
        grid = _hub_census(nbr, nnz, rng)
    elif spec.family == "ci":
        grid = _ci_census(n, b, nnz, rng)
    else:
        raise ValueError(f"unknown family {spec.family!r}")
    return BlockCensus((n, n), b, grid)
