"""Coordinate (COO) sparse matrix format.

COO is the builder and interchange format: generators emit triplets,
and conversions to CSR/CSB start from a canonical (sorted, deduplicated)
COO form.  All operations are NumPy-vectorized; no per-entry Python
loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["COOMatrix"]


@dataclass
class COOMatrix:
    """A sparse matrix as (row, col, value) triplets.

    Parameters
    ----------
    shape:
        ``(nrows, ncols)`` of the matrix.
    rows, cols:
        Integer index arrays of equal length.
    vals:
        Float64 value array of the same length.

    The constructor copies nothing and does not canonicalize; call
    :meth:`canonical` to sort row-major and merge duplicate entries.
    """

    shape: tuple
    rows: np.ndarray
    cols: np.ndarray
    vals: np.ndarray
    _canonical: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self):
        self.rows = np.asarray(self.rows, dtype=np.int64)
        self.cols = np.asarray(self.cols, dtype=np.int64)
        self.vals = np.asarray(self.vals, dtype=np.float64)
        if not (self.rows.shape == self.cols.shape == self.vals.shape):
            raise ValueError(
                "rows, cols, vals must have identical shapes, got "
                f"{self.rows.shape}, {self.cols.shape}, {self.vals.shape}"
            )
        if self.rows.ndim != 1:
            raise ValueError("COO index arrays must be 1-D")
        nr, nc = self.shape
        if self.rows.size:
            if self.rows.min() < 0 or self.rows.max() >= nr:
                raise ValueError("row index out of range")
            if self.cols.min() < 0 or self.cols.max() >= nc:
                raise ValueError("col index out of range")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape) -> "COOMatrix":
        """An all-zero matrix with no stored entries."""
        z = np.zeros(0, dtype=np.int64)
        return cls(shape, z, z.copy(), np.zeros(0))

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "COOMatrix":
        """Extract the nonzero entries of a dense array."""
        dense = np.asarray(dense, dtype=np.float64)
        rows, cols = np.nonzero(dense)
        return cls(dense.shape, rows, cols, dense[rows, cols])

    @property
    def nnz(self) -> int:
        """Number of *stored* entries (duplicates counted separately)."""
        return int(self.vals.size)

    # ------------------------------------------------------------------
    # Canonicalization
    # ------------------------------------------------------------------
    def canonical(self) -> "COOMatrix":
        """Return an equivalent COO sorted row-major with duplicates summed.

        Entries whose values sum to exactly zero are kept (explicit
        zeros are legal stored entries), matching the behaviour of the
        CSB construction in the paper where the block census depends on
        stored entries, not numeric values.
        """
        if self._canonical:
            return self
        if self.nnz == 0:
            out = COOMatrix.empty(self.shape)
            out._canonical = True
            return out
        # Sort by (row, col); np.lexsort's last key is primary.
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        v = self.vals[order]
        # Merge duplicates: boundaries where (row, col) changes.
        new_entry = np.empty(r.size, dtype=bool)
        new_entry[0] = True
        np.not_equal(r[1:], r[:-1], out=new_entry[1:])
        np.logical_or(new_entry[1:], c[1:] != c[:-1], out=new_entry[1:])
        group = np.cumsum(new_entry) - 1
        n_groups = int(group[-1]) + 1
        merged = np.zeros(n_groups)
        np.add.at(merged, group, v)
        keep = new_entry.nonzero()[0]
        out = COOMatrix(self.shape, r[keep], c[keep], merged)
        out._canonical = True
        return out

    # ------------------------------------------------------------------
    # Dense / arithmetic views (test and small-problem support)
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize as a dense float64 array (small matrices only)."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.vals)
        return out

    def transpose(self) -> "COOMatrix":
        """Return the transpose (swaps row/col index arrays, no copy of vals)."""
        return COOMatrix(
            (self.shape[1], self.shape[0]), self.cols, self.rows, self.vals
        )

    def spmv(self, x: np.ndarray) -> np.ndarray:
        """y = A @ x via scatter-add; reference implementation for tests."""
        x = np.asarray(x)
        y = np.zeros(self.shape[0])
        np.add.at(y, self.rows, self.vals * x[self.cols])
        return y

    def row_nnz(self) -> np.ndarray:
        """Stored entries per row; drives the load-imbalance statistics."""
        return np.bincount(self.rows, minlength=self.shape[0]).astype(np.int64)
