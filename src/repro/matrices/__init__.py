"""Sparse matrix substrates: storage formats, generators, and the paper's matrix suite.

The task-parallel frameworks in the paper define tasks from the 2-D
decomposition of the input matrix stored in Compressed Sparse Block
(CSB) form.  This subpackage provides, from scratch (no scipy.sparse in
the compute path):

* :class:`~repro.matrices.coo.COOMatrix` — coordinate triplets, the
  interchange/builder format.
* :class:`~repro.matrices.csr.CSRMatrix` — compressed sparse row, the
  ``libcsr`` baseline storage.
* :class:`~repro.matrices.csb.CSBMatrix` — compressed sparse blocks,
  the 2-D tiled storage all task-parallel versions (and ``libcsb``)
  are built on.
* Generators for every sparsity-pattern family in Table 1 and
  :func:`~repro.matrices.suite.load_suite` for the scaled 15-matrix
  evaluation suite.
"""

from repro.matrices.coo import COOMatrix
from repro.matrices.csr import CSRMatrix
from repro.matrices.csb import CSBMatrix
from repro.matrices.symmetrize import (
    symmetrize_lower,
    is_symmetric,
    fill_binary_random,
)
from repro.matrices.suite import (
    SUITE,
    MatrixSpec,
    load_matrix,
    load_suite,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSBMatrix",
    "symmetrize_lower",
    "is_symmetric",
    "fill_binary_random",
    "SUITE",
    "MatrixSpec",
    "load_matrix",
    "load_suite",
]
