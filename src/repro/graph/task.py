"""Task and data-handle primitives of the task dependency graph.

A :class:`DataHandle` names one unit of data at task granularity — a
row-block chunk of a vector block, one CSB tile of the sparse matrix, a
small n×n matrix, or a scalar.  Handles are the join points of the
dependence analysis (TDGG) *and* the objects the cache/NUMA machine
model tracks, so their byte sizes live here.

A :class:`Task` is one node of the DAG: a kernel name from the
:mod:`repro.kernels.registry`, the handles it reads and writes, a shape
dictionary for the cost model, and the parameters its executable body
needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.kernels.registry import kernel_spec

__all__ = ["DataHandle", "Task"]


@dataclass(frozen=True)
class DataHandle:
    """One dependence-tracked unit of data.

    Parameters
    ----------
    name:
        Logical array name (``"Y"``, ``"A"``, ``"gramA"`` …).
    part:
        Row-block partition index for chunked vectors, the row-major
        block id for sparse tiles, or ``None`` for unpartitioned
        (small/scalar) data.
    nbytes:
        Footprint of this unit; drives the cache simulator.  Excluded
        from equality so the same logical chunk compares equal however
        it was sized.
    """

    name: str
    part: Optional[int] = None
    nbytes: int = field(default=0, compare=False, hash=False)

    def __str__(self):
        return self.name if self.part is None else f"{self.name}[{self.part}]"


@dataclass
class Task:
    """One node of the task dependency graph.

    Attributes
    ----------
    tid:
        Dense integer id assigned by the DAG (index into its arrays).
    kernel:
        Registered kernel name; prices the task via the registry.
    reads / writes:
        Handles consumed / produced.  A read-write (accumulate) handle
        appears in both tuples.
    shape:
        Operand-shape dictionary the kernel's cost contract expects.
    params:
        Execution parameters for the kernel body (block indices,
        scalar names, flags such as ``zero_first``).
    iteration:
        Solver iteration the task belongs to (flow-graph lane).
    seq:
        Program order of the originating primitive call; DeepSparse
        spawns tasks in depth-first topological order keyed on this.
    """

    tid: int
    kernel: str
    reads: Tuple[DataHandle, ...]
    writes: Tuple[DataHandle, ...]
    shape: dict
    params: dict = field(default_factory=dict)
    iteration: int = 0
    seq: int = 0

    @property
    def flops(self) -> float:
        """Floating-point work priced by the kernel registry."""
        return kernel_spec(self.kernel).flops(self.shape)

    @property
    def bytes_streamed(self) -> float:
        """Compulsory operand traffic priced by the kernel registry."""
        return kernel_spec(self.kernel).bytes_streamed(self.shape)

    @property
    def kind(self) -> str:
        return kernel_spec(self.kernel).kind

    def touched(self) -> Tuple[DataHandle, ...]:
        """All handles the task touches (reads then writes, deduplicated)."""
        seen = {}
        for h in self.reads + self.writes:
            seen.setdefault((h.name, h.part), h)
        return tuple(seen.values())

    def __repr__(self):
        r = ",".join(str(h) for h in self.reads)
        w = ",".join(str(h) for h in self.writes)
        return f"Task({self.tid}, {self.kernel}, R[{r}] W[{w}], it={self.iteration})"
