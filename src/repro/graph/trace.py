"""Primitive-call trace — the "Task Identifier" stage of the PCU.

Solvers are written against the engine API in
:mod:`repro.solvers.primitives`; when traced, each high-level call
(one SpMM, one XY, one inner product, …) is recorded as a
:class:`PrimitiveCall` carrying operand names and roles.  The result is
the function-call-level dependency graph of the paper's Task
Identifier; :class:`~repro.graph.builder.DAGBuilder` then decomposes it
into fine-grained tasks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["PrimitiveCall", "TraceRecorder"]

#: Primitive ops the builder knows how to decompose.
OPS = frozenset(
    {
        "SPMM",   # Y = A @ X (width ≥ 1; width 1 uses the SPMV kernel)
        "XY",     # Q = Y @ Z (chunked linear combination)
        "XTY",    # P = Yᵀ @ Q (chunked inner product + reduce)
        "AXPY",   # Y += alpha * X
        "SCALE",  # X *= alpha
        "COPY",   # Y = X
        "ADD",    # OUT = X + Y
        "SUB",    # OUT = X − Y
        "DOT",    # s = <X, Y> (chunked partials + reduce)
        "DIAGSCALE",  # OUT = D^{-1} ∘ X (row-wise preconditioner apply)
        "SMALL",  # unpartitioned dense op on small matrices / scalars
    }
)


@dataclass(frozen=True)
class PrimitiveCall:
    """One recorded high-level call.

    Attributes
    ----------
    op:
        Member of :data:`OPS`.
    reads / writes:
        Whole-operand names (vector blocks, small matrices, scalars);
        partitioning happens later in the builder.
    meta:
        Op-specific details: vector width, scalar coefficient name,
        small-op kernel name and dimension, etc.
    iteration:
        Solver iteration this call belongs to.
    """

    op: str
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    meta: tuple = ()
    iteration: int = 0

    def __post_init__(self):
        if self.op not in OPS:
            raise ValueError(f"unknown primitive op {self.op!r}")

    @property
    def meta_dict(self) -> dict:
        return dict(self.meta)


@dataclass
class TraceRecorder:
    """Accumulates :class:`PrimitiveCall` records in program order."""

    calls: List[PrimitiveCall] = field(default_factory=list)
    iteration: int = 0

    def record(self, primitive: str, reads, writes, **meta) -> PrimitiveCall:
        call = PrimitiveCall(
            primitive,
            tuple(reads),
            tuple(writes),
            tuple(sorted(meta.items())),
            self.iteration,
        )
        self.calls.append(call)
        return call

    def next_iteration(self) -> None:
        """Advance the iteration counter (flow-graph lane boundary)."""
        self.iteration += 1

    def __len__(self):
        return len(self.calls)
