"""The Task Dependency Graph Generator (TDGG).

Decomposes a function-call-level trace into fine-grained tasks:

* 2-D kernels (SpMV/SpMM) get one task per **non-empty CSB block**
  (Fig. 1), with the *dependency-based* output policy by default —
  tasks updating the same output row chunk are chained, avoiding the
  reduction buffers (§3, adopted in all three frameworks) — or the
  *reduction-based* policy (private partial buffers + a reduce task per
  row chunk) for the Fig. 7 ablation.
* 1-D kernels (XY, XTY, AXPY, …) get one task per row-block chunk;
  XTY and DOT produce per-chunk partials plus a final reduce task
  (Fig. 2).
* Small dense ops (Rayleigh–Ritz, tiny eigensolves) stay single tasks.

Dependencies are wired by last-writer/readers tracking per
:class:`~repro.graph.task.DataHandle`: RAW, WAR and WAW hazards all
become edges, which is exactly what OpenMP ``depend`` clauses, HPX
futures, and Regent privilege analysis each compute for the same
program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.dag import TaskDAG
from repro.graph.task import DataHandle, Task
from repro.graph.trace import PrimitiveCall
from repro.matrices.csb import CSBMatrix

__all__ = ["BuildOptions", "DAGBuilder"]

_F8 = 8


@dataclass(frozen=True)
class BuildOptions:
    """Decomposition policy knobs (the paper's §5.1 optimizations).

    Attributes
    ----------
    skip_empty:
        Spawn SpMV/SpMM tasks only for non-empty CSB blocks (Fig. 6
    	ablation flips this off: empty blocks still cost a task spawn).
    spmm_mode:
        ``"dependency"`` chains tasks on the output row chunk;
        ``"reduction"`` gives each task a private partial buffer and
        adds per-row reduce tasks (Fig. 7 ablation).
    csr_storage:
        The ``libcsr`` storage model: SpMV/SpMM gathers from the input
        vector span the *whole* vector (CSR column indices are
        unrestricted), instead of being confined to one block-column
        chunk as in CSB.  Affects the gather span the cost model sees,
        not the task census.
    """

    skip_empty: bool = True
    spmm_mode: str = "dependency"
    csr_storage: bool = False

    def __post_init__(self):
        if self.spmm_mode not in ("dependency", "reduction"):
            raise ValueError(
                f"spmm_mode must be 'dependency' or 'reduction', "
                f"got {self.spmm_mode!r}"
            )


class DAGBuilder:
    """Expands a primitive trace over one CSB matrix into a TaskDAG.

    Parameters
    ----------
    csb:
        The input matrix; its block census drives SpMV/SpMM task
        creation and its row-block geometry partitions every vector.
    matrix_name:
        The operand name under which the solver trace refers to the
        matrix (usually ``"A"``).
    chunked:
        ``name -> width`` for every row-partitioned operand (vector
        blocks; width 1 for plain vectors).
    small:
        ``name -> (rows, cols)`` for unpartitioned small operands;
        scalars are ``(1, 1)``.
    options:
        Decomposition policy.
    """

    def __init__(
        self,
        csb: CSBMatrix,
        matrix_name: str = "A",
        chunked: Dict[str, int] = None,
        small: Dict[str, Tuple[int, int]] = None,
        options: BuildOptions = None,
    ):
        self.csb = csb
        self.matrix_name = matrix_name
        self.chunked = dict(chunked or {})
        self.small = dict(small or {})
        self.options = options or BuildOptions()
        self.np_ = csb.nbr
        self._row_sizes = [
            csb.row_block_bounds(i)[1] - csb.row_block_bounds(i)[0]
            for i in range(self.np_)
        ]
        # Dependence state: last writer and readers-since-write per handle key.
        self._last_writer: Dict[tuple, int] = {}
        self._readers: Dict[tuple, List[int]] = {}
        self._buf_counter = 0
        # Per-row lists of non-empty block columns, precomputed once.
        grid = csb.block_nnz_grid()
        self._row_cols = [np.nonzero(grid[i])[0].tolist() for i in range(self.np_)]
        self._grid = grid

    # ------------------------------------------------------------------
    # Handle constructors
    # ------------------------------------------------------------------
    def chunk_handle(self, name: str, i: int) -> DataHandle:
        w = self.chunked[name]
        return DataHandle(name, i, self._row_sizes[i] * w * _F8)

    def small_handle(self, name: str) -> DataHandle:
        r, c = self.small[name]
        return DataHandle(name, None, r * c * _F8)

    def matrix_handle(self, i: int, j: int) -> DataHandle:
        bid = i * self.csb.nbc + j
        nnz = int(self._grid[i, j])
        return DataHandle(self.matrix_name, bid, nnz * (_F8 + 8))

    # ------------------------------------------------------------------
    # Dependence bookkeeping
    # ------------------------------------------------------------------
    def _key(self, h: DataHandle) -> tuple:
        return (h.name, h.part)

    def _note_read(self, dag: TaskDAG, tid: int, h: DataHandle) -> None:
        if h.name == self.matrix_name:
            return  # the matrix is never written: no edges possible
        k = (h.name, h.part)
        w = self._last_writer.get(k)
        if w is not None:
            dag.add_edge(w, tid)
        self._readers.setdefault(k, []).append(tid)

    def _note_write(self, dag: TaskDAG, tid: int, h: DataHandle) -> None:
        k = (h.name, h.part)
        w = self._last_writer.get(k)
        if w is not None:
            dag.add_edge(w, tid)  # WAW
        for r in self._readers.get(k, ()):
            dag.add_edge(r, tid)  # WAR
        self._last_writer[k] = tid
        self._readers[k] = []

    def _emit(
        self, dag: TaskDAG, kernel, reads, writes, shape, params, call, seq
    ) -> int:
        t = Task(
            -1, kernel, tuple(reads), tuple(writes), shape, params,
            call.iteration, seq,
        )
        tid = dag.add_task(t)
        for h in reads:
            self._note_read(dag, tid, h)
        for h in writes:
            self._note_write(dag, tid, h)
        return tid

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self, calls: List[PrimitiveCall]) -> TaskDAG:
        """Expand the trace into a validated TaskDAG."""
        dag = TaskDAG()
        for seq, call in enumerate(calls):
            handler = getattr(self, f"_op_{call.op.lower()}")
            handler(dag, call, seq)
        dag.validate()
        # Partition geometry for NUMA placement: vector chunks use row
        # partition indices; matrix handles use row-major block ids that
        # the memory model must map back to block rows.
        dag.n_partitions = self.np_
        dag.matrix_name = self.matrix_name
        dag.matrix_nbc = self.csb.nbc
        # Freeze the structure-of-arrays view once here: every engine,
        # cost model and scheduler that later executes this DAG reads
        # the same flat tables instead of re-deriving adjacency and
        # interning per instance, and the prep store persists them.
        dag.freeze()
        return dag

    # -- SPMM / SPMV ---------------------------------------------------
    def _op_spmm(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        _a, xname = call.reads
        (yname,) = call.writes
        if xname == yname:
            raise ValueError(
                "SPMM cannot run in place (input and output vector "
                f"are both {xname!r}); no sparse kernel supports that"
            )
        w = self.chunked[xname]
        kernel = "SPMV" if w == 1 else "SPMM"
        reduction = self.options.spmm_mode == "reduction"
        for i in range(self.np_):
            cols = (
                self._row_cols[i]
                if self.options.skip_empty
                else list(range(self.csb.nbc))
            )
            if not cols:
                # Row with no stored blocks: Y_i must still be zeroed.
                yh = self.chunk_handle(yname, i)
                self._emit(
                    dag, "SCALE", (), (yh,),
                    {"rows": self._row_sizes[i], "width": w, "streams": 1,
                     "ops_per_elem": 1},
                    {"i": i, "X": yname, "alpha": 0.0}, call, seq,
                )
                continue
            if reduction:
                self._spmm_row_reduction(dag, call, seq, kernel, i, cols,
                                         xname, yname, w)
            else:
                self._spmm_row_dependency(dag, call, seq, kernel, i, cols,
                                          xname, yname, w)

    def _gather_span(self, xname: str, j: int, w: int) -> int:
        """Bytes of input vector a SpMM task's gathers range over.

        CSB confines column indices to one block (the chunk); CSR's are
        unrestricted, so ``libcsr`` gathers span the whole vector.
        """
        if self.options.csr_storage:
            return self.csb.shape[1] * w * 8
        return self.chunk_handle(xname, j).nbytes

    def _spmm_row_dependency(self, dag, call, seq, kernel, i, cols,
                             xname, yname, w):
        """Chain tasks on (Y, i): first overwrites, rest accumulate."""
        yh = self.chunk_handle(yname, i)
        first = True
        for j in cols:
            shape = {
                "nnz": int(self._grid[i, j]),
                "rows": self._row_sizes[i],
                "cols": self.csb.col_block_bounds(j)[1]
                - self.csb.col_block_bounds(j)[0],
                "width": w,
                "gather_span": self._gather_span(xname, j, w),
            }
            reads = [self.matrix_handle(i, j), self.chunk_handle(xname, j)]
            if not first:
                reads.append(yh)
            params = {"i": i, "j": j, "A": self.matrix_name, "X": xname,
                      "Y": yname, "zero_first": first}
            self._emit(dag, kernel, reads, (yh,), shape, params, call, seq)
            first = False

    def _spmm_row_reduction(self, dag, call, seq, kernel, i, cols,
                            xname, yname, w):
        """Private partial buffer per task + one reduce task per row."""
        part_handles = []
        bufs = []
        for j in cols:
            self._buf_counter += 1
            bufname = f"__{yname}__spmmbuf{self._buf_counter}"
            bh = DataHandle(bufname, i, self._row_sizes[i] * w * _F8)
            shape = {
                "nnz": int(self._grid[i, j]),
                "rows": self._row_sizes[i],
                "cols": self.csb.col_block_bounds(j)[1]
                - self.csb.col_block_bounds(j)[0],
                "width": w,
                "gather_span": self._gather_span(xname, j, w),
            }
            reads = [self.matrix_handle(i, j), self.chunk_handle(xname, j)]
            params = {"i": i, "j": j, "A": self.matrix_name, "X": xname,
                      "Y": bufname, "zero_first": True, "buffer": True}
            self._emit(dag, kernel, reads, (bh,), shape, params, call, seq)
            part_handles.append(bh)
            bufs.append(bufname)
        yh = self.chunk_handle(yname, i)
        shape = {"n_parts": len(cols), "elems": self._row_sizes[i] * w}
        self._emit(
            dag, "SPMM_REDUCE", part_handles, (yh,), shape,
            {"i": i, "bufs": bufs, "out": yname}, call, seq,
        )

    # -- XY: Q = Y @ Z ---------------------------------------------------
    def _op_xy(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        yname, zname = call.reads
        (qname,) = call.writes
        if qname == yname:
            raise ValueError(
                "XY cannot write its own input block "
                f"({yname!r}); dgemm output must not alias an operand"
            )
        w1 = self.chunked[yname]
        w2 = self.chunked[qname]
        zh = self.small_handle(zname)
        meta = call.meta_dict
        accumulate = bool(meta.get("accumulate", False))
        beta = float(meta.get("beta", 1.0))
        for i in range(self.np_):
            qh = self.chunk_handle(qname, i)
            reads = [self.chunk_handle(yname, i), zh]
            if accumulate:
                reads.append(qh)
            shape = {"rows": self._row_sizes[i], "w1": w1, "w2": w2}
            params = {"i": i, "Y": yname, "Z": zname, "Q": qname,
                      "accumulate": accumulate, "beta": beta}
            self._emit(dag, "XY", reads, (qh,), shape, params, call, seq)

    # -- XTY: P = Xᵀ @ Y ---------------------------------------------------
    def _op_xty(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        xname, yname = call.reads
        (pname,) = call.writes
        w1 = self.chunked[xname]
        w2 = self.chunked[yname]
        self._buf_counter += 1
        part_handles = []
        bufname = f"__{pname}__xtybuf{self._buf_counter}"
        for i in range(self.np_):
            bh = DataHandle(bufname, i, w1 * w2 * _F8)
            reads = [self.chunk_handle(xname, i), self.chunk_handle(yname, i)]
            shape = {"rows": self._row_sizes[i], "w1": w1, "w2": w2}
            params = {"i": i, "X": xname, "Y": yname, "buf": bufname}
            self._emit(dag, "XTY", reads, (bh,), shape, params, call, seq)
            part_handles.append(bh)
        ph = self.small_handle(pname)
        shape = {"n_parts": self.np_, "elems": w1 * w2}
        self._emit(
            dag, "XTY_REDUCE", part_handles, (ph,), shape,
            {"buf": bufname, "out": pname, "n_parts": self.np_}, call, seq,
        )

    # -- BLAS-1 chunk ops -------------------------------------------------
    def _op_axpy(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        meta = call.meta_dict
        xname = call.reads[0]
        (yname,) = call.writes
        w = self.chunked[yname]
        alpha_name = meta.get("alpha_name")
        extra = [self.small_handle(alpha_name)] if alpha_name else []
        for i in range(self.np_):
            yh = self.chunk_handle(yname, i)
            reads = [self.chunk_handle(xname, i), yh] + extra
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 3}
            params = {"i": i, "X": xname, "Y": yname,
                      "alpha": meta.get("alpha", 1.0),
                      "alpha_name": alpha_name,
                      "alpha_op": meta.get("alpha_op", "identity")}
            self._emit(dag, "AXPY", reads, (yh,), shape, params, call, seq)

    def _op_scale(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        meta = call.meta_dict
        (xname,) = call.writes
        w = self.chunked[xname]
        alpha_name = meta.get("alpha_name")
        extra = [self.small_handle(alpha_name)] if alpha_name else []
        for i in range(self.np_):
            xh = self.chunk_handle(xname, i)
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 2,
                     "ops_per_elem": 1}
            params = {"i": i, "X": xname, "alpha": meta.get("alpha", 1.0),
                      "alpha_name": alpha_name,
                      "alpha_op": meta.get("alpha_op", "identity")}
            self._emit(dag, "SCALE", [xh] + extra, (xh,), shape, params,
                       call, seq)

    def _op_copy(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        (xname,) = call.reads
        (yname,) = call.writes
        w = self.chunked[yname]
        meta = call.meta_dict
        for i in range(self.np_):
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 2,
                     "ops_per_elem": 1}
            params = {"i": i, "X": xname, "Y": yname,
                      "col": meta.get("col"),
                      "src_col": meta.get("src_col", 0)}
            self._emit(dag, "COPY", (self.chunk_handle(xname, i),),
                       (self.chunk_handle(yname, i),), shape, params, call,
                       seq)

    def _binary_chunk_op(self, dag, call, seq, kernel):
        xname, yname = call.reads
        (oname,) = call.writes
        w = self.chunked[oname]
        for i in range(self.np_):
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 3}
            params = {"i": i, "X": xname, "Y": yname, "OUT": oname}
            self._emit(
                dag, kernel,
                (self.chunk_handle(xname, i), self.chunk_handle(yname, i)),
                (self.chunk_handle(oname, i),), shape, params, call, seq,
            )

    def _op_diagscale(self, dag, call, seq) -> None:
        """OUT_i = dinv_i ∘ X_i: row-wise diagonal preconditioner."""
        dname, xname = call.reads
        (oname,) = call.writes
        w = self.chunked[oname]
        for i in range(self.np_):
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 3}
            params = {"i": i, "D": dname, "X": xname, "OUT": oname}
            self._emit(
                dag, "DIAGSCALE",
                (self.chunk_handle(dname, i), self.chunk_handle(xname, i)),
                (self.chunk_handle(oname, i),), shape, params, call, seq,
            )

    def _op_add(self, dag, call, seq):
        self._binary_chunk_op(dag, call, seq, "ADD")

    def _op_sub(self, dag, call, seq):
        self._binary_chunk_op(dag, call, seq, "SUB")

    # -- DOT: s = <X, Y> ----------------------------------------------------
    def _op_dot(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        xname, yname = call.reads
        (sname,) = call.writes
        w = self.chunked[xname]
        self._buf_counter += 1
        bufname = f"__{sname}__dotbuf{self._buf_counter}"
        part_handles = []
        for i in range(self.np_):
            bh = DataHandle(bufname, i, _F8)
            shape = {"rows": self._row_sizes[i], "width": w, "streams": 2}
            params = {"i": i, "X": xname, "Y": yname, "buf": bufname}
            self._emit(
                dag, "DOT",
                (self.chunk_handle(xname, i), self.chunk_handle(yname, i)),
                (bh,), shape, params, call, seq,
            )
            part_handles.append(bh)
        sh = self.small_handle(sname)
        meta = call.meta_dict
        shape = {"n_parts": self.np_, "elems": 1}
        params = {"buf": bufname, "out": sname,
                  "post": meta.get("post", "identity")}
        self._emit(dag, "DOT_REDUCE", part_handles, (sh,), shape, params,
                   call, seq)

    # -- small dense ops -----------------------------------------------------
    def _op_small(self, dag: TaskDAG, call: PrimitiveCall, seq: int) -> None:
        meta = call.meta_dict
        kernel = meta.get("kernel", "SMALL_EIGH")
        k = int(meta.get("k", 1))
        reads = [self.small_handle(n) for n in call.reads]
        writes = [self.small_handle(n) for n in call.writes]
        params = {"op": meta.get("op", kernel), "reads": list(call.reads),
                  "writes": list(call.writes)}
        params.update(
            {kk: vv for kk, vv in meta.items()
             if kk not in ("kernel", "k", "op")}
        )
        self._emit(dag, kernel, reads, writes, {"k": k}, params, call, seq)
