"""The task dependency graph container.

Stores tasks and their precedence edges, provides the structural
queries every runtime needs — deterministic topological orders, the
critical path, per-level width — and validation used by tests and by
runtimes that want to assert a schedule is legal before trusting its
timing.

Two representations coexist:

* the **mutable build view** — ``tasks`` plus ``succ``/``pred``
  list-of-lists, which is what :class:`~repro.graph.builder.DAGBuilder`
  appends into and what the event engine's inner loop iterates (Python
  lists of small ints beat NumPy scalar iteration there);
* the **frozen structure-of-arrays view** (:class:`GraphArrays`, built
  once by :meth:`TaskDAG.freeze`) — CSR-style successor/predecessor
  index arrays, dense interned operand-id tables with per-task
  read/write/touch spans, kernel codes, and cached indegrees.  The
  vectorized analyses (levels, critical path), the cost model's access
  -plan compiler, and the scheduler ``prepare`` paths all consume these
  flat arrays instead of re-deriving interning and adjacency per
  engine instance — and the cross-cell prep store persists them
  (:mod:`repro.bench.prep`).

Any mutation (``add_task``/``add_edge``) invalidates the frozen view;
``freeze`` rebuilds it on demand.  Both views answer every query with
bit-identical results — pinned by ``tests/test_property_dag.py``
against the retained reference implementations in
:mod:`repro.graph.analyze`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.graph.task import Task

__all__ = ["GraphArrays", "TaskDAG"]


@dataclass
class GraphArrays:
    """Frozen structure-of-arrays view of one :class:`TaskDAG`.

    All index arrays are NumPy; ``*_indptr`` arrays have length
    ``n_tasks + 1`` and delimit per-task spans in the matching flat
    array (CSR convention).  Operand ids are the DAG's handle
    interning (:meth:`TaskDAG.handle_interning`): dense small ints in
    first-appearance order, resolved back to ``(name, part)`` by
    ``id_to_key``.
    """

    n_tasks: int
    n_edges: int
    # -- adjacency (CSR) ------------------------------------------------
    succ_indptr: np.ndarray
    succ_indices: np.ndarray
    pred_indptr: np.ndarray
    pred_indices: np.ndarray
    indegree: np.ndarray
    # -- interned operand tables ---------------------------------------
    id_to_key: list            # id -> (name, part)
    id_name: list              # id -> name
    id_part: list              # id -> part (None for unpartitioned)
    read_indptr: np.ndarray    # per-task reads, in reads order
    read_ids: np.ndarray
    write_indptr: np.ndarray   # per-task writes, in writes order
    write_ids: np.ndarray
    # -- per-task touch table (Task.touched() order, deduplicated) -----
    touch_indptr: np.ndarray
    touch_ids: np.ndarray
    touch_nbytes: np.ndarray   # first-kept handle's nbytes (dedup rule)
    touch_is_write: np.ndarray
    # -- scalar per-task attributes ------------------------------------
    kernel_names: list         # kernel interning, first-appearance order
    kernel_codes: np.ndarray   # per-task index into kernel_names
    param_i: np.ndarray        # params["i"] or -1
    first_write_id: np.ndarray  # interned id of writes[0], -1 if none
    #: highest partition index + 1 over every handle (NUMA geometry)
    max_part: int


class TaskDAG:
    """A DAG of :class:`~repro.graph.task.Task` nodes.

    Edges mean "must complete before".  Tasks get dense ids in
    insertion order, which for DAGs built by the
    :class:`~repro.graph.builder.DAGBuilder` coincides with the
    depth-first program order DeepSparse spawns tasks in.
    """

    def __init__(self):
        self.tasks: List[Task] = []
        self.succ: List[List[int]] = []
        self.pred: List[List[int]] = []
        self._edge_set = set()
        self._handle_intern = None
        self._soa: Optional[GraphArrays] = None

    # ------------------------------------------------------------------
    def handle_interning(self):
        """Intern every operand handle key to a dense small int.

        Returns ``(key_to_id, id_to_key)`` where ``key_to_id`` maps
        ``(name, part)`` tuples to ids assigned in first-appearance
        order over tasks (tid order) and their ``reads + writes``
        handles, and ``id_to_key`` is the inverse list.  The numbering
        is a pure function of the DAG, so every engine/cost-model/
        memory-model instance that executes this DAG agrees on the ids
        — which is what lets the cost model stash int-keyed pricing
        invariants on the DAG and share them across runs.

        Int keys hash ~2x faster than ``(str, int)`` tuples, and they
        are what the innermost structures (LRU dicts, sharer maps,
        NUMA memos) key on during simulation.  The memo is invalidated
        if tasks were appended after interning.
        """
        memo = self._handle_intern
        if memo is not None and memo[2] == len(self.tasks):
            return memo[0], memo[1]
        key_to_id = {}
        id_to_key = []
        for t in self.tasks:
            for h in t.reads + t.writes:
                k = (h.name, h.part)
                if k not in key_to_id:
                    key_to_id[k] = len(id_to_key)
                    id_to_key.append(k)
        self._handle_intern = (key_to_id, id_to_key, len(self.tasks))
        return key_to_id, id_to_key

    # ------------------------------------------------------------------
    def freeze(self) -> GraphArrays:
        """Build (or return) the structure-of-arrays view of the graph.

        Idempotent and cached; any later :meth:`add_task` /
        :meth:`add_edge` invalidates the cache and the next ``freeze``
        rebuilds.  The arrays are a pure function of the DAG — two
        processes freezing the same graph produce identical tables,
        which is what lets the prep store persist them.
        """
        soa = self._soa
        if soa is not None:
            return soa
        tasks = self.tasks
        n = len(tasks)
        key_to_id, id_to_key = self.handle_interning()

        def _csr(adj, count):
            indptr = np.zeros(n + 1, dtype=np.int64)
            if n:
                np.cumsum([len(a) for a in adj], out=indptr[1:])
            indices = np.fromiter(
                (v for a in adj for v in a), dtype=np.int32, count=count
            )
            return indptr, indices

        n_edges = self.n_edges
        succ_indptr, succ_indices = _csr(self.succ, n_edges)
        pred_indptr, pred_indices = _csr(self.pred, n_edges)
        indegree = np.diff(pred_indptr).astype(np.int32)

        read_counts = np.zeros(n, dtype=np.int64)
        write_counts = np.zeros(n, dtype=np.int64)
        touch_counts = np.zeros(n, dtype=np.int64)
        read_ids: List[int] = []
        write_ids: List[int] = []
        touch_ids: List[int] = []
        touch_nbytes: List[int] = []
        touch_is_write: List[bool] = []
        kernel_code = {}
        kernel_names: List[str] = []
        kernel_codes = np.zeros(n, dtype=np.int32)
        param_i = np.full(n, -1, dtype=np.int64)
        first_write = np.full(n, -1, dtype=np.int32)
        max_part = 0
        for tid, t in enumerate(tasks):
            code = kernel_code.get(t.kernel)
            if code is None:
                code = kernel_code[t.kernel] = len(kernel_names)
                kernel_names.append(t.kernel)
            kernel_codes[tid] = code
            i = t.params.get("i")
            if i is not None:
                param_i[tid] = int(i)
            for h in t.reads:
                read_ids.append(key_to_id[(h.name, h.part)])
            read_counts[tid] = len(t.reads)
            wkeys = set()
            for h in t.writes:
                k = (h.name, h.part)
                write_ids.append(key_to_id[k])
                wkeys.add(k)
            write_counts[tid] = len(t.writes)
            if t.writes:
                first_write[tid] = write_ids[-len(t.writes)]
            # Touch table: reads then writes, first occurrence kept —
            # exactly Task.touched(), including its nbytes-of-the-
            # first-kept-handle dedup rule.
            seen = {}
            for h in t.reads + t.writes:
                k = (h.name, h.part)
                if k not in seen:
                    seen[k] = h
                if h.part is not None and h.part >= max_part:
                    max_part = h.part + 1
            touch_counts[tid] = len(seen)
            for k, h in seen.items():
                touch_ids.append(key_to_id[k])
                touch_nbytes.append(h.nbytes)
                touch_is_write.append(k in wkeys)

        def _spans(counts, values, dtype=np.int32):
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            return indptr, np.asarray(values, dtype=dtype).reshape(-1)

        read_indptr, read_arr = _spans(read_counts, read_ids)
        write_indptr, write_arr = _spans(write_counts, write_ids)
        touch_indptr, touch_arr = _spans(touch_counts, touch_ids)
        soa = GraphArrays(
            n_tasks=n,
            n_edges=n_edges,
            succ_indptr=succ_indptr,
            succ_indices=succ_indices,
            pred_indptr=pred_indptr,
            pred_indices=pred_indices,
            indegree=indegree,
            id_to_key=id_to_key,
            id_name=[k[0] for k in id_to_key],
            id_part=[k[1] for k in id_to_key],
            read_indptr=read_indptr,
            read_ids=read_arr,
            write_indptr=write_indptr,
            write_ids=write_arr,
            touch_indptr=touch_indptr,
            touch_ids=touch_arr,
            touch_nbytes=np.asarray(touch_nbytes, dtype=np.int64)
            .reshape(-1),
            touch_is_write=np.asarray(touch_is_write, dtype=bool)
            .reshape(-1),
            kernel_names=kernel_names,
            kernel_codes=kernel_codes,
            param_i=param_i,
            first_write_id=first_write,
            max_part=max_part,
        )
        self._soa = soa
        return soa

    @property
    def frozen(self) -> bool:
        return self._soa is not None

    def _invalidate(self) -> None:
        self._soa = None

    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> int:
        """Insert a task; assigns and returns its dense id."""
        tid = len(self.tasks)
        task.tid = tid
        self.tasks.append(task)
        self.succ.append([])
        self.pred.append([])
        if self._soa is not None:
            self._soa = None
        return tid

    def add_edge(self, u: int, v: int) -> None:
        """Add precedence ``u before v``; duplicate and self edges are no-ops."""
        if u == v:
            return
        if not (0 <= u < len(self.tasks) and 0 <= v < len(self.tasks)):
            raise IndexError(f"edge ({u}, {v}) references unknown task")
        es = self._edge_pairs()
        n = len(es)
        es.add((u, v))
        if len(es) == n:  # duplicate: one hash probe, not two
            return
        self.succ[u].append(v)
        self.pred[v].append(u)
        if self._soa is not None:
            self._soa = None

    def _edge_pairs(self) -> set:
        """The ``(u, v)`` edge set, rebuilt from adjacency if dropped.

        Pickling discards the set (it is pure dedup/validation state,
        fully derivable from ``succ``) to keep persisted prep artifacts
        small and fast to load.
        """
        es = self._edge_set
        if es is None:
            es = {(u, v) for u, vs in enumerate(self.succ) for v in vs}
            self._edge_set = es
        return es

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_edge_set"] = None
        return state

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        soa = self._soa
        if soa is not None:
            return soa.n_edges
        return len(self._edge_pairs())

    def sources(self) -> List[int]:
        """Tasks with no predecessors (ready at time zero)."""
        soa = self._soa
        if soa is not None:
            return np.flatnonzero(soa.indegree == 0).tolist()
        return [t.tid for t in self.tasks if not self.pred[t.tid]]

    def in_degrees(self) -> List[int]:
        soa = self._soa
        if soa is not None:
            return soa.indegree.tolist()
        return [len(p) for p in self.pred]

    # ------------------------------------------------------------------
    def topo_order(self) -> List[int]:
        """Kahn's algorithm with smallest-id tie-break (deterministic).

        Raises ``ValueError`` if the graph has a cycle — which would
        mean the dependence analysis is broken, so this doubles as the
        validation entry point.
        """
        import heapq

        indeg = self.in_degrees()
        heap = [i for i, d in enumerate(indeg) if d == 0]
        heapq.heapify(heap)
        order = []
        while heap:
            u = heapq.heappop(heap)
            order.append(u)
            for v in self.succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    heapq.heappush(heap, v)
        if len(order) != len(self.tasks):
            raise ValueError(
                f"task graph has a cycle: only {len(order)} of "
                f"{len(self.tasks)} tasks are orderable"
            )
        return order

    def validate(self) -> None:
        """Raise if the graph is not a DAG."""
        self.topo_order()

    def check_schedule(self, order: Iterable[int]) -> None:
        """Raise ``ValueError`` if ``order`` violates any dependence.

        ``order`` must be a permutation of all task ids.
        """
        pos = {}
        for rank, tid in enumerate(order):
            if tid in pos:
                raise ValueError(f"task {tid} executed twice")
            pos[tid] = rank
        if len(pos) != len(self.tasks):
            raise ValueError(
                f"schedule covers {len(pos)} of {len(self.tasks)} tasks"
            )
        for (u, v) in self._edge_pairs():
            if pos[u] > pos[v]:
                raise ValueError(
                    f"dependence violated: task {u} must precede task {v}"
                )

    # ------------------------------------------------------------------
    def _peel_rounds(self) -> List[np.ndarray]:
        """Kahn peeling rounds over the frozen CSR arrays.

        Round *r* holds exactly the tasks whose every predecessor sits
        in an earlier round, i.e. the tasks at ASAP level *r* — so the
        rounds drive both :meth:`levels` and :meth:`critical_path`:
        when a round is processed, every value feeding its nodes is
        final.  Raises on cycles (some task never reaches indegree 0).
        """
        soa = self.freeze()
        indeg = soa.indegree.copy()
        indptr, indices = soa.succ_indptr, soa.succ_indices
        frontier = np.flatnonzero(indeg == 0)
        rounds = []
        seen = 0
        while frontier.size:
            rounds.append(frontier)
            seen += frontier.size
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                break
            # Flat CSR gather of every outgoing edge of the frontier.
            cum = np.cumsum(counts)
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cum - counts), counts
            )
            targets = indices[idx]
            np.subtract.at(indeg, targets, 1)
            frontier = np.unique(targets[indeg[targets] == 0])
        if seen != soa.n_tasks:
            raise ValueError(
                f"task graph has a cycle: only {seen} of "
                f"{soa.n_tasks} tasks are orderable"
            )
        return rounds

    def critical_path(
        self, weight: Optional[Callable[[Task], float]] = None
    ) -> float:
        """Longest path through the DAG.

        With the default unit weight this is the paper's critical-path
        *length* (5 for Lanczos, 29 for LOBPCG per iteration at the
        function-call level); with ``weight=lambda t: t.flops`` it is
        the work-weighted span.

        Vectorized over the frozen arrays: per peel round, each node's
        incoming maximum is final, so one ``np.maximum.at`` scatter per
        round propagates the whole level.  ``max`` is an exact float
        selection and each node's single addition is the same
        ``dist[u] + weight(u)`` the reference performs, so the result
        is bit-identical to :func:`repro.graph.analyze.
        critical_path_reference`.
        """
        n = len(self.tasks)
        if n == 0:
            return 0.0
        soa = self.freeze()
        if weight is None:
            w = np.ones(n, dtype=np.float64)
        else:
            w = np.fromiter(
                (weight(t) for t in self.tasks), dtype=np.float64, count=n
            )
        dist = np.zeros(n, dtype=np.float64)
        indptr, indices = soa.succ_indptr, soa.succ_indices
        for frontier in self._peel_rounds():
            du = dist[frontier] + w[frontier]
            dist[frontier] = du
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                continue
            cum = np.cumsum(counts)
            idx = np.arange(total, dtype=np.int64) + np.repeat(
                starts - (cum - counts), counts
            )
            np.maximum.at(dist, indices[idx], np.repeat(du, counts))
        return float(dist.max())

    def levels(self) -> List[int]:
        """ASAP level of each task (longest unit-edge distance from a source).

        A task's level is its peel round (all predecessors peeled in
        earlier rounds), computed by the same frontier propagation as
        :meth:`critical_path`; bit-identical to
        :func:`repro.graph.analyze.levels_reference`.
        """
        n = len(self.tasks)
        lvl = np.zeros(n, dtype=np.int64)
        for r, frontier in enumerate(self._peel_rounds()):
            lvl[frontier] = r
        return lvl.tolist()

    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    def by_kernel(self) -> dict:
        """Task counts per kernel name (census used in logs and tests)."""
        out = {}
        for t in self.tasks:
            out[t.kernel] = out.get(t.kernel, 0) + 1
        return out

    def __repr__(self):
        return (
            f"TaskDAG({len(self.tasks)} tasks, {self.n_edges} edges, "
            f"kernels={self.by_kernel()})"
        )
