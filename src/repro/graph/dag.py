"""The task dependency graph container.

Stores tasks and their precedence edges, provides the structural
queries every runtime needs — deterministic topological orders, the
critical path, per-level width — and validation used by tests and by
runtimes that want to assert a schedule is legal before trusting its
timing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, List, Optional

from repro.graph.task import Task

__all__ = ["TaskDAG"]


class TaskDAG:
    """A DAG of :class:`~repro.graph.task.Task` nodes.

    Edges mean "must complete before".  Tasks get dense ids in
    insertion order, which for DAGs built by the
    :class:`~repro.graph.builder.DAGBuilder` coincides with the
    depth-first program order DeepSparse spawns tasks in.
    """

    def __init__(self):
        self.tasks: List[Task] = []
        self.succ: List[List[int]] = []
        self.pred: List[List[int]] = []
        self._edge_set = set()
        self._handle_intern = None

    # ------------------------------------------------------------------
    def handle_interning(self):
        """Intern every operand handle key to a dense small int.

        Returns ``(key_to_id, id_to_key)`` where ``key_to_id`` maps
        ``(name, part)`` tuples to ids assigned in first-appearance
        order over tasks (tid order) and their ``reads + writes``
        handles, and ``id_to_key`` is the inverse list.  The numbering
        is a pure function of the DAG, so every engine/cost-model/
        memory-model instance that executes this DAG agrees on the ids
        — which is what lets the cost model stash int-keyed pricing
        invariants on the DAG and share them across runs.

        Int keys hash ~2x faster than ``(str, int)`` tuples, and they
        are what the innermost structures (LRU dicts, sharer maps,
        NUMA memos) key on during simulation.  The memo is invalidated
        if tasks were appended after interning.
        """
        memo = self._handle_intern
        if memo is not None and memo[2] == len(self.tasks):
            return memo[0], memo[1]
        key_to_id = {}
        id_to_key = []
        for t in self.tasks:
            for h in t.reads + t.writes:
                k = (h.name, h.part)
                if k not in key_to_id:
                    key_to_id[k] = len(id_to_key)
                    id_to_key.append(k)
        self._handle_intern = (key_to_id, id_to_key, len(self.tasks))
        return key_to_id, id_to_key

    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> int:
        """Insert a task; assigns and returns its dense id."""
        tid = len(self.tasks)
        task.tid = tid
        self.tasks.append(task)
        self.succ.append([])
        self.pred.append([])
        return tid

    def add_edge(self, u: int, v: int) -> None:
        """Add precedence ``u before v``; duplicate and self edges are no-ops."""
        if u == v:
            return
        if not (0 <= u < len(self.tasks) and 0 <= v < len(self.tasks)):
            raise IndexError(f"edge ({u}, {v}) references unknown task")
        es = self._edge_set
        n = len(es)
        es.add((u, v))
        if len(es) == n:  # duplicate: one hash probe, not two
            return
        self.succ[u].append(v)
        self.pred[v].append(u)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        return len(self._edge_set)

    def sources(self) -> List[int]:
        """Tasks with no predecessors (ready at time zero)."""
        return [t.tid for t in self.tasks if not self.pred[t.tid]]

    def in_degrees(self) -> List[int]:
        return [len(p) for p in self.pred]

    # ------------------------------------------------------------------
    def topo_order(self) -> List[int]:
        """Kahn's algorithm with smallest-id tie-break (deterministic).

        Raises ``ValueError`` if the graph has a cycle — which would
        mean the dependence analysis is broken, so this doubles as the
        validation entry point.
        """
        import heapq

        indeg = self.in_degrees()
        heap = [i for i, d in enumerate(indeg) if d == 0]
        heapq.heapify(heap)
        order = []
        while heap:
            u = heapq.heappop(heap)
            order.append(u)
            for v in self.succ[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    heapq.heappush(heap, v)
        if len(order) != len(self.tasks):
            raise ValueError(
                f"task graph has a cycle: only {len(order)} of "
                f"{len(self.tasks)} tasks are orderable"
            )
        return order

    def validate(self) -> None:
        """Raise if the graph is not a DAG."""
        self.topo_order()

    def check_schedule(self, order: Iterable[int]) -> None:
        """Raise ``ValueError`` if ``order`` violates any dependence.

        ``order`` must be a permutation of all task ids.
        """
        pos = {}
        for rank, tid in enumerate(order):
            if tid in pos:
                raise ValueError(f"task {tid} executed twice")
            pos[tid] = rank
        if len(pos) != len(self.tasks):
            raise ValueError(
                f"schedule covers {len(pos)} of {len(self.tasks)} tasks"
            )
        for (u, v) in self._edge_set:
            if pos[u] > pos[v]:
                raise ValueError(
                    f"dependence violated: task {u} must precede task {v}"
                )

    # ------------------------------------------------------------------
    def critical_path(
        self, weight: Optional[Callable[[Task], float]] = None
    ) -> float:
        """Longest path through the DAG.

        With the default unit weight this is the paper's critical-path
        *length* (5 for Lanczos, 29 for LOBPCG per iteration at the
        function-call level); with ``weight=lambda t: t.flops`` it is
        the work-weighted span.
        """
        if weight is None:
            weight = lambda _t: 1.0  # noqa: E731
        dist = [0.0] * len(self.tasks)
        for u in self.topo_order():
            du = dist[u] + weight(self.tasks[u])
            dist[u] = du
            for v in self.succ[u]:
                if du > dist[v]:
                    dist[v] = du
        return max(dist, default=0.0)

    def levels(self) -> List[int]:
        """ASAP level of each task (longest unit-edge distance from a source)."""
        lvl = [0] * len(self.tasks)
        for u in self.topo_order():
            for v in self.succ[u]:
                if lvl[u] + 1 > lvl[v]:
                    lvl[v] = lvl[u] + 1
        return lvl

    # ------------------------------------------------------------------
    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks)

    def by_kernel(self) -> dict:
        """Task counts per kernel name (census used in logs and tests)."""
        out = {}
        for t in self.tasks:
            out[t.kernel] = out.get(t.kernel, 0) + 1
        return out

    def __repr__(self):
        return (
            f"TaskDAG({len(self.tasks)} tasks, {self.n_edges} edges, "
            f"kernels={self.by_kernel()})"
        )
