"""Task-dependency-graph infrastructure (the DeepSparse PCU analogue).

The paper's DeepSparse front end has two stages: the *Task Identifier*
parses solver code written as GraphBLAS/BLAS-style function calls into
a function-call-level dependency graph, and the *Task Dependency Graph
Generator* (TDGG) decomposes each call into fine-grained tasks using
the CSB block census and wires read-after-write / write-after-read /
write-after-write dependencies between them.

Here the same split is:

* :class:`~repro.graph.trace.TraceRecorder` — records the solver's
  primitive calls (the Task Identifier),
* :class:`~repro.graph.builder.DAGBuilder` — expands the trace into a
  :class:`~repro.graph.dag.TaskDAG` of per-chunk tasks (the TDGG),
  honouring the paper's choices: skipping empty blocks, and
  dependency-based vs. reduction-based SpMV/SpMM output.
"""

from repro.graph.task import DataHandle, Task
from repro.graph.dag import TaskDAG
from repro.graph.trace import PrimitiveCall, TraceRecorder
from repro.graph.builder import DAGBuilder, BuildOptions
from repro.graph.analyze import (
    critical_path_length,
    parallelism_profile,
    max_width,
)

__all__ = [
    "DataHandle",
    "Task",
    "TaskDAG",
    "PrimitiveCall",
    "TraceRecorder",
    "DAGBuilder",
    "BuildOptions",
    "critical_path_length",
    "parallelism_profile",
    "max_width",
]
