"""Structural DAG analyses: span, width, degree-of-parallelism profile.

These feed the block-size discussion of §5.4: the degree of parallelism
exposed at a block size is the DAG's level-width profile, and the
trade-off against per-task overhead is what the tuning heuristic
navigates.
"""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.graph.dag import TaskDAG

__all__ = [
    "critical_path_length",
    "parallelism_profile",
    "max_width",
    "average_parallelism",
]


def critical_path_length(dag: TaskDAG) -> int:
    """Unit-weight span — number of tasks on the longest chain."""
    return int(dag.critical_path())


def parallelism_profile(dag: TaskDAG) -> List[int]:
    """Width of each ASAP level: how many tasks *could* run together."""
    levels = dag.levels()
    if not levels:
        return []
    counts = Counter(levels)
    return [counts[i] for i in range(max(levels) + 1)]


def max_width(dag: TaskDAG) -> int:
    """Peak degree of parallelism over all levels."""
    prof = parallelism_profile(dag)
    return max(prof) if prof else 0


def average_parallelism(dag: TaskDAG) -> float:
    """Work/span ratio under unit task weights."""
    span = critical_path_length(dag)
    return len(dag) / span if span else 0.0
