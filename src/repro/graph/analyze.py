"""Structural DAG analyses: span, width, degree-of-parallelism profile.

These feed the block-size discussion of §5.4: the degree of parallelism
exposed at a block size is the DAG's level-width profile, and the
trade-off against per-task overhead is what the tuning heuristic
navigates.

The hot entry points (``dag.levels()``, ``dag.critical_path()``) are
vectorized over the frozen structure-of-arrays view
(:meth:`repro.graph.dag.TaskDAG.freeze`).  The original per-node
Python implementations are retained here as ``levels_reference`` /
``critical_path_reference``: they are the executable specification the
Hypothesis property suite (``tests/test_property_dag.py``) pins the
vectorized versions against on random DAGs.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.graph.dag import TaskDAG
from repro.graph.task import Task

__all__ = [
    "critical_path_length",
    "parallelism_profile",
    "max_width",
    "average_parallelism",
    "levels_reference",
    "critical_path_reference",
]


def critical_path_length(dag: TaskDAG) -> int:
    """Unit-weight span — number of tasks on the longest chain."""
    return int(dag.critical_path())


def parallelism_profile(dag: TaskDAG) -> List[int]:
    """Width of each ASAP level: how many tasks *could* run together."""
    levels = dag.levels()
    if not levels:
        return []
    return np.bincount(np.asarray(levels, dtype=np.int64)).tolist()


def max_width(dag: TaskDAG) -> int:
    """Peak degree of parallelism over all levels."""
    prof = parallelism_profile(dag)
    return max(prof) if prof else 0


def average_parallelism(dag: TaskDAG) -> float:
    """Work/span ratio under unit task weights."""
    span = critical_path_length(dag)
    return len(dag) / span if span else 0.0


# ----------------------------------------------------------------------
# Reference implementations (specification for the vectorized versions)
# ----------------------------------------------------------------------

def levels_reference(dag: TaskDAG) -> List[int]:
    """ASAP levels by per-node propagation over a topological order.

    This is the pre-SoA implementation, kept as the oracle the
    property suite compares :meth:`TaskDAG.levels` against.
    """
    lvl = [0] * len(dag.tasks)
    for u in dag.topo_order():
        for v in dag.succ[u]:
            if lvl[u] + 1 > lvl[v]:
                lvl[v] = lvl[u] + 1
    return lvl


def critical_path_reference(
    dag: TaskDAG, weight: Optional[Callable[[Task], float]] = None
) -> float:
    """Longest weighted path by per-node propagation (oracle version)."""
    if not dag.tasks:
        return 0.0
    if weight is None:
        w = [1.0] * len(dag.tasks)
    else:
        w = [weight(t) for t in dag.tasks]
    dist = [0.0] * len(dag.tasks)
    best = 0.0
    for u in dag.topo_order():
        du = dist[u] + w[u]
        if du > best:
            best = du
        for v in dag.succ[u]:
            if du > dist[v]:
                dist[v] = du
    return best
