"""Convergence tracking for the iterative solvers.

The paper excludes setup from all timings and reports per-iteration
averages; the history object additionally lets tests assert monotone
residual decrease and Ritz-value stabilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["ConvergenceHistory"]


@dataclass
class ConvergenceHistory:
    """Per-iteration residual norms and Ritz values."""

    residuals: List[float] = field(default_factory=list)
    values: List[np.ndarray] = field(default_factory=list)

    def record(self, residual: float, values: Optional[np.ndarray] = None):
        self.residuals.append(float(residual))
        if values is not None:
            self.values.append(np.asarray(values, dtype=float))

    def __len__(self):
        return len(self.residuals)

    # ------------------------------------------------------------------
    @property
    def final_residual(self) -> float:
        if not self.residuals:
            raise ValueError("empty history")
        return self.residuals[-1]

    def reduction(self) -> float:
        """Total residual reduction factor achieved."""
        if len(self.residuals) < 2 or self.residuals[0] == 0:
            return 1.0
        return self.residuals[-1] / self.residuals[0]

    def mostly_monotone(self, slack: float = 1.5) -> bool:
        """True if residuals decrease up to occasional `slack` blips.

        LOBPCG residuals are not strictly monotone; this checks the
        trend without demanding per-step decrease.
        """
        r = self.residuals
        violations = sum(
            1 for a, b in zip(r, r[1:]) if b > a * slack
        )
        return violations <= max(1, len(r) // 5)

    def value_drift(self, last: int = 3) -> float:
        """Max |Δ| of the Ritz values over the last ``last`` records."""
        if len(self.values) < 2:
            return float("inf")
        tail = self.values[-last:]
        return float(
            max(
                np.max(np.abs(a - b))
                for a, b in zip(tail, tail[1:])
            )
        ) if len(tail) >= 2 else float("inf")
