"""The primitive engine API — the DeepSparse PCU front end analogue.

Solvers call these ten primitives (SpMM, XY, XTY, AXPY, SCALE, COPY,
ADD, SUB, DOT, SMALL) against a :class:`~repro.solvers.workspace.Workspace`.
Two interpreters exist:

* :class:`EagerEngine` executes each call immediately with NumPy on
  the whole operands — the numerical ground truth.
* :class:`TracingEngine` records each call into a
  :class:`~repro.graph.trace.TraceRecorder`; the TDGG then expands the
  trace into the fine-grained task DAG.

Because the same solver function drives both, the DAG is by
construction a decomposition of the exact computation the eager path
performs — which the equivalence tests verify numerically.
"""

from __future__ import annotations

import numpy as np

from repro.graph.trace import TraceRecorder
from repro.solvers.smallops import run_small_op
from repro.solvers.workspace import Workspace

__all__ = ["EagerEngine", "TracingEngine", "apply_alpha_op"]


def apply_alpha_op(value: float, op: str) -> float:
    """Transform a named scalar coefficient (``1/β`` etc.)."""
    if op == "identity":
        return value
    if op == "neg":
        return -value
    if op == "inv":
        return 1.0 / value if value != 0.0 else 0.0
    if op == "neg_inv":
        return -1.0 / value if value != 0.0 else 0.0
    raise ValueError(f"unknown alpha_op {op!r}")


class _EngineBase:
    """Shared workspace binding and call signatures."""

    def __init__(self, ws: Workspace):
        self.ws = ws

    def _resolve_alpha(self, alpha, alpha_name, alpha_op) -> float:
        if alpha_name is None:
            return float(alpha)
        return apply_alpha_op(self.ws.scalar(alpha_name), alpha_op)


class EagerEngine(_EngineBase):
    """Immediate NumPy execution on whole operands."""

    def spmm(self, X: str, Y: str) -> None:
        """Y = A @ X."""
        self.ws.matrix.spmm(self.ws.full(X), out=self.ws.full(Y))

    def xy(self, Y: str, Z: str, Q: str, accumulate: bool = False,
           beta: float = 1.0) -> None:
        """Q = Y @ Z (or Q += beta·(Y @ Z))."""
        if accumulate:
            self.ws.full(Q)[:] += beta * (self.ws.full(Y) @ self.ws.full(Z))
        else:
            np.matmul(self.ws.full(Y), self.ws.full(Z), out=self.ws.full(Q))

    def xty(self, X: str, Y: str, P: str) -> None:
        """P = Xᵀ @ Y."""
        np.matmul(self.ws.full(X).T, self.ws.full(Y), out=self.ws.full(P))

    def axpy(self, X: str, Y: str, alpha: float = 1.0,
             alpha_name: str = None, alpha_op: str = "identity") -> None:
        """Y += α · X."""
        self.ws.full(Y)[:] += (
            self._resolve_alpha(alpha, alpha_name, alpha_op) * self.ws.full(X)
        )

    def scale(self, X: str, alpha: float = 1.0, alpha_name: str = None,
              alpha_op: str = "identity") -> None:
        """X *= α."""
        a = self._resolve_alpha(alpha, alpha_name, alpha_op)
        arr = self.ws.full(X)
        if a == 0.0:
            arr[:] = 0.0
        else:
            arr *= a

    def copy(self, X: str, Y: str, col: int = None, src_col: int = 0) -> None:
        """Y = X, or column transfer Y[:, col] = X[:, src_col]."""
        if col is None:
            self.ws.full(Y)[:] = self.ws.full(X)
        else:
            self.ws.full(Y)[:, int(col)] = self.ws.full(X)[:, int(src_col)]

    def add(self, X: str, Y: str, OUT: str) -> None:
        np.add(self.ws.full(X), self.ws.full(Y), out=self.ws.full(OUT))

    def sub(self, X: str, Y: str, OUT: str) -> None:
        np.subtract(self.ws.full(X), self.ws.full(Y), out=self.ws.full(OUT))

    def diagscale(self, D: str, X: str, OUT: str) -> None:
        """OUT = D ∘ X: apply a (inverse-)diagonal preconditioner."""
        np.multiply(self.ws.full(D), self.ws.full(X), out=self.ws.full(OUT))

    def dot(self, X: str, Y: str, out: str, post: str = "identity") -> None:
        """out = ⟨X, Y⟩ (flattened), optionally √ of it."""
        s = float(
            np.dot(self.ws.full(X).ravel(), self.ws.full(Y).ravel())
        )
        if post == "sqrt":
            s = float(np.sqrt(max(s, 0.0)))
        self.ws.set_scalar(out, s)

    def small(self, op: str, reads, writes, k: int, **meta) -> None:
        """Run a registered small dense op."""
        params = {"op": op, "reads": list(reads), "writes": list(writes)}
        params.update(meta)
        run_small_op(self.ws, params)

    def next_iteration(self) -> None:
        """No-op eagerly; kept so solver code is interpreter-agnostic."""


class TracingEngine(_EngineBase):
    """Records primitive calls for DAG construction (no numerics)."""

    def __init__(self, ws: Workspace):
        super().__init__(ws)
        self.trace = TraceRecorder()

    @property
    def calls(self):
        return self.trace.calls

    def spmm(self, X, Y):
        self.trace.record("SPMM", (self.ws.matrix_name, X), (Y,))

    def xy(self, Y, Z, Q, accumulate=False, beta=1.0):
        self.trace.record("XY", (Y, Z), (Q,), accumulate=accumulate,
                          beta=beta)

    def xty(self, X, Y, P):
        self.trace.record("XTY", (X, Y), (P,))

    def axpy(self, X, Y, alpha=1.0, alpha_name=None, alpha_op="identity"):
        self.trace.record("AXPY", (X,), (Y,), alpha=alpha,
                          alpha_name=alpha_name, alpha_op=alpha_op)

    def scale(self, X, alpha=1.0, alpha_name=None, alpha_op="identity"):
        self.trace.record("SCALE", (), (X,), alpha=alpha,
                          alpha_name=alpha_name, alpha_op=alpha_op)

    def copy(self, X, Y, col=None, src_col=0):
        self.trace.record("COPY", (X,), (Y,), col=col, src_col=src_col)

    def add(self, X, Y, OUT):
        self.trace.record("ADD", (X, Y), (OUT,))

    def sub(self, X, Y, OUT):
        self.trace.record("SUB", (X, Y), (OUT,))

    def diagscale(self, D, X, OUT):
        self.trace.record("DIAGSCALE", (D, X), (OUT,))

    def dot(self, X, Y, out, post="identity"):
        self.trace.record("DOT", (X, Y), (out,), post=post)

    def small(self, op, reads, writes, k, **meta):
        self.trace.record("SMALL", tuple(reads), tuple(writes),
                          kernel=meta.pop("kernel", "SMALL_EIGH"),
                          op=op, k=k, **meta)

    def next_iteration(self):
        self.trace.next_iteration()
