"""Lanczos eigensolver (Alg. 1): SpMV-based, short critical path.

The per-iteration body is written once against the primitive engine:

    z = A·q                       (SPMV)
    α = ⟨q, z⟩                    (DOT)
    c = Q_basisᵀ z                (XTY — full reorthogonalization)
    z = z − Q_basis·c             (XY + SUB)
    β = ‖z‖                       (DOT with √)
    q = z/β, append to basis      (SCALE + COPY×2)
    log (α, β)                    (small)

This is the paper's characterization exactly: "one SpMV and one inner
product kernel at each iteration", few task types, limited data-reuse
opportunities.  The basis block is fixed at width ``k`` (unused columns
zero) so that every iteration traces the identical primitive sequence —
the property DeepSparse exploits by reusing one iteration's DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.graph.trace import PrimitiveCall
from repro.solvers.primitives import EagerEngine, TracingEngine
from repro.solvers.workspace import Workspace

__all__ = [
    "lanczos_operands",
    "lanczos_iteration",
    "lanczos",
    "lanczos_trace",
    "LanczosResult",
]


def lanczos_operands(k: int) -> tuple:
    """(chunked, small) operand declarations for basis size ``k``."""
    chunked = {"q": 1, "z": 1, "Qb": k, "tmp": 1}
    small = {"alpha": (1, 1), "beta": (1, 1), "c": (k, 1), "T": (k, 2)}
    return chunked, small


def lanczos_iteration(eng, it: int) -> None:
    """One Lanczos step against either engine (eager or tracing)."""
    eng.spmm("q", "z")                       # z = A q
    eng.dot("q", "z", "alpha")               # α = ⟨q, z⟩
    # Full reorthogonalization, two passes ("twice is enough"): one
    # Gram–Schmidt sweep leaves O(ε·‖z‖/β) residue in span(Q), which
    # compounds over iterations and destroys the tridiagonal structure.
    for _pass in range(2):
        eng.xty("Qb", "z", "c")              # c = Qᵀ z
        eng.xy("Qb", "c", "tmp")             # tmp = Q c
        eng.sub("z", "tmp", "z")             # z ← z − tmp
    eng.dot("z", "z", "beta", post="sqrt")   # β = ‖z‖
    eng.scale("z", alpha_name="beta", alpha_op="inv")
    eng.copy("z", "q")                       # q ← z/β
    eng.copy("z", "Qb", col=it)              # basis append
    eng.small("TRIDIAG_UPDATE", reads=("alpha", "beta"), writes=("T",),
              k=2, it=it, T="T", alpha="alpha", beta="beta")


@dataclass
class LanczosResult:
    """Outcome of an eager Lanczos run."""

    eigenvalues: np.ndarray      # Ritz values of the final tridiagonal
    alphas: np.ndarray
    betas: np.ndarray
    basis: np.ndarray            # m × k orthonormal Krylov block
    iterations: int

    def extreme(self, which: str = "largest") -> float:
        """Best-converged extreme Ritz value."""
        if which == "largest":
            return float(self.eigenvalues[-1])
        if which == "smallest":
            return float(self.eigenvalues[0])
        raise ValueError("which must be 'largest' or 'smallest'")


def tridiagonal_eigenvalues(alphas, betas) -> np.ndarray:
    """Eigenvalues of the Lanczos tridiagonal (ascending)."""
    k = len(alphas)
    T = np.diag(np.asarray(alphas, dtype=float))
    for i in range(k - 1):
        T[i, i + 1] = T[i + 1, i] = betas[i]
    return np.linalg.eigvalsh(T)


def lanczos(matrix, k: int = 20, seed: int = 0) -> LanczosResult:
    """Eager Lanczos: ``k`` steps of Alg. 1 with full reorthogonalization.

    Parameters
    ----------
    matrix:
        A :class:`~repro.matrices.csb.CSBMatrix` (symmetric).
    k:
        Krylov basis size (= number of iterations).
    seed:
        Deterministic start-vector seed.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    ws = Workspace(matrix, *lanczos_operands(k))
    eng = EagerEngine(ws)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((ws.m, 1))
    b /= np.linalg.norm(b)
    ws.full("q")[:] = b
    ws.full("Qb")[:, 0:1] = b
    alphas: List[float] = []
    betas: List[float] = []
    for it in range(1, k):
        lanczos_iteration(eng, it)
        alphas.append(ws.scalar("alpha"))
        betas.append(ws.scalar("beta"))
        if betas[-1] < 1e-14:  # invariant subspace found
            break
    # β of the last step is the residual coupling, not part of T.
    evs = tridiagonal_eigenvalues(alphas, betas[:-1])
    return LanczosResult(
        eigenvalues=evs,
        alphas=np.asarray(alphas),
        betas=np.asarray(betas),
        basis=ws.full("Qb").copy(),
        iterations=len(alphas),
    )


def lanczos_trace(matrix, k: int = 20, matrix_name: str = "A"):
    """One iteration's primitive trace plus the operand spec.

    Returns ``(calls, chunked, small)`` — the inputs of the TDGG.  The
    trace is iteration-invariant (fixed basis width), matching §3.1's
    "the same task dependency graph is used for several iterations".
    """
    chunked, small = lanczos_operands(k)
    ws = Workspace(matrix, chunked, small, allocate=False,
                   matrix_name=matrix_name)
    eng = TracingEngine(ws)
    lanczos_iteration(eng, it=k // 2)
    calls: List[PrimitiveCall] = eng.calls
    return calls, chunked, small
