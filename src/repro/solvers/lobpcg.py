"""LOBPCG eigensolver (Alg. 2): SpMM-based, long critical path.

Locally Optimal Block Preconditioned Conjugate Gradient (Knyazev 2001)
for the ``n`` algebraically smallest eigenpairs of a symmetric matrix.
The iteration body is written once against the primitive engine; the
subspace is span{Ψ, R, Q} with Q the conjugate direction block, and the
Rayleigh–Ritz step consumes the 12 Gram blocks produced by XTY calls —
the kernel mix ("SpMM and several level-3 BLAS calls") and data-reuse
structure the paper's LOBPCG evaluation hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.kernels.ortho import orthonormalize
from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.primitives import EagerEngine, TracingEngine
from repro.solvers.workspace import Workspace

__all__ = [
    "lobpcg_operands",
    "lobpcg_iteration",
    "lobpcg",
    "lobpcg_trace",
    "LOBPCGResult",
]

def _gram_pairs(resid: str):
    """The 12 Gram blocks of span{Ψ, W, Q}; ``resid`` is R or the
    preconditioned W."""
    return [
        ("gA_PP", "Psi", "HPsi"), ("gA_PR", "Psi", "HR"),
        ("gA_PQ", "Psi", "HQ"),
        ("gA_RR", resid, "HR"), ("gA_RQ", resid, "HQ"),
        ("gA_QQ", "Qd", "HQ"),
        ("gB_PP", "Psi", "Psi"), ("gB_PR", "Psi", resid),
        ("gB_PQ", "Psi", "Qd"),
        ("gB_RR", resid, resid), ("gB_RQ", resid, "Qd"),
        ("gB_QQ", "Qd", "Qd"),
    ]


_GRAM_PAIRS = _gram_pairs("R")


def lobpcg_operands(n: int) -> tuple:
    """(chunked, small) operand declarations for block width ``n``."""
    chunked = {
        "Psi": n, "HPsi": n, "R": n, "HR": n, "Qd": n, "HQ": n,
        "T1": n, "T2": n, "T3": n, "PsiNew": n,
        "W": n, "dinv": 1,
    }
    small = {"M": (n, n), "evals": (n, 1), "rnorm": (1, 1), "conv": (1, 1)}
    for gname, _x, _y in _GRAM_PAIRS:
        small[gname] = (n, n)
    for cname in ("cp_p", "cp_r", "cp_q"):
        small[cname] = (n, n)
    return chunked, small


def lobpcg_iteration(eng, n: int, tol: float = 1e-8,
                     precondition: bool = False) -> None:
    """One LOBPCG step against either engine (eager or tracing).

    With ``precondition=True`` the search direction is the Jacobi-
    preconditioned residual ``W = D⁻¹R`` (the "P" of LOBPCG; the
    unpreconditioned variant uses R directly, as the paper's
    implementations do).
    """
    # Residual: R = HΨ − Ψ·(Ψᵀ H Ψ)
    eng.spmm("Psi", "HPsi")
    eng.xty("Psi", "HPsi", "M")
    eng.xy("Psi", "M", "T1")
    eng.sub("HPsi", "T1", "R")
    eng.dot("R", "R", "rnorm", post="sqrt")
    eng.small("CONV_CHECK", reads=("rnorm",), writes=("conv",), k=1,
              rnorm="rnorm", flag="conv", tol=tol)
    if precondition:
        eng.diagscale("dinv", "R", "W")
        resid = "W"
    else:
        resid = "R"
    # Operator applications for the new directions.
    eng.spmm(resid, "HR")
    eng.spmm("Qd", "HQ")
    # Gram blocks of span{Ψ, W, Q} — 12 XTY kernels.
    for gname, x, y in _gram_pairs(resid):
        eng.xty(x, y, gname)
    # Rayleigh–Ritz on the 3n×3n pencil.
    eng.small(
        "LOBPCG_RR",
        reads=tuple(g for g, _x, _y in _GRAM_PAIRS),
        writes=("cp_p", "cp_r", "cp_q", "evals"),
        k=3 * n, kernel="RAYLEIGH_RITZ", n=n,
        **{g: g for g, _x, _y in _GRAM_PAIRS},
        cp_p="cp_p", cp_r="cp_r", cp_q="cp_q", evals="evals",
    )
    # Ψ_{i+1} = Ψ·C_P + W·C_R + Q·C_Q ;  Q_{i+1} = Ψ_{i+1} − Ψ_i
    eng.xy("Psi", "cp_p", "T1")
    eng.xy(resid, "cp_r", "T2")
    eng.xy("Qd", "cp_q", "T3")
    eng.add("T1", "T2", "PsiNew")
    eng.add("PsiNew", "T3", "PsiNew")
    eng.sub("PsiNew", "Psi", "Qd")
    eng.copy("PsiNew", "Psi")


@dataclass
class LOBPCGResult:
    """Outcome of an eager LOBPCG run."""

    eigenvalues: np.ndarray      # n smallest Ritz values, ascending
    eigenvectors: np.ndarray     # m × n block
    history: ConvergenceHistory
    iterations: int
    converged: bool


def lobpcg(
    matrix,
    n: int = 4,
    maxiter: int = 60,
    tol: float = 1e-6,
    seed: int = 0,
    precondition: bool = False,
) -> LOBPCGResult:
    """Eager LOBPCG for the ``n`` smallest eigenpairs.

    ``tol`` is on the Frobenius norm of the block residual
    ``HΨ − Ψ(ΨᵀHΨ)`` relative to the initial residual.
    ``precondition=True`` enables the Jacobi (inverse-diagonal)
    preconditioner.
    """
    if n < 1:
        raise ValueError("block width n must be positive")
    ws = Workspace(matrix, *lobpcg_operands(n))
    eng = EagerEngine(ws)
    rng = np.random.default_rng(seed)
    ws.full("Psi")[:] = orthonormalize(rng.standard_normal((ws.m, n)))
    if precondition:
        d = matrix.diagonal()
        safe = np.where(np.abs(d) > 1e-300, d, 1.0)
        ws.full("dinv")[:, 0] = 1.0 / safe
    history = ConvergenceHistory()
    first_rnorm = None
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        lobpcg_iteration(eng, n, tol=tol, precondition=precondition)
        rnorm = ws.scalar("rnorm")
        history.record(rnorm, ws.full("evals")[:, 0].copy())
        if first_rnorm is None:
            first_rnorm = max(rnorm, 1e-300)
        if rnorm / first_rnorm < tol or rnorm < tol:
            converged = True
            break
        # Guard against basis collapse near convergence.
        psi = ws.full("Psi")
        if not np.all(np.isfinite(psi)):
            raise FloatingPointError("LOBPCG iterate diverged")
        ws.full("Psi")[:] = orthonormalize(psi)
    evals = ws.full("evals")[:, 0].copy()
    order = np.argsort(evals)
    return LOBPCGResult(
        eigenvalues=evals[order],
        eigenvectors=ws.full("Psi")[:, order].copy(),
        history=history,
        iterations=it,
        converged=converged,
    )


def lobpcg_trace(matrix, n: int = 8, matrix_name: str = "A",
                 precondition: bool = False):
    """One iteration's primitive trace plus the operand spec.

    Returns ``(calls, chunked, small)`` for the TDGG.  Width ``n``
    matches the paper's 8–16-column vector blocks.
    """
    chunked, small = lobpcg_operands(n)
    ws = Workspace(matrix, chunked, small, allocate=False,
                   matrix_name=matrix_name)
    eng = TracingEngine(ws)
    lobpcg_iteration(eng, n, precondition=precondition)
    calls: List = eng.calls
    return calls, chunked, small
