"""Conjugate Gradient solver on the primitive engine.

The paper's broader context is *sparse solvers*; CG is the canonical
SpMV-based linear solver and shares Lanczos's kernel profile (one SpMV
plus dot products and AXPYs per iteration, critical path dominated by
two scalar reductions).  Including it exercises the framework exactly
the way a downstream user would: write the algorithm once against the
primitives, get the eager solver, the task DAG, and all five runtime
versions for free.

Solves ``A x = b`` for symmetric positive definite A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.solvers.convergence import ConvergenceHistory
from repro.solvers.primitives import EagerEngine, TracingEngine
from repro.solvers.workspace import Workspace

__all__ = ["cg_operands", "cg_iteration", "cg", "cg_trace", "CGResult"]


def cg_operands() -> tuple:
    """(chunked, small) operand declarations (all vectors width 1)."""
    chunked = {"x": 1, "r": 1, "p": 1, "Ap": 1}
    small = {
        "rho": (1, 1),       # rᵀr (current)
        "rho_prev": (1, 1),  # rᵀr (previous)
        "pAp": (1, 1),       # pᵀAp
        "alpha": (1, 1),     # rho / pAp
        "beta": (1, 1),      # rho / rho_prev
        "rnorm": (1, 1),
    }
    return chunked, small


def cg_iteration(eng) -> None:
    """One CG step against either engine.

    Scalar combinations (α = ρ/pᵀAp, β = ρ/ρ_prev) are small dense
    tasks; everything else is chunked.
    """
    eng.spmm("p", "Ap")                         # Ap = A p
    eng.dot("p", "Ap", "pAp")                   # pᵀAp
    eng.small("SCALAR_DIV", reads=("rho", "pAp"), writes=("alpha",),
              k=1, num="rho", den="pAp", out="alpha")
    eng.axpy("p", "x", alpha_name="alpha")      # x += α p
    eng.axpy("Ap", "r", alpha_name="alpha",
             alpha_op="neg")                    # r -= α Ap
    eng.small("SCALAR_COPY", reads=("rho",), writes=("rho_prev",),
              k=1, src="rho", dst="rho_prev")
    eng.dot("r", "r", "rho")                    # ρ = rᵀr
    eng.small("SCALAR_SQRT", reads=("rho",), writes=("rnorm",),
              k=1, src="rho", dst="rnorm")
    eng.small("SCALAR_DIV", reads=("rho", "rho_prev"), writes=("beta",),
              k=1, num="rho", den="rho_prev", out="beta")
    # p = r + β p  — SCALE then AXPY keeps every op chunk-parallel.
    eng.scale("p", alpha_name="beta")
    eng.axpy("r", "p")


@dataclass
class CGResult:
    """Outcome of an eager CG solve."""

    x: np.ndarray
    history: ConvergenceHistory
    iterations: int
    converged: bool


def cg(matrix, b: np.ndarray, maxiter: int = 200, tol: float = 1e-10,
       x0: np.ndarray = None) -> CGResult:
    """Eager CG: solve ``A x = b`` to relative residual ``tol``."""
    b = np.asarray(b, dtype=np.float64).reshape(-1, 1)
    if b.shape[0] != matrix.shape[0]:
        raise ValueError("right-hand side length mismatch")
    chunked, small = cg_operands()
    ws = Workspace(matrix, chunked, small)
    eng = EagerEngine(ws)
    if x0 is not None:
        ws.full("x")[:] = np.asarray(x0, dtype=np.float64).reshape(-1, 1)
        r0 = b - matrix.spmm(ws.full("x"))
    else:
        r0 = b.copy()
    ws.full("r")[:] = r0
    ws.full("p")[:] = r0
    rho0 = float(r0.ravel() @ r0.ravel())
    ws.set_scalar("rho", rho0)
    # Convergence is relative to ‖b‖ (not ‖r₀‖, which a warm start
    # makes tiny and would turn the tolerance unreasonably strict).
    bnorm = max(float(np.linalg.norm(b)), 1e-300)
    history = ConvergenceHistory()
    converged = False
    it = 0
    for it in range(1, maxiter + 1):
        cg_iteration(eng)
        rnorm = ws.scalar("rnorm")
        history.record(rnorm)
        if rnorm / bnorm < tol:
            converged = True
            break
    return CGResult(
        x=ws.full("x").copy(),
        history=history,
        iterations=it,
        converged=converged,
    )


def cg_trace(matrix, matrix_name: str = "A"):
    """One iteration's primitive trace plus the operand spec."""
    chunked, small = cg_operands()
    ws = Workspace(matrix, chunked, small, allocate=False,
                   matrix_name=matrix_name)
    eng = TracingEngine(ws)
    cg_iteration(eng)
    calls: List = eng.calls
    return calls, chunked, small
