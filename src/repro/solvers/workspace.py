"""Solver workspace: named operands partitioned by the CSB row blocks.

The paper's key structural decision (§3) is that the CSB partitioning
of the matrix "dictates the decomposition of all other data structures
involved".  A :class:`Workspace` holds every named operand of a solver
— chunked vector blocks (m×w), small matrices, scalars — plus the
matrix itself, and serves the row-block chunk views that task bodies
mutate in place.

A workspace can also be *spec-only* (``allocate=False``): the tracing
engine and DAG builder need only names, widths and shapes, which is how
full-scale block censuses are driven without materializing operands.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Operand store bound to one matrix's row-block geometry.

    Parameters
    ----------
    matrix:
        A :class:`~repro.matrices.csb.CSBMatrix` or a
        :class:`~repro.matrices.census.BlockCensus` (spec-only use).
    chunked:
        ``name -> width`` of row-partitioned operands.
    small:
        ``name -> (rows, cols)`` of unpartitioned operands; scalars are
        ``(1, 1)``.
    allocate:
        Materialize arrays (zeros).  Spec-only workspaces pass False.
    """

    def __init__(
        self,
        matrix,
        chunked: Dict[str, int],
        small: Dict[str, Tuple[int, int]],
        allocate: bool = True,
        matrix_name: str = "A",
    ):
        self.matrix = matrix
        self.matrix_name = matrix_name
        self.chunked = dict(chunked)
        self.small = dict(small)
        self.m = matrix.shape[0]
        self.np_ = matrix.nbr
        self._bounds = [matrix.row_block_bounds(i) for i in range(self.np_)]
        self.arrays: Optional[Dict[str, np.ndarray]] = None
        self.buffers: Dict[tuple, object] = {}
        if allocate:
            self.allocate()

    # ------------------------------------------------------------------
    def allocate(self) -> None:
        """Materialize all operands as zero arrays."""
        self.arrays = {}
        for name, w in self.chunked.items():
            self.arrays[name] = np.zeros((self.m, w))
        for name, (r, c) in self.small.items():
            self.arrays[name] = np.zeros((r, c))

    @property
    def allocated(self) -> bool:
        return self.arrays is not None

    # ------------------------------------------------------------------
    def chunk(self, name: str, i: int) -> np.ndarray:
        """Row-block ``i`` view of a chunked operand (never a copy)."""
        s, e = self._bounds[i]
        return self.arrays[name][s:e]

    def full(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def smallarr(self, name: str) -> np.ndarray:
        """A small operand's array (alias of :meth:`full`, intent-named)."""
        return self.arrays[name]

    def scalar(self, name: str) -> float:
        return float(self.arrays[name].flat[0])

    def set_scalar(self, name: str, value: float) -> None:
        self.arrays[name].flat[0] = value

    # ------------------------------------------------------------------
    def prepare_buffers(self, dag) -> None:
        """Preallocate every partial buffer a DAG will write.

        Done up front so concurrent task bodies never mutate the
        buffer dict structurally (thread safety of the real executor).
        """
        self.buffers = {}
        for t in dag.tasks:
            p = t.params
            if t.kernel == "XTY":
                self.buffers[(p["buf"], p["i"])] = np.zeros(
                    (t.shape["w1"], t.shape["w2"])
                )
            elif t.kernel == "DOT":
                self.buffers[(p["buf"], p["i"])] = 0.0
            elif t.kernel in ("SPMV", "SPMM") and p.get("buffer"):
                self.buffers[(p["Y"], p["i"])] = np.zeros(
                    (t.shape["rows"], t.shape["width"])
                )

    def operand_spec(self) -> tuple:
        """(chunked, small) dictionaries for the DAG builder."""
        return dict(self.chunked), dict(self.small)
