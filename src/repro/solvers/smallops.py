"""Small dense task bodies shared by the eager engine and real executors.

These are the unpartitioned tasks of the solver DAGs — Rayleigh–Ritz,
tridiagonal bookkeeping, convergence checks.  Each op takes the
workspace and the task's parameter dict; operand names arrive in
``params`` so the same body serves eager execution, the serial DAG
validator, and the threaded runtime.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.dense import rayleigh_ritz

__all__ = ["SMALL_OPS", "register_small_op", "run_small_op"]

SMALL_OPS = {}


def register_small_op(name: str):
    """Register a small-op body under ``name`` (used in trace meta)."""

    def deco(fn):
        SMALL_OPS[name] = fn
        return fn

    return deco


def run_small_op(ws, params: dict) -> None:
    """Dispatch a small op by its ``op`` parameter."""
    op = params["op"]
    try:
        body = SMALL_OPS[op]
    except KeyError:
        raise KeyError(
            f"unknown small op {op!r}; registered: {sorted(SMALL_OPS)}"
        ) from None
    body(ws, params)


# ----------------------------------------------------------------------
@register_small_op("LOBPCG_RR")
def _lobpcg_rr(ws, p) -> None:
    """Rayleigh–Ritz over span{Ψ, R, Q} from the 12 Gram blocks.

    Reads ``gA_**`` and ``gB_**`` (PP, PR, PQ, RR, RQ, QQ), writes the
    per-basis coefficient blocks ``cp_p``, ``cp_r``, ``cp_q`` and the
    Ritz values ``evals``.
    """
    n = int(p["n"])

    def blockmat(prefix):
        g = np.zeros((3 * n, 3 * n))
        names = ["P", "R", "Q"]
        for bi in range(3):
            for bj in range(bi, 3):
                key = f"{prefix}_{names[bi]}{names[bj]}"
                blk = ws.smallarr(p[key])
                g[bi * n:(bi + 1) * n, bj * n:(bj + 1) * n] = blk
                if bi != bj:
                    g[bj * n:(bj + 1) * n, bi * n:(bi + 1) * n] = blk.T
        return g

    gA = blockmat("gA")
    gB = blockmat("gB")
    w, C = rayleigh_ritz(gA, gB, nev=n)
    k = w.size
    evals = ws.smallarr(p["evals"])
    evals[:] = 0.0
    evals[:k, 0] = w
    cp = np.zeros((3 * n, n))
    cp[:, :k] = C
    ws.smallarr(p["cp_p"])[:] = cp[0:n]
    ws.smallarr(p["cp_r"])[:] = cp[n:2 * n]
    ws.smallarr(p["cp_q"])[:] = cp[2 * n:3 * n]


@register_small_op("TRIDIAG_UPDATE")
def _tridiag_update(ws, p) -> None:
    """Store this iteration's (α, β) into the tridiagonal log."""
    it = int(p["it"])
    T = ws.smallarr(p["T"])
    T[it, 0] = ws.scalar(p["alpha"])
    T[it, 1] = ws.scalar(p["beta"])


@register_small_op("CONV_CHECK")
def _conv_check(ws, p) -> None:
    """Write 1.0 into the flag if the residual norm is below tol."""
    r = ws.scalar(p["rnorm"])
    ws.set_scalar(p["flag"], 1.0 if r < float(p["tol"]) else 0.0)


@register_small_op("SCALAR_DIV")
def _scalar_div(ws, p) -> None:
    """out = num / den (0 when the denominator vanishes)."""
    den = ws.scalar(p["den"])
    ws.set_scalar(p["out"], ws.scalar(p["num"]) / den if den else 0.0)


@register_small_op("SCALAR_COPY")
def _scalar_copy(ws, p) -> None:
    ws.set_scalar(p["dst"], ws.scalar(p["src"]))


@register_small_op("SCALAR_SQRT")
def _scalar_sqrt(ws, p) -> None:
    ws.set_scalar(p["dst"], float(np.sqrt(max(ws.scalar(p["src"]), 0.0))))
