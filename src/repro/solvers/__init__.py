"""The benchmark solvers: Lanczos and LOBPCG (§4).

Both are written once against the primitive engine API
(:mod:`repro.solvers.primitives`) and interpreted two ways:

* **eagerly** — NumPy execution for numerical results and ground truth,
* **traced** — a per-iteration primitive trace that the TDGG expands
  into the task DAG every runtime executes.

This mirrors DeepSparse's design, where the solver is expressed as
GraphBLAS/BLAS-style calls and the framework derives the task graph.
"""

from repro.solvers.workspace import Workspace
from repro.solvers.primitives import EagerEngine, TracingEngine
from repro.solvers.lanczos import (
    lanczos,
    lanczos_trace,
    lanczos_operands,
    LanczosResult,
)
from repro.solvers.lobpcg import (
    lobpcg,
    lobpcg_trace,
    lobpcg_operands,
    LOBPCGResult,
)
from repro.solvers.cg import cg, cg_trace, cg_operands, CGResult
from repro.solvers.convergence import ConvergenceHistory

__all__ = [
    "Workspace",
    "EagerEngine",
    "TracingEngine",
    "lanczos",
    "lanczos_trace",
    "lanczos_operands",
    "LanczosResult",
    "lobpcg",
    "lobpcg_trace",
    "lobpcg_operands",
    "LOBPCGResult",
    "cg",
    "cg_trace",
    "cg_operands",
    "CGResult",
    "ConvergenceHistory",
]
