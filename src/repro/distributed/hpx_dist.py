"""Distributed HPX execution: local HPX subgraphs + halo exchanges.

Row blocks are distributed contiguously across localities (HPX's
global address space); each node runs the HPX scheduler over the tasks
whose *output* chunks it owns, exactly as on one node.  Cross-node data
movement is priced per iteration:

* **halo exchange** — every (input chunk, consumer node) pair where the
  chunk is homed elsewhere is one message (chunks are cached per
  iteration, so a chunk is fetched once per consumer node, not per
  task);
* **reductions** — every XTY/DOT reduce whose partials span several
  nodes is an allreduce of the reduced payload;
* **iteration barrier** — the convergence check that already barriers
  single-node iterations (§4) becomes a tree barrier.

Communication is conservatively not overlapped with computation, so
this is a lower bound on scaling — the right starting point for the
"is the distributed extension worth it?" question the paper leaves
open.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.dag import TaskDAG
from repro.graph.task import Task
from repro.machine.memory import MemoryModel
from repro.runtime.base import Runtime
from repro.sim.engine import SimulationEngine
from repro.sim.schedulers import HPXScheduler

from repro.distributed.cluster import ClusterSpec

__all__ = ["DistributedHPXRuntime", "DistributedResult"]


@dataclass
class DistributedResult:
    """Per-iteration timing decomposition of a distributed run."""

    n_nodes: int
    time_per_iteration: float
    compute_time: float       # slowest node's local makespan
    halo_time: float
    allreduce_time: float
    halo_bytes: float
    node_times: List[float]

    def speedup_over(self, other: "DistributedResult") -> float:
        return other.time_per_iteration / self.time_per_iteration

    def parallel_efficiency(self, single: "DistributedResult") -> float:
        return (single.time_per_iteration
                / (self.time_per_iteration * self.n_nodes))


class DistributedHPXRuntime(Runtime):
    """HPX over a cluster: per-node simulation + network pricing."""

    name = "hpx-dist"

    def __init__(self, cluster: ClusterSpec, first_touch: bool = True,
                 seed: int = 0, options=None, **hpx_kwargs):
        super().__init__(cluster.node, first_touch, seed, options)
        self.cluster = cluster
        self.hpx_kwargs = hpx_kwargs

    # ------------------------------------------------------------------
    def _home_node(self, part, n_parts: int) -> int:
        if part is None:
            return 0
        n = self.cluster.n_nodes
        return min(n - 1, int(part) * n // max(1, n_parts))

    def _task_node(self, task: Task, n_parts: int) -> int:
        for h in task.writes:
            if h.part is not None and not h.name.startswith("__"):
                return self._home_node(h.part, n_parts)
        for h in task.writes:
            if h.part is not None:
                return self._home_node(h.part, n_parts)
        return 0

    def _local_subdag(self, dag: TaskDAG, tids: List[int]) -> TaskDAG:
        """Restriction of the DAG to one node's tasks.

        Cross-node edges are dropped: their data arrives via the halo
        exchange charged separately (BSP-style per-iteration halo, the
        standard distributed SpMV structure).
        """
        sub = TaskDAG()
        remap: Dict[int, int] = {}
        for tid in tids:
            t = dag.tasks[tid]
            clone = Task(-1, t.kernel, t.reads, t.writes, t.shape,
                         t.params, t.iteration, t.seq)
            remap[tid] = sub.add_task(clone)
        for tid in tids:
            for v in dag.succ[tid]:
                if v in remap:
                    sub.add_edge(remap[tid], remap[v])
        sub.n_partitions = getattr(dag, "n_partitions", None)
        sub.matrix_name = getattr(dag, "matrix_name", None)
        sub.matrix_nbc = getattr(dag, "matrix_nbc", None)
        return sub

    # ------------------------------------------------------------------
    def execute(self, dag: TaskDAG, iterations: int = 1
                ) -> DistributedResult:
        n_parts = getattr(dag, "n_partitions", None) or 1
        cl = self.cluster
        # -- partition tasks by owning node ----------------------------
        by_node: Dict[int, List[int]] = {k: [] for k in range(cl.n_nodes)}
        node_of = {}
        for t in dag.tasks:
            k = self._task_node(t, n_parts)
            node_of[t.tid] = k
            by_node[k].append(t.tid)

        # -- halo census: (chunk, consumer node) pairs ------------------
        halo_bytes = 0.0
        halo_msgs_per_node = [0] * cl.n_nodes
        halo_bytes_per_node = [0.0] * cl.n_nodes
        seen = set()
        for t in dag.tasks:
            k = node_of[t.tid]
            for h in t.reads:
                if h.part is None or h.name.startswith("__"):
                    continue
                home = self._home_node(h.part, n_parts)
                if home != k and (h.name, h.part, k) not in seen:
                    seen.add((h.name, h.part, k))
                    halo_bytes += h.nbytes
                    halo_msgs_per_node[k] += 1
                    halo_bytes_per_node[k] += h.nbytes
        halo_time = max(
            (m * cl.link_latency + b / cl.link_bandwidth
             for m, b in zip(halo_msgs_per_node, halo_bytes_per_node)),
            default=0.0,
        )

        # -- reduction census: reduces whose partials span nodes --------
        allreduce_time = 0.0
        for t in dag.tasks:
            if t.kernel in ("XTY_REDUCE", "DOT_REDUCE"):
                srcs = {self._home_node(h.part, n_parts)
                        for h in t.reads if h.part is not None}
                if len(srcs) > 1:
                    payload = max((h.nbytes for h in t.writes), default=8)
                    allreduce_time += cl.allreduce_time(payload)

        # -- per-node local execution under the HPX scheduler -----------
        node_times = []
        for k in range(cl.n_nodes):
            sub = self._local_subdag(dag, by_node[k])
            if len(sub) == 0:
                node_times.append(0.0)
                continue
            engine = SimulationEngine(cl.node,
                                      first_touch=self.first_touch,
                                      seed=self.seed + k)
            res = engine.run(sub, HPXScheduler(**self.hpx_kwargs),
                             iterations=1, record_flow=False)
            node_times.append(res.total_time)

        compute = max(node_times) if node_times else 0.0
        per_iter = (compute + halo_time + allreduce_time
                    + cl.barrier_time())
        return DistributedResult(
            n_nodes=cl.n_nodes,
            time_per_iteration=per_iter,
            compute_time=compute,
            halo_time=halo_time,
            allreduce_time=allreduce_time,
            halo_bytes=halo_bytes,
            node_times=node_times,
        )
