"""Distributed-memory extension (the paper's stated future work).

§6: "Future work will be in the direction of testing HPX in a
distributed memory environment using large-scale sparse solvers."
This package prototypes exactly that experiment on the simulator: the
CSB row-block partition extends across cluster nodes (HPX's global
address space maps chunks to localities), each node executes its local
task subgraph under the HPX scheduler, and cross-node dependences
become halo exchanges and allreduces priced by a latency/bandwidth
network model.
"""

from repro.distributed.cluster import ClusterSpec, ethernet_cluster, ib_cluster
from repro.distributed.hpx_dist import DistributedHPXRuntime, DistributedResult

__all__ = [
    "ClusterSpec",
    "ethernet_cluster",
    "ib_cluster",
    "DistributedHPXRuntime",
    "DistributedResult",
]
