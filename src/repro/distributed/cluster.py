"""Cluster model: N identical nodes joined by a latency/bandwidth link.

The alpha-beta (Hockney) model prices a message of ``b`` bytes at
``latency + b / bandwidth``; collectives over P nodes pay a
``ceil(log2 P)``-deep tree.  Good enough for the question the paper's
future work poses — where does inter-node communication eat the
intra-node AMT gains?
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.machine.topology import MachineSpec

__all__ = ["ClusterSpec", "ethernet_cluster", "ib_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """N copies of one node joined by a uniform interconnect."""

    node: MachineSpec
    n_nodes: int
    link_latency: float       # seconds per message
    link_bandwidth: float     # bytes per second per node

    def __post_init__(self):
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.link_bandwidth <= 0 or self.link_latency < 0:
            raise ValueError("invalid interconnect parameters")

    # ------------------------------------------------------------------
    def message_time(self, nbytes: float) -> float:
        """Point-to-point transfer time (alpha-beta model)."""
        return self.link_latency + nbytes / self.link_bandwidth

    def allreduce_time(self, nbytes: float) -> float:
        """Tree allreduce of an ``nbytes`` payload across all nodes."""
        if self.n_nodes == 1:
            return 0.0
        depth = math.ceil(math.log2(self.n_nodes))
        return 2 * depth * self.message_time(nbytes)

    def barrier_time(self) -> float:
        if self.n_nodes == 1:
            return 0.0
        return 2 * math.ceil(math.log2(self.n_nodes)) * self.link_latency


def ib_cluster(node: MachineSpec, n_nodes: int) -> ClusterSpec:
    """InfiniBand-class fabric: ~1.5 µs, ~12 GB/s per node."""
    return ClusterSpec(node, n_nodes, link_latency=1.5e-6,
                       link_bandwidth=12e9)


def ethernet_cluster(node: MachineSpec, n_nodes: int) -> ClusterSpec:
    """Commodity 10 GbE: ~20 µs, ~1.1 GB/s per node."""
    return ClusterSpec(node, n_nodes, link_latency=20e-6,
                       link_bandwidth=1.1e9)
