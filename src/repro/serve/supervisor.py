"""Local shard supervisor: spawn, monitor, and restart ``repro serve``.

``repro cluster --shards N`` wants N worker daemons without asking the
operator to run N terminals.  The supervisor owns that: it spawns each
shard as a ``python -m repro serve --port 0`` subprocess, parses the
announced port from the shard's log, watches the processes from a
monitor thread, and restarts a dead shard with exponential backoff.

Design points that matter to the router sitting on top:

* **Stable names, ephemeral ports.**  Shards are named ``shard-0`` …
  ``shard-N-1`` forever; every (re)incarnation binds a fresh ephemeral
  port.  The ring hashes names, so a restart changes a shard's
  endpoint without moving a single placement.
* **Per-shard cache domains.**  Each shard gets its own
  ``REPRO_CACHE_DIR`` under the supervisor's base directory, so the
  cluster's exactly-once property is real (a cell cached on shard A is
  *not* visible to shard B — only correct routing prevents recompute).
* **Per-incarnation audit logs.**  ``<name>.<incarnation>.audit.jsonl``
  — a SIGKILLed shard leaves its ``.part`` file behind as crash
  evidence, and the restarted incarnation must never clobber it.
* **Membership pushes, not polls.**  Every spawn/death/restart calls
  ``on_membership(members)`` so the router's ring follows the cluster
  within a monitor tick (the router's own health probes cover the
  in-between).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = ["ClusterSupervisor", "ShardProcess"]

_PORT_RE = re.compile(r"listening on http://[^:]+:(\d+)")


class ShardProcess:
    """One supervised shard: name + current incarnation's process."""

    def __init__(self, name: str, base_dir: str):
        self.name = name
        self.base_dir = base_dir
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.incarnation = 0          # bumped on every (re)spawn
        self.restarts = 0             # lifetime restarts (spawns - 1)
        self.failures = 0             # consecutive deaths (backoff exp)
        self.next_spawn_at = 0.0      # monotonic; backoff gate
        self.log_path: Optional[str] = None

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def audit_path(self) -> str:
        return os.path.join(self.base_dir, "audit",
                            f"{self.name}.{self.incarnation}.audit.jsonl")

    def cache_dir(self) -> str:
        return os.path.join(self.base_dir, "cache", self.name)


class ClusterSupervisor:
    """Spawn and babysit N ``repro serve`` shards.

    ::

        sup = ClusterSupervisor(3, base_dir, jobs=0)
        sup.start()                       # blocks until all ports known
        router_cfg.members = sup.members()
        sup.on_membership = router.update_members_threadsafe
        ...
        sup.stop()                        # SIGTERM + graceful wait

    The monitor thread notices a dead shard within ``poll_interval``
    and respawns it after an exponential backoff
    (``backoff_base * 2**consecutive_failures``, capped) so a shard
    crash-looping on bad state cannot busy-spin the machine.
    """

    def __init__(self, n_shards: int, base_dir: str, *,
                 jobs: int = 0, host: str = "127.0.0.1",
                 backlog: int = 64,
                 poll_interval: float = 0.2,
                 backoff_base: float = 0.5,
                 backoff_cap: float = 10.0,
                 startup_timeout: float = 60.0,
                 extra_env: Optional[dict] = None,
                 on_membership: Optional[Callable[[dict], None]] = None):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.base_dir = os.path.abspath(base_dir)
        self.jobs = jobs
        self.host = host
        self.backlog = backlog
        self.poll_interval = poll_interval
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.startup_timeout = startup_timeout
        self.extra_env = dict(extra_env or {})
        self.on_membership = on_membership
        self.shards = [ShardProcess(f"shard-{i}", self.base_dir)
                       for i in range(n_shards)]
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None

    # -- membership ----------------------------------------------------
    def members(self) -> Dict[str, Tuple[str, int]]:
        """Shards currently alive with a known port."""
        with self._lock:
            return {s.name: (self.host, s.port) for s in self.shards
                    if s.alive and s.port is not None}

    def _notify(self) -> None:
        if self.on_membership is not None:
            try:
                self.on_membership(self.members())
            except Exception:
                pass  # a router mid-shutdown must not kill the monitor

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ClusterSupervisor":
        for sub in ("audit", "cache", "logs"):
            os.makedirs(os.path.join(self.base_dir, sub), exist_ok=True)
        for shard in self.shards:
            self._spawn(shard)
        deadline = time.monotonic() + self.startup_timeout
        for shard in self.shards:
            self._await_port(shard, deadline)
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True,
                                         name="repro-cluster-monitor")
        self._monitor.start()
        self._notify()
        return self

    def stop(self, timeout: float = 30.0) -> Dict[str, int]:
        """SIGTERM every shard, wait for the graceful-drain exit.

        Returns ``{name: returncode}`` — 0 everywhere when every shard
        honoured the drain contract.
        """
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
        # A freshly-restarted incarnation may still be importing; its
        # signal handlers are installed strictly before the port
        # announce, so wait for the announce (bounded) before SIGTERM
        # or the drain contract turns into a default-handler death.
        settle = time.monotonic() + min(10.0, timeout / 2)
        for shard in self.shards:
            while (shard.alive and shard.port is None
                   and time.monotonic() < settle):
                shard.port = self._read_port(shard)
                if shard.port is None:
                    time.sleep(0.05)
        # Only processes we actually signal get a drain code: a shard
        # that already crashed and was awaiting its respawn backoff
        # would otherwise report its crash signal as a drain failure.
        signalled = []
        for shard in self.shards:
            if shard.proc is not None and shard.proc.poll() is None:
                try:
                    shard.proc.send_signal(signal.SIGTERM)
                except OSError:
                    continue
                signalled.append(shard)
        codes: Dict[str, int] = {}
        deadline = time.monotonic() + timeout
        for shard in signalled:
            try:
                shard.proc.wait(
                    timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                shard.proc.kill()
                shard.proc.wait(timeout=5)
            codes[shard.name] = shard.proc.returncode
        return codes

    def kill(self, name: str) -> None:
        """SIGKILL one shard (chaos hook); the monitor restarts it."""
        with self._lock:
            shard = self._find(name)
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.kill()
                shard.proc.wait(timeout=10)

    def _find(self, name: str) -> ShardProcess:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise KeyError(name)

    # -- spawning ------------------------------------------------------
    def _spawn(self, shard: ShardProcess) -> None:
        shard.incarnation += 1
        shard.port = None
        shard.log_path = os.path.join(
            self.base_dir, "logs",
            f"{shard.name}.{shard.incarnation}.log")
        cmd = [sys.executable, "-m", "repro", "serve",
               "--host", self.host, "--port", "0",
               "--jobs", str(self.jobs),
               "--backlog", str(self.backlog),
               "--audit", shard.audit_path()]
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = shard.cache_dir()
        env.update(self.extra_env)
        with open(shard.log_path, "w", encoding="utf-8") as log:
            shard.proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env)

    def _await_port(self, shard: ShardProcess, deadline: float) -> None:
        """Poll the shard's log for the announced port."""
        while time.monotonic() < deadline:
            port = self._read_port(shard)
            if port is not None:
                shard.port = port
                return
            if not shard.alive:
                raise RuntimeError(
                    f"{shard.name} died during startup "
                    f"(rc={shard.proc.returncode}, see {shard.log_path})")
            time.sleep(0.05)
        raise RuntimeError(
            f"{shard.name} did not announce a port in time "
            f"(see {shard.log_path})")

    def _read_port(self, shard: ShardProcess) -> Optional[int]:
        try:
            with open(shard.log_path, "r", encoding="utf-8") as f:
                m = _PORT_RE.search(f.read())
        except OSError:
            return None
        return int(m.group(1)) if m else None

    # -- monitoring ----------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            changed = False
            with self._lock:
                for shard in self.shards:
                    changed |= self._tick(shard)
            if changed:
                self._notify()

    def _tick(self, shard: ShardProcess) -> bool:
        """One monitor pass over one shard; True if membership moved."""
        now = time.monotonic()
        if shard.alive:
            if shard.port is None:      # restarted; port pending
                port = self._read_port(shard)
                if port is None:
                    return False
                shard.port = port
                shard.failures = 0          # healthy again: reset
                return True
            return False
        if shard.proc is None:
            return False
        # Dead.  First tick after death: drop it from membership and
        # arm the backoff; later ticks respawn once the gate passes.
        if shard.port is not None:
            shard.port = None
            shard.next_spawn_at = now + self._backoff(shard)
            return True
        if now < shard.next_spawn_at or self._stop.is_set():
            return False
        shard.restarts += 1
        shard.failures += 1
        # Arm the *next* gate before spawning so an incarnation that
        # dies during startup (port never announced) still backs off
        # instead of crash-looping the monitor tick.
        shard.next_spawn_at = now + self._backoff(shard)
        self._spawn(shard)
        return False   # membership changes when the port appears

    def _backoff(self, shard: ShardProcess) -> float:
        return min(self.backoff_cap,
                   self.backoff_base * (2 ** min(10, shard.failures)))

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
