"""Service-side counters and latency tracking for ``/metrics``.

Same philosophy as :mod:`repro.trace`: plain counters on the hot path,
aggregation only when somebody asks.  Everything here is touched from
the service's event loop thread only, so there are no locks; the
snapshot is a plain dict ready for JSON.

Latencies go into fixed-size reservoirs (last ``N`` observations) —
a long-lived daemon must report *recent* p50/p99, not a lifetime
average diluted by yesterday's traffic.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional

__all__ = ["LatencyWindow", "RouterMetrics", "ServiceMetrics"]


class LatencyWindow:
    """Sliding window of the most recent ``size`` latencies (seconds)."""

    def __init__(self, size: int = 1024):
        self.size = int(size)
        self._ring: List[float] = []
        self._next = 0
        self.count = 0          # lifetime observations
        self.total = 0.0        # lifetime sum (for the mean)

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if len(self._ring) < self.size:
            self._ring.append(seconds)
        else:
            self._ring[self._next] = seconds
            self._next = (self._next + 1) % self.size

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile over the window (``None`` if empty)."""
        if not self._ring:
            return None
        ordered = sorted(self._ring)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        n = self.count
        return {
            "count": n,
            "mean_s": (self.total / n) if n else None,
            "p50_s": self.percentile(50),
            "p99_s": self.percentile(99),
        }


class ServiceMetrics:
    """Counters for every way a request can travel through the service.

    Request *sources* (mutually exclusive per request):

    * ``cache`` — served from the on-disk :class:`ResultCache` without
      touching the pool;
    * ``coalesced`` — piggybacked on an identical in-flight computation
      (single-flight);
    * ``computed`` — caused an actual simulation;
    * ``rejected_busy`` — bounced with 429 (bounded queue full);
    * ``rejected_draining`` — bounced with 503 (shutdown in progress);
    * ``invalid`` — 4xx (unknown matrix, malformed body, bad route);
    * ``error`` — the computation it waited on failed (500).
    """

    SOURCES = ("cache", "coalesced", "computed", "rejected_busy",
               "rejected_draining", "invalid", "error")

    def __init__(self):
        self.started_at = time.time()
        self.requests: Dict[str, int] = {s: 0 for s in self.SOURCES}
        #: Distinct simulations dispatched to the pool (per key, not
        #: per request) — the single-flight tests pin this.
        self.computations = 0
        self.worker_restarts = 0
        self.worker_retries = 0
        self.queue_high_water = 0
        self.request_latency = LatencyWindow()
        self.compute_latency = LatencyWindow()

    # ------------------------------------------------------------------
    def count_request(self, source: str, latency_s: float) -> None:
        self.requests[source] += 1
        self.request_latency.add(latency_s)

    def count_computation(self, seconds: float) -> None:
        self.computations += 1
        self.compute_latency.add(seconds)

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        total = sum(self.requests.values())
        served = (self.requests["cache"] + self.requests["coalesced"]
                  + self.requests["computed"])
        hit_rate = lambda n: (n / served) if served else None  # noqa: E731
        return {
            "uptime_s": time.time() - self.started_at,
            "requests_total": total,
            "requests": dict(self.requests),
            "computations": self.computations,
            "hit_rates": {
                "cache": hit_rate(self.requests["cache"]),
                "coalesced": hit_rate(self.requests["coalesced"]),
            },
            "worker_restarts": self.worker_restarts,
            "worker_retries": self.worker_retries,
            "queue_high_water": self.queue_high_water,
            "latency": {
                "request": self.request_latency.snapshot(),
                "compute": self.compute_latency.snapshot(),
            },
        }


class RouterMetrics:
    """Counters for the cluster router (``repro cluster``).

    Router request *sources* (mutually exclusive per request):

    * ``routed`` — forwarded to a shard and answered (whatever the
      shard said: the shard's own 2xx/4xx/5xx is relayed verbatim);
    * ``sweep`` — a ``/v1/sweep`` aggregate response;
    * ``no_shard`` — 503, every candidate shard down or exhausted;
    * ``invalid`` — router-side 4xx (bad route, malformed cell);
    * ``rejected_draining`` — 503, the router itself is draining;
    * ``error`` — unexpected router-side failure (500).

    Routing-path counters, per shard name where it matters:

    * ``forwards[shard]`` — upstream requests sent to that shard;
    * ``relayed[source]`` — cluster-level view of where answers came
      from (the shard's ``payload["source"]``: cache / coalesced /
      computed / ...);
    * ``retries`` — fresh-connection retries after a stale pooled
      upstream connection failed;
    * ``failovers`` — requests moved to a ring successor after a
      shard failed (or refused while draining);
    * ``marked_down`` / ``marked_up`` — membership transitions driven
      by health probes and forward failures.
    """

    SOURCES = ("routed", "sweep", "no_shard", "invalid",
               "rejected_draining", "error")

    def __init__(self):
        self.started_at = time.time()
        self.requests: Dict[str, int] = {s: 0 for s in self.SOURCES}
        self.forwards: Dict[str, int] = {}
        self.relayed: Dict[str, int] = {}
        self.retries = 0
        self.failovers = 0
        self.marked_down = 0
        self.marked_up = 0
        self.request_latency = LatencyWindow()
        self.upstream_latency = LatencyWindow()

    # ------------------------------------------------------------------
    def count_request(self, source: str, latency_s: float) -> None:
        self.requests[source] += 1
        self.request_latency.add(latency_s)

    def count_forward(self, shard: str, latency_s: float) -> None:
        self.forwards[shard] = self.forwards.get(shard, 0) + 1
        self.upstream_latency.add(latency_s)

    def count_relayed(self, source: Optional[str]) -> None:
        source = source or "unknown"
        self.relayed[source] = self.relayed.get(source, 0) + 1

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "uptime_s": time.time() - self.started_at,
            "requests_total": sum(self.requests.values()),
            "requests": dict(self.requests),
            "forwards": dict(self.forwards),
            "relayed": dict(self.relayed),
            "retries": self.retries,
            "failovers": self.failovers,
            "marked_down": self.marked_down,
            "marked_up": self.marked_up,
            "latency": {
                "request": self.request_latency.snapshot(),
                "upstream": self.upstream_latency.snapshot(),
            },
        }
