"""Warm worker pool: persistent processes behind the asyncio service.

:class:`ExperimentRunner` builds a fresh ``ProcessPoolExecutor`` per
sweep — right for batch jobs, wrong for a daemon, where process
creation and module import would dominate every cold request.
:class:`WarmPool` keeps one executor alive across requests: workers
import the simulation stack once (``initializer``), keep their
per-process prep-store deserialization memos warm, and from then on a
cold cell costs only its actual simulation time.

The failure policy is ``ExperimentRunner``'s, re-used rather than
re-invented (same knobs, same meanings, same table semantics):

* a cell that raises is retried with exponential backoff, up to
  ``attempts`` tries, then surfaces as :class:`WorkerFailure` with the
  worker's captured stderr tail;
* a cell that exceeds ``timeout`` gets the wedged pool killed
  (:meth:`ExperimentRunner._kill_pool`) and is charged an attempt;
* a crashed pool (``BrokenProcessPool``) is rebuilt — affected cells
  are *not* charged an attempt, since a dead sibling worker is not
  their fault — at most ``max_pool_rebuilds`` times, after which the
  pool degrades to inline (in-process thread) execution for the rest
  of its life.

``jobs=0`` selects inline mode outright: every cell runs in a worker
thread of this process (``asyncio.to_thread``).  That is the test and
smoke-CI configuration — no fork cost, deterministic, and the GIL is
irrelevant because the service's own work is I/O.
"""

from __future__ import annotations

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.bench.runner import ExperimentRunner, WorkerFailure, _pool_worker

__all__ = ["WarmPool", "serve_worker"]


def _warm_init() -> None:
    """Worker initializer: pay the import bill once per process."""
    import repro.analysis.experiment  # noqa: F401  (heavy import chain)
    import repro.bench.prep           # noqa: F401


def serve_worker(config: dict) -> tuple:
    """Per-request worker entry (module-level: must pickle).

    Delegates to the bench pool worker — same stderr capture, same
    :class:`WorkerFailure` contract — after an optional artificial
    delay.  ``REPRO_SERVE_TEST_DELAY`` (seconds) exists so the
    concurrency tests and the drain test can hold a request in flight
    deterministically; it is never set in production.
    """
    delay = float(os.environ.get("REPRO_SERVE_TEST_DELAY", "0") or 0.0)
    if delay > 0:
        time.sleep(delay)
    return _pool_worker(config)


class WarmPool:
    """One persistent executor, shared by every request.

    Parameters mirror :class:`ExperimentRunner` (``timeout`` /
    ``attempts`` / ``backoff``); ``worker`` is injectable for the same
    reason ``ExperimentRunner.pool_worker`` is — the failure-path tests
    substitute crashing or chatty workers.
    """

    max_pool_rebuilds = ExperimentRunner.max_pool_rebuilds

    def __init__(self, jobs: int = 0,
                 timeout: Optional[float] = None,
                 attempts: int = 2,
                 backoff: float = 0.25,
                 worker: Callable[[dict], tuple] = serve_worker,
                 metrics=None):
        self.jobs = max(0, int(jobs))
        self.timeout = timeout
        self.attempts = max(1, int(attempts))
        self.backoff = max(0.0, float(backoff))
        self.worker = worker
        self.metrics = metrics
        self._pool: Optional[ProcessPoolExecutor] = None
        self._generation = 0
        self._rebuilds = 0
        self._inline_only = self.jobs == 0

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "inline" if self._inline_only else "process"

    def start(self) -> None:
        """Spin the workers up ahead of the first request."""
        if not self._inline_only:
            self._ensure_pool()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, initializer=_warm_init)
            except OSError:
                # Cannot fork (resource limits): degrade permanently.
                self._inline_only = True
                raise
        return self._pool

    def _retire_pool(self, generation: int, kill: bool) -> None:
        """Tear down the current pool once per failure generation.

        Concurrent requests all observe the same broken pool; the
        generation counter makes sure only the first of them rebuilds,
        and the others simply pick up the fresh executor.
        """
        if generation != self._generation:
            return  # somebody else already rebuilt
        self._generation += 1
        pool, self._pool = self._pool, None
        if pool is not None:
            if kill:
                ExperimentRunner._kill_pool(pool)
            else:
                pool.shutdown(wait=False, cancel_futures=True)
        self._rebuilds += 1
        if self.metrics is not None:
            self.metrics.worker_restarts += 1
        if self._rebuilds > self.max_pool_rebuilds:
            self._inline_only = True

    # ------------------------------------------------------------------
    async def run(self, config: dict) -> tuple:
        """Execute one cell; returns ``(summary_dict, seconds)``.

        Raises :class:`WorkerFailure` once the cell has exhausted its
        attempts.  Timeouts and pool crashes are absorbed per the
        policy above.
        """
        attempt = 0
        while True:
            generation = self._generation
            if not self._inline_only:
                try:
                    pool = self._ensure_pool()
                except OSError:
                    continue  # cannot fork: flipped to inline-only
            try:
                if self._inline_only:
                    # No preemption inline (same caveat as the bench
                    # runner): the request's own client timeout is the
                    # backstop.
                    return await asyncio.to_thread(self.worker, config)
                fut = asyncio.wrap_future(pool.submit(self.worker, config))
                return await asyncio.wait_for(fut, self.timeout)
            except asyncio.TimeoutError:
                self._retire_pool(generation, kill=True)
                attempt += 1
                failure = WorkerFailure(
                    f"timed out (> {self.timeout:.1f} s/cell)")
            except BrokenProcessPool:
                # Not charged an attempt — see class docstring.
                self._retire_pool(generation, kill=False)
                continue
            except WorkerFailure as e:
                attempt += 1
                failure = e
            except Exception as e:
                attempt += 1
                failure = WorkerFailure(f"{type(e).__name__}: {e}")
            if attempt >= self.attempts:
                raise failure
            if self.metrics is not None:
                self.metrics.worker_retries += 1
            if self.backoff:
                await asyncio.sleep(
                    self.backoff * 2 ** min(attempt - 1, 4))

    # ------------------------------------------------------------------
    def close(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def stats(self) -> dict:
        return {
            "jobs": self.jobs,
            "mode": self.mode,
            "rebuilds": self._rebuilds,
        }
