"""Consistent-hash ring: the cluster's placement function.

The router places every cell on a shard by hashing the cell's
*result-cache content key* (:func:`repro.bench.cache.placement_key`)
onto a ring of virtual nodes.  Because the placement identity **is**
the storage identity, one shard owns each cell's cache entry and its
single-flight table entry — coalescing stays exactly-once across the
whole cluster without any cross-shard coordination.

Properties the property suite (``tests/test_property_ring.py``) pins:

* **Process-independent determinism** — points are ``blake2b`` digests
  of ``"<node>#<vnode>"``, never Python ``hash()``, so every router
  (and every test) computes identical placements for identical
  membership, on any interpreter, any host, any ``PYTHONHASHSEED``.
* **Bounded imbalance** — ``vnodes`` virtual nodes per shard (default
  128) keep the max/mean key-share ratio small.
* **Minimal remap** — adding a shard moves keys *only onto the new
  shard*; removing one moves *only its own keys* (each ≈ 1/N of the
  population).  That is what makes failover and shard restart cheap:
  membership churn never reshuffles unrelated placements.

``preference(key)`` returns every live node in ring order starting at
the owner — the router's failover order.  It is itself consistent: the
second preference for a key is exactly where the key lands if the
owner leaves the ring.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Optional

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Virtual nodes per shard.  128 keeps the max/mean key-share ratio
#: under ~1.35 for small clusters (pinned by the property suite) while
#: a full ring rebuild stays microseconds.
DEFAULT_VNODES = 128


def _point(data: str) -> int:
    """Stable 64-bit ring coordinate of a string (process-independent)."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """A sorted set of virtual-node points with bisect lookup.

    Nodes are opaque strings (the router uses stable shard *names*, so
    a shard keeps its placements across restarts even when its port
    changes).  Mutation rebuilds the sorted arrays — membership churn
    is rare and rings are small, so simplicity wins over cleverness.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._vnode_points: Dict[str, List[int]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vnode_points)

    def __contains__(self, node: str) -> bool:
        return node in self._vnode_points

    @property
    def nodes(self) -> List[str]:
        return sorted(self._vnode_points)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Add a node (idempotent)."""
        if node in self._vnode_points:
            return
        self._vnode_points[node] = [
            _point(f"{node}#{v}") for v in range(self.vnodes)
        ]
        self._rebuild()

    def remove(self, node: str) -> None:
        """Remove a node (idempotent)."""
        if self._vnode_points.pop(node, None) is not None:
            self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (point, node)
            for node, points in self._vnode_points.items()
            for point in points
        )
        self._points = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    # ------------------------------------------------------------------
    def node_for(self, key: str) -> Optional[str]:
        """The owner of ``key`` (``None`` on an empty ring)."""
        if not self._points:
            return None
        i = bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[i]

    def preference(self, key: str, limit: Optional[int] = None
                   ) -> List[str]:
        """Distinct nodes in ring order from ``key``'s owner onward.

        ``preference(key)[0]`` is the owner; the rest is the failover
        order.  Truncated to ``limit`` nodes when given.
        """
        n_points = len(self._points)
        if not n_points:
            return []
        want = len(self._vnode_points) if limit is None \
            else min(limit, len(self._vnode_points))
        start = bisect_right(self._points, _point(key)) % n_points
        seen: List[str] = []
        for off in range(n_points):
            owner = self._owners[(start + off) % n_points]
            if owner not in seen:
                seen.append(owner)
                if len(seen) >= want:
                    break
        return seen

    # ------------------------------------------------------------------
    def shares(self, keys) -> Dict[str, int]:
        """Owned-key counts over a sample (balance diagnostics/tests)."""
        counts = {node: 0 for node in self._vnode_points}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                counts[owner] += 1
        return counts

    def __repr__(self):
        return (f"HashRing({len(self)} nodes x {self.vnodes} vnodes, "
                f"{len(self._points)} points)")
