"""Blocking client for the simulation service.

Used by ``repro submit``, the loopback load harness, and the test
suite.  Pure stdlib (``http.client``): one persistent keep-alive
connection per :class:`ServiceClient`, transparently re-opened if the
server closed it between requests.  Instances are *not* thread-safe —
the load harness gives each worker thread its own client, which also
exercises the server's concurrent-connection path.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Optional

from repro.sim.engine import RunResultSummary

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response, carrying the decoded error payload."""

    def __init__(self, status: int, payload: dict):
        detail = payload.get("error", "request failed")
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload

    @property
    def retry_after_s(self) -> Optional[float]:
        return self.payload.get("retry_after_s")


class ServiceClient:
    #: Failure shapes of a *stale keep-alive* socket: the server (or a
    #: router upstream) closed the idle connection after our previous
    #: request, and we only find out when the next write/read fails.
    #: These — and only these — are safe to retry on a fresh
    #: connection, because the request was never processed.
    _STALE_ERRORS = (http.client.RemoteDisconnected,
                     http.client.BadStatusLine,
                     ConnectionResetError,
                     BrokenPipeError)

    def __init__(self, host: str = "127.0.0.1", port: int = 8477,
                 timeout: float = 120.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None
        self._conn_uses = 0   # requests completed on self._conn

    # -- transport -----------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._conn_uses = 0
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def request(self, method: str, path: str,
                doc: Optional[dict] = None) -> tuple:
        """One round trip; returns ``(status, payload dict)``.

        Retries exactly once — and only when the failure is a stale
        keep-alive socket (:attr:`_STALE_ERRORS`) on a connection that
        already served at least one request.  The server may close an
        idle keep-alive between our requests, so that shape means "the
        request never arrived" and a replay on a fresh connection is
        safe.  A failure on a *fresh* connection (server genuinely
        down), a timeout (request may be mid-compute), or any other
        transport error surfaces immediately: the client must never
        guess about work the server may have started.
        """
        body = (json.dumps(doc, sort_keys=True).encode("utf-8")
                if doc is not None else None)
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            conn = self._connection()
            was_idle_reuse = self._conn_uses > 0
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
                self._conn_uses += 1
                break
            except self._STALE_ERRORS:
                self.close()
                if attempt or not was_idle_reuse:
                    raise
            except (http.client.HTTPException, ConnectionError,
                    socket.timeout, OSError):
                self.close()
                raise
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": f"undecodable response body "
                                f"({len(raw)} bytes)"}
        return resp.status, payload

    # -- API -----------------------------------------------------------
    def healthz(self) -> dict:
        status, payload = self.request("GET", "/healthz")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def metrics(self) -> dict:
        status, payload = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(status, payload)
        return payload

    def submit_cell(self, check: bool = True, **fields) -> dict:
        """Submit one cell; returns the response payload.

        With ``check=True`` (default) any non-200 raises
        :class:`ServiceError` — 429s included, so callers see the
        backpressure signal rather than a half-shaped payload.
        """
        status, payload = self.request("POST", "/v1/cell", fields)
        if check and status != 200:
            raise ServiceError(status, payload)
        payload["status"] = status
        return payload

    def cell_summary(self, **fields) -> RunResultSummary:
        """Submit one cell and decode the summary object.

        The returned summary is bit-identical to what a direct
        :func:`repro.analysis.experiment.run_version` call's
        ``.summary()`` would yield — the equivalence tests pin this.
        """
        payload = self.submit_cell(**fields)
        return RunResultSummary.from_dict(payload["summary"])

    def submit_sweep(self, check: bool = True, **grid) -> dict:
        status, payload = self.request("POST", "/v1/sweep", grid)
        if check and status != 200:
            raise ServiceError(status, payload)
        payload["status"] = status
        return payload
